// Ablation: the grid→landmark association limit Δ (DESIGN.md §4.8).
// Δ is slack *outside* the 4ε clustering guarantee: the detour-approximation
// accuracy of Fig. 3a depends on it non-monotonically — too small starves
// pass-through detection (coarser insertion anchoring), too large anchors
// grids to far-away landmarks.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  CityOptions city;
  city.rows = 28;
  city.cols = 28;
  city.seed = 42;
  RoadGraph graph = GenerateCity(city);
  SpatialNodeIndex spatial(graph);
  WorkloadOptions wl;
  wl.num_trips = static_cast<std::size_t>(10000 * scale);
  wl.seed = 44;
  std::vector<TaxiTrip> trips = GenerateTrips(graph.bounds(), wl);

  bench::PrintHeader("Ablation: Delta (grid->landmark drive limit)",
                     "detour-approximation accuracy vs Delta");
  std::printf("epsilon = 1000 m, %zu trips per setting\n\n", trips.size());

  TextTable table({"Delta_m", "matched", "frac_excess<eps", "frac<2eps",
                   "max_excess_m", "assigned_grids_pct"});
  for (double delta_assoc : {250.0, 350.0, 500.0, 750.0, 1000.0, 1500.0}) {
    DiscretizationOptions dopt;
    dopt.max_drive_to_landmark_m = delta_assoc;
    dopt.landmarks.num_candidates = 500;
    dopt.landmarks.seed = 43;
    RegionIndex region = RegionIndex::Build(graph, spatial, dopt);
    GraphOracle oracle(graph);
    XarSystem xar(graph, spatial, region, oracle);
    SimResult sim = SimulateRideSharing(xar, trips);

    PercentileTracker excess;
    for (const BookingRecord& b : sim.bookings) {
      excess.Add(std::max(0.0, b.actual_detour_m - b.budget_before_m));
    }
    std::size_t assigned = 0;
    for (std::size_t g = 0; g < region.grid().CellCount(); ++g) {
      if (region.LandmarkOfGrid(GridId(static_cast<GridId::underlying_type>(g)))
              .valid()) {
        ++assigned;
      }
    }
    double eps = region.epsilon();
    table.AddRow(
        {TextTable::Num(delta_assoc, 0), std::to_string(sim.matched),
         excess.count() ? TextTable::Num(excess.FractionAtMost(eps), 3)
                        : "n/a",
         excess.count() ? TextTable::Num(excess.FractionAtMost(2 * eps), 3)
                        : "n/a",
         excess.count() ? TextTable::Num(excess.max(), 0) : "n/a",
         TextTable::Num(100.0 * static_cast<double>(assigned) /
                            static_cast<double>(region.grid().CellCount()),
                        1)});
  }
  table.Print();
  std::printf(
      "\nShape check: with landmark-level insertion estimates, accuracy and\n"
      "grid coverage improve with Delta and saturate near full assignment;\n"
      "a starved Delta (< eps/2) visibly hurts frac_excess<eps.\n");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
