// Ablation: schedule quality of kinetic-tree insertion (Huang et al., the
// scheduling layer the XAR paper calls complementary) vs first-come
// arrival-order insertion, on shared vehicles serving 2-4 riders.
//
// Reported: mean completion-time saving and the fraction of instances where
// the kinetic tree finds a feasible schedule that arrival-order insertion
// misses.

#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "schedule/kinetic_tree.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serves riders strictly in arrival order: pickup_i then dropoff_i
/// appended at the end of the current schedule. Returns completion time or
/// +inf when some deadline breaks.
double ArrivalOrderCompletion(
    NodeId origin, double t0, int capacity, DistanceOracle& oracle,
    const std::vector<std::pair<ScheduleStop, ScheduleStop>>& riders) {
  NodeId at = origin;
  double t = t0;
  int onboard = 0;
  for (const auto& [pickup, dropoff] : riders) {
    t += oracle.DriveTime(at, pickup.node);
    if (t > pickup.deadline_s || ++onboard > capacity) return kInf;
    at = pickup.node;
    t += oracle.DriveTime(at, dropoff.node);
    if (t > dropoff.deadline_s) return kInf;
    --onboard;
    at = dropoff.node;
  }
  return t;
}

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = 100;  // world only provides the street network here
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);

  bench::PrintHeader("Ablation: scheduling",
                     "kinetic tree vs arrival-order rider insertion");

  TextTable table({"riders", "instances", "kt_feasible", "fifo_feasible",
                   "mean_saving_s", "mean_saving_pct"});
  Rng rng(99);
  auto random_node = [&] {
    return NodeId(static_cast<NodeId::underlying_type>(
        rng.NextIndex(world.graph.NumNodes())));
  };

  for (int riders_per_vehicle : {2, 3, 4}) {
    int instances = static_cast<int>(300 * scale);
    int kt_ok = 0, fifo_ok = 0;
    StatAccumulator saving_s, saving_pct;
    for (int inst = 0; inst < instances; ++inst) {
      NodeId origin = random_node();
      double t0 = 8 * 3600;
      std::vector<std::pair<ScheduleStop, ScheduleStop>> riders;
      KineticTree tree(origin, t0, /*capacity=*/3, *world.oracle);
      for (std::uint32_t r = 0;
           r < static_cast<std::uint32_t>(riders_per_vehicle); ++r) {
        double pickup_slack = rng.Uniform(600, 1800);
        ScheduleStop pickup{random_node(), RequestId(r), true,
                            t0 + pickup_slack};
        ScheduleStop dropoff{random_node(), RequestId(r), false,
                             t0 + pickup_slack + rng.Uniform(900, 2400)};
        riders.emplace_back(pickup, dropoff);
        (void)tree.Insert(pickup, dropoff);
      }
      double kt = tree.NumPendingStops() ==
                          riders.size() * 2
                      ? tree.BestSchedule().completion_time_s
                      : kInf;
      double fifo = ArrivalOrderCompletion(origin, t0, 3, *world.oracle,
                                           riders);
      if (kt < kInf) ++kt_ok;
      if (fifo < kInf) ++fifo_ok;
      if (kt < kInf && fifo < kInf) {
        saving_s.Add(fifo - kt);
        saving_pct.Add((fifo - kt) / (fifo - t0) * 100.0);
      }
    }
    table.AddRow({std::to_string(riders_per_vehicle),
                  std::to_string(instances), std::to_string(kt_ok),
                  std::to_string(fifo_ok),
                  TextTable::Num(saving_s.mean(), 1),
                  TextTable::Num(saving_pct.mean(), 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: the kinetic tree should be feasible at least as often\n"
      "as FIFO insertion and never slower (savings >= 0 by optimality).\n");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
