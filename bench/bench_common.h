#ifndef XAR_BENCH_BENCH_COMMON_H_
#define XAR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "discretize/region_index.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/routing_backend.h"
#include "graph/spatial_index.h"
#include "workload/taxi_trip.h"
#include "workload/trip_generator.h"
#include "xar/options.h"

namespace xar {
namespace bench {

/// Scale factor for all figure benches: 1.0 reproduces the default (quick)
/// configuration; export XAR_BENCH_SCALE=4 for a longer, closer-to-paper
/// run. Every bench prints the scale it ran at.
inline double BenchScale() {
  const char* env = std::getenv("XAR_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// The shared experimental substrate: one synthetic city, its
/// discretization (paper defaults: 100 m grids, ε = 4δ = 1 km), a routing
/// oracle and an NYC-like trip workload.
struct BenchWorld {
  RoadGraph graph;
  std::unique_ptr<SpatialNodeIndex> spatial;
  std::unique_ptr<RegionIndex> region;
  std::unique_ptr<GraphOracle> oracle;
  std::vector<TaxiTrip> trips;
};

struct BenchWorldOptions {
  std::size_t city_rows = 28;
  std::size_t city_cols = 28;
  double delta_m = 250.0;  ///< epsilon = 4*delta = 1 km (paper default)
  std::size_t num_trips = 12000;
  std::size_t landmark_candidates = 500;
  std::uint64_t seed = 42;
  /// Routing backend the world's oracle runs (XarOptions::routing_backend
  /// is honored by forwarding it here).
  RoutingBackendKind routing_backend = XarOptions{}.routing_backend;
  /// Worker threads for backend preprocessing (0 = hardware concurrency);
  /// forwarded like XarOptions::preprocess_threads.
  std::size_t preprocess_threads = 0;
  /// Distance-cache policy of the world's oracle (XarOptions::oracle_cache
  /// is honored by forwarding it here).
  OracleCachePolicy oracle_cache = XarOptions{}.oracle_cache;
};

inline BenchWorld MakeBenchWorld(const BenchWorldOptions& opt = {}) {
  BenchWorld world;
  CityOptions city;
  city.rows = opt.city_rows;
  city.cols = opt.city_cols;
  city.seed = opt.seed;
  world.graph = GenerateCity(city);
  world.spatial = std::make_unique<SpatialNodeIndex>(world.graph);

  DiscretizationOptions dopt;
  dopt.delta_m = opt.delta_m;
  dopt.landmarks.num_candidates = opt.landmark_candidates;
  dopt.landmarks.seed = opt.seed + 1;
  world.region = std::make_unique<RegionIndex>(
      RegionIndex::Build(world.graph, *world.spatial, dopt));

  XarOptions xar_options;
  xar_options.routing_backend = opt.routing_backend;
  xar_options.preprocess_threads = opt.preprocess_threads;
  xar_options.oracle_cache = opt.oracle_cache;
  world.oracle = std::make_unique<GraphOracle>(
      world.graph, /*cache_capacity=*/std::size_t{1} << 16,
      opt.routing_backend, xar_options.BackendOptions(),
      xar_options.oracle_cache);

  WorkloadOptions wopt;
  wopt.num_trips = opt.num_trips;
  wopt.seed = opt.seed + 2;
  world.trips = GenerateTrips(world.graph.bounds(), wopt);
  return world;
}

/// Splits a time-sorted trip stream into (offers, requests) by interleaving
/// (every `stride`-th trip becomes an offer), so both sides cover the same
/// hours of the day — a prefix/suffix split would leave them temporally
/// disjoint and no matches would ever form.
inline void SplitTrips(const std::vector<TaxiTrip>& trips, std::size_t stride,
                       std::vector<TaxiTrip>* offers,
                       std::vector<TaxiTrip>* requests) {
  offers->clear();
  requests->clear();
  for (std::size_t i = 0; i < trips.size(); ++i) {
    if (i % stride == 0) {
      offers->push_back(trips[i]);
    } else {
      requests->push_back(trips[i]);
    }
  }
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(XAR reproduction; synthetic city + NYC-like workload, scale %.1fx)\n",
              BenchScale());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace xar

#endif  // XAR_BENCH_BENCH_COMMON_H_
