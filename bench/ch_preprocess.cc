// Contraction-hierarchy preprocessing scaling: wall time of the batched
// independent-set contraction (src/graph/contraction_hierarchy.cc) at 1/2/4/8
// worker threads on city-scale graphs, including the >= 50k-node point the
// ROADMAP's city-growth item requires. Also re-verifies the determinism
// contract on every point: each parallel build must produce the same
// shortcut count and node order as the 1-thread build. Emits a table per
// city and a JSON trajectory point (BENCH_ch_preprocess.json, see
// bench/README.md).
//
// Like throughput_scaling, the recorded speedup is only meaningful relative
// to `host_cores`: a 1-core container shows ~flat scaling by construction
// (the >= 2.5x @ 4-thread target applies to a 4+ core host).

#include <cstddef>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "graph/contraction_hierarchy.h"
#include "graph/generator.h"
#include "graph/road_graph.h"

namespace xar {
namespace bench {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

struct ThreadPoint {
  std::size_t threads = 0;
  double build_ms = 0.0;
  std::size_t batches = 0;
  std::size_t shortcuts = 0;
  bool deterministic = true;  ///< ranks + shortcuts equal the 1-thread build
};

struct CityResult {
  std::size_t rows = 0, cols = 0;
  std::size_t nodes = 0, edges = 0;
  std::vector<ThreadPoint> points;
  double speedup_4t = 0.0;  ///< 1-thread ms / 4-thread ms
};

CityResult RunCity(std::size_t rows, std::size_t cols) {
  CityOptions copt;
  copt.rows = rows;
  copt.cols = cols;
  copt.seed = 1234;
  RoadGraph g = GenerateCity(copt);

  CityResult result;
  result.rows = rows;
  result.cols = cols;
  result.nodes = g.NumNodes();
  result.edges = g.NumEdges();

  std::vector<std::size_t> reference_ranks;
  double serial_ms = 0.0, quad_ms = 0.0;
  for (std::size_t threads : kThreadCounts) {
    ChOptions opt;
    opt.preprocess_threads = threads;
    ContractionHierarchy ch(g, Metric::kDriveDistance, opt);

    ThreadPoint point;
    point.threads = threads;
    point.build_ms = ch.build_millis();
    point.batches = ch.num_batches();
    point.shortcuts = ch.NumShortcuts();
    if (threads == 1) {
      serial_ms = point.build_ms;
      reference_ranks.reserve(g.NumNodes());
      for (std::size_t v = 0; v < g.NumNodes(); ++v) {
        reference_ranks.push_back(
            ch.RankOf(NodeId(static_cast<NodeId::underlying_type>(v))));
      }
    } else {
      for (std::size_t v = 0; v < g.NumNodes(); ++v) {
        if (ch.RankOf(NodeId(static_cast<NodeId::underlying_type>(v))) !=
            reference_ranks[v]) {
          point.deterministic = false;
          break;
        }
      }
      point.deterministic =
          point.deterministic &&
          point.shortcuts == result.points.front().shortcuts &&
          point.batches == result.points.front().batches;
    }
    if (threads == 4) quad_ms = point.build_ms;
    result.points.push_back(point);
    std::printf("  threads=%zu build_ms=%.0f batches=%zu shortcuts=%zu "
                "deterministic=%s\n",
                point.threads, point.build_ms, point.batches, point.shortcuts,
                point.deterministic ? "yes" : "NO");
    std::fflush(stdout);
  }
  result.speedup_4t = quad_ms > 0.0 ? serial_ms / quad_ms : 0.0;
  return result;
}

}  // namespace

int Run() {
  PrintHeader("CH PREPROCESS",
              "parallel contraction-hierarchy build scaling (1/2/4/8 threads)");
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u\n", host_cores);
  if (host_cores <= 1) {
    std::printf("warning: single-core host — thread scaling will be ~flat "
                "by construction; the >= 2.5x @ 4-thread target applies to "
                "a 4+ core machine.\n");
  }

  // The largest city clears the ROADMAP's >= 50k-node bar.
  struct CitySpec {
    std::size_t rows, cols;
  };
  const CitySpec cities[] = {{75, 75}, {140, 140}, {224, 224}};

  std::vector<CityResult> results;
  for (const CitySpec& spec : cities) {
    std::printf("\ncity %zux%zu:\n", spec.rows, spec.cols);
    CityResult r = RunCity(spec.rows, spec.cols);
    std::printf("  %zu nodes, %zu edges: 1->4 thread speedup %.2fx\n",
                r.nodes, r.edges, r.speedup_4t);
    results.push_back(std::move(r));
  }

  const char* json_path = "BENCH_ch_preprocess.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"ch_preprocess\",\n");
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"metric\": \"drive_m\",\n");
    std::fprintf(f, "  \"cities\": [\n");
    for (std::size_t c = 0; c < results.size(); ++c) {
      const CityResult& r = results[c];
      std::fprintf(f,
                   "    {\"rows\": %zu, \"cols\": %zu, \"nodes\": %zu, "
                   "\"edges\": %zu,\n     \"series\": [\n",
                   r.rows, r.cols, r.nodes, r.edges);
      for (std::size_t i = 0; i < r.points.size(); ++i) {
        const ThreadPoint& p = r.points[i];
        std::fprintf(f,
                     "      {\"threads\": %zu, \"build_ms\": %.1f, "
                     "\"batches\": %zu, \"shortcuts\": %zu, "
                     "\"deterministic\": %s}%s\n",
                     p.threads, p.build_ms, p.batches, p.shortcuts,
                     p.deterministic ? "true" : "false",
                     i + 1 < r.points.size() ? "," : "");
      }
      std::fprintf(f, "     ],\n     \"speedup_1_to_4_threads\": %.2f}%s\n",
                   r.speedup_4t, c + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  bool all_deterministic = true;
  for (const CityResult& r : results) {
    for (const ThreadPoint& p : r.points) {
      all_deterministic = all_deterministic && p.deterministic;
    }
  }
  std::printf("determinism across thread counts: %s\n",
              all_deterministic ? "PASS" : "FAIL");
  return all_deterministic ? 0 : 1;
}

}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Run(); }
