// Reproduces Fig. 3a: the CDF of the detour *approximation* over all booked
// request matches, relative to the clustering guarantee epsilon (= 4*delta,
// the worst-case intra-cluster distance).
//
// Theory (Sections V-VI): the cluster-level detour estimate used at search
// time can deviate from the exact route detour by at most an additive
// 4*epsilon; the paper measures that empirically ~98% of matches deviate by
// less than epsilon and ~99.9% by less than 2*epsilon.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(20000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);
  double epsilon = world.region->epsilon();

  XarSystem xar(world.graph, *world.spatial, *world.region, *world.oracle);
  SimResult sim = SimulateRideSharing(xar, world.trips);

  // The paper's quantity (Section V, last paragraph): by how much a booking
  // overruns the ride's remaining detour budget — the search admitted it
  // based on the cluster-level estimate, so any overrun is approximation
  // error. Theory: <= 4*eps; paper's data: 98% <= eps, 99.9% <= 2*eps.
  PercentileTracker excess;
  PercentileTracker est_err;  // secondary: |actual - estimate|
  for (const BookingRecord& b : sim.bookings) {
    excess.Add(std::max(0.0, b.actual_detour_m - b.budget_before_m));
    est_err.Add(std::abs(b.actual_detour_m - b.estimated_detour_m));
  }

  bench::PrintHeader("Figure 3a",
                     "approximated detour of request matches vs epsilon");
  std::printf("epsilon = %.0f m (= 4*delta), clusters = %zu\n",
              epsilon, world.region->NumClusters());
  std::printf("requests = %zu, matched+booked = %zu, rides created = %zu\n\n",
              sim.requests, sim.matched, sim.rides_created);
  if (excess.count() == 0) {
    std::printf("no bookings -- increase workload\n");
    return;
  }

  TextTable table({"detour limit exceeded by <=", "fraction of matches"});
  const double thresholds[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  for (double mult : thresholds) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f * epsilon", mult);
    table.AddRow(
        {label, TextTable::Num(excess.FractionAtMost(mult * epsilon), 4)});
  }
  table.Print();

  std::printf("\nexcess over limit: mean=%.0fm p98=%.0fm p99.9=%.0fm max=%.0fm\n",
              excess.mean(), excess.Percentile(98), excess.Percentile(99.9),
              excess.max());
  std::printf("estimate error |actual-est|: mean=%.0fm p98=%.0fm max=%.0fm\n",
              est_err.mean(), est_err.Percentile(98), est_err.max());
  double at_eps = excess.FractionAtMost(epsilon);
  double at_2eps = excess.FractionAtMost(2 * epsilon);
  bool bound_holds = excess.max() <= 4 * epsilon + 1e-6;
  std::printf("\nShape check (paper: ~98%% <= eps, ~99.9%% <= 2*eps, all <= 4*eps):\n");
  std::printf("  <= eps: %.1f%%   <= 2*eps: %.1f%%   4*eps bound: %s\n",
              at_eps * 100, at_2eps * 100,
              bound_holds ? "HOLDS" : "VIOLATED");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
