// Reproduces Fig. 3b/3c/3d: the accuracy/performance trade-off of the
// epsilon parameter — number of clusters vs epsilon (3b), in-memory index
// size under load (3c), and ride-search latency (3d), all as epsilon (and
// therefore the cluster count) varies.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/table.h"
#include "graph/generator.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  // Shared city + workload across the sweep; only the discretization varies.
  CityOptions city;
  city.rows = 28;
  city.cols = 28;
  city.seed = 42;
  RoadGraph graph = GenerateCity(city);
  SpatialNodeIndex spatial(graph);
  WorkloadOptions wl;
  wl.num_trips = static_cast<std::size_t>(6000 * scale);
  wl.seed = 44;
  std::vector<TaxiTrip> trips = GenerateTrips(graph.bounds(), wl);
  std::size_t num_offers = trips.size() / 3;
  std::size_t num_searches = trips.size() - num_offers;

  bench::PrintHeader("Figure 3b/3c/3d",
                     "clusters, index memory and search time vs epsilon");
  std::printf("offers=%zu searches=%zu (per epsilon setting)\n\n", num_offers,
              num_searches);

  TextTable table({"epsilon_m", "delta_m", "clusters", "index_MB",
                   "search_mean_ms", "search_p99_ms"});

  const double epsilons[] = {500, 700, 1000, 1500, 2000, 3000};
  for (double epsilon : epsilons) {
    DiscretizationOptions dopt;
    dopt.delta_m = epsilon / 4.0;
    dopt.landmarks.num_candidates = 500;
    dopt.landmarks.seed = 43;
    RegionIndex region = RegionIndex::Build(graph, spatial, dopt);
    GraphOracle oracle(graph);
    XarSystem xar(graph, spatial, region, oracle);

    // Load phase: offers become rides.
    for (std::size_t i = 0; i < num_offers; ++i) {
      RideOffer offer;
      offer.source = trips[i].pickup;
      offer.destination = trips[i].dropoff;
      offer.departure_time_s = trips[i].pickup_time_s;
      (void)xar.CreateRide(offer);
    }

    // Probe phase: the remaining trips search.
    PercentileTracker search_ms;
    for (std::size_t i = num_offers; i < trips.size(); ++i) {
      RideRequest req;
      req.id = trips[i].id;
      req.source = trips[i].pickup;
      req.destination = trips[i].dropoff;
      req.earliest_departure_s = trips[i].pickup_time_s;
      req.latest_departure_s = trips[i].pickup_time_s + 900;
      Stopwatch w;
      (void)xar.Search(req);
      search_ms.Add(w.ElapsedMillis());
    }

    double index_mb =
        static_cast<double>(region.MemoryFootprint() + xar.MemoryFootprint()) /
        (1024.0 * 1024.0);
    table.AddRow({TextTable::Num(epsilon, 0),
                  TextTable::Num(dopt.delta_m, 0),
                  std::to_string(region.NumClusters()),
                  TextTable::Num(index_mb, 2),
                  TextTable::Num(search_ms.mean(), 4),
                  TextTable::Num(search_ms.Percentile(99), 4)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): clusters shrink as epsilon grows; memory and\n"
      "search time grow with the cluster count (small epsilon).\n");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
