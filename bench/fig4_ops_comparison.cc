// Reproduces Fig. 4 (a/b/c): average-case time taken by XAR vs T-Share to
// search (all matches), create, and book rides, as latency percentiles.
//
// Protocol (paper Section X-B.2): rides are created from the earliest trips,
// then requests (pickups 6am-12pm) search both systems for all matches; a
// fraction of matched requests book. T-Share runs with grid size 1000 m
// (equal to the XAR cluster scale) and an 80-grid expansion cap.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "tshare/tshare_system.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void PrintPercentiles(TextTable* table, const char* op, const char* system,
                      const PercentileTracker& t) {
  if (t.count() == 0) return;
  table->AddRow({op, system, std::to_string(t.count()),
                 TextTable::Num(t.mean(), 3), TextTable::Num(t.Percentile(50), 3),
                 TextTable::Num(t.Percentile(90), 3),
                 TextTable::Num(t.Percentile(95), 3),
                 TextTable::Num(t.Percentile(99), 3),
                 TextTable::Num(t.max(), 3)});
}

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(12000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);

  // 6am-12pm subset, as in the paper's Fig. 4 setup.
  std::vector<TaxiTrip> window =
      FilterByTimeWindow(world.trips, 6 * 3600.0, 12 * 3600.0);
  std::vector<TaxiTrip> offers;
  std::vector<TaxiTrip> requests;
  bench::SplitTrips(window, /*stride=*/4, &offers, &requests);  // 1:3

  GraphOracle xar_oracle(world.graph);
  GraphOracle tshare_oracle(world.graph);
  XarSystem xar(world.graph, *world.spatial, *world.region, xar_oracle);
  TShareSystem tshare(world.graph, *world.spatial, tshare_oracle);

  PercentileTracker xar_create, ts_create, xar_search, ts_search, xar_book,
      ts_book;

  // --- Create rides (Fig. 4b) ---------------------------------------------
  for (const TaxiTrip& t : offers) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    Stopwatch w1;
    (void)xar.CreateRide(offer);
    xar_create.Add(w1.ElapsedMillis());
    Stopwatch w2;
    (void)tshare.CreateRide(offer);
    ts_create.Add(w2.ElapsedMillis());
  }

  // --- Search all matches (Fig. 4a) + book a fraction (Fig. 4c) -----------
  std::size_t booked = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const TaxiTrip& t = requests[i];
    RideRequest req;
    req.id = t.id;
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = t.pickup_time_s;
    req.latest_departure_s = t.pickup_time_s + 900;

    Stopwatch w1;
    std::vector<RideMatch> xm = xar.Search(req);
    xar_search.Add(w1.ElapsedMillis());

    Stopwatch w2;
    std::vector<TShareMatch> tm = tshare.Search(req, /*k=*/0);
    ts_search.Add(w2.ElapsedMillis());

    // Book every other matched request on each system (keeps some supply
    // unconsumed so later searches still see candidates).
    if (i % 2 == 0) {
      if (!xm.empty()) {
        Stopwatch wb;
        if (xar.Book(xm.front().ride, req, xm.front()).ok()) ++booked;
        xar_book.Add(wb.ElapsedMillis());
      }
      if (!tm.empty()) {
        Stopwatch wb;
        (void)tshare.Book(tm.front().ride, req, tm.front());
        ts_book.Add(wb.ElapsedMillis());
      }
    }
  }

  bench::PrintHeader("Figure 4",
                     "XAR vs T-Share: search / create / book latency (ms)");
  std::printf("rides=%zu requests=%zu booked(XAR)=%zu  T-Share grid=1000m cap=80\n\n",
              offers.size(), requests.size(), booked);
  TextTable table({"op", "system", "n", "mean_ms", "p50_ms", "p90_ms",
                   "p95_ms", "p99_ms", "max_ms"});
  PrintPercentiles(&table, "search-all", "XAR", xar_search);
  PrintPercentiles(&table, "search-all", "T-Share", ts_search);
  PrintPercentiles(&table, "create", "XAR", xar_create);
  PrintPercentiles(&table, "create", "T-Share", ts_create);
  PrintPercentiles(&table, "book", "XAR", xar_book);
  PrintPercentiles(&table, "book", "T-Share", ts_book);
  table.Print();

  double speedup = ts_search.mean() / std::max(1e-9, xar_search.mean());
  std::printf("\nShape check (paper: XAR search >> faster; create/book same order):\n");
  std::printf("  search mean speedup XAR over T-Share: %.1fx %s\n", speedup,
              speedup > 5 ? "[OK]" : "[UNEXPECTED]");
  std::printf("  T-Share search shortest-path computations: %zu\n",
              tshare.search_sp_count());
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
