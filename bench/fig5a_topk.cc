// Reproduces Fig. 5a: average time to search k possible matches (k=1..25),
// XAR vs T-Share *with shortest-path calls removed* (haversine distances),
// isolating the indexing cost. Paper result: T-Share search time grows
// roughly linearly with k even without shortest paths; XAR stays flat.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/table.h"
#include "tshare/tshare_system.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  // A larger city than the other figures: k-match behaviour only separates
  // the systems when a random nearby taxi is NOT trivially feasible for a
  // random destination.
  wopt.city_rows = 40;
  wopt.city_cols = 40;
  wopt.landmark_candidates = 900;
  wopt.num_trips = static_cast<std::size_t>(16000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);

  // Dense supply so that large k is meaningful: 2/3 of trips become rides,
  // interleaved with the probing requests so both cover the same hours.
  std::vector<TaxiTrip> offers;
  std::vector<TaxiTrip> probe;
  {
    std::vector<TaxiTrip> rest;
    bench::SplitTrips(world.trips, /*stride=*/3, &probe, &rest);
    offers = std::move(rest);  // 2/3 offers, 1/3 probes
  }
  GraphOracle xar_oracle(world.graph);
  GraphOracle tshare_routing(world.graph);
  HaversineOracle tshare_search(world.graph);  // Fig. 5a variant
  XarSystem xar(world.graph, *world.spatial, *world.region, xar_oracle);
  TShareSystem tshare(world.graph, *world.spatial, tshare_routing, {},
                      &tshare_search);

  for (const TaxiTrip& t : offers) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
    (void)tshare.CreateRide(offer);
  }
  const std::vector<TaxiTrip>& requests = probe;

  bench::PrintHeader(
      "Figure 5a",
      "search time vs k matches requested (T-Share without shortest paths)");
  std::printf("rides=%zu probe-requests=%zu\n\n", offers.size(),
              requests.size());

  TextTable table({"k", "XAR_mean_ms", "TShare_mean_ms", "XAR_matches",
                   "TShare_matches"});
  const std::size_t ks[] = {1, 2, 4, 6, 8, 10, 15, 20, 25};
  double xar_first = 0, xar_last = 0, ts_first = 0, ts_last = 0;
  for (std::size_t k : ks) {
    StatAccumulator xar_ms, ts_ms, xar_found, ts_found;
    for (const TaxiTrip& t : requests) {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;

      Stopwatch w1;
      std::vector<RideMatch> xm = xar.SearchTopK(req, k);
      xar_ms.Add(w1.ElapsedMillis());
      xar_found.Add(static_cast<double>(xm.size()));

      Stopwatch w2;
      std::vector<TShareMatch> tm = tshare.Search(req, k);
      ts_ms.Add(w2.ElapsedMillis());
      ts_found.Add(static_cast<double>(tm.size()));
    }
    if (k == ks[0]) {
      xar_first = xar_ms.mean();
      ts_first = ts_ms.mean();
    }
    xar_last = xar_ms.mean();
    ts_last = ts_ms.mean();
    table.AddRow({std::to_string(k), TextTable::Num(xar_ms.mean(), 4),
                  TextTable::Num(ts_ms.mean(), 4),
                  TextTable::Num(xar_found.mean(), 2),
                  TextTable::Num(ts_found.mean(), 2)});
  }
  table.Print();

  std::printf("\nShape check (paper: T-Share grows ~linearly in k, XAR flat):\n");
  std::printf("  XAR k=25/k=1 time ratio: %.2fx (flat ~1.0)\n",
              xar_last / std::max(1e-9, xar_first));
  std::printf("  T-Share k=25/k=1 time ratio: %.2fx (grows)\n",
              ts_last / std::max(1e-9, ts_first));
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
