// Reproduces Fig. 5b: total time to process r searches followed by one
// booking ("look-to-book ratio r"), XAR vs T-Share, r = 1..1000.
// Paper result: T-Share is competitive at r=1 (its booking is cheaper), but
// XAR wins increasingly as r grows — at r=1000 the paper sees ~42s vs ~1s.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/table.h"
#include "tshare/tshare_system.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(16000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);

  std::vector<TaxiTrip> offers;
  std::vector<TaxiTrip> requests;
  bench::SplitTrips(world.trips, /*stride=*/2, &offers, &requests);
  GraphOracle xar_oracle(world.graph);
  GraphOracle tshare_oracle(world.graph);
  XarSystem xar(world.graph, *world.spatial, *world.region, xar_oracle);
  TShareSystem tshare(world.graph, *world.spatial, tshare_oracle);

  for (const TaxiTrip& t : offers) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
    (void)tshare.CreateRide(offer);
  }

  bench::PrintHeader("Figure 5b",
                     "total time for r searches + 1 booking vs r");
  std::printf("rides=%zu request-pool=%zu\n\n", offers.size(),
              requests.size());

  TextTable table({"r", "XAR_total_ms", "TShare_total_ms", "ratio_TS/XAR"});
  const std::size_t ratios[] = {1, 5, 10, 50, 100, 500, 1000};
  std::size_t cursor = 0;
  auto next_request = [&]() -> RideRequest {
    const TaxiTrip& t = requests[cursor++ % requests.size()];
    RideRequest req;
    req.id = t.id;
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = t.pickup_time_s;
    req.latest_departure_s = t.pickup_time_s + 900;
    return req;
  };

  const std::size_t kTrials = 5;
  for (std::size_t r : ratios) {
    double xar_total = 0.0;
    double ts_total = 0.0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // XAR: r searches, then book the last searched request's best match.
      std::size_t mark = cursor;
      Stopwatch xw;
      std::vector<RideMatch> xm;
      RideRequest xr;
      for (std::size_t i = 0; i < r; ++i) {
        xr = next_request();
        xm = xar.Search(xr);
      }
      if (!xm.empty()) (void)xar.Book(xm.front().ride, xr, xm.front());
      xar_total += xw.ElapsedMillis();

      // T-Share: the same protocol on the same request subsequence.
      cursor = mark;
      Stopwatch tw;
      std::vector<TShareMatch> tm;
      RideRequest tr;
      for (std::size_t i = 0; i < r; ++i) {
        tr = next_request();
        tm = tshare.Search(tr, 0);
      }
      if (!tm.empty()) (void)tshare.Book(tm.front().ride, tr, tm.front());
      ts_total += tw.ElapsedMillis();
    }
    xar_total /= static_cast<double>(kTrials);
    ts_total /= static_cast<double>(kTrials);
    table.AddRow({std::to_string(r), TextTable::Num(xar_total, 3),
                  TextTable::Num(ts_total, 3),
                  TextTable::Num(ts_total / std::max(1e-9, xar_total), 1)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper: T-Share competitive at r=1; XAR wins for r>1,\n"
      "gap widening with r — ~40x at r=1000 on the paper's testbed).\n");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
