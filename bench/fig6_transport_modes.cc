// Reproduces Fig. 6: quality-of-travel and environmental comparison of four
// transportation modes over the same request stream — Taxi, Ride Sharing
// (RS), Public Transport (PT) and Ride Sharing combined with Public
// Transport (RS+PT, XAR in Aider mode with infeasible segments defined as
// walk > 1 km or wait > 10 min).
//
// Paper shape: Taxi best times / most cars; PT worst times / no extra cars;
// RS cuts cars ~64% for ~30% more travel time than taxi; RS+PT cuts PT
// walking (~-56%) and travel time (~-30%) and needs ~50% fewer cars than RS.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "mmtp/trip_planner.h"
#include "sim/modes.h"
#include "transit/network_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void AddModeRow(TextTable* table, const ModeMetrics& m) {
  table->AddRow({m.mode_name, std::to_string(m.requests_served),
                 TextTable::Num(m.travel_s.mean() / 60.0, 1),
                 TextTable::Num(m.walk_s.mean() / 60.0, 1),
                 TextTable::Num(m.wait_s.mean() / 60.0, 1),
                 std::to_string(m.cars_used)});
}

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(8000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);

  Timetable timetable = GenerateTransitNetwork(world.graph.bounds(), {});
  TripPlanner planner(timetable);

  bench::PrintHeader("Figure 6",
                     "Taxi vs RS vs PT vs RS+PT over one request stream");
  std::printf("trips=%zu transit: %zu stops %zu routes %zu connections\n\n",
              world.trips.size(), timetable.stops().size(),
              timetable.routes().size(), timetable.connections().size());

  // Mode 1: taxi.
  GraphOracle taxi_oracle(world.graph);
  ModeMetrics taxi =
      EvaluateTaxiMode(*world.spatial, taxi_oracle, world.trips);

  // Mode 2: public transport.
  ModeMetrics pt = EvaluatePublicTransportMode(planner, world.trips);

  // Mode 3: stand-alone ride sharing.
  GraphOracle rs_oracle(world.graph);
  XarSystem rs_xar(world.graph, *world.spatial, *world.region, rs_oracle);
  ModeMetrics rs = EvaluateRideShareMode(rs_xar, world.trips);

  // Mode 4: PT + XAR in Aider mode.
  GraphOracle rspt_oracle(world.graph);
  XarSystem rspt_xar(world.graph, *world.spatial, *world.region, rspt_oracle);
  ModeMetrics rspt = EvaluateRideSharePlusTransitMode(planner, rspt_xar,
                                                      world.trips);

  TextTable table({"mode", "served", "travel_min", "walk_min", "wait_min",
                   "cars"});
  AddModeRow(&table, taxi);
  AddModeRow(&table, rs);
  AddModeRow(&table, pt);
  AddModeRow(&table, rspt);
  table.Print();

  auto pct = [](double now, double base) {
    return base > 0 ? (now - base) / base * 100.0 : 0.0;
  };
  std::printf("\nShape check (paper):\n");
  std::printf("  RS vs Taxi: cars %+.0f%% (paper ~-64%%), travel %+.0f%% (paper ~+30%%)\n",
              pct(static_cast<double>(rs.cars_used),
                  static_cast<double>(taxi.cars_used)),
              pct(rs.travel_s.mean(), taxi.travel_s.mean()));
  std::printf("  RS+PT vs PT: walk %+.0f%% (paper ~-56%%), travel %+.0f%% (paper ~-30%%)\n",
              pct(rspt.walk_s.mean(), pt.walk_s.mean()),
              pct(rspt.travel_s.mean(), pt.travel_s.mean()));
  std::printf("  RS+PT vs RS: cars %+.0f%% (paper ~-50%%)\n",
              pct(static_cast<double>(rspt.cars_used),
                  static_cast<double>(rs.cars_used)));
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
