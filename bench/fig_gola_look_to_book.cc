// The paper's Go-LA argument made concrete (Section X-B.2, last paragraph):
// an MMTP generates ~8 trip plans per request, each with ~3 intermediate
// hops; Enhancer mode issues (k+1 choose 2) = 6 ride searches per plan, so a
// request costs ~48 ride-share searches. If 1-in-10 commuters books, the
// effective look-to-book ratio is ~480. This bench drives XAR through
// exactly that pipeline — real Enhancer probes over real transit plans —
// and reports the realized ratio and the total search cost per commuter
// request.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/table.h"
#include "mmtp/integration.h"
#include "mmtp/trip_planner.h"
#include "transit/network_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

void Run() {
  double scale = bench::BenchScale();
  bench::BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(9000 * scale);
  bench::BenchWorld world = bench::MakeBenchWorld(wopt);
  Timetable timetable = GenerateTransitNetwork(world.graph.bounds(), {});
  TripPlanner planner(timetable);

  // Supply: 2/3 of trips drive and offer their car.
  std::vector<TaxiTrip> probes;
  std::vector<TaxiTrip> offers;
  bench::SplitTrips(world.trips, /*stride=*/3, &probes, &offers);
  GraphOracle oracle(world.graph);
  XarSystem xar(world.graph, *world.spatial, *world.region, oracle);
  for (const TaxiTrip& t : offers) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }

  IntegrationOptions iopt;
  iopt.book_matches = false;  // looks only; booking decided separately
  XarMmtpIntegration integration(planner, xar, iopt);

  std::size_t commuter_requests = 0;
  std::size_t total_searches = 0;
  std::size_t bookings = 0;
  StatAccumulator probes_per_request;
  StatAccumulator ms_per_request;
  std::size_t book_every = 10;  // paper: 1 in 10 opts into ride share

  for (const TaxiTrip& t : probes) {
    Journey plan = planner.PlanTrip(t.pickup, t.dropoff, t.pickup_time_s);
    if (!plan.feasible) continue;
    ++commuter_requests;
    Stopwatch timer;
    IntegrationResult result = integration.Enhance(plan, t.id);
    ms_per_request.Add(timer.ElapsedMillis());
    total_searches += result.segments_probed;
    probes_per_request.Add(static_cast<double>(result.segments_probed));

    if (commuter_requests % book_every == 0 && result.improved) {
      // This commuter actually books: re-run with booking enabled.
      IntegrationOptions book_opt = iopt;
      book_opt.book_matches = true;
      XarMmtpIntegration booker(planner, xar, book_opt);
      IntegrationResult booked = booker.Enhance(plan, t.id);
      if (booked.improved) ++bookings;
    }
  }

  bench::PrintHeader("Go-LA look-to-book estimate (Section X-B.2)",
                     "Enhancer-mode searches per commuter request");
  TextTable table({"metric", "value"});
  table.AddRow({"commuter requests", std::to_string(commuter_requests)});
  table.AddRow({"ride-share searches issued", std::to_string(total_searches)});
  table.AddRow({"searches per request (mean)",
                TextTable::Num(probes_per_request.mean(), 1)});
  table.AddRow({"bookings", std::to_string(bookings)});
  double ratio = bookings > 0 ? static_cast<double>(total_searches) /
                                    static_cast<double>(bookings)
                              : 0.0;
  table.AddRow({"realized look-to-book ratio", TextTable::Num(ratio, 0)});
  table.AddRow({"Enhancer latency per request ms (mean)",
                TextTable::Num(ms_per_request.mean(), 2)});
  table.AddRow({"Enhancer latency per request ms (p99)",
                TextTable::Num(ms_per_request.count()
                                   ? ms_per_request.mean() +
                                         3 * ms_per_request.stddev()
                                   : 0.0,
                               2)});
  table.Print();
  std::printf(
      "\nShape check (paper): multiple searches per plan and a booking rate\n"
      "around 1-in-10 push the look-to-book ratio into the hundreds — the\n"
      "regime Figs. 4-5 show XAR is built for. Paper estimate: ~480.\n"
      "Paper's latency target: one enhanced request under 50 ms.\n");
}

}  // namespace
}  // namespace xar

int main() {
  xar::Run();
  return 0;
}
