// Bucket-CH many-to-many vs per-pair CH on the batch-pricing shape: |S|
// sources (a wave's distinct splice-leg tails) against k candidate targets,
// at the candidate counts the booking hot path actually sees. The bucket
// path pays one backward search per target and one forward scan per source
// instead of |S| * k bidirectional searches, so it must pull ahead as k
// grows — the acceptance point is a recorded speedup > 1 at k >= 32.
// Emits a table per city and a JSON trajectory point
// (BENCH_many_to_many.json, see bench/README.md).

#include <cstddef>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "graph/contraction_hierarchy.h"
#include "graph/generator.h"

namespace xar {
namespace bench {
namespace {

constexpr std::size_t kSources = 8;  ///< distinct leg tails of a typical wave
constexpr std::size_t kCandidateCounts[] = {8, 16, 32, 64, 128};

struct SizePoint {
  std::size_t candidates = 0;
  double per_pair_ms = 0.0;
  double bucket_ms = 0.0;
  double speedup = 0.0;  ///< per_pair_ms / bucket_ms
};

struct CityResult {
  std::size_t rows = 0, cols = 0;
  std::size_t nodes = 0;
  double preprocess_ms = 0.0;
  std::vector<SizePoint> points;
};

std::vector<NodeId> SampleNodes(const RoadGraph& g, std::size_t n,
                                std::mt19937_64* rng) {
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(g.NumNodes() - 1));
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nodes.emplace_back(NodeId(pick(*rng)));
  return nodes;
}

CityResult RunCity(std::size_t rows, std::size_t cols, std::size_t reps) {
  CityOptions copt;
  copt.rows = rows;
  copt.cols = cols;
  copt.seed = 1234;
  RoadGraph g = GenerateCity(copt);

  Stopwatch build;
  ContractionHierarchy ch(g, Metric::kDriveDistance);
  ChQuery query(ch);

  CityResult result;
  result.rows = rows;
  result.cols = cols;
  result.nodes = g.NumNodes();
  result.preprocess_ms = build.ElapsedMillis();

  std::mt19937_64 rng(4321);
  for (std::size_t k : kCandidateCounts) {
    SizePoint point;
    point.candidates = k;
    double per_pair_ms = 0.0;
    double bucket_ms = 0.0;
    double checksum = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      std::vector<NodeId> sources = SampleNodes(g, kSources, &rng);
      std::vector<NodeId> targets = SampleNodes(g, k, &rng);

      Stopwatch pp;
      for (NodeId s : sources) {
        for (NodeId t : targets) checksum += query.Distance(s, t);
      }
      per_pair_ms += pp.ElapsedMillis();

      Stopwatch bk;
      std::vector<double> batch = query.ManyToMany(sources, targets);
      bucket_ms += bk.ElapsedMillis();
      for (double d : batch) checksum -= d;
    }
    if (checksum > 1e-3 || checksum < -1e-3) {
      std::printf("WARNING: bucket batch diverged from per-pair "
                  "(checksum %.6f) — results invalid\n", checksum);
    }
    point.per_pair_ms = per_pair_ms / static_cast<double>(reps);
    point.bucket_ms = bucket_ms / static_cast<double>(reps);
    point.speedup =
        point.bucket_ms > 0.0 ? point.per_pair_ms / point.bucket_ms : 0.0;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace

int Run() {
  PrintHeader("MANY-TO-MANY",
              "per-pair CH vs bucket-CH batch at several candidate counts");
  const double scale = BenchScale();
  const std::size_t reps = static_cast<std::size_t>(30 * scale);

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u | sources per batch: %zu | reps per point: "
              "%zu\n", host_cores, kSources, reps);
  if (host_cores <= 1) {
    std::printf("WARNING: only %u hardware core(s) visible — timings on a "
                "time-sliced core are noisier; read speedups, not absolute "
                "ms.\n", host_cores);
  }

  struct CitySpec {
    std::size_t rows, cols;
  };
  const CitySpec cities[] = {{16, 16}, {56, 56}};

  std::vector<CityResult> results;
  for (const CitySpec& spec : cities) {
    CityResult r = RunCity(spec.rows, spec.cols, reps);
    std::printf("\ncity %zux%zu — %zu nodes (CH build %.0f ms), "
                "%zu sources per batch:\n",
                r.rows, r.cols, r.nodes, r.preprocess_ms, kSources);
    std::printf("%12s %16s %14s %10s\n", "candidates", "per-pair ms",
                "bucket ms", "speedup");
    for (const SizePoint& p : r.points) {
      std::printf("%12zu %16.3f %14.3f %9.1fx\n", p.candidates,
                  p.per_pair_ms, p.bucket_ms, p.speedup);
    }
    results.push_back(std::move(r));
  }

  // Acceptance point: the largest city's k = 32 speedup.
  double speedup_at_32 = 0.0;
  for (const SizePoint& p : results.back().points) {
    if (p.candidates == 32) speedup_at_32 = p.speedup;
  }
  std::printf("\nlargest city (%zux%zu): bucket-CH speedup at 32 candidates "
              "%.1fx (acceptance floor: >1x)\n",
              results.back().rows, results.back().cols, speedup_at_32);

  const char* json_path = "BENCH_many_to_many.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"many_to_many\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"sources_per_batch\": %zu,\n", kSources);
    std::fprintf(f, "  \"reps_per_point\": %zu,\n", reps);
    std::fprintf(f, "  \"cities\": [\n");
    for (std::size_t c = 0; c < results.size(); ++c) {
      const CityResult& r = results[c];
      std::fprintf(f,
                   "    {\"rows\": %zu, \"cols\": %zu, \"nodes\": %zu, "
                   "\"ch_preprocess_ms\": %.1f,\n     \"points\": [\n",
                   r.rows, r.cols, r.nodes, r.preprocess_ms);
      for (std::size_t i = 0; i < r.points.size(); ++i) {
        const SizePoint& p = r.points[i];
        std::fprintf(f,
                     "      {\"candidates\": %zu, \"per_pair_ms\": %.4f, "
                     "\"bucket_ms\": %.4f, \"speedup\": %.2f}%s\n",
                     p.candidates, p.per_pair_ms, p.bucket_ms, p.speedup,
                     i + 1 < r.points.size() ? "," : "");
      }
      std::fprintf(f, "     ]}%s\n", c + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"largest_city_speedup_at_32\": %.2f\n",
                 speedup_at_32);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Run(); }
