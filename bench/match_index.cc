// Match-index backend comparison (ISSUE 8): the extracted cluster index vs
// the spatio-temporal hash, benched on the index layer alone — rides are
// created once through a host XarSystem (route planning paid once, outside
// all timed sections), then each backend is built standalone from the same
// ride set and probed with the same request stream.
//
// Three density regimes (sparse / medium / dense active-ride counts) per
// backend; per point: index build time (bulk Insert), MemoryFootprint(),
// search QPS and candidates per search. Emits a table and
// BENCH_match_index.json (see bench/README.md).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "match/match_index.h"
#include "xar/xar_system.h"

namespace xar {
namespace bench {
namespace {

/// Resolves candidate ids against the host system's ride table, exactly as
/// XarSystem's own RideTable does on the production path.
class HostRideTable final : public RideLookup {
 public:
  explicit HostRideTable(const XarSystem* host) : host_(host) {}
  const Ride* Find(RideId id) const override { return host_->GetRide(id); }

 private:
  const XarSystem* host_;
};

struct RegimePoint {
  const char* backend;
  std::size_t rides;
  double build_ms;
  std::size_t bytes;
  double search_qps;
  double candidates_per_search;
  double empty_fraction;
};

MatchTuning MakeTuning(const XarOptions& opt) {
  MatchTuning tuning;
  tuning.walk_limit_m = opt.default_walk_limit_m;
  tuning.eta_window_slack_s = opt.eta_window_slack_s;
  tuning.max_onboard_s = opt.max_onboard_s;
  tuning.per_ride = 1;
  tuning.max_results = 0;
  return tuning;
}

RegimePoint BenchBackend(MatchIndexKind kind, const XarSystem& host,
                         const std::vector<RideId>& rides,
                         const std::vector<RideRequest>& requests,
                         const BenchWorld& world) {
  std::unique_ptr<MatchIndex> index =
      MakeMatchIndex(kind, host.snapshot(), world.graph);

  Stopwatch build;
  for (RideId id : rides) index->Insert(*host.GetRide(id));
  const double build_ms = build.ElapsedMillis();

  HostRideTable lookup(&host);
  std::size_t total_candidates = 0;
  std::size_t empty = 0;
  Stopwatch search;
  const MatchTuning tuning = MakeTuning(host.options());
  for (const RideRequest& request : requests) {
    std::vector<RideMatch> matches = index->Candidates(request, tuning, lookup);
    total_candidates += matches.size();
    if (matches.empty()) ++empty;
  }
  const double search_s = search.ElapsedSeconds();

  RegimePoint point;
  point.backend = MatchIndexName(kind);
  point.rides = rides.size();
  point.build_ms = build_ms;
  point.bytes = index->MemoryFootprint();
  point.search_qps =
      search_s > 0 ? static_cast<double>(requests.size()) / search_s : 0.0;
  point.candidates_per_search =
      requests.empty()
          ? 0.0
          : static_cast<double>(total_candidates) / requests.size();
  point.empty_fraction =
      requests.empty() ? 0.0
                       : static_cast<double>(empty) / requests.size();
  return point;
}

}  // namespace
}  // namespace bench
}  // namespace xar

int main() {
  using namespace xar;
  using namespace xar::bench;

  const double scale = BenchScale();
  PrintHeader("BENCH match_index",
              "cluster vs spatio-temporal hash candidate generation");

  const unsigned host_cores = std::thread::hardware_concurrency();
  if (host_cores <= 1) {
    std::fprintf(stderr,
                 "WARNING: host reports %u core(s); QPS numbers time-slice a "
                 "single core and undersell both backends equally.\n",
                 host_cores);
  }

  BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(9000 * scale);
  BenchWorld world = MakeBenchWorld(wopt);

  // Density regimes: how many concurrent active rides the index holds while
  // serving the same request stream.
  const std::size_t regimes[] = {
      static_cast<std::size_t>(400 * scale),
      static_cast<std::size_t>(1600 * scale),
      static_cast<std::size_t>(4000 * scale)};
  const std::size_t num_requests = static_cast<std::size_t>(1500 * scale);

  std::vector<TaxiTrip> offer_trips;
  std::vector<TaxiTrip> request_trips;
  SplitTrips(world.trips, /*stride=*/2, &offer_trips, &request_trips);

  std::vector<RideRequest> requests;
  for (std::size_t i = 0; i < request_trips.size() && requests.size() < num_requests; ++i) {
    const TaxiTrip& t = request_trips[i];
    RideRequest req;
    req.id = t.id;
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = t.pickup_time_s;
    req.latest_departure_s = t.pickup_time_s + 1200;
    requests.push_back(req);
  }

  std::printf("%-8s %8s %10s %12s %12s %10s %8s\n", "backend", "rides",
              "build_ms", "bytes", "search_qps", "cand/srch", "empty%");
  std::vector<RegimePoint> points;
  for (std::size_t num_rides : regimes) {
    // One host per regime: rides are planned once here (oracle cost outside
    // every timed section) and shared by both backends.
    XarSystem host(world.graph, *world.spatial, *world.region, *world.oracle);
    std::vector<RideId> rides;
    for (std::size_t i = 0; i < offer_trips.size() && rides.size() < num_rides;
         ++i) {
      const TaxiTrip& t = offer_trips[i];
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      Result<RideId> id = host.CreateRide(offer);
      if (id.ok()) rides.push_back(id.value());
    }

    for (MatchIndexKind kind :
         {MatchIndexKind::kCluster, MatchIndexKind::kSpatioTemporalHash}) {
      RegimePoint p = BenchBackend(kind, host, rides, requests, world);
      std::printf("%-8s %8zu %10.1f %12zu %12.0f %10.2f %7.1f%%\n", p.backend,
                  p.rides, p.build_ms, p.bytes, p.search_qps,
                  p.candidates_per_search, 100.0 * p.empty_fraction);
      points.push_back(p);
    }
  }

  FILE* f = std::fopen("BENCH_match_index.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"match_index\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    if (host_cores <= 1) {
      std::fprintf(f,
                   "  \"warning\": \"1-core host: QPS numbers time-slice a "
                   "single core\",\n");
    }
    std::fprintf(f, "  \"num_requests\": %zu,\n", requests.size());
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const RegimePoint& p = points[i];
      std::fprintf(f,
                   "    {\"backend\": \"%s\", \"rides\": %zu, "
                   "\"build_ms\": %.2f, \"bytes\": %zu, "
                   "\"search_qps\": %.0f, \"candidates_per_search\": %.2f, "
                   "\"empty_fraction\": %.3f}%s\n",
                   p.backend, p.rides, p.build_ms, p.bytes, p.search_qps,
                   p.candidates_per_search, p.empty_fraction,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_match_index.json\n");
  }
  return 0;
}
