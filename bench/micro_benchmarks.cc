// Google-benchmark microbenchmarks for the core operations and the design
// ablations called out in DESIGN.md §4: routing engines, grid mapping,
// cluster-list maintenance, ETA-range probes vs linear scan, candidate
// intersection strategies, and the oracle LRU cache.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "discretize/kcenter.h"
#include "graph/alt.h"
#include "graph/astar.h"
#include "graph/contraction_hierarchy.h"
#include "graph/dijkstra.h"
#include "tshare/tshare_system.h"
#include "match/cluster_ride_list.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

/// World shared across all microbenchmarks (built once).
bench::BenchWorld& World() {
  static bench::BenchWorld* world = [] {
    bench::BenchWorldOptions opt;
    opt.num_trips = 4000;
    return new bench::BenchWorld(bench::MakeBenchWorld(opt));
  }();
  return *world;
}

NodeId RandomNode(Rng& rng) {
  return NodeId(static_cast<NodeId::underlying_type>(
      rng.NextIndex(World().graph.NumNodes())));
}

// --- Routing engines -------------------------------------------------------

void BM_DijkstraPointToPoint(benchmark::State& state) {
  DijkstraEngine engine(World().graph);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Distance(RandomNode(rng), RandomNode(rng),
                        Metric::kDriveDistance));
  }
}
BENCHMARK(BM_DijkstraPointToPoint);

void BM_AStarPointToPoint(benchmark::State& state) {
  AStarEngine engine(World().graph);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Distance(RandomNode(rng), RandomNode(rng),
                                             Metric::kDriveDistance));
  }
}
BENCHMARK(BM_AStarPointToPoint);

void BM_ChPointToPoint(benchmark::State& state) {
  static ContractionHierarchy* engine =
      new ContractionHierarchy(World().graph);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Distance(RandomNode(rng),
                                              RandomNode(rng)));
  }
}
BENCHMARK(BM_ChPointToPoint);

void BM_AltPointToPoint(benchmark::State& state) {
  static AltEngine* engine = new AltEngine(World().graph, 8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Distance(RandomNode(rng),
                                              RandomNode(rng)));
  }
}
BENCHMARK(BM_AltPointToPoint);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  BidirectionalDijkstra engine(World().graph);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Distance(RandomNode(rng), RandomNode(rng),
                                             Metric::kDriveDistance));
  }
}
BENCHMARK(BM_BidirectionalDijkstra);

// Ablation: oracle LRU cache on/off (booking-path workload repeats pairs).
void BM_OracleCached(benchmark::State& state) {
  GraphOracle oracle(World().graph, /*cache_capacity=*/1 << 16);
  Rng rng(1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) pairs.emplace_back(RandomNode(rng), RandomNode(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    auto [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(oracle.DriveDistance(a, b));
  }
}
BENCHMARK(BM_OracleCached);

void BM_OracleUncached(benchmark::State& state) {
  GraphOracle oracle(World().graph, /*cache_capacity=*/0);
  Rng rng(1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) pairs.emplace_back(RandomNode(rng), RandomNode(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    auto [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(oracle.DriveDistance(a, b));
  }
}
BENCHMARK(BM_OracleUncached);

// --- Discretization primitives ----------------------------------------------

void BM_GridOfPoint(benchmark::State& state) {
  const RegionIndex& region = *World().region;
  Rng rng(2);
  const BoundingBox& b = World().graph.bounds();
  for (auto _ : state) {
    LatLng p{rng.Uniform(b.min_lat, b.max_lat),
             rng.Uniform(b.min_lng, b.max_lng)};
    benchmark::DoNotOptimize(region.GridOfPoint(p));
  }
}
BENCHMARK(BM_GridOfPoint);

void BM_ClusterOfPoint(benchmark::State& state) {
  const RegionIndex& region = *World().region;
  Rng rng(2);
  const BoundingBox& b = World().graph.bounds();
  for (auto _ : state) {
    LatLng p{rng.Uniform(b.min_lat, b.max_lat),
             rng.Uniform(b.min_lng, b.max_lng)};
    benchmark::DoNotOptimize(region.ClusterOfPoint(p));
  }
}
BENCHMARK(BM_ClusterOfPoint);

void BM_GreedyKCenter(benchmark::State& state) {
  const DistanceMatrix& metric = World().region->landmark_metric();
  std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyKCenter(metric, k));
  }
}
BENCHMARK(BM_GreedyKCenter)->Arg(8)->Arg(64);

// --- Cluster ride lists ------------------------------------------------------

ClusterRideList MakeList(std::size_t n) {
  ClusterRideList list;
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    list.Upsert(RideId(static_cast<RideId::underlying_type>(i)),
                rng.Uniform(0, 86400), rng.Uniform(0, 4000));
  }
  return list;
}

void BM_ClusterListUpsert(benchmark::State& state) {
  ClusterRideList list = MakeList(static_cast<std::size_t>(state.range(0)));
  Rng rng(4);
  std::uint32_t next = 1 << 20;
  for (auto _ : state) {
    list.Upsert(RideId(next++), rng.Uniform(0, 86400), 0.0);
  }
}
BENCHMARK(BM_ClusterListUpsert)->Arg(1000)->Arg(10000);

// Ablation: binary-searched ETA range vs linear scan of an unsorted list.
void BM_EtaRangeSorted(benchmark::State& state) {
  ClusterRideList list = MakeList(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    double t = rng.Uniform(0, 86400 - 900);
    benchmark::DoNotOptimize(list.EtaRange(t, t + 900));
  }
}
BENCHMARK(BM_EtaRangeSorted)->Arg(1000)->Arg(10000);

void BM_EtaRangeLinearScanBaseline(benchmark::State& state) {
  std::vector<PotentialRide> flat;
  Rng rng(3);
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    flat.push_back(PotentialRide{
        RideId(static_cast<RideId::underlying_type>(i)),
        rng.Uniform(0, 86400), 0.0});
  }
  Rng probe(5);
  for (auto _ : state) {
    double t = probe.Uniform(0, 86400 - 900);
    std::size_t hits = 0;
    for (const PotentialRide& pr : flat) {
      if (pr.eta_s >= t && pr.eta_s <= t + 900) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_EtaRangeLinearScanBaseline)->Arg(1000)->Arg(10000);

// Ablation: sorted-vector intersection vs hash-set intersection of candidate
// ride-id sets (Search Step 2).
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
MakeIdSets(std::size_t n) {
  Rng rng(6);
  std::vector<std::uint32_t> a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<std::uint32_t>(rng.NextIndex(4 * n)));
    b.push_back(static_cast<std::uint32_t>(rng.NextIndex(4 * n)));
  }
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return {a, b};
}

void BM_IntersectSortedVectors(benchmark::State& state) {
  auto [a, b] = MakeIdSets(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::size_t hits = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) ++i;
      else if (b[j] < a[i]) ++j;
      else { ++hits; ++i; ++j; }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IntersectSortedVectors)->Arg(256)->Arg(4096);

void BM_IntersectHashSet(benchmark::State& state) {
  auto [a, b] = MakeIdSets(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_set<std::uint32_t> set(a.begin(), a.end());
    std::size_t hits = 0;
    for (std::uint32_t x : b) hits += set.count(x);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IntersectHashSet)->Arg(256)->Arg(4096);

// --- End-to-end operations ----------------------------------------------------

struct LoadedSystems {
  GraphOracle xar_oracle{World().graph};
  GraphOracle ts_oracle{World().graph};
  XarSystem xar{World().graph, *World().spatial, *World().region, xar_oracle};
  TShareSystem tshare{World().graph, *World().spatial, ts_oracle};

  LoadedSystems() {
    for (const TaxiTrip& t : World().trips) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      (void)xar.CreateRide(offer);
      (void)tshare.CreateRide(offer);
    }
  }
};

LoadedSystems& Systems() {
  static LoadedSystems* s = new LoadedSystems();
  return *s;
}

RideRequest RandomRequest(Rng& rng) {
  const std::vector<TaxiTrip>& trips = World().trips;
  const TaxiTrip& t = trips[rng.NextIndex(trips.size())];
  RideRequest req;
  req.id = t.id;
  req.source = t.pickup;
  req.destination = t.dropoff;
  req.earliest_departure_s = t.pickup_time_s;
  req.latest_departure_s = t.pickup_time_s + 900;
  return req;
}

void BM_XarSearch(benchmark::State& state) {
  LoadedSystems& systems = Systems();  // construct outside the timing loop
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systems.xar.Search(RandomRequest(rng)));
  }
}
BENCHMARK(BM_XarSearch);

void BM_TShareSearchAll(benchmark::State& state) {
  LoadedSystems& systems = Systems();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systems.tshare.Search(RandomRequest(rng), 0));
  }
}
BENCHMARK(BM_TShareSearchAll);

void BM_XarCreateRide(benchmark::State& state) {
  GraphOracle oracle(World().graph);
  XarSystem xar(World().graph, *World().spatial, *World().region, oracle);
  Rng rng(8);
  const std::vector<TaxiTrip>& trips = World().trips;
  for (auto _ : state) {
    const TaxiTrip& t = trips[rng.NextIndex(trips.size())];
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    benchmark::DoNotOptimize(xar.CreateRide(offer));
  }
}
BENCHMARK(BM_XarCreateRide);

}  // namespace
}  // namespace xar

BENCHMARK_MAIN();
