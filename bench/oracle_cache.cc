// Multi-threaded throughput of the two oracle distance-cache policies
// (ISSUE 5 tentpole): the lock-free CLOCK approximation vs the striped LRU,
// measured on the cache itself by pairing each GraphOracle with an instant
// stub backend — so every measured cycle is cache lookup/insert/eviction
// work, not shortest-path search.
//
// Two phases per (policy, threads) point:
//   - insert-heavy: every query is a distinct key, far more keys than
//     capacity, so each op is a miss + insert (+ eviction once warm) — the
//     path where the striped LRU serializes same-stripe writers;
//   - mixed 90% hot: 90% of queries draw from a warmed hot set, 10% are
//     cold distinct keys — the steady-state booking-path shape.
//
// Emits a table and BENCH_oracle_cache.json (see bench/README.md).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "graph/oracle.h"
#include "graph/oracle_cache.h"
#include "graph/routing_backend.h"

namespace xar {
namespace bench {
namespace {

/// Routing backend whose "shortest path" is a few integer mixes: distances
/// are a pure deterministic function of (from, to, metric), so oracles stay
/// correct while the backend cost is negligible next to the cache work.
class InstantBackend : public RoutingBackend {
 public:
  double Distance(NodeId from, NodeId to, Metric metric) override {
    queries_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t z = (static_cast<std::uint64_t>(from.value()) << 32) |
                      to.value();
    z += static_cast<std::uint64_t>(metric) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<double>((z ^ (z >> 31)) & 0xFFFFFF);
  }
  Path Route(NodeId, NodeId, Metric) override { return Path{}; }
  RoutingBackendKind kind() const override {
    return RoutingBackendKind::kDijkstra;  // closest label for a stub
  }
  std::size_t settled_count() const override { return 0; }
  std::size_t query_count() const override {
    return queries_.load(std::memory_order_relaxed);
  }
  std::size_t MemoryFootprint() const override { return sizeof(*this); }

 private:
  std::atomic<std::size_t> queries_{0};
};

constexpr std::size_t kCacheCapacity = std::size_t{1} << 15;
constexpr std::size_t kHotKeys = kCacheCapacity / 2;

NodeId FromOf(std::uint64_t key) {
  return NodeId(static_cast<std::uint32_t>(key >> 16));
}
NodeId ToOf(std::uint64_t key) {
  return NodeId(static_cast<std::uint32_t>(key & 0xFFFF));
}

std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Exact-thread-count worker fan-out (same idiom as throughput_scaling):
/// the calling thread does not participate, so `threads` is exact.
template <typename Body>
double RunWorkers(std::size_t threads, std::size_t ops, const Body& body) {
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch wall;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < ops; i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return wall.ElapsedSeconds();
}

struct SeriesPoint {
  OracleCachePolicy policy;
  std::size_t threads = 0;
  double insert_mops = 0.0;  ///< insert-heavy phase, million ops/s
  double mixed_mops = 0.0;   ///< mixed 90%-hot phase, million ops/s
  double mixed_hit_rate = 0.0;
  OracleCacheCounters counters;  ///< after both phases
};

SeriesPoint MeasurePoint(const RoadGraph& graph, OracleCachePolicy policy,
                         std::size_t threads, std::size_t insert_ops,
                         std::size_t mixed_ops) {
  SeriesPoint point;
  point.policy = policy;
  point.threads = threads;

  GraphOracle oracle(graph, std::make_unique<InstantBackend>(),
                     kCacheCapacity, policy);

  // Insert-heavy: key == op index, all distinct, working set >> capacity.
  double elapsed = RunWorkers(threads, insert_ops, [&](std::size_t i) {
    (void)oracle.DriveDistance(FromOf(i), ToOf(i));
  });
  point.insert_mops = static_cast<double>(insert_ops) / elapsed / 1e6;

  // Mixed: warm the hot set serially, then 90% hot lookups / 10% cold
  // distinct inserts. Hot keys live in a disjoint id range (bit 40 set in
  // the packed key) so the insert phase cannot have seeded them.
  constexpr std::uint64_t kHotBase = std::uint64_t{1} << 40;
  for (std::size_t h = 0; h < kHotKeys; ++h) {
    (void)oracle.DriveDistance(FromOf(kHotBase + h), ToOf(kHotBase + h));
  }
  const std::size_t hits_before = oracle.cache_hit_count();
  const std::size_t queries_before =
      oracle.computation_count() + oracle.cache_hit_count();
  constexpr std::uint64_t kColdBase = std::uint64_t{1} << 41;
  elapsed = RunWorkers(threads, mixed_ops, [&](std::size_t i) {
    std::uint64_t key = (i % 10 == 0) ? kColdBase + i
                                      : kHotBase + Mix(i) % kHotKeys;
    (void)oracle.DriveDistance(FromOf(key), ToOf(key));
  });
  point.mixed_mops = static_cast<double>(mixed_ops) / elapsed / 1e6;
  const std::size_t queries =
      oracle.computation_count() + oracle.cache_hit_count() - queries_before;
  point.mixed_hit_rate =
      queries == 0 ? 0.0
                   : static_cast<double>(oracle.cache_hit_count() -
                                         hits_before) /
                         static_cast<double>(queries);
  point.counters = oracle.cache_counters();
  return point;
}

}  // namespace

int Run() {
  PrintHeader("ORACLE CACHE",
              "distance-cache throughput: lock-free CLOCK vs striped LRU");
  const double scale = BenchScale();
  const std::size_t insert_ops = static_cast<std::size_t>(400000 * scale);
  const std::size_t mixed_ops = static_cast<std::size_t>(600000 * scale);

  // The graph only anchors the oracle (the stub backend never reads it).
  CityOptions copt;
  copt.rows = 4;
  copt.cols = 4;
  RoadGraph graph = GenerateCity(copt);

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u | cache capacity: %zu | insert ops: %zu | "
              "mixed ops: %zu (90%% hot over %zu keys)\n",
              host_cores, kCacheCapacity, insert_ops, mixed_ops, kHotKeys);
  if (host_cores <= 1) {
    std::printf("WARNING: only %u hardware core(s) visible — thread counts "
                "above 1 time-slice a single core; contention effects are "
                "muted, so read multi-thread deltas as a lower bound.\n",
                host_cores);
  }
  std::printf("\n%12s %8s %14s %14s %10s %12s %8s\n", "policy", "threads",
              "insert Mops/s", "mixed Mops/s", "hit rate", "evictions",
              "drops");

  std::vector<SeriesPoint> series;
  for (OracleCachePolicy policy :
       {OracleCachePolicy::kClock, OracleCachePolicy::kStripedLru}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      SeriesPoint p =
          MeasurePoint(graph, policy, threads, insert_ops, mixed_ops);
      std::printf("%12s %8zu %14.2f %14.2f %9.1f%% %12zu %8zu\n",
                  OracleCachePolicyName(p.policy), p.threads, p.insert_mops,
                  p.mixed_mops, 100.0 * p.mixed_hit_rate,
                  static_cast<std::size_t>(p.counters.evictions),
                  static_cast<std::size_t>(p.counters.drops));
      series.push_back(p);
    }
  }

  // Speedup at the highest measured thread count (first/last of each
  // policy's block; layout above is clock block then striped_lru block).
  const SeriesPoint& clock_top = series[3];
  const SeriesPoint& lru_top = series[7];
  const double insert_speedup = clock_top.insert_mops / lru_top.insert_mops;
  const double mixed_speedup = clock_top.mixed_mops / lru_top.mixed_mops;

  const char* json_path = "BENCH_oracle_cache.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"oracle_cache\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"cache_capacity\": %zu,\n", kCacheCapacity);
    std::fprintf(f, "  \"insert_ops\": %zu,\n", insert_ops);
    std::fprintf(f, "  \"mixed_ops\": %zu,\n", mixed_ops);
    std::fprintf(f, "  \"hot_keys\": %zu,\n", kHotKeys);
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const SeriesPoint& p = series[i];
      std::fprintf(
          f,
          "    {\"policy\": \"%s\", \"threads\": %zu, "
          "\"insert_mops\": %.3f, \"mixed_mops\": %.3f, "
          "\"mixed_hit_rate\": %.4f, \"evictions\": %zu, \"drops\": %zu, "
          "\"races\": %zu}%s\n",
          OracleCachePolicyName(p.policy), p.threads, p.insert_mops,
          p.mixed_mops, p.mixed_hit_rate,
          static_cast<std::size_t>(p.counters.evictions),
          static_cast<std::size_t>(p.counters.drops),
          static_cast<std::size_t>(p.counters.races),
          i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"clock_vs_lru_insert_speedup_8t\": %.3f,\n",
                 insert_speedup);
    std::fprintf(f, "  \"clock_vs_lru_mixed_speedup_8t\": %.3f\n",
                 mixed_speedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s (clock vs striped_lru at 8 threads: %.2fx "
                "insert, %.2fx mixed)\n",
                json_path, insert_speedup, mixed_speedup);
  }
  return 0;
}

}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Run(); }
