// Multi-rider pooling under persistent kinetic trees (ISSUE 10): the
// event-driven city sim runs in fixed-fleet mode — the first `fleet` trips
// become moving vehicles, every later trip is a pure commuter request — with
// kinetic booking on, sweeping fleet size x seats per vehicle. Reported per
// point: mean/max occupancy (riders per utilized vehicle), match rate and
// per-rider actual detour. A tight fleet with multi-seat vehicles is where
// occupancy must climb past 1.0 — the "true pooling" acceptance signal.
// Writes BENCH_pooling.json (see bench/README.md).

#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/event_sim.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace bench {
namespace {

struct SweepPoint {
  std::size_t fleet;
  int seats;
  EventSimResult result;
  double mean_occupancy = 0.0;  // bookings per vehicle that got >= 1
  std::size_t max_occupancy = 0;
  std::size_t utilized_vehicles = 0;
};

void Occupancy(SweepPoint* point) {
  std::map<std::uint32_t, std::size_t> per_ride;
  for (const BookingRecord& b : point->result.bookings) {
    ++per_ride[b.ride.value()];
  }
  point->utilized_vehicles = per_ride.size();
  std::size_t total = 0;
  for (const auto& [ride, count] : per_ride) {
    total += count;
    if (count > point->max_occupancy) point->max_occupancy = count;
  }
  point->mean_occupancy =
      per_ride.empty() ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(per_ride.size());
}

}  // namespace
}  // namespace bench
}  // namespace xar

int main() {
  using namespace xar;
  using namespace xar::bench;

  const double scale = BenchScale();
  PrintHeader("BENCH pooling",
              "fixed fleet x seats sweep: occupancy / match rate / detour "
              "under persistent kinetic trees");

  const unsigned host_cores = std::thread::hardware_concurrency();

  BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(6000 * scale);
  BenchWorld world = MakeBenchWorld(wopt);
  std::vector<TaxiTrip> trips =
      FilterByTimeWindow(world.trips, 7 * 3600.0, 9 * 3600.0);
  std::printf("trips in window: %zu\n\n", trips.size());

  ScenarioConfig base;
  base.protocol.window_s = 900.0;
  // A fixed fleet is scarce supply: let riders walk a bit further and give
  // drivers a fatter budget so the sweep measures pooling, not walk cutoffs.
  base.protocol.walk_limit_m = 900.0;
  base.seed = 23;
  // No cancellations / no-shows here: every booking in the result is a
  // served rider, so occupancy counts are exact.

  const std::size_t fleets[] = {15, 30, 60};
  const int seat_counts[] = {1, 2, 4};

  std::printf("%-7s %6s %9s %9s %9s %8s %9s %10s\n", "fleet", "seats",
              "requests", "match%", "occ_mean", "occ_max", "vehicles",
              "detour_m");
  std::vector<SweepPoint> points;
  for (std::size_t fleet : fleets) {
    for (int seats : seat_counts) {
      XarOptions opt;
      opt.kinetic_booking = true;
      opt.default_seats = seats;
      opt.default_detour_limit_m = 6000.0;
      XarSystem xar(world.graph, *world.spatial, *world.region, *world.oracle,
                    opt);
      ScenarioConfig config = base;
      config.fleet = fleet;
      EventSim sim(world.graph, xar.options(), config);
      SweepPoint point;
      point.fleet = fleet;
      point.seats = seats;
      point.result = RunEventSim(xar, sim, trips);
      Occupancy(&point);
      const EventSimResult& r = point.result;
      const double match_rate =
          r.requests > 0 ? 100.0 * static_cast<double>(r.matched) /
                               static_cast<double>(r.requests)
                         : 0.0;
      std::printf("%-7zu %6d %9zu %9.1f %9.2f %8zu %9zu %10.1f\n", fleet,
                  seats, r.requests, match_rate, point.mean_occupancy,
                  point.max_occupancy, point.utilized_vehicles,
                  r.mean_actual_detour_m);
      points.push_back(std::move(point));
    }
  }

  FILE* f = std::fopen("BENCH_pooling.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"pooling\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"trips\": %zu,\n", trips.size());
    std::fprintf(f, "  \"scenario\": {\"window_s\": %.0f, \"seed\": %llu, "
                    "\"kinetic_booking\": true},\n",
                 base.protocol.window_s,
                 static_cast<unsigned long long>(base.seed));
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      const EventSimResult& r = p.result;
      std::fprintf(
          f,
          "    {\"fleet\": %zu, \"seats\": %d, \"requests\": %zu, "
          "\"matched\": %zu, \"match_rate\": %.4f, "
          "\"mean_occupancy\": %.4f, \"max_occupancy\": %zu, "
          "\"utilized_vehicles\": %zu, \"mean_actual_detour_m\": %.2f, "
          "\"mean_walk_m\": %.2f, \"edge_traversals\": %zu}%s\n",
          p.fleet, p.seats, r.requests, r.matched,
          r.requests > 0 ? static_cast<double>(r.matched) /
                               static_cast<double>(r.requests)
                         : 0.0,
          p.mean_occupancy, p.max_occupancy, p.utilized_vehicles,
          r.mean_actual_detour_m, r.mean_walk_m, r.edge_traversals,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_pooling.json\n");
  }
  return 0;
}
