// Refresh cadence under live traffic (ISSUE 9): the event-driven city sim
// runs one rush-hour scenario — vehicles traversing edges in sim time,
// per-street load + a rush-hour profile perturbing driving times, riders
// cancelling and no-showing — while RefreshDiscretization is fed the
// congested world at a swept cadence. Curves: ETA staleness vs refresh
// period (detour-quality-vs-staleness) and match rate vs refresh period.
// Writes BENCH_refresh_under_traffic.json (see bench/README.md).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/event_sim.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace bench {
namespace {

struct CadencePoint {
  double refresh_period_s;
  EventSimResult result;
};

}  // namespace
}  // namespace bench
}  // namespace xar

int main() {
  using namespace xar;
  using namespace xar::bench;

  const double scale = BenchScale();
  PrintHeader("BENCH refresh_under_traffic",
              "event sim: refresh cadence vs ETA staleness / match rate");

  const unsigned host_cores = std::thread::hardware_concurrency();

  BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(15000 * scale);
  BenchWorld world = MakeBenchWorld(wopt);
  // Two rush-hour hours: enough bookings for stable quality means, short
  // enough that every cadence point re-runs the full scenario quickly.
  std::vector<TaxiTrip> trips =
      FilterByTimeWindow(world.trips, 7 * 3600.0, 9 * 3600.0);
  std::printf("trips in window: %zu\n\n", trips.size());

  ScenarioConfig base;
  base.protocol.window_s = 900.0;
  base.traffic.tick_period_s = 300.0;
  base.traffic.load_alpha = 0.05;
  base.events.cancel_probability = 0.05;
  base.events.no_show_probability = 0.05;
  base.seed = 17;

  // 0 = never refresh (the system serves free-flow ETAs all rush hour);
  // then coarser-to-finer cadences.
  const double periods[] = {0.0, 3600.0, 1800.0, 900.0, 450.0};

  std::printf("%-10s %9s %9s %12s %12s %10s %9s %9s\n", "period_s",
              "refreshes", "match%", "eta_err_s", "detour_m", "walk_m",
              "cancels", "noshows");
  std::vector<CadencePoint> points;
  for (double period : periods) {
    XarSystem xar(world.graph, *world.spatial, *world.region, *world.oracle);
    ScenarioConfig config = base;
    config.refresh_period_s = period;
    EventSim sim(world.graph, xar.options(), config);
    CadencePoint point;
    point.refresh_period_s = period;
    point.result = RunEventSim(xar, sim, trips);
    const EventSimResult& r = point.result;
    const double match_rate =
        r.requests > 0
            ? 100.0 * static_cast<double>(r.matched) /
                  static_cast<double>(r.requests)
            : 0.0;
    std::printf("%-10.0f %9zu %9.1f %12.1f %12.1f %10.1f %9zu %9zu\n", period,
                r.refreshes, match_rate, r.mean_eta_error_s,
                r.mean_actual_detour_m, r.mean_walk_m, r.cancels_succeeded,
                r.no_shows_succeeded);
    points.push_back(std::move(point));
  }

  FILE* f = std::fopen("BENCH_refresh_under_traffic.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"refresh_under_traffic\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"trips\": %zu,\n", trips.size());
    std::fprintf(f, "  \"scenario\": {\"cancel_probability\": %.2f, "
                    "\"no_show_probability\": %.2f, \"load_alpha\": %.2f, "
                    "\"rush_amplitude\": %.2f, \"seed\": %llu},\n",
                 base.events.cancel_probability,
                 base.events.no_show_probability, base.traffic.load_alpha,
                 base.traffic.rush_amplitude,
                 static_cast<unsigned long long>(base.seed));
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const EventSimResult& r = points[i].result;
      std::fprintf(
          f,
          "    {\"refresh_period_s\": %.0f, \"refreshes\": %zu, "
          "\"requests\": %zu, \"matched\": %zu, \"match_rate\": %.4f, "
          "\"mean_eta_error_s\": %.2f, \"mean_actual_detour_m\": %.2f, "
          "\"mean_walk_m\": %.2f, \"edge_traversals\": %zu, "
          "\"cancels_succeeded\": %zu, \"no_shows_succeeded\": %zu, "
          "\"final_epoch\": %llu}%s\n",
          points[i].refresh_period_s, r.refreshes, r.requests, r.matched,
          r.requests > 0 ? static_cast<double>(r.matched) /
                               static_cast<double>(r.requests)
                         : 0.0,
          r.mean_eta_error_s, r.mean_actual_detour_m, r.mean_walk_m,
          r.edge_traversals, r.cancels_succeeded, r.no_shows_succeeded,
          static_cast<unsigned long long>(r.final_epoch),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_refresh_under_traffic.json\n");
  }
  return 0;
}
