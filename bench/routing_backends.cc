// Routing-backend comparison: point-to-point query latency, settled nodes,
// preprocessing time and resident memory for Dijkstra / A* / ALT / CH at
// three city sizes. This is the evidence behind making CH the default
// oracle backend: it must settle >= 10x fewer nodes than Dijkstra on the
// largest city while answering the same distances. Emits a human-readable
// table per city and a JSON trajectory point (BENCH_routing_backends.json,
// see bench/README.md).

#include <cstddef>
#include <cstdio>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "graph/generator.h"
#include "graph/routing_backend.h"

namespace xar {
namespace bench {
namespace {

constexpr RoutingBackendKind kKinds[] = {
    RoutingBackendKind::kDijkstra, RoutingBackendKind::kAStar,
    RoutingBackendKind::kAlt, RoutingBackendKind::kCh};

struct BackendRow {
  const char* name = "";
  double preprocess_ms = 0.0;
  double mean_query_us = 0.0;
  double p99_query_us = 0.0;
  double settled_per_query = 0.0;
  std::size_t memory_bytes = 0;
};

struct CityResult {
  std::size_t rows = 0, cols = 0;
  std::size_t nodes = 0, edges = 0;
  std::size_t queries = 0;
  std::vector<BackendRow> backends;
  double ch_vs_dijkstra_settled = 0.0;  ///< dijkstra settled / ch settled
};

std::vector<std::pair<NodeId, NodeId>> SamplePairs(const RoadGraph& g,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(g.NumNodes() - 1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back(NodeId(pick(rng)), NodeId(pick(rng)));
  }
  return pairs;
}

CityResult RunCity(std::size_t rows, std::size_t cols, std::size_t queries) {
  CityOptions copt;
  copt.rows = rows;
  copt.cols = cols;
  copt.seed = 1234;
  RoadGraph g = GenerateCity(copt);

  CityResult result;
  result.rows = rows;
  result.cols = cols;
  result.nodes = g.NumNodes();
  result.edges = g.NumEdges();
  result.queries = queries;
  auto pairs = SamplePairs(g, queries, 4321);

  double dijkstra_settled = 0.0, ch_settled = 0.0;
  for (RoutingBackendKind kind : kKinds) {
    auto backend = MakeRoutingBackend(kind, g);

    // Pay preprocessing up front (as the oracle's Prewarm does on refresh)
    // so query timings measure queries, not lazy builds.
    backend->Prepare(Metric::kDriveDistance);
    BackendRow row;
    row.name = backend->name();
    row.preprocess_ms = backend->preprocess_millis();

    PercentileTracker latency_us;
    latency_us.Reserve(pairs.size());
    for (auto [a, b] : pairs) {
      Stopwatch timer;
      (void)backend->Distance(a, b, Metric::kDriveDistance);
      latency_us.Add(timer.ElapsedMillis() * 1000.0);
    }
    row.mean_query_us = latency_us.mean();
    row.p99_query_us = latency_us.Percentile(99);
    row.settled_per_query = static_cast<double>(backend->settled_count()) /
                            static_cast<double>(backend->query_count());
    row.memory_bytes = backend->MemoryFootprint();
    result.backends.push_back(row);

    if (kind == RoutingBackendKind::kDijkstra) {
      dijkstra_settled = row.settled_per_query;
    } else if (kind == RoutingBackendKind::kCh) {
      ch_settled = row.settled_per_query;
    }
  }
  result.ch_vs_dijkstra_settled =
      ch_settled > 0.0 ? dijkstra_settled / ch_settled : 0.0;
  return result;
}

}  // namespace

int Run() {
  PrintHeader("ROUTING BACKENDS",
              "query latency / settled nodes / preprocessing per backend");
  const double scale = BenchScale();
  const std::size_t queries = static_cast<std::size_t>(400 * scale);

  struct CitySpec {
    std::size_t rows, cols;
  };
  // The largest city clears the ROADMAP's >= 50k-node bar for backend
  // comparisons (parallel CH preprocessing is what makes its build
  // tolerable; see bench/ch_preprocess.cc for the build-time scaling).
  const CitySpec cities[] = {{16, 16}, {28, 28}, {56, 56}, {224, 224}};

  std::vector<CityResult> results;
  for (const CitySpec& spec : cities) {
    CityResult r = RunCity(spec.rows, spec.cols, queries);
    std::printf("\ncity %zux%zu — %zu nodes, %zu edges, %zu queries "
                "(drive-distance metric):\n",
                r.rows, r.cols, r.nodes, r.edges, r.queries);
    std::printf("%10s %14s %14s %14s %16s %12s\n", "backend", "prep ms",
                "mean query us", "p99 query us", "settled/query", "MB");
    for (const BackendRow& b : r.backends) {
      std::printf("%10s %14.1f %14.2f %14.2f %16.1f %12.2f\n", b.name,
                  b.preprocess_ms, b.mean_query_us, b.p99_query_us,
                  b.settled_per_query,
                  static_cast<double>(b.memory_bytes) / 1048576.0);
    }
    std::printf("CH settles %.1fx fewer nodes than Dijkstra here.\n",
                r.ch_vs_dijkstra_settled);
    results.push_back(std::move(r));
  }

  const double largest_ratio = results.back().ch_vs_dijkstra_settled;
  std::printf("\nlargest city (%zux%zu): CH vs Dijkstra settled-node ratio "
              "%.1fx (acceptance floor: 10x)\n",
              results.back().rows, results.back().cols, largest_ratio);

  const char* json_path = "BENCH_routing_backends.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"routing_backends\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"queries_per_backend\": %zu,\n", queries);
    std::fprintf(f, "  \"cities\": [\n");
    for (std::size_t c = 0; c < results.size(); ++c) {
      const CityResult& r = results[c];
      std::fprintf(f,
                   "    {\"rows\": %zu, \"cols\": %zu, \"nodes\": %zu, "
                   "\"edges\": %zu,\n     \"backends\": [\n",
                   r.rows, r.cols, r.nodes, r.edges);
      for (std::size_t i = 0; i < r.backends.size(); ++i) {
        const BackendRow& b = r.backends[i];
        std::fprintf(f,
                     "      {\"name\": \"%s\", \"preprocess_ms\": %.2f, "
                     "\"mean_query_us\": %.2f, \"p99_query_us\": %.2f, "
                     "\"settled_per_query\": %.1f, \"memory_bytes\": %zu}%s\n",
                     b.name, b.preprocess_ms, b.mean_query_us, b.p99_query_us,
                     b.settled_per_query, b.memory_bytes,
                     i + 1 < r.backends.size() ? "," : "");
      }
      std::fprintf(f, "     ],\n     \"ch_vs_dijkstra_settled\": %.2f}%s\n",
                   r.ch_vs_dijkstra_settled,
                   c + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"largest_city_ch_vs_dijkstra_settled\": %.2f\n",
                 largest_ratio);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Run(); }
