// Serving-layer soak (ISSUE 7 tentpole): a minutes-scale load generator
// driving XarServeServer over real loopback sockets, in two phases:
//
//   1. closed loop — K clients issue back-to-back SEARCHes; the sustained
//      completion rate measures the server's capacity on this host.
//   2. open loop — the same clients send at a fixed schedule of 1.5x the
//      measured capacity, regardless of responses. The server cannot keep
//      up by design, so the bounded worker queues overflow and the
//      admission controller must shed with BUSY while tail latency of the
//      admitted requests stays bounded by queue depth (instead of growing
//      without bound, which is what an unbounded queue would do).
//
// Latencies are recorded client-side (send -> matching response tag) into
// the same log-linear histogram the server uses, snapshotted into time
// buckets of a few seconds: the committed BENCH_soak.json carries
// p50/p99/p999 and shed-rate per bucket, so a regression in either steady
//-state latency or overload behavior shows up as a series, not one number.
//
//   XAR_SOAK_SECONDS=120 ./bench/soak   # total wall budget (default 60)
//   cp BENCH_soak.json ../bench/        # commit the refreshed series
//
// ctest runs this binary under the `soak` label with its default budget.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/latency_histogram.h"
#include "serve/server.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace bench {
namespace {

using serve::Frame;
using serve::LatencyHistogram;
using serve::RespStatus;
using serve::SearchPayload;
using serve::ServeClient;
using serve::Verb;

constexpr std::size_t kClients = 4;
constexpr std::size_t kShards = 4;
constexpr double kBucketSeconds = 5.0;
constexpr double kOverloadFactor = 1.5;

double SoakSeconds() {
  const char* env = std::getenv("XAR_SOAK_SECONDS");
  if (env == nullptr) return 60.0;
  double v = std::atof(env);
  return v > 0 ? v : 60.0;
}

SearchPayload ToPayload(const TaxiTrip& trip, std::uint32_t rider_id) {
  SearchPayload p;
  p.rider_id = rider_id;
  p.source_lat = trip.pickup.lat;
  p.source_lng = trip.pickup.lng;
  p.dest_lat = trip.dropoff.lat;
  p.dest_lng = trip.dropoff.lng;
  p.earliest_departure_s = trip.pickup_time_s;
  p.latest_departure_s = trip.pickup_time_s + 1200;
  p.walk_limit_m = -1.0;
  p.top_k = 8;
  return p;
}

/// Shared tallies of one load phase. The histogram is the same lock-free
/// log-linear structure the server uses, so bucketed snapshot deltas work
/// identically on the client side.
struct PhaseStats {
  LatencyHistogram latency;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> errors{0};
};

/// One time bucket of the emitted series.
struct Bucket {
  std::string phase;
  double t_begin_s = 0.0, t_end_s = 0.0;
  std::uint64_t sent = 0, ok = 0, busy = 0;
  LatencyHistogram::Snapshot latency;  ///< delta over the bucket
};

/// One load thread. In closed-loop mode (`interval_s` == 0) it waits for
/// every response before the next send; in open-loop mode it sends on a
/// fixed schedule and drains responses opportunistically, which is what
/// lets offered load exceed service rate.
void LoadThread(std::uint16_t port, const std::vector<TaxiTrip>& requests,
                std::size_t thread_index, double interval_s,
                double deadline_s, const Stopwatch& clock, PhaseStats* stats) {
  ServeClient client;
  if (!client.Connect(port).ok()) {
    stats->errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::unordered_map<std::uint64_t, double> in_flight;  // tag -> send time
  std::uint64_t next_tag = 1;
  std::size_t cursor = thread_index;
  double next_send_s = clock.ElapsedSeconds();

  auto handle = [&](const Frame& frame) {
    auto it = in_flight.find(frame.tag);
    if (it == in_flight.end()) return;
    if (frame.code == static_cast<std::uint8_t>(RespStatus::kBusy)) {
      stats->busy.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats->ok.fetch_add(1, std::memory_order_relaxed);
      stats->latency.Record((clock.ElapsedSeconds() - it->second) * 1e6);
    }
    in_flight.erase(it);
  };

  while (clock.ElapsedSeconds() < deadline_s) {
    const double now_s = clock.ElapsedSeconds();
    if (interval_s == 0.0 || now_s >= next_send_s) {
      const TaxiTrip& trip = requests[cursor % requests.size()];
      cursor += kClients;
      std::vector<std::uint8_t> payload;
      EncodeSearch(ToPayload(trip, static_cast<std::uint32_t>(
                                       0x10000u * (thread_index + 1) +
                                       next_tag % 0x10000u)),
                   &payload);
      const std::uint64_t tag = next_tag++;
      in_flight[tag] = now_s;
      if (!client.SendFrame(tag, Verb::kSearch, payload).ok()) {
        stats->errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stats->sent.fetch_add(1, std::memory_order_relaxed);
      if (interval_s > 0.0) next_send_s += interval_s;
    }
    // Closed loop blocks for the response; open loop polls briefly so the
    // send schedule keeps priority over draining.
    const int timeout_ms = interval_s == 0.0 ? 2000 : 1;
    Result<Frame> frame = client.ReadFrame(timeout_ms);
    if (frame.ok()) {
      handle(*frame);
    } else if (frame.status().code() != StatusCode::kResourceExhausted) {
      stats->errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Drain stragglers so their latency lands in the final bucket.
  for (int i = 0; i < 50 && !in_flight.empty(); ++i) {
    Result<Frame> frame = client.ReadFrame(20);
    if (frame.ok()) handle(*frame);
  }
}

/// Runs one phase and appends its time-bucketed series to `buckets`.
void RunPhase(const char* phase, std::uint16_t port,
              const std::vector<TaxiTrip>& requests, double duration_s,
              double interval_per_client_s, const Stopwatch& clock,
              PhaseStats* stats, std::vector<Bucket>* buckets) {
  const double t0 = clock.ElapsedSeconds();
  const double deadline_s = t0 + duration_s;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back(LoadThread, port, std::cref(requests), c,
                         interval_per_client_s, deadline_s, std::cref(clock),
                         stats);
  }

  LatencyHistogram::Snapshot last_snap = stats->latency.Take();
  std::uint64_t last_sent = 0, last_ok = 0, last_busy = 0;
  double bucket_begin = t0;
  while (clock.ElapsedSeconds() < deadline_s) {
    const double target = std::min(bucket_begin + kBucketSeconds, deadline_s);
    while (clock.ElapsedSeconds() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    Bucket b;
    b.phase = phase;
    b.t_begin_s = bucket_begin;
    b.t_end_s = clock.ElapsedSeconds();
    LatencyHistogram::Snapshot snap = stats->latency.Take();
    b.latency = LatencyHistogram::Delta(snap, last_snap);
    last_snap = snap;
    const std::uint64_t sent = stats->sent.load(std::memory_order_relaxed);
    const std::uint64_t ok = stats->ok.load(std::memory_order_relaxed);
    const std::uint64_t busy = stats->busy.load(std::memory_order_relaxed);
    b.sent = sent - last_sent;
    b.ok = ok - last_ok;
    b.busy = busy - last_busy;
    last_sent = sent;
    last_ok = ok;
    last_busy = busy;
    buckets->push_back(std::move(b));
    bucket_begin = b.t_end_s;
  }
  for (std::thread& t : threads) t.join();
}

int Main() {
  PrintHeader("soak", "serving layer under closed- and open-loop socket load");
  const double total_s = SoakSeconds();
  const double closed_s = total_s * 0.4;
  const double open_s = total_s - closed_s;

  BenchWorldOptions wopt;
  wopt.city_rows = 16;
  wopt.city_cols = 16;
  wopt.num_trips = 4000;
  BenchWorld world = MakeBenchWorld(wopt);
  std::vector<TaxiTrip> offer_trips, request_trips;
  SplitTrips(world.trips, /*stride=*/3, &offer_trips, &request_trips);

  ConcurrentXarSystem system(world.graph, *world.spatial, *world.region,
                             *world.oracle, XarOptions{}, kShards);
  for (const TaxiTrip& t : offer_trips) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    if (!system.CreateRide(offer).ok()) {
      std::fprintf(stderr, "CreateRide failed\n");
      return 1;
    }
  }

  // A small queue makes the overload phase actually shed on any host: the
  // point of the soak is the backpressure path, not queue headroom.
  serve::ServeOptions sopt;
  sopt.queue_capacity = 64;
  serve::XarServeServer server(system, sopt);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("server on 127.0.0.1:%u — %zu workers, queue %zu, "
              "%zu rides, %zu request templates\n",
              server.port(), server.num_workers(), sopt.queue_capacity,
              system.NumRides(), request_trips.size());
  std::printf("budget %.0fs: %.0fs closed-loop + %.0fs open-loop @%.1fx\n",
              total_s, closed_s, open_s, kOverloadFactor);

  Stopwatch clock;
  std::vector<Bucket> buckets;

  PhaseStats closed;
  RunPhase("closed_loop", server.port(), request_trips, closed_s,
           /*interval_per_client_s=*/0.0, clock, &closed, &buckets);
  const double measured_rps =
      static_cast<double>(closed.ok.load()) / closed_s;
  std::printf("closed loop: %llu ok, %llu busy — capacity %.1f req/s\n",
              static_cast<unsigned long long>(closed.ok.load()),
              static_cast<unsigned long long>(closed.busy.load()),
              measured_rps);

  const double target_rps = measured_rps * kOverloadFactor;
  const double interval_s =
      target_rps > 0 ? kClients / target_rps : 0.050;
  PhaseStats open;
  RunPhase("open_loop", server.port(), request_trips, open_s, interval_s,
           clock, &open, &buckets);
  const std::uint64_t open_answered = open.ok.load() + open.busy.load();
  std::printf("open loop @%.1f req/s: %llu ok, %llu busy (%.1f%% shed)\n",
              target_rps, static_cast<unsigned long long>(open.ok.load()),
              static_cast<unsigned long long>(open.busy.load()),
              open_answered > 0
                  ? 100.0 * static_cast<double>(open.busy.load()) /
                        static_cast<double>(open_answered)
                  : 0.0);

  serve::ServeCounters counters = server.counters();
  server.Stop();

  std::printf("\n%-12s %7s %7s %6s %6s | %9s %9s %9s\n", "phase", "t", "sent",
              "ok", "busy", "p50_us", "p99_us", "p999_us");
  for (const Bucket& b : buckets) {
    std::printf("%-12s %3.0f-%3.0fs %7llu %6llu %6llu | %9.0f %9.0f %9.0f\n",
                b.phase.c_str(), b.t_begin_s, b.t_end_s,
                static_cast<unsigned long long>(b.sent),
                static_cast<unsigned long long>(b.ok),
                static_cast<unsigned long long>(b.busy),
                b.latency.PercentileUs(0.50), b.latency.PercentileUs(0.99),
                b.latency.PercentileUs(0.999));
  }

  const char* json_path = "BENCH_soak.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"soak\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"duration_s\": %.1f,\n", total_s);
  std::fprintf(f, "  \"clients\": %zu,\n", kClients);
  std::fprintf(f, "  \"workers\": %zu,\n", server.num_workers());
  std::fprintf(f, "  \"queue_capacity\": %zu,\n", sopt.queue_capacity);
  std::fprintf(f, "  \"closed_loop_rps\": %.2f,\n", measured_rps);
  std::fprintf(f, "  \"open_loop_target_rps\": %.2f,\n", target_rps);
  std::fprintf(f, "  \"server_accepted\": %llu,\n",
               static_cast<unsigned long long>(counters.accepted));
  std::fprintf(f, "  \"server_shed\": %llu,\n",
               static_cast<unsigned long long>(counters.shed));
  std::fprintf(f, "  \"server_queue_highwater\": %llu,\n",
               static_cast<unsigned long long>(counters.queue_highwater));
  std::fprintf(f, "  \"buckets\": [\n");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    const std::uint64_t answered = b.ok + b.busy;
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"t_begin_s\": %.1f, \"t_end_s\": %.1f, "
        "\"sent\": %llu, \"ok\": %llu, \"busy\": %llu, "
        "\"shed_rate\": %.4f, "
        "\"p50_us\": %.0f, \"p99_us\": %.0f, \"p999_us\": %.0f}%s\n",
        b.phase.c_str(), b.t_begin_s, b.t_end_s,
        static_cast<unsigned long long>(b.sent),
        static_cast<unsigned long long>(b.ok),
        static_cast<unsigned long long>(b.busy),
        answered > 0
            ? static_cast<double>(b.busy) / static_cast<double>(answered)
            : 0.0,
        b.latency.PercentileUs(0.50), b.latency.PercentileUs(0.99),
        b.latency.PercentileUs(0.999), i + 1 < buckets.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu buckets)\n", json_path, buckets.size());

  // A soak that never shed proves nothing about the backpressure path.
  if (open.busy.load() == 0 && counters.shed == 0) {
    std::fprintf(stderr,
                 "warning: open-loop phase produced no shedding; "
                 "raise XAR_SOAK_SECONDS or lower queue_capacity\n");
  }
  return closed.errors.load() + open.errors.load() > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Main(); }
