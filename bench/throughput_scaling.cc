// Thread-scaling throughput of the sharded concurrent serving path.
//
// Measures, for 1/2/4/8 worker threads against a fixed 8-shard
// ConcurrentXarSystem:
//   - search-only QPS (the paper's dominant operation at high look-to-book),
//   - mixed traffic QPS (searches with a 5% optimistic SearchAndBook mix),
// and emits both a human-readable table and a JSON trajectory point
// (BENCH_throughput_scaling.json, see bench/README.md).

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/stats.h"
#include "common/stats_registry.h"
#include "common/thread_pool.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace bench {
namespace {

constexpr std::size_t kShards = 8;

struct SeriesPoint {
  std::size_t threads = 0;
  double search_qps = 0.0;
  double search_p50_ms = 0.0;
  double search_p99_ms = 0.0;
  double mixed_qps = 0.0;
  std::size_t mixed_bookings = 0;
  /// Pure SearchAndBook stream with batch pricing on: every wave priced by
  /// one oracle many-to-many batch (the booking hot path end to end).
  double priced_qps = 0.0;
  std::size_t priced_waves = 0;
};

std::vector<RideRequest> ToRequests(const std::vector<TaxiTrip>& trips,
                                    double window_s) {
  std::vector<RideRequest> requests;
  requests.reserve(trips.size());
  for (const TaxiTrip& t : trips) {
    RideRequest req;
    req.id = t.id;
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = t.pickup_time_s;
    req.latest_departure_s = t.pickup_time_s + window_s;
    requests.push_back(req);
  }
  return requests;
}

void Populate(ConcurrentXarSystem& xar, const std::vector<TaxiTrip>& offers) {
  for (const TaxiTrip& t : offers) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }
}

/// Runs body(0..ops-1) on exactly `threads` dedicated worker threads
/// (work-stealing from a shared counter; unlike ThreadPool::ParallelFor the
/// calling thread does NOT participate, so the thread count is exact) and
/// returns the wall time in seconds.
template <typename Body>
double RunWorkers(std::size_t threads, std::size_t ops, const Body& body) {
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch wall;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < ops; i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return wall.ElapsedSeconds();
}

}  // namespace

int Run() {
  PrintHeader("THROUGHPUT SCALING",
              "search / mixed QPS vs worker threads (8-shard system)");
  double scale = BenchScale();

  BenchWorldOptions wopt;
  wopt.num_trips = static_cast<std::size_t>(8000 * scale);
  BenchWorld world = MakeBenchWorld(wopt);

  std::vector<TaxiTrip> offers;
  std::vector<TaxiTrip> probes;
  SplitTrips(world.trips, 2, &offers, &probes);
  std::vector<RideRequest> requests = ToRequests(probes, 900.0);
  const std::size_t search_ops =
      static_cast<std::size_t>(20000 * scale);
  const std::size_t mixed_ops = static_cast<std::size_t>(6000 * scale);

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u | shards: %zu | supply rides: %zu | "
              "probe requests: %zu\n",
              host_cores, kShards, offers.size(), requests.size());
  if (host_cores <= 1) {
    std::printf("WARNING: only %u hardware core(s) visible — thread counts "
                "above 1 time-slice a single core, so QPS cannot scale here; "
                "read the speedup series as a lower bound.\n",
                host_cores);
  }
  std::printf("\n");
  std::printf("%8s %14s %14s %14s %14s %10s %14s %12s\n", "threads",
              "search QPS", "p50 ms", "p99 ms", "mixed QPS", "bookings",
              "priced QPS", "waves");

  std::vector<SeriesPoint> series;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    SeriesPoint point;
    point.threads = threads;

    // --- Search-only: a fixed budget of searches fanned over T threads on
    // a read-only system; wall time gives aggregate QPS.
    {
      ConcurrentXarSystem xar(world.graph, *world.spatial, *world.region,
                              *world.oracle, {}, kShards);
      Populate(xar, offers);
      std::vector<double> latencies(search_ops);
      double elapsed = RunWorkers(threads, search_ops, [&](std::size_t i) {
        Stopwatch timer;
        (void)xar.Search(requests[i % requests.size()]);
        latencies[i] = timer.ElapsedMillis();
      });
      point.search_qps = static_cast<double>(search_ops) / elapsed;
      PercentileTracker tracker;
      tracker.Reserve(latencies.size());
      for (double ms : latencies) tracker.Add(ms);
      point.search_p50_ms = tracker.Percentile(50);
      point.search_p99_ms = tracker.Percentile(99);
    }

    // --- Mixed traffic: 1-in-20 operations is an optimistic SearchAndBook
    // (validate-under-shard-lock), the rest are shared-lock searches. A
    // fresh system per thread count keeps the workloads comparable.
    {
      ConcurrentXarSystem xar(world.graph, *world.spatial, *world.region,
                              *world.oracle, {}, kShards);
      Populate(xar, offers);
      std::atomic<std::size_t> bookings{0};
      double elapsed = RunWorkers(threads, mixed_ops, [&](std::size_t i) {
        const RideRequest& req = requests[i % requests.size()];
        if (i % 20 == 0) {
          if (xar.SearchAndBook(req).ok()) {
            bookings.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          (void)xar.Search(req);
        }
      });
      point.mixed_qps = static_cast<double>(mixed_ops) / elapsed;
      point.mixed_bookings = bookings.load();
    }

    // --- Batch-priced search-and-book: every operation is a SearchAndBook
    // whose candidate wave is priced in ONE oracle many-to-many batch
    // (XarOptions::batch_pricing, the default) — the booking hot path this
    // PR optimizes, measured end to end.
    {
      ConcurrentXarSystem xar(world.graph, *world.spatial, *world.region,
                              *world.oracle, {}, kShards);
      Populate(xar, offers);
      double elapsed = RunWorkers(threads, mixed_ops, [&](std::size_t i) {
        (void)xar.SearchAndBook(requests[i % requests.size()]);
      });
      point.priced_qps = static_cast<double>(mixed_ops) / elapsed;
      point.priced_waves = xar.retry_stats().priced_waves;
    }

    std::printf("%8zu %14.0f %14.3f %14.3f %14.0f %10zu %14.0f %12zu\n",
                point.threads, point.search_qps, point.search_p50_ms,
                point.search_p99_ms, point.mixed_qps, point.mixed_bookings,
                point.priced_qps, point.priced_waves);
    series.push_back(point);
  }

  // --- Refresh under load: the mixed workload once more at the top thread
  // count while the discretization is rebuilt + epoch-swapped twice mid-run.
  // Surfaces the retry/staleness and refresh observability tables (ROADMAP
  // metrics item); bookings landing after a swap show up as re-search wins.
  {
    ConcurrentXarSystem xar(world.graph, *world.spatial, *world.region,
                            *world.oracle, {}, kShards);
    Populate(xar, offers);
    std::atomic<std::size_t> bookings{0};
    std::thread traffic([&] {
      RunWorkers(8, mixed_ops, [&](std::size_t i) {
        const RideRequest& req = requests[i % requests.size()];
        if (i % 20 == 0) {
          if (xar.SearchAndBook(req).ok()) {
            bookings.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          (void)xar.Search(req);
        }
      });
    });
    for (int r = 0; r < 2; ++r) (void)xar.RefreshDiscretization();
    traffic.join();
    std::printf("\nrefresh under load (%zu mixed ops, 8 threads, "
                "2 rebuild+swap refreshes, final epoch %llu):\n",
                mixed_ops, static_cast<unsigned long long>(xar.epoch()));
    // One registry, one render — retry/refresh/oracle/preprocess sections
    // in a single pass instead of per-table Print calls.
    StatsRegistry registry;
    registry.Register("retry",
                      [&] { return RetryStatsSection(xar.retry_stats()); });
    registry.Register("refresh",
                      [&] { return RefreshStatsSection(xar.refresh_stats()); });
    registry.Register("oracle",
                      [&] { return OracleStatsSection(*world.oracle); });
    registry.Register("preprocess", [&] {
      return PreprocessStatsSection(world.oracle->backend());
    });
    std::printf("%s\n", registry.RenderTables().c_str());
  }

  // JSON trajectory point. Relative speedups are what the scaling claim is
  // about; absolute QPS depends on the host (core count recorded alongside).
  const char* json_path = "BENCH_throughput_scaling.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"throughput_scaling\",\n");
    std::fprintf(f, "  \"scale\": %.2f,\n", scale);
    std::fprintf(f, "  \"host_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"shards\": %zu,\n", kShards);
    std::fprintf(f, "  \"supply_rides\": %zu,\n", offers.size());
    std::fprintf(f, "  \"search_ops\": %zu,\n", search_ops);
    std::fprintf(f, "  \"mixed_ops\": %zu,\n", mixed_ops);
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const SeriesPoint& p = series[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"search_qps\": %.1f, "
                   "\"search_p50_ms\": %.4f, \"search_p99_ms\": %.4f, "
                   "\"mixed_qps\": %.1f, \"mixed_bookings\": %zu, "
                   "\"priced_searchandbook_qps\": %.1f, "
                   "\"priced_waves\": %zu}%s\n",
                   p.threads, p.search_qps, p.search_p50_ms, p.search_p99_ms,
                   p.mixed_qps, p.mixed_bookings, p.priced_qps,
                   p.priced_waves, i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"search_speedup_1_to_8\": %.2f\n",
                 series.back().search_qps / series.front().search_qps);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s (search speedup 1->8 threads: %.2fx)\n",
                json_path,
                series.back().search_qps / series.front().search_qps);
  }
  return 0;
}

}  // namespace bench
}  // namespace xar

int main() { return xar::bench::Run(); }
