file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta.dir/ablation_delta.cc.o"
  "CMakeFiles/ablation_delta.dir/ablation_delta.cc.o.d"
  "ablation_delta"
  "ablation_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
