# Empty compiler generated dependencies file for ablation_delta.
# This may be replaced when dependencies are built.
