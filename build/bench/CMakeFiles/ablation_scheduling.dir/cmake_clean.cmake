file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduling.dir/ablation_scheduling.cc.o"
  "CMakeFiles/ablation_scheduling.dir/ablation_scheduling.cc.o.d"
  "ablation_scheduling"
  "ablation_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
