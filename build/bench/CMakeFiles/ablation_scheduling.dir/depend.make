# Empty dependencies file for ablation_scheduling.
# This may be replaced when dependencies are built.
