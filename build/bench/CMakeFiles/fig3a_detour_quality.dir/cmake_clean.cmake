file(REMOVE_RECURSE
  "CMakeFiles/fig3a_detour_quality.dir/fig3a_detour_quality.cc.o"
  "CMakeFiles/fig3a_detour_quality.dir/fig3a_detour_quality.cc.o.d"
  "fig3a_detour_quality"
  "fig3a_detour_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_detour_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
