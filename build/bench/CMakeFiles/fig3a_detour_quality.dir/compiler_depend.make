# Empty compiler generated dependencies file for fig3a_detour_quality.
# This may be replaced when dependencies are built.
