file(REMOVE_RECURSE
  "CMakeFiles/fig3bcd_epsilon_tradeoff.dir/fig3bcd_epsilon_tradeoff.cc.o"
  "CMakeFiles/fig3bcd_epsilon_tradeoff.dir/fig3bcd_epsilon_tradeoff.cc.o.d"
  "fig3bcd_epsilon_tradeoff"
  "fig3bcd_epsilon_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3bcd_epsilon_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
