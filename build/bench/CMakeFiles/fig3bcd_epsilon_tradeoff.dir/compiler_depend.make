# Empty compiler generated dependencies file for fig3bcd_epsilon_tradeoff.
# This may be replaced when dependencies are built.
