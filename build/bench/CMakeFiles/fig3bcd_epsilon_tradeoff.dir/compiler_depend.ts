# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3bcd_epsilon_tradeoff.
