file(REMOVE_RECURSE
  "CMakeFiles/fig4_ops_comparison.dir/fig4_ops_comparison.cc.o"
  "CMakeFiles/fig4_ops_comparison.dir/fig4_ops_comparison.cc.o.d"
  "fig4_ops_comparison"
  "fig4_ops_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ops_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
