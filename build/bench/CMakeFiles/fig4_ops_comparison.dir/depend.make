# Empty dependencies file for fig4_ops_comparison.
# This may be replaced when dependencies are built.
