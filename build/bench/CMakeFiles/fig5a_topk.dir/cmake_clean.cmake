file(REMOVE_RECURSE
  "CMakeFiles/fig5a_topk.dir/fig5a_topk.cc.o"
  "CMakeFiles/fig5a_topk.dir/fig5a_topk.cc.o.d"
  "fig5a_topk"
  "fig5a_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
