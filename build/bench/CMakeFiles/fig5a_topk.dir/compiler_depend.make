# Empty compiler generated dependencies file for fig5a_topk.
# This may be replaced when dependencies are built.
