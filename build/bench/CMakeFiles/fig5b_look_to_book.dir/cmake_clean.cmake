file(REMOVE_RECURSE
  "CMakeFiles/fig5b_look_to_book.dir/fig5b_look_to_book.cc.o"
  "CMakeFiles/fig5b_look_to_book.dir/fig5b_look_to_book.cc.o.d"
  "fig5b_look_to_book"
  "fig5b_look_to_book.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_look_to_book.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
