# Empty compiler generated dependencies file for fig5b_look_to_book.
# This may be replaced when dependencies are built.
