file(REMOVE_RECURSE
  "CMakeFiles/fig6_transport_modes.dir/fig6_transport_modes.cc.o"
  "CMakeFiles/fig6_transport_modes.dir/fig6_transport_modes.cc.o.d"
  "fig6_transport_modes"
  "fig6_transport_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_transport_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
