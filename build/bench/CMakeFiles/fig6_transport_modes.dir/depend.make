# Empty dependencies file for fig6_transport_modes.
# This may be replaced when dependencies are built.
