file(REMOVE_RECURSE
  "CMakeFiles/fig_gola_look_to_book.dir/fig_gola_look_to_book.cc.o"
  "CMakeFiles/fig_gola_look_to_book.dir/fig_gola_look_to_book.cc.o.d"
  "fig_gola_look_to_book"
  "fig_gola_look_to_book.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_gola_look_to_book.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
