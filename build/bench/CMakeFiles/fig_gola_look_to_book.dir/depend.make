# Empty dependencies file for fig_gola_look_to_book.
# This may be replaced when dependencies are built.
