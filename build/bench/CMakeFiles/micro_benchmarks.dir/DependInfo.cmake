
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_benchmarks.cc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tshare/CMakeFiles/xar_tshare.dir/DependInfo.cmake"
  "/root/repo/build/src/xar/CMakeFiles/xar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/discretize/CMakeFiles/xar_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/xar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mmtp/CMakeFiles/xar_mmtp.dir/DependInfo.cmake"
  "/root/repo/build/src/transit/CMakeFiles/xar_transit.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/xar_schedule.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
