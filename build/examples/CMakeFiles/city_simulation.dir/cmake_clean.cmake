file(REMOVE_RECURSE
  "CMakeFiles/city_simulation.dir/city_simulation.cpp.o"
  "CMakeFiles/city_simulation.dir/city_simulation.cpp.o.d"
  "city_simulation"
  "city_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
