# Empty compiler generated dependencies file for city_simulation.
# This may be replaced when dependencies are built.
