file(REMOVE_RECURSE
  "CMakeFiles/cluster_tuning.dir/cluster_tuning.cpp.o"
  "CMakeFiles/cluster_tuning.dir/cluster_tuning.cpp.o.d"
  "cluster_tuning"
  "cluster_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
