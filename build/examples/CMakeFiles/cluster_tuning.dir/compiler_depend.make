# Empty compiler generated dependencies file for cluster_tuning.
# This may be replaced when dependencies are built.
