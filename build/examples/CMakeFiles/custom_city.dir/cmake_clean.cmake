file(REMOVE_RECURSE
  "CMakeFiles/custom_city.dir/custom_city.cpp.o"
  "CMakeFiles/custom_city.dir/custom_city.cpp.o.d"
  "custom_city"
  "custom_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
