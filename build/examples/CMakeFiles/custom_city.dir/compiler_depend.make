# Empty compiler generated dependencies file for custom_city.
# This may be replaced when dependencies are built.
