file(REMOVE_RECURSE
  "CMakeFiles/multimodal_trips.dir/multimodal_trips.cpp.o"
  "CMakeFiles/multimodal_trips.dir/multimodal_trips.cpp.o.d"
  "multimodal_trips"
  "multimodal_trips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
