# Empty dependencies file for multimodal_trips.
# This may be replaced when dependencies are built.
