file(REMOVE_RECURSE
  "CMakeFiles/preprocessing_snapshot.dir/preprocessing_snapshot.cpp.o"
  "CMakeFiles/preprocessing_snapshot.dir/preprocessing_snapshot.cpp.o.d"
  "preprocessing_snapshot"
  "preprocessing_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessing_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
