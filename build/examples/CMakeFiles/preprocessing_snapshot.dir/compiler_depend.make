# Empty compiler generated dependencies file for preprocessing_snapshot.
# This may be replaced when dependencies are built.
