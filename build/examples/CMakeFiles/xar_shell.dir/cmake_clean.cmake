file(REMOVE_RECURSE
  "CMakeFiles/xar_shell.dir/xar_shell.cpp.o"
  "CMakeFiles/xar_shell.dir/xar_shell.cpp.o.d"
  "xar_shell"
  "xar_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
