# Empty compiler generated dependencies file for xar_shell.
# This may be replaced when dependencies are built.
