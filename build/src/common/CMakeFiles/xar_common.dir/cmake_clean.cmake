file(REMOVE_RECURSE
  "CMakeFiles/xar_common.dir/logging.cc.o"
  "CMakeFiles/xar_common.dir/logging.cc.o.d"
  "CMakeFiles/xar_common.dir/stats.cc.o"
  "CMakeFiles/xar_common.dir/stats.cc.o.d"
  "CMakeFiles/xar_common.dir/status.cc.o"
  "CMakeFiles/xar_common.dir/status.cc.o.d"
  "CMakeFiles/xar_common.dir/table.cc.o"
  "CMakeFiles/xar_common.dir/table.cc.o.d"
  "libxar_common.a"
  "libxar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
