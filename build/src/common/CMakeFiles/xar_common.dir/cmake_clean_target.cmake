file(REMOVE_RECURSE
  "libxar_common.a"
)
