# Empty compiler generated dependencies file for xar_common.
# This may be replaced when dependencies are built.
