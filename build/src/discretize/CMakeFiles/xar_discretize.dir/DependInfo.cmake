
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discretize/distance_matrix.cc" "src/discretize/CMakeFiles/xar_discretize.dir/distance_matrix.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/distance_matrix.cc.o.d"
  "/root/repo/src/discretize/exact_cluster.cc" "src/discretize/CMakeFiles/xar_discretize.dir/exact_cluster.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/exact_cluster.cc.o.d"
  "/root/repo/src/discretize/greedy_search.cc" "src/discretize/CMakeFiles/xar_discretize.dir/greedy_search.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/greedy_search.cc.o.d"
  "/root/repo/src/discretize/kcenter.cc" "src/discretize/CMakeFiles/xar_discretize.dir/kcenter.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/kcenter.cc.o.d"
  "/root/repo/src/discretize/landmark_extractor.cc" "src/discretize/CMakeFiles/xar_discretize.dir/landmark_extractor.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/landmark_extractor.cc.o.d"
  "/root/repo/src/discretize/region_index.cc" "src/discretize/CMakeFiles/xar_discretize.dir/region_index.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/region_index.cc.o.d"
  "/root/repo/src/discretize/serialization.cc" "src/discretize/CMakeFiles/xar_discretize.dir/serialization.cc.o" "gcc" "src/discretize/CMakeFiles/xar_discretize.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/xar_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
