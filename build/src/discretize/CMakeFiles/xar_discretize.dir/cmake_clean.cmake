file(REMOVE_RECURSE
  "CMakeFiles/xar_discretize.dir/distance_matrix.cc.o"
  "CMakeFiles/xar_discretize.dir/distance_matrix.cc.o.d"
  "CMakeFiles/xar_discretize.dir/exact_cluster.cc.o"
  "CMakeFiles/xar_discretize.dir/exact_cluster.cc.o.d"
  "CMakeFiles/xar_discretize.dir/greedy_search.cc.o"
  "CMakeFiles/xar_discretize.dir/greedy_search.cc.o.d"
  "CMakeFiles/xar_discretize.dir/kcenter.cc.o"
  "CMakeFiles/xar_discretize.dir/kcenter.cc.o.d"
  "CMakeFiles/xar_discretize.dir/landmark_extractor.cc.o"
  "CMakeFiles/xar_discretize.dir/landmark_extractor.cc.o.d"
  "CMakeFiles/xar_discretize.dir/region_index.cc.o"
  "CMakeFiles/xar_discretize.dir/region_index.cc.o.d"
  "CMakeFiles/xar_discretize.dir/serialization.cc.o"
  "CMakeFiles/xar_discretize.dir/serialization.cc.o.d"
  "libxar_discretize.a"
  "libxar_discretize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_discretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
