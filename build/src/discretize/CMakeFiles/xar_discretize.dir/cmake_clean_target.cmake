file(REMOVE_RECURSE
  "libxar_discretize.a"
)
