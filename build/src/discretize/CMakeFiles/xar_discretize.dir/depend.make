# Empty dependencies file for xar_discretize.
# This may be replaced when dependencies are built.
