file(REMOVE_RECURSE
  "CMakeFiles/xar_geo.dir/grid.cc.o"
  "CMakeFiles/xar_geo.dir/grid.cc.o.d"
  "CMakeFiles/xar_geo.dir/latlng.cc.o"
  "CMakeFiles/xar_geo.dir/latlng.cc.o.d"
  "libxar_geo.a"
  "libxar_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
