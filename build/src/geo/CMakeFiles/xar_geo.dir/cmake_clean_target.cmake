file(REMOVE_RECURSE
  "libxar_geo.a"
)
