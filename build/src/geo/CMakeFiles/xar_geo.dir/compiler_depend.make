# Empty compiler generated dependencies file for xar_geo.
# This may be replaced when dependencies are built.
