
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/alt.cc" "src/graph/CMakeFiles/xar_graph.dir/alt.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/alt.cc.o.d"
  "/root/repo/src/graph/astar.cc" "src/graph/CMakeFiles/xar_graph.dir/astar.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/astar.cc.o.d"
  "/root/repo/src/graph/contraction_hierarchy.cc" "src/graph/CMakeFiles/xar_graph.dir/contraction_hierarchy.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/contraction_hierarchy.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/graph/CMakeFiles/xar_graph.dir/dijkstra.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/dijkstra.cc.o.d"
  "/root/repo/src/graph/floyd_warshall.cc" "src/graph/CMakeFiles/xar_graph.dir/floyd_warshall.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/floyd_warshall.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/xar_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/oracle.cc" "src/graph/CMakeFiles/xar_graph.dir/oracle.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/oracle.cc.o.d"
  "/root/repo/src/graph/road_graph.cc" "src/graph/CMakeFiles/xar_graph.dir/road_graph.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/road_graph.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/graph/CMakeFiles/xar_graph.dir/serialization.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/serialization.cc.o.d"
  "/root/repo/src/graph/spatial_index.cc" "src/graph/CMakeFiles/xar_graph.dir/spatial_index.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/spatial_index.cc.o.d"
  "/root/repo/src/graph/text_io.cc" "src/graph/CMakeFiles/xar_graph.dir/text_io.cc.o" "gcc" "src/graph/CMakeFiles/xar_graph.dir/text_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
