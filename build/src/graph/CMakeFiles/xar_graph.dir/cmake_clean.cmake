file(REMOVE_RECURSE
  "CMakeFiles/xar_graph.dir/alt.cc.o"
  "CMakeFiles/xar_graph.dir/alt.cc.o.d"
  "CMakeFiles/xar_graph.dir/astar.cc.o"
  "CMakeFiles/xar_graph.dir/astar.cc.o.d"
  "CMakeFiles/xar_graph.dir/contraction_hierarchy.cc.o"
  "CMakeFiles/xar_graph.dir/contraction_hierarchy.cc.o.d"
  "CMakeFiles/xar_graph.dir/dijkstra.cc.o"
  "CMakeFiles/xar_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/xar_graph.dir/floyd_warshall.cc.o"
  "CMakeFiles/xar_graph.dir/floyd_warshall.cc.o.d"
  "CMakeFiles/xar_graph.dir/generator.cc.o"
  "CMakeFiles/xar_graph.dir/generator.cc.o.d"
  "CMakeFiles/xar_graph.dir/oracle.cc.o"
  "CMakeFiles/xar_graph.dir/oracle.cc.o.d"
  "CMakeFiles/xar_graph.dir/road_graph.cc.o"
  "CMakeFiles/xar_graph.dir/road_graph.cc.o.d"
  "CMakeFiles/xar_graph.dir/serialization.cc.o"
  "CMakeFiles/xar_graph.dir/serialization.cc.o.d"
  "CMakeFiles/xar_graph.dir/spatial_index.cc.o"
  "CMakeFiles/xar_graph.dir/spatial_index.cc.o.d"
  "CMakeFiles/xar_graph.dir/text_io.cc.o"
  "CMakeFiles/xar_graph.dir/text_io.cc.o.d"
  "libxar_graph.a"
  "libxar_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
