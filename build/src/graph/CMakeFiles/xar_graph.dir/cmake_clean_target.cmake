file(REMOVE_RECURSE
  "libxar_graph.a"
)
