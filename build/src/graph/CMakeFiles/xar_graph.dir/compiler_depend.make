# Empty compiler generated dependencies file for xar_graph.
# This may be replaced when dependencies are built.
