file(REMOVE_RECURSE
  "CMakeFiles/xar_mmtp.dir/integration.cc.o"
  "CMakeFiles/xar_mmtp.dir/integration.cc.o.d"
  "CMakeFiles/xar_mmtp.dir/trip_planner.cc.o"
  "CMakeFiles/xar_mmtp.dir/trip_planner.cc.o.d"
  "libxar_mmtp.a"
  "libxar_mmtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_mmtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
