file(REMOVE_RECURSE
  "libxar_mmtp.a"
)
