# Empty dependencies file for xar_mmtp.
# This may be replaced when dependencies are built.
