file(REMOVE_RECURSE
  "CMakeFiles/xar_schedule.dir/kinetic_tree.cc.o"
  "CMakeFiles/xar_schedule.dir/kinetic_tree.cc.o.d"
  "libxar_schedule.a"
  "libxar_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
