file(REMOVE_RECURSE
  "libxar_schedule.a"
)
