# Empty dependencies file for xar_schedule.
# This may be replaced when dependencies are built.
