file(REMOVE_RECURSE
  "CMakeFiles/xar_sim.dir/modes.cc.o"
  "CMakeFiles/xar_sim.dir/modes.cc.o.d"
  "CMakeFiles/xar_sim.dir/simulator.cc.o"
  "CMakeFiles/xar_sim.dir/simulator.cc.o.d"
  "libxar_sim.a"
  "libxar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
