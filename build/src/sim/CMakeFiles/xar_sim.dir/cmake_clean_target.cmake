file(REMOVE_RECURSE
  "libxar_sim.a"
)
