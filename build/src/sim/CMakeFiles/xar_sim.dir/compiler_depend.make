# Empty compiler generated dependencies file for xar_sim.
# This may be replaced when dependencies are built.
