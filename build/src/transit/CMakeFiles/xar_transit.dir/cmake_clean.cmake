file(REMOVE_RECURSE
  "CMakeFiles/xar_transit.dir/csa.cc.o"
  "CMakeFiles/xar_transit.dir/csa.cc.o.d"
  "CMakeFiles/xar_transit.dir/network_generator.cc.o"
  "CMakeFiles/xar_transit.dir/network_generator.cc.o.d"
  "CMakeFiles/xar_transit.dir/timetable.cc.o"
  "CMakeFiles/xar_transit.dir/timetable.cc.o.d"
  "libxar_transit.a"
  "libxar_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
