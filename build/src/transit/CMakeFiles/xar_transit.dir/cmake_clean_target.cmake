file(REMOVE_RECURSE
  "libxar_transit.a"
)
