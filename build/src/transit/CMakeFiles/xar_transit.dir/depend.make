# Empty dependencies file for xar_transit.
# This may be replaced when dependencies are built.
