file(REMOVE_RECURSE
  "CMakeFiles/xar_tshare.dir/tshare_system.cc.o"
  "CMakeFiles/xar_tshare.dir/tshare_system.cc.o.d"
  "libxar_tshare.a"
  "libxar_tshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_tshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
