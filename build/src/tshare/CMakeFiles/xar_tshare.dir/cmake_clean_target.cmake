file(REMOVE_RECURSE
  "libxar_tshare.a"
)
