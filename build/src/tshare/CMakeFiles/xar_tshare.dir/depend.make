# Empty dependencies file for xar_tshare.
# This may be replaced when dependencies are built.
