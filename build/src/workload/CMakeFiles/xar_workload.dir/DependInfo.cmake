
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/trip_generator.cc" "src/workload/CMakeFiles/xar_workload.dir/trip_generator.cc.o" "gcc" "src/workload/CMakeFiles/xar_workload.dir/trip_generator.cc.o.d"
  "/root/repo/src/workload/trip_io.cc" "src/workload/CMakeFiles/xar_workload.dir/trip_io.cc.o" "gcc" "src/workload/CMakeFiles/xar_workload.dir/trip_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
