file(REMOVE_RECURSE
  "CMakeFiles/xar_workload.dir/trip_generator.cc.o"
  "CMakeFiles/xar_workload.dir/trip_generator.cc.o.d"
  "CMakeFiles/xar_workload.dir/trip_io.cc.o"
  "CMakeFiles/xar_workload.dir/trip_io.cc.o.d"
  "libxar_workload.a"
  "libxar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
