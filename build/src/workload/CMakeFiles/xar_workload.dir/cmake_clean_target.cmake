file(REMOVE_RECURSE
  "libxar_workload.a"
)
