# Empty compiler generated dependencies file for xar_workload.
# This may be replaced when dependencies are built.
