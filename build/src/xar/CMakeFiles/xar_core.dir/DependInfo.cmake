
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xar/cluster_ride_list.cc" "src/xar/CMakeFiles/xar_core.dir/cluster_ride_list.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/cluster_ride_list.cc.o.d"
  "/root/repo/src/xar/command_server.cc" "src/xar/CMakeFiles/xar_core.dir/command_server.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/command_server.cc.o.d"
  "/root/repo/src/xar/geojson_export.cc" "src/xar/CMakeFiles/xar_core.dir/geojson_export.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/geojson_export.cc.o.d"
  "/root/repo/src/xar/ride_index.cc" "src/xar/CMakeFiles/xar_core.dir/ride_index.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/ride_index.cc.o.d"
  "/root/repo/src/xar/route_utils.cc" "src/xar/CMakeFiles/xar_core.dir/route_utils.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/route_utils.cc.o.d"
  "/root/repo/src/xar/xar_system.cc" "src/xar/CMakeFiles/xar_core.dir/xar_system.cc.o" "gcc" "src/xar/CMakeFiles/xar_core.dir/xar_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/xar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/discretize/CMakeFiles/xar_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/xar_schedule.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
