file(REMOVE_RECURSE
  "CMakeFiles/xar_core.dir/cluster_ride_list.cc.o"
  "CMakeFiles/xar_core.dir/cluster_ride_list.cc.o.d"
  "CMakeFiles/xar_core.dir/command_server.cc.o"
  "CMakeFiles/xar_core.dir/command_server.cc.o.d"
  "CMakeFiles/xar_core.dir/geojson_export.cc.o"
  "CMakeFiles/xar_core.dir/geojson_export.cc.o.d"
  "CMakeFiles/xar_core.dir/ride_index.cc.o"
  "CMakeFiles/xar_core.dir/ride_index.cc.o.d"
  "CMakeFiles/xar_core.dir/route_utils.cc.o"
  "CMakeFiles/xar_core.dir/route_utils.cc.o.d"
  "CMakeFiles/xar_core.dir/xar_system.cc.o"
  "CMakeFiles/xar_core.dir/xar_system.cc.o.d"
  "libxar_core.a"
  "libxar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
