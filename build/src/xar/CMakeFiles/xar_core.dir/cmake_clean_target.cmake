file(REMOVE_RECURSE
  "libxar_core.a"
)
