# Empty compiler generated dependencies file for xar_core.
# This may be replaced when dependencies are built.
