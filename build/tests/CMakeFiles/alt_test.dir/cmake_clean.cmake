file(REMOVE_RECURSE
  "CMakeFiles/alt_test.dir/alt_test.cc.o"
  "CMakeFiles/alt_test.dir/alt_test.cc.o.d"
  "alt_test"
  "alt_test.pdb"
  "alt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
