# Empty compiler generated dependencies file for alt_test.
# This may be replaced when dependencies are built.
