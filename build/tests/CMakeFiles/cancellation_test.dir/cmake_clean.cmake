file(REMOVE_RECURSE
  "CMakeFiles/cancellation_test.dir/cancellation_test.cc.o"
  "CMakeFiles/cancellation_test.dir/cancellation_test.cc.o.d"
  "cancellation_test"
  "cancellation_test.pdb"
  "cancellation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancellation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
