# Empty dependencies file for cancellation_test.
# This may be replaced when dependencies are built.
