file(REMOVE_RECURSE
  "CMakeFiles/cluster_ride_list_test.dir/cluster_ride_list_test.cc.o"
  "CMakeFiles/cluster_ride_list_test.dir/cluster_ride_list_test.cc.o.d"
  "cluster_ride_list_test"
  "cluster_ride_list_test.pdb"
  "cluster_ride_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ride_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
