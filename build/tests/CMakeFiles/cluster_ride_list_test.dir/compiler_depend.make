# Empty compiler generated dependencies file for cluster_ride_list_test.
# This may be replaced when dependencies are built.
