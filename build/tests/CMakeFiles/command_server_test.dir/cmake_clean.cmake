file(REMOVE_RECURSE
  "CMakeFiles/command_server_test.dir/command_server_test.cc.o"
  "CMakeFiles/command_server_test.dir/command_server_test.cc.o.d"
  "command_server_test"
  "command_server_test.pdb"
  "command_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
