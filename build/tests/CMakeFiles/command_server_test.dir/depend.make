# Empty dependencies file for command_server_test.
# This may be replaced when dependencies are built.
