file(REMOVE_RECURSE
  "CMakeFiles/concurrent_xar_test.dir/concurrent_xar_test.cc.o"
  "CMakeFiles/concurrent_xar_test.dir/concurrent_xar_test.cc.o.d"
  "concurrent_xar_test"
  "concurrent_xar_test.pdb"
  "concurrent_xar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_xar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
