# Empty compiler generated dependencies file for concurrent_xar_test.
# This may be replaced when dependencies are built.
