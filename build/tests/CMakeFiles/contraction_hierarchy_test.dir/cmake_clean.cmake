file(REMOVE_RECURSE
  "CMakeFiles/contraction_hierarchy_test.dir/contraction_hierarchy_test.cc.o"
  "CMakeFiles/contraction_hierarchy_test.dir/contraction_hierarchy_test.cc.o.d"
  "contraction_hierarchy_test"
  "contraction_hierarchy_test.pdb"
  "contraction_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contraction_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
