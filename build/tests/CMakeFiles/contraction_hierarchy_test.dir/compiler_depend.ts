# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for contraction_hierarchy_test.
