# Empty dependencies file for contraction_hierarchy_test.
# This may be replaced when dependencies are built.
