file(REMOVE_RECURSE
  "CMakeFiles/discretize_test.dir/discretize_test.cc.o"
  "CMakeFiles/discretize_test.dir/discretize_test.cc.o.d"
  "discretize_test"
  "discretize_test.pdb"
  "discretize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discretize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
