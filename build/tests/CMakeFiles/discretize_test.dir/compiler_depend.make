# Empty compiler generated dependencies file for discretize_test.
# This may be replaced when dependencies are built.
