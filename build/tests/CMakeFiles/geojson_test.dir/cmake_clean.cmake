file(REMOVE_RECURSE
  "CMakeFiles/geojson_test.dir/geojson_test.cc.o"
  "CMakeFiles/geojson_test.dir/geojson_test.cc.o.d"
  "geojson_test"
  "geojson_test.pdb"
  "geojson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geojson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
