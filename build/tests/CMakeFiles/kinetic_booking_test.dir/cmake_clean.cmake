file(REMOVE_RECURSE
  "CMakeFiles/kinetic_booking_test.dir/kinetic_booking_test.cc.o"
  "CMakeFiles/kinetic_booking_test.dir/kinetic_booking_test.cc.o.d"
  "kinetic_booking_test"
  "kinetic_booking_test.pdb"
  "kinetic_booking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinetic_booking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
