# Empty dependencies file for kinetic_booking_test.
# This may be replaced when dependencies are built.
