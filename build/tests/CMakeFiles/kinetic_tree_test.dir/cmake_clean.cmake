file(REMOVE_RECURSE
  "CMakeFiles/kinetic_tree_test.dir/kinetic_tree_test.cc.o"
  "CMakeFiles/kinetic_tree_test.dir/kinetic_tree_test.cc.o.d"
  "kinetic_tree_test"
  "kinetic_tree_test.pdb"
  "kinetic_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinetic_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
