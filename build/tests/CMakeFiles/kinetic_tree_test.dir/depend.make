# Empty dependencies file for kinetic_tree_test.
# This may be replaced when dependencies are built.
