file(REMOVE_RECURSE
  "CMakeFiles/lifecycle_test.dir/lifecycle_test.cc.o"
  "CMakeFiles/lifecycle_test.dir/lifecycle_test.cc.o.d"
  "lifecycle_test"
  "lifecycle_test.pdb"
  "lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
