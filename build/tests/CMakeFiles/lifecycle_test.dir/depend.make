# Empty dependencies file for lifecycle_test.
# This may be replaced when dependencies are built.
