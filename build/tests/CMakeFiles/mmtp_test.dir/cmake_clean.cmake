file(REMOVE_RECURSE
  "CMakeFiles/mmtp_test.dir/mmtp_test.cc.o"
  "CMakeFiles/mmtp_test.dir/mmtp_test.cc.o.d"
  "mmtp_test"
  "mmtp_test.pdb"
  "mmtp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
