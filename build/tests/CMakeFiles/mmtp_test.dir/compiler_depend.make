# Empty compiler generated dependencies file for mmtp_test.
# This may be replaced when dependencies are built.
