file(REMOVE_RECURSE
  "CMakeFiles/radial_city_test.dir/radial_city_test.cc.o"
  "CMakeFiles/radial_city_test.dir/radial_city_test.cc.o.d"
  "radial_city_test"
  "radial_city_test.pdb"
  "radial_city_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radial_city_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
