# Empty dependencies file for radial_city_test.
# This may be replaced when dependencies are built.
