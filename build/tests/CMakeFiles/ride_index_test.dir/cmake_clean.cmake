file(REMOVE_RECURSE
  "CMakeFiles/ride_index_test.dir/ride_index_test.cc.o"
  "CMakeFiles/ride_index_test.dir/ride_index_test.cc.o.d"
  "ride_index_test"
  "ride_index_test.pdb"
  "ride_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ride_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
