# Empty dependencies file for ride_index_test.
# This may be replaced when dependencies are built.
