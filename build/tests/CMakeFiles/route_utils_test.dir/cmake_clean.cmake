file(REMOVE_RECURSE
  "CMakeFiles/route_utils_test.dir/route_utils_test.cc.o"
  "CMakeFiles/route_utils_test.dir/route_utils_test.cc.o.d"
  "route_utils_test"
  "route_utils_test.pdb"
  "route_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
