# Empty dependencies file for route_utils_test.
# This may be replaced when dependencies are built.
