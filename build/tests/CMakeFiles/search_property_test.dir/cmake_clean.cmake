file(REMOVE_RECURSE
  "CMakeFiles/search_property_test.dir/search_property_test.cc.o"
  "CMakeFiles/search_property_test.dir/search_property_test.cc.o.d"
  "search_property_test"
  "search_property_test.pdb"
  "search_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
