
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mmtp/CMakeFiles/xar_mmtp.dir/DependInfo.cmake"
  "/root/repo/build/src/xar/CMakeFiles/xar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/discretize/CMakeFiles/xar_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/xar_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/xar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/transit/CMakeFiles/xar_transit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/xar_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
