file(REMOVE_RECURSE
  "CMakeFiles/text_io_test.dir/text_io_test.cc.o"
  "CMakeFiles/text_io_test.dir/text_io_test.cc.o.d"
  "text_io_test"
  "text_io_test.pdb"
  "text_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
