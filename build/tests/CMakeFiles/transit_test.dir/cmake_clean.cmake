file(REMOVE_RECURSE
  "CMakeFiles/transit_test.dir/transit_test.cc.o"
  "CMakeFiles/transit_test.dir/transit_test.cc.o.d"
  "transit_test"
  "transit_test.pdb"
  "transit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
