# Empty compiler generated dependencies file for transit_test.
# This may be replaced when dependencies are built.
