file(REMOVE_RECURSE
  "CMakeFiles/tshare_test.dir/tshare_test.cc.o"
  "CMakeFiles/tshare_test.dir/tshare_test.cc.o.d"
  "tshare_test"
  "tshare_test.pdb"
  "tshare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tshare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
