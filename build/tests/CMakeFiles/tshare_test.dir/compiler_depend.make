# Empty compiler generated dependencies file for tshare_test.
# This may be replaced when dependencies are built.
