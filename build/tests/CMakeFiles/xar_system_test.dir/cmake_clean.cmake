file(REMOVE_RECURSE
  "CMakeFiles/xar_system_test.dir/xar_system_test.cc.o"
  "CMakeFiles/xar_system_test.dir/xar_system_test.cc.o.d"
  "xar_system_test"
  "xar_system_test.pdb"
  "xar_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xar_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
