# Empty compiler generated dependencies file for xar_system_test.
# This may be replaced when dependencies are built.
