add_test([=[StressTest.ThirtyThousandRequestsThroughTheFullStack]=]  /root/repo/build/tests/stress_test [==[--gtest_filter=StressTest.ThirtyThousandRequestsThroughTheFullStack]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[StressTest.ThirtyThousandRequestsThroughTheFullStack]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  stress_test_TESTS StressTest.ThirtyThousandRequestsThroughTheFullStack)
