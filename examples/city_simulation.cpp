// City-scale ride-sharing simulation (the paper's Section X-A protocol):
// a day of NYC-like taxi trips is replayed as ride-share requests; matched
// requests book the least-walking ride, unmatched commuters drive and offer
// their car. Prints match rates, latency percentiles and quality metrics.

#include <cstdio>
#include <cstdlib>

#include "common/stats_registry.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/trip_generator.h"
#include "xar/xar.h"

int main() {
  using namespace xar;

  CityOptions city_options;
  city_options.rows = 28;
  city_options.cols = 28;
  RoadGraph graph = GenerateCity(city_options);
  SpatialNodeIndex spatial(graph);

  DiscretizationOptions disc;
  disc.landmarks.num_candidates = 500;
  RegionIndex region = RegionIndex::Build(graph, spatial, disc);

  WorkloadOptions workload;
  workload.num_trips = 15000;
  std::vector<TaxiTrip> trips = GenerateTrips(graph.bounds(), workload);

  XarOptions options;
  // XAR_MATCH_INDEX (and the other XAR_* overrides) swap backends under the
  // whole simulated day; a typo is a hard error (xar_shell rules).
  if (Status status = ApplyEnvOverrides(&options); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  GraphOracle oracle(graph, /*cache_capacity=*/1 << 16,
                     options.routing_backend, options.BackendOptions());
  XarSystem xar(graph, spatial, region, oracle, options);

  std::printf("simulating %zu trips over a day "
              "(%zu clusters, eps=%.0fm, %s routing, %s match index)...\n",
              trips.size(), region.NumClusters(), region.epsilon(),
              oracle.backend_name(), MatchIndexName(options.match_index));
  SimResult result = SimulateRideSharing(xar, trips);

  std::printf("\nrequests:      %zu\n", result.requests);
  std::printf("matched:       %zu (%.1f%%)\n", result.matched,
              100.0 * static_cast<double>(result.matched) /
                  static_cast<double>(result.requests));
  std::printf("rides created: %zu  => cars saved: %zu\n",
              result.rides_created, result.requests - result.rides_created);

  TextTable ops({"operation", "n", "mean_ms", "p95_ms", "p99_ms"});
  auto row = [&](const char* name, const PercentileTracker& t) {
    if (t.count() == 0) return;
    ops.AddRow({name, std::to_string(t.count()), TextTable::Num(t.mean(), 3),
                TextTable::Num(t.Percentile(95), 3),
                TextTable::Num(t.Percentile(99), 3)});
  };
  std::printf("\noperation latencies:\n");
  row("search", result.search_ms);
  row("create", result.create_ms);
  row("book", result.book_ms);
  ops.Print();

  std::printf("\nrider experience (matched riders):\n");
  std::printf("  mean walk:   %.1f min\n",
              result.metrics.walk_s.count()
                  ? result.metrics.walk_s.mean() / 60.0
                  : 0.0);
  std::printf("  mean wait:   %.1f min\n",
              result.metrics.wait_s.count()
                  ? result.metrics.wait_s.mean() / 60.0
                  : 0.0);
  std::printf("  mean travel: %.1f min\n",
              result.metrics.travel_s.count()
                  ? result.metrics.travel_s.mean() / 60.0
                  : 0.0);

  std::printf("\nin-memory index: %.1f MB (region) + %.1f MB (rides)\n",
              static_cast<double>(region.MemoryFootprint()) / 1048576.0,
              static_cast<double>(xar.MemoryFootprint()) / 1048576.0);

  StatsRegistry registry;
  registry.Register("oracle", [&] { return OracleStatsSection(oracle); });
  registry.Register("preprocess",
                    [&] { return PreprocessStatsSection(oracle.backend()); });
  std::printf("\n%s\n", registry.RenderTables().c_str());
  return 0;
}
