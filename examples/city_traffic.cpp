// Live-traffic city demo: the discrete-event simulator from src/sim/ drives
// a morning rush hour where vehicles traverse graph edges in sim time,
// per-street load and the rush-hour profile slow the roads down, riders
// cancel and no-show, and every refresh period the congested world is fed
// through RefreshDiscretization so the system re-profiles onto the live map.
// Contrast with city_simulation.cpp, which replays the same workload
// through the stateless request protocol with a static graph.

#include <cstdio>

#include "sim/event_sim.h"
#include "workload/trip_generator.h"
#include "xar/xar.h"

int main() {
  using namespace xar;

  CityOptions city_options;
  city_options.rows = 24;
  city_options.cols = 24;
  RoadGraph graph = GenerateCity(city_options);
  SpatialNodeIndex spatial(graph);

  DiscretizationOptions disc;
  disc.landmarks.num_candidates = 400;
  RegionIndex region = RegionIndex::Build(graph, spatial, disc);

  WorkloadOptions workload;
  workload.num_trips = 10000;
  std::vector<TaxiTrip> all_trips = GenerateTrips(graph.bounds(), workload);
  // Morning rush only — that's where the congestion model bites.
  std::vector<TaxiTrip> trips =
      FilterByTimeWindow(all_trips, 7 * 3600.0, 10 * 3600.0);

  XarOptions options;
  if (Status status = ApplyEnvOverrides(&options); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  GraphOracle oracle(graph, /*cache_capacity=*/1 << 16,
                     options.routing_backend, options.BackendOptions());
  XarSystem xar(graph, spatial, region, oracle, options);

  ScenarioConfig config;
  config.protocol.window_s = 900.0;
  config.traffic.tick_period_s = 300.0;   // decay street loads every 5 min
  config.traffic.rush_amplitude = 0.35;   // ~35% slower at the 8:30 peak
  config.events.cancel_probability = 0.08;
  config.events.no_show_probability = 0.05;
  config.refresh_period_s = 900.0;        // re-discretize every 15 min
  config.seed = 7;

  std::printf("city_traffic: %zu rush-hour trips on a %zux%zu grid, "
              "refresh every %.0f s, %s routing\n\n",
              trips.size(), city_options.rows, city_options.cols,
              config.refresh_period_s, oracle.backend_name());

  EventSim sim(graph, xar.options(), config);
  EventSimResult result = RunEventSim(xar, sim, trips);

  std::printf("requests:          %zu\n", result.requests);
  std::printf("matched:           %zu (%.1f%%)\n", result.matched,
              result.requests
                  ? 100.0 * static_cast<double>(result.matched) /
                        static_cast<double>(result.requests)
                  : 0.0);
  std::printf("rides created:     %zu\n", result.rides_created);
  std::printf("edge traversals:   %zu\n", result.edge_traversals);
  std::printf("traffic ticks:     %zu\n", result.traffic_ticks);
  std::printf("refreshes:         %zu (final epoch %llu)\n", result.refreshes,
              static_cast<unsigned long long>(result.final_epoch));
  std::printf("cancellations:     %zu ok / %zu attempted\n",
              result.cancels_succeeded, result.cancels_attempted);
  std::printf("no-shows:          %zu ok / %zu attempted\n",
              result.no_shows_succeeded, result.no_shows_attempted);
  std::printf("\nworld-vs-promise (over %zu completed rides):\n",
              result.eta_samples);
  std::printf("  mean ETA error:  %.1f s\n", result.mean_eta_error_s);
  std::printf("  mean detour:     %.1f m\n", result.mean_actual_detour_m);
  std::printf("  mean walk:       %.1f m\n", result.mean_walk_m);
  std::printf("\nscenario fingerprint: %016llx (deterministic in seed=%llu)\n",
              static_cast<unsigned long long>(result.fingerprint),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
