// Region-discretization tuning walkthrough (paper Section V + Fig. 3):
// shows how GREEDYSEARCH trades the cluster count against the worst-case
// intra-cluster distance guarantee, and verifies the Theorem 6 bicriteria
// bound against the realized clustering.

#include <cstdio>

#include "common/table.h"
#include "discretize/greedy_search.h"
#include "discretize/kcenter.h"
#include "discretize/landmark_extractor.h"
#include "xar/xar.h"

int main() {
  using namespace xar;

  CityOptions city_options;
  city_options.rows = 24;
  city_options.cols = 24;
  RoadGraph graph = GenerateCity(city_options);
  SpatialNodeIndex spatial(graph);

  LandmarkExtractionOptions lopt;
  lopt.num_candidates = 400;
  std::vector<Landmark> landmarks = ExtractLandmarks(graph, spatial, lopt);
  DistanceMatrix metric = DistanceMatrix::FromGraph(graph, landmarks);
  std::printf("%zu landmarks extracted (min separation %.0f m)\n\n",
              landmarks.size(), lopt.min_separation_f_m);

  // The raw k-center curve: greedy radius for every k in one sweep.
  std::vector<double> radius_at = GreedyRadiusSweep(metric);
  std::printf("Gonzalez greedy radius: k=1 -> %.0f m, k=%zu -> %.0f m\n\n",
              radius_at[0], radius_at.size() / 4,
              radius_at[radius_at.size() / 4 - 1]);

  TextTable table({"delta_m", "epsilon(4d)_m", "k_alg", "greedy_radius_m",
                   "realized_diam_m", "diam<=4delta"});
  for (double delta : {150.0, 250.0, 400.0, 600.0, 900.0}) {
    GreedySearchResult result = GreedySearchClustering(metric, delta);
    double diameter = MeasureDiameter(metric, result.clustering);
    table.AddRow({TextTable::Num(delta, 0), TextTable::Num(4 * delta, 0),
                  std::to_string(result.k_alg),
                  TextTable::Num(result.clustering.radius, 0),
                  TextTable::Num(diameter, 0),
                  diameter <= 4 * delta + 1e-9 ? "yes" : "NO"});
  }
  table.Print();

  // Show one binary-search trace (the paper's (k', delta_k') tuples).
  GreedySearchResult trace = GreedySearchClustering(metric, 250.0);
  std::printf("\nGREEDYSEARCH probes for delta=250m:\n");
  for (const GreedySearchProbe& p : trace.probes) {
    std::printf("  k=%-4zu greedy radius=%.0f m %s\n", p.k, p.delta_k,
                p.delta_k <= 2 * 250.0 ? "(feasible)" : "(infeasible)");
  }
  std::printf("chosen k_alg=%zu\n", trace.k_alg);
  return 0;
}
