// Bringing your own data: load a road network from CSV (the OSM-derived
// format real deployments would export), run the discretization and the
// ride-share runtime on it, and dump a GeoJSON map of everything for
// inspection in any GeoJSON viewer.

#include <cstdio>

#include "graph/text_io.h"
#include "workload/trip_generator.h"
#include "workload/trip_io.h"
#include "xar/geojson_export.h"
#include "xar/xar.h"

int main() {
  using namespace xar;
  const char* nodes_csv = "/tmp/xar_custom_nodes.csv";
  const char* edges_csv = "/tmp/xar_custom_edges.csv";
  const char* trips_csv = "/tmp/xar_custom_trips.csv";
  const char* map_path = "/tmp/xar_custom_map.geojson";

  // In lieu of a real OSM export, generate a city and write it out in the
  // CSV exchange format — the files are what you'd hand-build from OSM.
  {
    CityOptions copt;
    copt.rows = 18;
    copt.cols = 18;
    RoadGraph city = GenerateCity(copt);
    if (!WriteGraphCsv(city, nodes_csv, edges_csv).ok()) return 1;
    WorkloadOptions wopt;
    wopt.num_trips = 2000;
    if (!WriteTripsCsv(GenerateTrips(city.bounds(), wopt), trips_csv).ok()) {
      return 1;
    }
  }

  // --- The actual custom-data workflow starts here -----------------------
  Result<RoadGraph> graph = LoadGraphFromCsv(nodes_csv, edges_csv);
  if (!graph.ok()) {
    std::printf("graph load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<TaxiTrip>> trips = LoadTripsFromCsv(trips_csv);
  if (!trips.ok()) {
    std::printf("trips load failed: %s\n", trips.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges, %zu trips from CSV\n",
              graph->NumNodes(), graph->NumEdges(), trips->size());

  SpatialNodeIndex spatial(*graph);
  DiscretizationOptions dopt;
  dopt.landmarks.num_candidates = 350;
  RegionIndex region = RegionIndex::Build(*graph, spatial, dopt);
  GraphOracle oracle(*graph);
  XarSystem xar(*graph, spatial, region, oracle);

  // Serve the first hundred trips: offers and requests alternate.
  std::size_t matches_found = 0;
  RideId last_ride = RideId::Invalid();
  for (std::size_t i = 0; i < 100 && i < trips->size(); ++i) {
    const TaxiTrip& t = (*trips)[i];
    if (i % 2 == 0) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      Result<RideId> ride = xar.CreateRide(offer);
      if (ride.ok()) last_ride = *ride;
    } else {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;
      matches_found += xar.Search(req).empty() ? 0 : 1;
    }
  }
  std::printf("runtime: %zu rides created, %zu of 50 requests matched\n",
              xar.NumRides(), matches_found);

  // Export everything for visual inspection.
  GeoJsonWriter geo;
  geo.AddRoadNetwork(*graph);
  geo.AddLandmarks(region);
  if (last_ride.valid()) geo.AddRide(*graph, *xar.GetRide(last_ride));
  if (!geo.WriteTo(map_path).ok()) return 1;
  std::printf("map with %zu features written to %s\n", geo.NumFeatures(),
              map_path);
  return 0;
}
