// Multi-modal trip planning with ride-share integration (paper Section IX):
// plans a public-transport journey, then shows XAR improving it in Aider
// mode (fixing infeasible segments) and Enhancer mode (probing all segment
// combinations for hop/time improvements).

#include <cstdio>

#include "mmtp/integration.h"
#include "mmtp/trip_planner.h"
#include "transit/network_generator.h"
#include "workload/trip_generator.h"
#include "xar/xar.h"

namespace {

const char* ModeName(xar::LegMode mode) {
  switch (mode) {
    case xar::LegMode::kWalk:
      return "walk";
    case xar::LegMode::kTransit:
      return "transit";
    case xar::LegMode::kRideShare:
      return "rideshare";
    case xar::LegMode::kTaxi:
      return "taxi";
  }
  return "?";
}

void PrintJourney(const char* title, const xar::Journey& j) {
  std::printf("%s (travel %.1f min, walk %.0f m, wait %.1f min, %d hops)\n",
              title, j.TravelTimeS() / 60.0, j.WalkMeters(),
              j.WaitTimeS() / 60.0, j.Hops());
  for (const xar::JourneyLeg& leg : j.legs) {
    char t0[16], t1[16];
    xar::FormatTimeOfDay(leg.start_s, t0);
    xar::FormatTimeOfDay(leg.arrival_s, t1);
    std::printf("  %s-%s  %-9s %s\n", t0, t1, ModeName(leg.mode),
                leg.description.c_str());
  }
}

}  // namespace

int main() {
  using namespace xar;

  CityOptions city_options;
  city_options.rows = 24;
  city_options.cols = 24;
  RoadGraph graph = GenerateCity(city_options);
  SpatialNodeIndex spatial(graph);
  DiscretizationOptions disc;
  disc.landmarks.num_candidates = 400;
  RegionIndex region = RegionIndex::Build(graph, spatial, disc);
  GraphOracle oracle(graph);
  XarSystem xar(graph, spatial, region, oracle);

  // A synthetic transit network (subway trunks + bus corridors) and planner.
  Timetable timetable = GenerateTransitNetwork(graph.bounds(), {});
  TripPlanner planner(timetable);
  std::printf("transit: %zu stops, %zu routes, %zu connections\n\n",
              timetable.stops().size(), timetable.routes().size(),
              timetable.connections().size());

  // Seed ride-share supply: commuters driving across town around 08:00.
  WorkloadOptions workload;
  workload.num_trips = 3000;
  for (const TaxiTrip& t : GenerateTrips(graph.bounds(), workload)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }
  std::printf("ride-share supply: %zu active rides\n\n",
              xar.NumActiveRides());

  // A commuter's trip at 08:00 from a corner of town to the far side.
  const BoundingBox& b = graph.bounds();
  LatLng origin{b.min_lat + 0.12 * (b.max_lat - b.min_lat),
                b.min_lng + 0.18 * (b.max_lng - b.min_lng)};
  LatLng destination{b.min_lat + 0.85 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.8 * (b.max_lng - b.min_lng)};

  Journey plan = planner.PlanTrip(origin, destination, 8 * 3600);
  if (!plan.feasible) {
    std::printf("no transit plan found\n");
    return 1;
  }
  PrintJourney("PT-only plan", plan);

  // A picky commuter: anything over 400 m of walking or 2 min of waiting in
  // one segment is uncomfortable — XAR should fix those legs.
  IntegrationOptions comfort;
  comfort.infeasible_walk_m = 400.0;
  comfort.infeasible_wait_s = 120.0;
  XarMmtpIntegration integration(planner, xar, comfort);
  IntegrationResult aided = integration.Aid(plan, RequestId(900001));
  std::printf("\nAider mode: probed %zu infeasible segment(s), replaced %zu\n",
              aided.segments_probed, aided.segments_replaced);
  if (aided.improved) PrintJourney("aided plan", aided.journey);

  IntegrationResult enhanced = integration.Enhance(plan, RequestId(900002));
  std::printf("\nEnhancer mode: probed %zu segment combination(s), %s\n",
              enhanced.segments_probed,
              enhanced.improved ? "improved the plan" : "no improvement");
  if (enhanced.improved) PrintJourney("enhanced plan", enhanced.journey);
  return 0;
}
