// Pre-processing snapshot workflow: build the region discretization once,
// save it (and the road graph) to disk, and restart the runtime from the
// snapshot without re-running landmark extraction / clustering — the
// deployment flow the paper's "pre-processing needs to be done once per
// region" implies.

#include <cstdio>

#include "common/clock.h"
#include "graph/serialization.h"
#include "xar/xar.h"

int main() {
  using namespace xar;
  const char* graph_path = "/tmp/xar_city.graph";
  const char* region_path = "/tmp/xar_city.region";

  // --- First run: build everything and snapshot it -----------------------
  {
    Stopwatch build_timer;
    CityOptions copt;
    copt.rows = 24;
    copt.cols = 24;
    RoadGraph graph = GenerateCity(copt);
    SpatialNodeIndex spatial(graph);
    DiscretizationOptions dopt;
    dopt.landmarks.num_candidates = 400;
    RegionIndex region = RegionIndex::Build(graph, spatial, dopt);
    std::printf("pre-processing: %zu landmarks -> %zu clusters in %.2f s\n",
                region.landmarks().size(), region.NumClusters(),
                build_timer.ElapsedSeconds());

    Status gs = SaveRoadGraph(graph, graph_path);
    Status rs = region.Save(region_path);
    if (!gs.ok() || !rs.ok()) {
      std::printf("snapshot failed: %s / %s\n", gs.ToString().c_str(),
                  rs.ToString().c_str());
      return 1;
    }
    std::printf("snapshots written: %s, %s\n", graph_path, region_path);
  }

  // --- Second run: restart from the snapshots ----------------------------
  Stopwatch restore_timer;
  Result<RoadGraph> graph = LoadRoadGraph(graph_path);
  if (!graph.ok()) {
    std::printf("graph load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  Result<RegionIndex> region = RegionIndex::Load(region_path);
  if (!region.ok()) {
    std::printf("region load failed: %s\n",
                region.status().ToString().c_str());
    return 1;
  }
  SpatialNodeIndex spatial(*graph);
  GraphOracle oracle(*graph);
  XarSystem xar(*graph, spatial, *region, oracle);
  std::printf("restored runtime in %.3f s (%zu clusters, epsilon %.0f m)\n",
              restore_timer.ElapsedSeconds(), region->NumClusters(),
              region->epsilon());

  // Prove the restored system serves traffic.
  const BoundingBox& b = graph->bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.15 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.15 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.85 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.85 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 9 * 3600;
  Result<RideId> ride = xar.CreateRide(offer);
  if (!ride.ok()) {
    std::printf("create failed on restored system\n");
    return 1;
  }
  RideRequest req;
  req.id = RequestId(1);
  req.source = {b.min_lat + 0.4 * (b.max_lat - b.min_lat),
                b.min_lng + 0.4 * (b.max_lng - b.min_lng)};
  req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  req.earliest_departure_s = 9 * 3600;
  req.latest_departure_s = 9 * 3600 + 1800;
  std::printf("restored system search: %zu match(es)\n",
              xar.Search(req).size());
  return 0;
}
