// Quickstart: build a city, discretize it, offer a ride, search, book, and
// track — the minimal end-to-end use of the XAR public API.

#include <cstdio>

#include "xar/xar.h"

int main() {
  using namespace xar;

  // 1. A road network. Real deployments load OSM; here we synthesize a
  //    Manhattan-style city (~5 km x 5 km).
  CityOptions city_options;
  city_options.rows = 20;
  city_options.cols = 20;
  RoadGraph graph = GenerateCity(city_options);
  SpatialNodeIndex spatial(graph);
  std::printf("city: %zu nodes, %zu edges\n", graph.NumNodes(),
              graph.NumEdges());

  // 2. Pre-processing (paper Section IV-V): grids -> landmarks -> clusters.
  //    delta = 250 m gives the epsilon = 4*delta = 1 km guarantee.
  DiscretizationOptions disc;
  disc.delta_m = 250.0;
  disc.landmarks.num_candidates = 300;
  RegionIndex region = RegionIndex::Build(graph, spatial, disc);
  std::printf("discretization: %zu landmarks, %zu clusters (epsilon=%.0fm)\n",
              region.landmarks().size(), region.NumClusters(),
              region.epsilon());

  // 3. The runtime: a routing oracle (used only at create/book time) and
  //    the XAR system itself. XarOptions::routing_backend picks the
  //    shortest-path backend — contraction hierarchies by default; try
  //    RoutingBackendKind::kAStar for zero preprocessing.
  XarOptions options;
  GraphOracle oracle(graph, /*cache_capacity=*/1 << 16,
                     options.routing_backend, options.BackendOptions());
  XarSystem xar(graph, spatial, region, oracle, options);
  std::printf("routing backend: %s\n", oracle.backend_name());

  // 4. A driver offers a ride across town at 08:00.
  const BoundingBox& b = graph.bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  Result<RideId> ride = xar.CreateRide(offer);
  if (!ride.ok()) {
    std::printf("create failed: %s\n", ride.status().ToString().c_str());
    return 1;
  }
  std::printf("ride #%u created: %.1f km, %zu pass-through clusters\n",
              ride->value(), xar.GetRide(*ride)->route.length_m / 1000.0,
              xar.ride_index().RegistrationOf(*ride)->pass_throughs.size());

  // 5. A commuter along the way searches for a shared ride. The search is
  //    pure index probing — no shortest paths are computed.
  RideRequest request;
  request.id = RequestId(1);
  request.source = {b.min_lat + 0.4 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.4 * (b.max_lng - b.min_lng)};
  request.destination = {b.min_lat + 0.75 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.75 * (b.max_lng - b.min_lng)};
  request.earliest_departure_s = 8 * 3600;
  request.latest_departure_s = 8 * 3600 + 1800;

  std::vector<RideMatch> matches = xar.Search(request);
  std::printf("search: %zu match(es)\n", matches.size());
  if (matches.empty()) return 0;
  const RideMatch& best = matches.front();
  std::printf("  best: ride #%u, walk %.0f m, pickup ETA %+.0f s, detour est %.0f m\n",
              best.ride.value(), best.TotalWalkM(),
              best.eta_source_s - request.earliest_departure_s,
              best.detour_estimate_m);

  // 6. Book it. Booking splices the route with at most 4 shortest paths.
  Result<BookingRecord> booking = xar.Book(best.ride, request, best);
  if (!booking.ok()) {
    std::printf("booking failed: %s\n", booking.status().ToString().c_str());
    return 1;
  }
  std::printf("booked: actual detour %.0f m (estimate %.0f m), %zu shortest paths\n",
              booking->actual_detour_m, booking->estimated_detour_m,
              booking->shortest_path_computations);

  // 7. Time passes; tracking retires the clusters the ride has crossed.
  xar.AdvanceTime(booking->pickup_eta_s + 60);
  std::printf("after pickup: %zu pass-through clusters still ahead\n",
              xar.ride_index().RegistrationOf(*ride)->pass_throughs.size());
  return 0;
}
