// Interactive XAR shell: builds a city + discretization, then reads protocol
// commands from stdin (one per line) and prints responses — the quickest way
// to poke at the system by hand. `HELP` lists the commands; EOF exits.
//
// Example session:
//   CREATE 40.7100 -74.0150 40.7550 -73.9700 28800
//   SEARCH 1 40.7250 -74.0000 40.7450 -73.9800 28800 30600
//   BOOK 1 0
//   STATS

#include <cstdio>
#include <cstdlib>
#include <string>

#include "xar/command_server.h"
#include "xar/xar.h"

int main() {
  using namespace xar;
  CityOptions copt;
  copt.rows = 24;
  copt.cols = 24;
  RoadGraph graph = GenerateCity(copt);
  SpatialNodeIndex spatial(graph);
  DiscretizationOptions dopt;
  dopt.landmarks.num_candidates = 400;
  RegionIndex region = RegionIndex::Build(graph, spatial, dopt);

  // XAR_ROUTING_BACKEND / XAR_MATCH_INDEX / XAR_ORACLE_CACHE /
  // XAR_PREPROCESS_THREADS override the defaults; a typo in any of them is
  // a hard error, not a silent fall-through to the default.
  XarOptions options;
  if (Status status = ApplyEnvOverrides(&options); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  GraphOracle oracle(graph, /*cache_capacity=*/1 << 16,
                     options.routing_backend, options.BackendOptions(),
                     options.oracle_cache);
  XarSystem xar(graph, spatial, region, oracle, options);
  CommandServer server(xar);

  const BoundingBox& b = graph.bounds();
  std::printf("XAR shell — city bounds lat [%.4f, %.4f], lng [%.4f, %.4f]\n",
              b.min_lat, b.max_lat, b.min_lng, b.max_lng);
  std::printf("%zu clusters, epsilon %.0f m, %s routing, %s cache, "
              "%s match index. Type HELP for commands.\n",
              region.NumClusters(), region.epsilon(), oracle.backend_name(),
              oracle.cache_policy_name(), MatchIndexName(options.match_index));

  char line[512];
  while (true) {
    std::printf("xar> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string cmd(line);
    if (cmd == "QUIT\n" || cmd == "quit\n") break;
    std::printf("%s\n", server.Execute(cmd).c_str());
  }
  return 0;
}
