// Interactive XAR shell: builds a city + discretization, then reads protocol
// commands from stdin (one per line) and prints responses — the quickest way
// to poke at the system by hand. `HELP` lists the commands; EOF exits.
//
// Example session:
//   CREATE 40.7100 -74.0150 40.7550 -73.9700 28800
//   SEARCH 1 40.7250 -74.0000 40.7450 -73.9800 28800 30600
//   BOOK 1 0
//   STATS

#include <cstdio>
#include <cstdlib>
#include <string>

#include "xar/command_server.h"
#include "xar/xar.h"

int main() {
  using namespace xar;
  CityOptions copt;
  copt.rows = 24;
  copt.cols = 24;
  RoadGraph graph = GenerateCity(copt);
  SpatialNodeIndex spatial(graph);
  DiscretizationOptions dopt;
  dopt.landmarks.num_candidates = 400;
  RegionIndex region = RegionIndex::Build(graph, spatial, dopt);

  // XAR_ROUTING_BACKEND=dijkstra|astar|alt|ch overrides the default. A typo
  // is a hard error, not a silent fall-through to the default backend.
  XarOptions options;
  if (const char* env = std::getenv("XAR_ROUTING_BACKEND")) {
    Result<RoutingBackendKind> kind = RoutingBackendFromString(env);
    if (!kind.ok()) {
      std::fprintf(stderr, "XAR_ROUTING_BACKEND: %s\n",
                   kind.status().ToString().c_str());
      return 1;
    }
    options.routing_backend = kind.value();
  }
  // XAR_PREPROCESS_THREADS=N caps the CH build parallelism (0 = all cores).
  if (const char* env = std::getenv("XAR_PREPROCESS_THREADS")) {
    options.preprocess_threads =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  // XAR_MATCH_INDEX=cluster|st_hash picks the candidate-generation index
  // behind Search; a typo is a hard error, same as the backend override.
  if (const char* env = std::getenv("XAR_MATCH_INDEX")) {
    Result<MatchIndexKind> kind = MatchIndexFromString(env);
    if (!kind.ok()) {
      std::fprintf(stderr, "XAR_MATCH_INDEX: %s\n",
                   kind.status().ToString().c_str());
      return 1;
    }
    options.match_index = kind.value();
  }
  // XAR_ORACLE_CACHE=clock|striped_lru picks the oracle's distance-cache
  // policy; a typo is a hard error, same as the backend override.
  if (const char* env = std::getenv("XAR_ORACLE_CACHE")) {
    Result<OracleCachePolicy> policy = OracleCachePolicyFromString(env);
    if (!policy.ok()) {
      std::fprintf(stderr, "XAR_ORACLE_CACHE: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    options.oracle_cache = policy.value();
  }
  GraphOracle oracle(graph, /*cache_capacity=*/1 << 16,
                     options.routing_backend, options.BackendOptions(),
                     options.oracle_cache);
  XarSystem xar(graph, spatial, region, oracle, options);
  CommandServer server(xar);

  const BoundingBox& b = graph.bounds();
  std::printf("XAR shell — city bounds lat [%.4f, %.4f], lng [%.4f, %.4f]\n",
              b.min_lat, b.max_lat, b.min_lng, b.max_lng);
  std::printf("%zu clusters, epsilon %.0f m, %s routing, %s cache, "
              "%s match index. Type HELP for commands.\n",
              region.NumClusters(), region.epsilon(), oracle.backend_name(),
              oracle.cache_policy_name(), MatchIndexName(options.match_index));

  char line[512];
  while (true) {
    std::printf("xar> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string cmd(line);
    if (cmd == "QUIT\n" || cmd == "quit\n") break;
    std::printf("%s\n", server.Execute(cmd).c_str());
  }
  return 0;
}
