#ifndef XAR_COMMON_CLOCK_H_
#define XAR_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace xar {

/// Wall-clock stopwatch for measuring operation latencies in benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Simulation time, in seconds since midnight of the simulated day.
///
/// The simulator advances this clock from request timestamps so that
/// tracking/obsolescence logic is deterministic and independent of machine
/// speed.
class VirtualClock {
 public:
  double Now() const { return now_; }
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }
  void Reset(double t = 0.0) { now_ = t; }

 private:
  double now_ = 0.0;
};

/// Formats seconds-since-midnight as "HH:MM:SS" (wraps past 24h).
inline void FormatTimeOfDay(double seconds, char out[16]) {
  std::int64_t s = static_cast<std::int64_t>(seconds);
  std::int64_t h = (s / 3600) % 24;
  std::int64_t m = (s / 60) % 60;
  std::int64_t sec = s % 60;
  out[0] = static_cast<char>('0' + h / 10);
  out[1] = static_cast<char>('0' + h % 10);
  out[2] = ':';
  out[3] = static_cast<char>('0' + m / 10);
  out[4] = static_cast<char>('0' + m % 10);
  out[5] = ':';
  out[6] = static_cast<char>('0' + sec / 10);
  out[7] = static_cast<char>('0' + sec % 10);
  out[8] = '\0';
}

}  // namespace xar

#endif  // XAR_COMMON_CLOCK_H_
