#ifndef XAR_COMMON_ENUM_OPTION_H_
#define XAR_COMMON_ENUM_OPTION_H_

#include <initializer_list>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xar {

/// One accepted spelling of a user-facing enum option.
template <typename T>
struct EnumOption {
  std::string_view name;
  T value;
};

/// Uniform parser behind every *FromString helper (RoutingBackendFromString,
/// MatchIndexFromString, OracleCachePolicyFromString, ...): matches `value`
/// against the accepted spellings and, on an unknown name, returns one
/// InvalidArgument shape that names the option, echoes the typo and lists
/// the valid spellings:
///
///   unknown <option> "<value>" (valid: a, b, c)
///
/// Use it wherever the name comes from user input (CLI flags, environment
/// variables, config files) so a typo is a hard error, never a silent
/// fall-through to a default.
template <typename T>
Result<T> ParseEnumOption(std::string_view option, std::string_view value,
                          std::initializer_list<EnumOption<T>> entries) {
  for (const EnumOption<T>& entry : entries) {
    if (value == entry.name) return entry.value;
  }
  std::string message;
  message.reserve(64);
  message += "unknown ";
  message += option;
  message += " \"";
  message += value;
  message += "\" (valid: ";
  bool first = true;
  for (const EnumOption<T>& entry : entries) {
    if (!first) message += ", ";
    message += entry.name;
    first = false;
  }
  message += ")";
  return Status::InvalidArgument(std::move(message));
}

}  // namespace xar

#endif  // XAR_COMMON_ENUM_OPTION_H_
