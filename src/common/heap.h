#ifndef XAR_COMMON_HEAP_H_
#define XAR_COMMON_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace xar {

/// Indexed binary min-heap with decrease-key, keyed by dense element ids
/// in [0, capacity). The workhorse priority queue for Dijkstra variants:
/// avoids the duplicate-entry pattern of std::priority_queue and gives
/// O(log n) DecreaseKey.
class IndexedMinHeap {
 public:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  explicit IndexedMinHeap(std::size_t capacity)
      : pos_(capacity, kNone), keys_(capacity, 0.0) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool Contains(std::size_t id) const { return pos_[id] != kNone; }
  double KeyOf(std::size_t id) const { return keys_[id]; }

  /// Inserts `id` with `key`; id must not already be present.
  void Push(std::size_t id, double key) {
    assert(!Contains(id));
    keys_[id] = key;
    pos_[id] = heap_.size();
    heap_.push_back(id);
    SiftUp(heap_.size() - 1);
  }

  /// Lowers the key of a present `id` to `key` (no-op if not lower).
  void DecreaseKey(std::size_t id, double key) {
    assert(Contains(id));
    if (key >= keys_[id]) return;
    keys_[id] = key;
    SiftUp(pos_[id]);
  }

  /// Push if absent, otherwise DecreaseKey.
  void PushOrDecrease(std::size_t id, double key) {
    if (Contains(id)) {
      DecreaseKey(id, key);
    } else {
      Push(id, key);
    }
  }

  /// Removes and returns the id with the minimum key.
  std::size_t PopMin() {
    assert(!empty());
    std::size_t top = heap_.front();
    std::size_t last = heap_.back();
    heap_.pop_back();
    pos_[top] = kNone;
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last] = 0;
      SiftDown(0);
    }
    return top;
  }

  double MinKey() const {
    assert(!empty());
    return keys_[heap_.front()];
  }

  /// Removes all entries; O(size) not O(capacity).
  void Clear() {
    for (std::size_t id : heap_) pos_[id] = kNone;
    heap_.clear();
  }

  /// Bytes held by the heap's arrays.
  std::size_t MemoryFootprint() const {
    return (heap_.capacity() + pos_.capacity()) * sizeof(std::size_t) +
           keys_.capacity() * sizeof(double);
  }

 private:
  void SiftUp(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (keys_[heap_[parent]] <= keys_[heap_[i]]) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    for (;;) {
      std::size_t l = 2 * i + 1;
      std::size_t r = l + 1;
      std::size_t smallest = i;
      if (l < heap_.size() && keys_[heap_[l]] < keys_[heap_[smallest]])
        smallest = l;
      if (r < heap_.size() && keys_[heap_[r]] < keys_[heap_[smallest]])
        smallest = r;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  void Swap(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::vector<std::size_t> heap_;  // heap of ids
  std::vector<std::size_t> pos_;   // id -> heap position or kNone
  std::vector<double> keys_;       // id -> key
};

}  // namespace xar

#endif  // XAR_COMMON_HEAP_H_
