#ifndef XAR_COMMON_IDS_H_
#define XAR_COMMON_IDS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace xar {

/// A strongly-typed integral identifier. Distinct `Tag` types make NodeId,
/// ClusterId, RideId, ... mutually unassignable while staying trivially
/// copyable and hashable (usable as vector indices via value()).
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalidValue =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() : value_(kInvalidValue) {}
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  static constexpr StrongId Invalid() { return StrongId(); }

  constexpr underlying_type value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

 private:
  underlying_type value_;
};

struct NodeTag {};
struct EdgeTag {};
struct GridTag {};
struct LandmarkTag {};
struct ClusterTag {};
struct RideTag {};
struct RequestTag {};
struct StopTag {};
struct RouteTag {};
struct TripTag {};

using NodeId = StrongId<NodeTag>;          ///< Road-graph vertex.
using EdgeId = StrongId<EdgeTag>;          ///< Road-graph edge.
using GridId = StrongId<GridTag>;          ///< 100m x 100m grid cell.
using LandmarkId = StrongId<LandmarkTag>;  ///< Point of interest.
using ClusterId = StrongId<ClusterTag>;    ///< Set of landmarks (Def. 3).
using RideId = StrongId<RideTag>;          ///< Ride offer.
using RequestId = StrongId<RequestTag>;    ///< Ride request.
using StopId = StrongId<StopTag>;          ///< Transit stop.
using RouteId = StrongId<RouteTag>;        ///< Transit route.
using TripId = StrongId<TripTag>;          ///< Transit trip (vehicle run).

}  // namespace xar

namespace std {
template <typename Tag>
struct hash<xar::StrongId<Tag>> {
  size_t operator()(xar::StrongId<Tag> id) const noexcept {
    return std::hash<typename xar::StrongId<Tag>::underlying_type>()(
        id.value());
  }
};
}  // namespace std

#endif  // XAR_COMMON_IDS_H_
