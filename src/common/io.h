#ifndef XAR_COMMON_IO_H_
#define XAR_COMMON_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace xar {

/// Minimal binary file writer for snapshotting pre-processing artifacts
/// (road graphs, region indexes). Host-endian, POD-only: snapshots are a
/// same-machine cache of expensive computation, not an interchange format.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}
  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return file_ != nullptr && !error_; }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return;
    if (std::fwrite(&value, sizeof(T), 1, file_) != 1) error_ = true;
  }

  void WriteU64(std::uint64_t v) { Write(v); }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(values.size());
    if (!ok() || values.empty()) return;
    if (std::fwrite(values.data(), sizeof(T), values.size(), file_) !=
        values.size()) {
      error_ = true;
    }
  }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    if (!ok() || s.empty()) return;
    if (std::fwrite(s.data(), 1, s.size(), file_) != s.size()) error_ = true;
  }

  /// Flushes and closes; returns the accumulated I/O status.
  Status Close() {
    if (file_ == nullptr) return Status::Internal("open failed");
    bool write_error = error_ || std::fclose(file_) != 0;
    file_ = nullptr;
    if (write_error) return Status::Internal("write failed");
    return Status::OK();
  }

 private:
  std::FILE* file_;
  bool error_ = false;
};

/// Counterpart reader; every accessor reports failure via ok().
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {}
  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  bool ok() const { return file_ != nullptr && !error_; }

  template <typename T>
  void Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return;
    if (std::fread(value, sizeof(T), 1, file_) != 1) error_ = true;
  }

  std::uint64_t ReadU64() {
    std::uint64_t v = 0;
    Read(&v);
    return v;
  }

  template <typename T>
  void ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = ReadU64();
    if (!ok()) return;
    // Sanity cap: refuse absurd sizes from corrupt files (16M elements).
    if (n > (1ULL << 24)) {
      error_ = true;
      return;
    }
    values->resize(n);
    if (n == 0) return;
    if (std::fread(values->data(), sizeof(T), n, file_) != n) error_ = true;
  }

  void ReadString(std::string* s) {
    std::uint64_t n = ReadU64();
    if (!ok() || n > (1ULL << 24)) {
      error_ = true;
      return;
    }
    s->resize(n);
    if (n == 0) return;
    if (std::fread(s->data(), 1, n, file_) != n) error_ = true;
  }

 private:
  std::FILE* file_;
  bool error_ = false;
};

}  // namespace xar

#endif  // XAR_COMMON_IO_H_
