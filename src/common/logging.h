#ifndef XAR_COMMON_LOGGING_H_
#define XAR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace xar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log-line collector; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace xar

#define XAR_LOG(level)                                            \
  ::xar::internal_logging::LogMessage(::xar::LogLevel::k##level, \
                                      __FILE__, __LINE__)

/// Fatal-on-false invariant check, active in all build types.
#define XAR_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      XAR_LOG(Error) << "CHECK failed: " #cond;                       \
      ::std::abort();                                                 \
    }                                                                 \
  } while (false)

#endif  // XAR_COMMON_LOGGING_H_
