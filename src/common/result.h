#ifndef XAR_COMMON_RESULT_H_
#define XAR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xar {

/// A value-or-status holder, in the spirit of absl::StatusOr / arrow::Result.
///
/// Invariant: exactly one of {value present, status non-OK} holds. A default
/// constructed Result is an Internal error ("uninitialized").
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  /// Implicit construction from a value — mirrors StatusOr so that
  /// `return some_value;` works in functions returning Result<T>.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a (non-OK) status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xar

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define XAR_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto XAR_CONCAT_(_xar_res_, __LINE__) = (expr);        \
  if (!XAR_CONCAT_(_xar_res_, __LINE__).ok())            \
    return XAR_CONCAT_(_xar_res_, __LINE__).status();    \
  lhs = std::move(XAR_CONCAT_(_xar_res_, __LINE__)).value()

#define XAR_CONCAT_INNER_(a, b) a##b
#define XAR_CONCAT_(a, b) XAR_CONCAT_INNER_(a, b)

#endif  // XAR_COMMON_RESULT_H_
