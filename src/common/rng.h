#ifndef XAR_COMMON_RNG_H_
#define XAR_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace xar {

/// Deterministic, fast pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component in the library (workload generation, landmark
/// sampling, synthetic city generation) takes an explicit `Rng&` so that
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n) {
    assert(n > 0);
    return NextU64() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextIndex(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda) {
    assert(lambda > 0);
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int Poisson(double mean) {
    assert(mean >= 0);
    double l = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }

  /// Samples an index with probability proportional to weights[i].
  /// Requires a non-empty vector with non-negative entries summing to > 0.
  std::size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double x = NextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  std::uint64_t state_;
};

}  // namespace xar

#endif  // XAR_COMMON_RNG_H_
