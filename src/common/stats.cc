#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace xar {

void StatAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void PercentileTracker::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void PercentileTracker::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double PercentileTracker::min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double PercentileTracker::max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double PercentileTracker::Percentile(double p) const {
  assert(!samples_.empty());
  EnsureSorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Nearest-rank: smallest element with cumulative frequency >= p%.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

double PercentileTracker::FractionAtMost(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

const std::vector<double>& PercentileTracker::sorted() const {
  EnsureSorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins + 1, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x >= hi_) {
    ++counts_[bins()];
    return;
  }
  double pos = (x - lo_) / width_;
  std::size_t i = pos <= 0 ? 0 : static_cast<std::size_t>(pos);
  if (i >= bins()) i = bins() - 1;
  ++counts_[i];
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::ToString(int bar_width) const {
  std::string out;
  std::size_t maxc = 1;
  for (std::size_t c : counts_) maxc = std::max(maxc, c);
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                               static_cast<double>(maxc) * bar_width);
    if (i < bins()) {
      std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8zu ",
                    BucketLow(i), BucketHigh(i), counts_[i]);
    } else {
      std::snprintf(line, sizeof(line), "[%10.3f,        inf) %8zu ", hi_,
                    counts_[i]);
    }
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace xar
