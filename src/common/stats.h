#ifndef XAR_COMMON_STATS_H_
#define XAR_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace xar {

/// Streaming accumulator for count / mean / min / max / stddev (Welford).
class StatAccumulator {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples to answer exact percentile and CDF queries.
///
/// Used by the benchmark harness to report the same percentile series the
/// paper's figures plot (e.g., Fig. 3a detour CDF, Fig. 4a search-time
/// percentiles). Samples are sorted lazily on first query.
class PercentileTracker {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact p-th percentile, p in [0, 100], by nearest-rank. Requires samples.
  double Percentile(double p) const;

  /// Fraction of samples <= x, in [0, 1].
  double FractionAtMost(double x) const;

  /// All samples in ascending order.
  const std::vector<double>& sorted() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t count() const { return total_; }
  /// Count in bucket i (i == bins() means overflow, underflow clamps to 0).
  std::size_t BucketCount(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size() - 1; }
  double BucketLow(std::size_t i) const;
  double BucketHigh(std::size_t i) const;

  /// Multi-line text rendering with bar glyphs, for bench output.
  std::string ToString(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // bins + 1 overflow slot
};

}  // namespace xar

#endif  // XAR_COMMON_STATS_H_
