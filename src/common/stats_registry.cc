#include "common/stats_registry.h"

#include <algorithm>
#include <utility>

namespace xar {

StatsMetric StatsMetric::Counter(std::string name, std::uint64_t v) {
  return {std::move(name), Kind::kCounter, std::to_string(v)};
}

StatsMetric StatsMetric::Gauge(std::string name, double v, int precision) {
  return {std::move(name), Kind::kGauge, TextTable::Num(v, precision)};
}

StatsMetric StatsMetric::Text(std::string name, std::string v) {
  return {std::move(name), Kind::kText, std::move(v)};
}

TextTable StatsSectionTable(const StatsSection& section) {
  std::vector<std::string> headers;
  if (!section.rows.empty()) {
    headers.reserve(section.rows.front().size());
    for (const StatsMetric& m : section.rows.front()) {
      headers.push_back(m.name);
    }
  }
  TextTable table(std::move(headers));
  for (const std::vector<StatsMetric>& row : section.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const StatsMetric& m : row) cells.push_back(m.value);
    table.AddRow(std::move(cells));
  }
  return table;
}

void StatsRegistry::Register(std::string section, Provider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.name == section) {
      entry.provider = std::move(provider);
      return;
    }
  }
  entries_.push_back(Entry{std::move(section), std::move(provider)});
}

void StatsRegistry::Unregister(std::string_view section) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& entry) {
                                  return entry.name == section;
                                }),
                 entries_.end());
}

std::optional<StatsSection> StatsRegistry::Snapshot(
    std::string_view section) const {
  Provider provider;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.name == section) {
        provider = entry.provider;
        break;
      }
    }
  }
  // Invoke outside the lock: providers may take subsystem locks of their
  // own, and snapshots must never serialize against registration.
  if (!provider) return std::nullopt;
  return provider();
}

std::vector<StatsSection> StatsRegistry::SnapshotAll() const {
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    providers.reserve(entries_.size());
    for (const Entry& entry : entries_) providers.push_back(entry.provider);
  }
  std::vector<StatsSection> sections;
  sections.reserve(providers.size());
  for (const Provider& provider : providers) sections.push_back(provider());
  return sections;
}

std::vector<std::string> StatsRegistry::SectionNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::string StatsRegistry::RenderTables() const {
  std::string out;
  for (const StatsSection& section : SnapshotAll()) {
    if (!out.empty()) out += "\n";
    out += "[" + section.name + "]\n";
    out += StatsSectionTable(section).ToString();
  }
  return out;
}

}  // namespace xar
