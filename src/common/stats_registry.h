#ifndef XAR_COMMON_STATS_REGISTRY_H_
#define XAR_COMMON_STATS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"

namespace xar {

/// One named value inside a stats section. Values are rendered to strings
/// at snapshot time so consumers (tables, the command-server wire format,
/// JSON writers) never need to re-interpret kinds.
struct StatsMetric {
  enum class Kind {
    kCounter,  ///< monotone integral count
    kGauge,    ///< point-in-time numeric reading
    kText,     ///< identity/config string (backend name, metric name)
  };

  std::string name;
  Kind kind = Kind::kCounter;
  std::string value;

  static StatsMetric Counter(std::string name, std::uint64_t v);
  static StatsMetric Gauge(std::string name, double v, int precision = 3);
  static StatsMetric Text(std::string name, std::string v);
};

/// A named group of metrics captured at one instant, e.g. "oracle" or
/// "refresh". Sections may carry several rows (the CH preprocessing section
/// has one row per metric's hierarchy); most have exactly one.
struct StatsSection {
  std::string name;
  std::vector<std::vector<StatsMetric>> rows;

  /// Convenience for the common single-row case.
  void AddRow(std::vector<StatsMetric> metrics) {
    rows.push_back(std::move(metrics));
  }
};

/// Renders one section as an aligned table (headers = metric names). The
/// deprecated per-subsystem *StatsTable helpers are thin wrappers over
/// this, so their output format is unchanged.
TextTable StatsSectionTable(const StatsSection& section);

/// The unified stats surface (ISSUE 4): subsystems register a named
/// provider once, and every consumer — the command server's STATS verb,
/// bench summaries, ad-hoc debugging — pulls consistent snapshots from one
/// place instead of each hand-concatenating per-subsystem tables.
///
/// Providers are called at snapshot time (no background sampling) and must
/// be safe to invoke from the snapshotting thread; they typically read
/// atomics or take the owning subsystem's own lock. The registry's mutex
/// only guards the provider list, so registration and snapshots are
/// thread-safe but a provider must not call back into the registry.
class StatsRegistry {
 public:
  using Provider = std::function<StatsSection()>;

  /// Registers (or replaces) the provider for `section`. Sections render
  /// in first-registration order.
  void Register(std::string section, Provider provider);

  /// Removes a section; unknown names are ignored.
  void Unregister(std::string_view section);

  /// Snapshot of one section; nullopt if no such section is registered.
  std::optional<StatsSection> Snapshot(std::string_view section) const;

  /// Snapshots every section in registration order.
  std::vector<StatsSection> SnapshotAll() const;

  /// Registered section names, in registration order.
  std::vector<std::string> SectionNames() const;

  /// Single entry point for the human-readable surface: every section as a
  /// titled aligned table, separated by blank lines.
  std::string RenderTables() const;

 private:
  struct Entry {
    std::string name;
    Provider provider;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace xar

#endif  // XAR_COMMON_STATS_REGISTRY_H_
