#ifndef XAR_COMMON_STATUS_H_
#define XAR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace xar {

/// Error codes used across the library. Modeled after the compact set used by
/// storage engines: a small closed enum, with free-form detail messages.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Functions that can fail return a
/// `Status` (or `Result<T>`, see result.h) instead of throwing: exceptions are
/// disabled by convention in this codebase (Google style).
///
/// The OK status carries no message and allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace xar

/// Propagates a non-OK status to the caller.
#define XAR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::xar::Status _xar_st = (expr);          \
    if (!_xar_st.ok()) return _xar_st;       \
  } while (false)

#endif  // XAR_COMMON_STATUS_H_
