#include "common/table.h"

#include <cassert>
#include <cstdio>

namespace xar {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append(2, ' ');
  }
  while (!sep.empty() && sep.back() == ' ') sep.pop_back();
  out += sep + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace xar
