#ifndef XAR_COMMON_TABLE_H_
#define XAR_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace xar {

/// Aligned plain-text table writer used by the benchmark harness to print
/// the rows/series the paper's tables and figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  /// Renders with column alignment and a separator under the header.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xar

#endif  // XAR_COMMON_TABLE_H_
