#ifndef XAR_COMMON_THREAD_POOL_H_
#define XAR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xar {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// Used by the serving layer to fan independent read-path work (search
/// batches, simulator waves, throughput benches) across cores. Tasks must not
/// block on other tasks submitted to the same pool (no nesting); everything
/// the XAR read path runs through it is a leaf computation, so the simple
/// single-queue design is enough.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions propagate
  /// through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(0) .. body(n-1) across the pool and blocks until all are
  /// done. Iterations are claimed from a shared counter, so uneven per-item
  /// cost balances automatically. The calling thread participates, which
  /// keeps single-threaded pools deadlock-free and 1-core hosts efficient.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto drain = [next, n, &body] {
      for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
           i < n; i = next->fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    };
    std::vector<std::future<void>> helpers;
    std::size_t num_helpers = std::min(size(), n);
    helpers.reserve(num_helpers);
    for (std::size_t t = 0; t < num_helpers; ++t) {
      helpers.push_back(Submit(drain));
    }
    drain();
    for (std::future<void>& helper : helpers) helper.get();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace xar

#endif  // XAR_COMMON_THREAD_POOL_H_
