#include "discretize/distance_matrix.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

#include "common/clock.h"

namespace xar {

DistanceMatrix DistanceMatrix::FromGraph(const RoadGraph& graph,
                                         const std::vector<Landmark>& landmarks,
                                         RoutingBackend* backend) {
  Stopwatch timer;
  DistanceMatrix m;
  m.n_ = landmarks.size();

  std::vector<NodeId> targets;
  targets.reserve(m.n_);
  for (const Landmark& lm : landmarks) targets.push_back(lm.node);

  std::unique_ptr<RoutingBackend> owned;
  if (backend == nullptr) {
    owned = MakeRoutingBackend(RoutingBackendKind::kDijkstra, graph);
    backend = owned.get();
  }
  // One batch covers every row: bucket CH scans the target buckets once per
  // landmark; the Dijkstra fallback runs its native one-to-many per row,
  // exactly the rows the build always computed.
  m.d_ = backend->ManyToMany(targets, targets, Metric::kDriveDistance);
  // Symmetrize with max; see class comment.
  for (std::size_t i = 0; i < m.n_; ++i) {
    m.d_[i * m.n_ + i] = 0.0;
    for (std::size_t j = i + 1; j < m.n_; ++j) {
      double v = std::max(m.d_[i * m.n_ + j], m.d_[j * m.n_ + i]);
      m.d_[i * m.n_ + j] = v;
      m.d_[j * m.n_ + i] = v;
    }
  }
  m.build_millis_ = timer.ElapsedMillis();
  return m;
}

DistanceMatrix DistanceMatrix::FromPoints(const std::vector<LatLng>& points) {
  DistanceMatrix m;
  m.n_ = points.size();
  m.d_.assign(m.n_ * m.n_, 0.0);
  for (std::size_t i = 0; i < m.n_; ++i) {
    for (std::size_t j = i + 1; j < m.n_; ++j) {
      double v = HaversineMeters(points[i], points[j]);
      m.d_[i * m.n_ + j] = v;
      m.d_[j * m.n_ + i] = v;
    }
  }
  return m;
}

DistanceMatrix DistanceMatrix::FromValues(std::size_t n,
                                          std::vector<double> values) {
  assert(values.size() == n * n);
  DistanceMatrix m;
  m.n_ = n;
  m.d_ = std::move(values);
  return m;
}

double DistanceMatrix::MaxValue() const {
  double mx = 0.0;
  for (double v : d_) {
    if (v != std::numeric_limits<double>::infinity()) mx = std::max(mx, v);
  }
  return mx;
}

}  // namespace xar
