#ifndef XAR_DISCRETIZE_DISTANCE_MATRIX_H_
#define XAR_DISCRETIZE_DISTANCE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "discretize/landmark.h"
#include "geo/latlng.h"
#include "graph/road_graph.h"
#include "graph/routing_backend.h"

namespace xar {

/// Dense symmetric pairwise-distance matrix over a point set — the metric
/// space the clustering algorithms (Gonzalez GREEDY, GREEDYSEARCH, exact
/// solvers) operate on.
///
/// When built from a road graph, directed driving distances are symmetrized
/// with max(d(i,j), d(j,i)), which keeps the triangle inequality and makes
/// every clustering guarantee conservative (a cluster feasible under the
/// symmetrized metric is feasible in both driving directions).
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Pairwise driving distances between landmark nodes, symmetrized by max.
  /// All rows come from ONE `backend->ManyToMany` batch (bucket CH when the
  /// backend is a prepared CH backend); when `backend` is null an internal
  /// Dijkstra backend is used, whose batch is the same one-to-many per row
  /// the build always ran — byte-identical to the historical behaviour.
  static DistanceMatrix FromGraph(const RoadGraph& graph,
                                  const std::vector<Landmark>& landmarks,
                                  RoutingBackend* backend = nullptr);

  /// Straight-line distances between the given points (test helper and
  /// pure-metric experiments).
  static DistanceMatrix FromPoints(const std::vector<LatLng>& points);

  /// Arbitrary explicit matrix (row-major, n*n). Caller must supply a
  /// symmetric matrix with zero diagonal.
  static DistanceMatrix FromValues(std::size_t n, std::vector<double> values);

  std::size_t size() const { return n_; }
  double At(std::size_t i, std::size_t j) const { return d_[i * n_ + j]; }
  double MaxValue() const;

  /// Wall time FromGraph spent computing the rows (0 for the other
  /// factories). Surfaced as RefreshStats::last_matrix_ms.
  double build_millis() const { return build_millis_; }

  /// Row-major backing store (n*n values); exposed for serialization.
  const std::vector<double>& values() const { return d_; }

  std::size_t MemoryFootprint() const {
    return d_.capacity() * sizeof(double) + sizeof(*this);
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;
  double build_millis_ = 0.0;
};

}  // namespace xar

#endif  // XAR_DISCRETIZE_DISTANCE_MATRIX_H_
