#include "discretize/exact_cluster.h"

#include <cassert>
#include <vector>

namespace xar {
namespace {

struct PartitionSearch {
  const DistanceMatrix& metric;
  double delta;
  std::size_t n;
  std::size_t best;
  // cliques[c] = member point indices of clique c in the current partial
  // partition.
  std::vector<std::vector<std::size_t>> cliques;

  bool Compatible(std::size_t v, const std::vector<std::size_t>& clique) {
    for (std::size_t u : clique) {
      if (metric.At(u, v) > delta) return false;
    }
    return true;
  }

  void Recurse(std::size_t v) {
    if (cliques.size() >= best) return;  // cannot improve
    if (v == n) {
      best = cliques.size();
      return;
    }
    // Try putting v into each clique that exists at this depth. Index-based
    // iteration: deeper recursion appends (and removes) a new clique, which
    // may reallocate the outer vector.
    std::size_t existing = cliques.size();
    for (std::size_t c = 0; c < existing; ++c) {
      if (Compatible(v, cliques[c])) {
        cliques[c].push_back(v);
        Recurse(v + 1);
        cliques[c].pop_back();
      }
    }
    // Or open a new clique for v.
    cliques.push_back({v});
    Recurse(v + 1);
    cliques.pop_back();
  }
};

}  // namespace

std::size_t ExactClusterMinimization(const DistanceMatrix& metric,
                                     double delta) {
  std::size_t n = metric.size();
  if (n == 0) return 0;

  // Greedy first-fit upper bound: a strong initial incumbent prunes most of
  // the branch-and-bound tree.
  std::vector<std::vector<std::size_t>> greedy;
  for (std::size_t v = 0; v < n; ++v) {
    bool placed = false;
    for (auto& clique : greedy) {
      bool compatible = true;
      for (std::size_t u : clique) {
        if (metric.At(u, v) > delta) {
          compatible = false;
          break;
        }
      }
      if (compatible) {
        clique.push_back(v);
        placed = true;
        break;
      }
    }
    if (!placed) greedy.push_back({v});
  }

  PartitionSearch search{metric, delta, n, greedy.size(), {}};
  search.Recurse(0);
  return search.best;
}

}  // namespace xar
