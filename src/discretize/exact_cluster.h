#ifndef XAR_DISCRETIZE_EXACT_CLUSTER_H_
#define XAR_DISCRETIZE_EXACT_CLUSTER_H_

#include <cstddef>

#include "discretize/distance_matrix.h"

namespace xar {

/// Exact optimum of CLUSTERMINIMIZATION (paper Section V ILP): the minimum
/// number of clusters such that every point is in exactly one cluster and
/// all intra-cluster pairwise distances are <= delta. Equivalent to minimum
/// clique partition of the graph with an edge iff d(i,j) <= delta.
///
/// Branch-and-bound backtracking; exponential, intended as a *test oracle*
/// for the Theorem 6 bicriteria guarantee on instances with n <= ~18.
std::size_t ExactClusterMinimization(const DistanceMatrix& metric,
                                     double delta);

}  // namespace xar

#endif  // XAR_DISCRETIZE_EXACT_CLUSTER_H_
