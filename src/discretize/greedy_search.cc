#include "discretize/greedy_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "discretize/kcenter.h"

namespace xar {
namespace {

Clustering ClusteringFromKCenter(const DistanceMatrix& metric,
                                 const KCenterResult& kc) {
  Clustering out;
  out.clusters.resize(kc.centers.size());
  out.cluster_of.resize(metric.size());
  for (std::size_t i = 0; i < metric.size(); ++i) {
    std::size_t c = kc.assignment[i];
    out.cluster_of[i] = ClusterId(static_cast<ClusterId::underlying_type>(c));
    out.clusters[c].push_back(
        LandmarkId(static_cast<LandmarkId::underlying_type>(i)));
  }
  // Drop clusters that ended up empty (duplicate centers can cause this when
  // k approaches n), re-densifying ids.
  std::vector<std::vector<LandmarkId>> packed;
  std::vector<ClusterId> remap(out.clusters.size());
  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    if (out.clusters[c].empty()) continue;
    remap[c] =
        ClusterId(static_cast<ClusterId::underlying_type>(packed.size()));
    packed.push_back(std::move(out.clusters[c]));
  }
  for (std::size_t i = 0; i < metric.size(); ++i) {
    out.cluster_of[i] = remap[kc.assignment[i]];
  }
  out.clusters = std::move(packed);
  out.radius = kc.radius;
  out.diameter = 0.0;
  for (const auto& members : out.clusters) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        out.diameter = std::max(
            out.diameter, metric.At(members[a].value(), members[b].value()));
      }
    }
  }
  return out;
}

}  // namespace

double MeasureDiameter(const DistanceMatrix& metric,
                       const Clustering& clustering) {
  double diameter = 0.0;
  for (const auto& members : clustering.clusters) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        diameter = std::max(
            diameter, metric.At(members[a].value(), members[b].value()));
      }
    }
  }
  return diameter;
}

GreedySearchResult GreedySearchClustering(const DistanceMatrix& metric,
                                          double delta) {
  std::size_t n = metric.size();
  assert(n > 0 && delta > 0);
  GreedySearchResult result;

  // Binary search k in [1, n]: greedy radius is non-increasing in k, so the
  // predicate "radius <= 2*delta" is monotone. We run ceil(log2 n) + 1
  // probes as in the paper's description and keep the smallest feasible k.
  std::size_t lo = 1;
  std::size_t hi = n;
  std::size_t k_alg = n;  // fallback: every landmark its own cluster
  std::size_t iterations =
      static_cast<std::size_t>(std::ceil(std::log2(std::max<std::size_t>(
          n, 2)))) +
      1;
  for (std::size_t it = 0; it < iterations && lo <= hi; ++it) {
    std::size_t k = lo + (hi - lo) / 2;
    KCenterResult kc = GreedyKCenter(metric, k);
    result.probes.push_back(GreedySearchProbe{k, kc.radius});
    if (kc.radius <= 2 * delta) {
      k_alg = std::min(k_alg, k);
      if (k == 1) break;
      hi = k - 1;  // search the lower half for a smaller feasible k
    } else {
      lo = k + 1;  // infeasible: search the upper half
    }
  }

  KCenterResult final_kc = GreedyKCenter(metric, k_alg);
  result.k_alg = k_alg;
  result.clustering = ClusteringFromKCenter(metric, final_kc);
  return result;
}

}  // namespace xar
