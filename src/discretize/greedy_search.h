#ifndef XAR_DISCRETIZE_GREEDY_SEARCH_H_
#define XAR_DISCRETIZE_GREEDY_SEARCH_H_

#include <cstddef>
#include <vector>

#include "discretize/distance_matrix.h"
#include "discretize/landmark.h"

namespace xar {

/// One probe of the GREEDYSEARCH binary search: GREEDY was run with k' and
/// achieved radius delta_k (the paper's (k', δ_k') tuples).
struct GreedySearchProbe {
  std::size_t k = 0;
  double delta_k = 0.0;  ///< greedy radius achieved with k centers
};

/// Result of GREEDYSEARCH: the clustering plus the probe trace.
struct GreedySearchResult {
  Clustering clustering;
  std::vector<GreedySearchProbe> probes;  ///< one per binary-search iteration
  std::size_t k_alg = 0;                  ///< chosen number of clusters
};

/// GREEDYSEARCH (paper Section V): binary-searches k over [1, n] for
/// ceil(log2 n) iterations, calling Gonzalez GREEDY at each probe, and picks
/// the minimum probed k whose greedy radius is <= 2*delta. The returned
/// clustering satisfies the Theorem 6 bicriteria guarantee:
///   k_alg <= k_opt(delta)   and   intra-cluster diameter <= 4*delta.
///
/// If even k = n leaves some point at radius > 2*delta (impossible on a
/// proper metric, where radius at k = n is 0), every point becomes its own
/// cluster.
GreedySearchResult GreedySearchClustering(const DistanceMatrix& metric,
                                          double delta);

/// Measures the realized max pairwise intra-cluster distance of `clustering`
/// under `metric` (fills in nothing; pure query). Used to validate the 4δ
/// bound empirically.
double MeasureDiameter(const DistanceMatrix& metric,
                       const Clustering& clustering);

}  // namespace xar

#endif  // XAR_DISCRETIZE_GREEDY_SEARCH_H_
