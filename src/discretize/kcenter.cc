#include "discretize/kcenter.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xar {

KCenterResult GreedyKCenter(const DistanceMatrix& metric, std::size_t k,
                            std::size_t first_center) {
  std::size_t n = metric.size();
  assert(n > 0 && k >= 1 && first_center < n);
  k = std::min(k, n);

  KCenterResult result;
  result.centers.reserve(k);
  result.assignment.assign(n, 0);

  // dist_to_set[i] = distance of point i to its closest chosen center.
  std::vector<double> dist_to_set(n, std::numeric_limits<double>::infinity());

  std::size_t next = first_center;
  for (std::size_t c = 0; c < k; ++c) {
    result.centers.push_back(next);
    for (std::size_t i = 0; i < n; ++i) {
      double d = metric.At(next, i);
      if (d < dist_to_set[i]) {
        dist_to_set[i] = d;
        result.assignment[i] = c;
      }
    }
    // Farthest remaining point becomes the next center (lowest index wins
    // ties).
    next = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (dist_to_set[i] > dist_to_set[next]) next = i;
    }
  }

  result.radius = 0.0;
  for (double d : dist_to_set) result.radius = std::max(result.radius, d);
  return result;
}

std::vector<double> GreedyRadiusSweep(const DistanceMatrix& metric,
                                      std::size_t first_center) {
  std::size_t n = metric.size();
  assert(n > 0 && first_center < n);
  std::vector<double> radius_at;
  radius_at.reserve(n);

  std::vector<double> dist_to_set(n, std::numeric_limits<double>::infinity());
  std::size_t next = first_center;
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      dist_to_set[i] = std::min(dist_to_set[i], metric.At(next, i));
    }
    next = 0;
    double radius = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dist_to_set[i] > dist_to_set[next]) next = i;
      radius = std::max(radius, dist_to_set[i]);
    }
    radius_at.push_back(radius);
  }
  return radius_at;
}

namespace {

double RadiusForCenters(const DistanceMatrix& metric,
                        const std::vector<std::size_t>& centers) {
  double radius = 0.0;
  for (std::size_t i = 0; i < metric.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c : centers) best = std::min(best, metric.At(i, c));
    radius = std::max(radius, best);
  }
  return radius;
}

void EnumerateCenters(const DistanceMatrix& metric, std::size_t k,
                      std::size_t start, std::vector<std::size_t>& chosen,
                      double& best) {
  if (chosen.size() == k) {
    best = std::min(best, RadiusForCenters(metric, chosen));
    return;
  }
  for (std::size_t i = start; i < metric.size(); ++i) {
    chosen.push_back(i);
    EnumerateCenters(metric, k, i + 1, chosen, best);
    chosen.pop_back();
  }
}

}  // namespace

double ExactKCenterRadius(const DistanceMatrix& metric, std::size_t k) {
  assert(k >= 1);
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> chosen;
  EnumerateCenters(metric, std::min(k, metric.size()), 0, chosen, best);
  return best;
}

}  // namespace xar
