#ifndef XAR_DISCRETIZE_KCENTER_H_
#define XAR_DISCRETIZE_KCENTER_H_

#include <cstddef>
#include <vector>

#include "discretize/distance_matrix.h"

namespace xar {

/// Result of a k-center run: chosen centers, point-to-center assignment and
/// the achieved radius (max distance of any point to its center).
struct KCenterResult {
  std::vector<std::size_t> centers;     ///< indices into the metric
  std::vector<std::size_t> assignment;  ///< point -> index into `centers`
  double radius = 0.0;
};

/// Gonzalez's greedy farthest-point algorithm for METRIC K-CENTER
/// (Gonzalez 1985, the paper's GREEDY subroutine). 2-approximation on any
/// metric: achieved radius <= 2 * optimal radius.
///
/// Ties in farthest-point selection break toward the lowest index, matching
/// the paper's "lowest number in an ordering" convention.
KCenterResult GreedyKCenter(const DistanceMatrix& metric, std::size_t k,
                            std::size_t first_center = 0);

/// One farthest-point sweep producing the greedy radius for *every* k in
/// [1, n]: radius_at[k-1] is GreedyKCenter(metric, k).radius. O(n^2) total —
/// the same cost as a single full GreedyKCenter run.
std::vector<double> GreedyRadiusSweep(const DistanceMatrix& metric,
                                      std::size_t first_center = 0);

/// Exact minimum radius for k centers by exhaustive center enumeration.
/// Exponential; only for tiny test instances (n <= ~15).
double ExactKCenterRadius(const DistanceMatrix& metric, std::size_t k);

}  // namespace xar

#endif  // XAR_DISCRETIZE_KCENTER_H_
