#ifndef XAR_DISCRETIZE_LANDMARK_H_
#define XAR_DISCRETIZE_LANDMARK_H_

#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// A point of interest used as a pickup/drop-off anchor (paper Definition 2).
/// Landmarks are at least `f` meters apart after extraction filtering, and
/// each is snapped to its nearest road-network node.
struct Landmark {
  LandmarkId id;
  LatLng position;
  NodeId node;  ///< nearest road-graph node
};

/// A clustering of landmarks (paper Definition 3): each cluster is a set of
/// landmarks with bounded pairwise driving distance; every landmark belongs
/// to exactly one cluster.
struct Clustering {
  /// cluster -> member landmark ids.
  std::vector<std::vector<LandmarkId>> clusters;
  /// landmark -> owning cluster.
  std::vector<ClusterId> cluster_of;
  /// Maximum center-to-member distance achieved (k-center radius).
  double radius = 0.0;
  /// Maximum intra-cluster pairwise distance achieved (diameter).
  double diameter = 0.0;

  std::size_t NumClusters() const { return clusters.size(); }
};

}  // namespace xar

#endif  // XAR_DISCRETIZE_LANDMARK_H_
