#include "discretize/landmark_extractor.h"

#include <cmath>

#include "common/rng.h"
#include "geo/grid.h"

namespace xar {

std::vector<Landmark> ExtractLandmarks(
    const RoadGraph& graph, const SpatialNodeIndex& spatial,
    const LandmarkExtractionOptions& opt) {
  Rng rng(opt.seed);
  const BoundingBox& bounds = graph.bounds();
  LatLng center = bounds.Center();
  double half_diag = std::max(bounds.WidthMeters(), bounds.HeightMeters()) / 2;

  // Candidate POIs: uniform positions thinned by a center-biased acceptance
  // probability, then jittered off the road nodes slightly (real POIs sit
  // beside the road, not on the intersection).
  std::vector<LatLng> candidates;
  candidates.reserve(opt.num_candidates);
  while (candidates.size() < opt.num_candidates) {
    LatLng p{rng.Uniform(bounds.min_lat, bounds.max_lat),
             rng.Uniform(bounds.min_lng, bounds.max_lng)};
    double dist_frac = EquirectangularMeters(p, center) / half_diag;
    double accept = std::exp(-opt.center_bias * dist_frac);
    if (!rng.Bernoulli(accept)) continue;
    candidates.push_back(
        OffsetMeters(p, rng.Uniform(-30, 30), rng.Uniform(-30, 30)));
  }

  // Min-separation filter on straight-line distance, accelerated by grid
  // buckets sized to f.
  GridSpec buckets(bounds, std::max(opt.min_separation_f_m, 10.0));
  std::vector<std::vector<std::size_t>> bucket_members(buckets.CellCount());
  std::vector<Landmark> landmarks;
  for (const LatLng& p : candidates) {
    if (!buckets.Contains(p)) continue;
    GridId g = buckets.GridOf(p);
    bool too_close = false;
    for (GridId nb : buckets.Neighborhood(g, 1)) {
      for (std::size_t idx : bucket_members[nb.value()]) {
        if (EquirectangularMeters(p, landmarks[idx].position) <
            opt.min_separation_f_m) {
          too_close = true;
          break;
        }
      }
      if (too_close) break;
    }
    if (too_close) continue;
    Landmark lm;
    lm.id = LandmarkId(static_cast<LandmarkId::underlying_type>(
        landmarks.size()));
    lm.position = p;
    lm.node = spatial.NearestNode(p);
    bucket_members[g.value()].push_back(landmarks.size());
    landmarks.push_back(lm);
  }
  return landmarks;
}

}  // namespace xar
