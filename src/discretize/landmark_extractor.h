#ifndef XAR_DISCRETIZE_LANDMARK_EXTRACTOR_H_
#define XAR_DISCRETIZE_LANDMARK_EXTRACTOR_H_

#include <cstdint>
#include <vector>

#include "discretize/landmark.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"

namespace xar {

/// Parameters for landmark extraction.
///
/// The paper queries Google Places per 500 m temporary grid cell and prunes
/// insignificant POIs; we substitute density-skewed sampling of points near
/// road nodes (more candidates near the city center), followed by the same
/// min-separation filter `f` the paper applies.
struct LandmarkExtractionOptions {
  std::size_t num_candidates = 600;  ///< POIs sampled before filtering
  double min_separation_f_m = 250.0; ///< paper's f: min landmark spacing
  double center_bias = 1.5;          ///< >0 skews candidate density to center
  std::uint64_t seed = 11;
};

/// Samples candidate POIs and applies the min-separation filter, returning
/// landmarks with dense ids, each snapped to its nearest road node.
/// Separation is checked on straight-line distance (a lower bound on driving
/// distance, so the driving-distance separation also holds).
std::vector<Landmark> ExtractLandmarks(const RoadGraph& graph,
                                       const SpatialNodeIndex& spatial,
                                       const LandmarkExtractionOptions& options);

}  // namespace xar

#endif  // XAR_DISCRETIZE_LANDMARK_EXTRACTOR_H_
