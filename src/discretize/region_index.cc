#include "discretize/region_index.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "graph/dijkstra.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mirror of the graph with all drivable arcs reversed (walkable arcs are
/// symmetric by construction and are mirrored too, which is harmless).
/// Dijkstra from node s on the reverse graph yields distance *to* s.
RoadGraph ReverseDrivableGraph(const RoadGraph& g) {
  GraphBuilder builder;
  for (std::size_t i = 0; i < g.NumNodes(); ++i) {
    builder.AddNode(g.PositionOf(NodeId(static_cast<NodeId::underlying_type>(i))));
  }
  for (std::size_t u = 0; u < g.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : g.OutEdges(from)) {
      double speed = e.drivable && e.time_s > 0 ? e.length_m / e.time_s : 0.0;
      builder.AddArc(e.to, from, e.length_m, speed, e.drivable, e.walkable);
    }
  }
  return builder.Build();
}

}  // namespace

ClusterId RegionIndex::ClusterOfGrid(GridId g) const {
  LandmarkId lm = grid_landmark_[g.value()];
  if (!lm.valid()) return ClusterId::Invalid();
  return clustering_.cluster_of[lm.value()];
}

NodeId RegionIndex::RepresentativeNode(ClusterId c) const {
  const std::vector<LandmarkId>& members = clustering_.clusters[c.value()];
  assert(!members.empty());
  return landmarks_[members.front().value()].node;
}

std::size_t RegionIndex::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  bytes += landmarks_.capacity() * sizeof(Landmark);
  bytes += landmark_metric_.MemoryFootprint();
  bytes += cluster_dist_.capacity() * sizeof(double);
  for (const auto& members : clustering_.clusters) {
    bytes += members.capacity() * sizeof(LandmarkId);
  }
  bytes += clustering_.cluster_of.capacity() * sizeof(ClusterId);
  bytes += grid_node_.capacity() * sizeof(NodeId);
  bytes += grid_landmark_.capacity() * sizeof(LandmarkId);
  bytes += grid_landmark_drive_m_.capacity() * sizeof(double);
  bytes += walkable_offsets_.capacity() * sizeof(std::size_t);
  bytes += walkable_.capacity() * sizeof(WalkableCluster);
  return bytes;
}

RegionIndex RegionIndex::Build(const RoadGraph& graph,
                               const SpatialNodeIndex& spatial,
                               const DiscretizationOptions& options,
                               RoutingBackend* backend) {
  RegionIndex index;
  index.options_ = options;
  index.grid_ = GridSpec(graph.bounds(), options.grid_cell_m);

  // --- Tier 2: landmarks --------------------------------------------------
  index.landmarks_ = ExtractLandmarks(graph, spatial, options.landmarks);
  assert(!index.landmarks_.empty());

  // --- Tier 3: clusters via GREEDYSEARCH ----------------------------------
  index.landmark_metric_ =
      DistanceMatrix::FromGraph(graph, index.landmarks_, backend);
  GreedySearchResult gs =
      GreedySearchClustering(index.landmark_metric_, options.delta_m);
  index.clustering_ = std::move(gs.clustering);
  std::size_t m = index.clustering_.NumClusters();
  std::size_t n = index.landmarks_.size();

  // Cluster-to-cluster distance: closest landmark pair.
  index.cluster_dist_.assign(m * m, kInf);
  for (std::size_t c = 0; c < m; ++c) index.cluster_dist_[c * m + c] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t ci = index.clustering_.cluster_of[i].value();
    for (std::size_t j = i + 1; j < n; ++j) {
      std::size_t cj = index.clustering_.cluster_of[j].value();
      if (ci == cj) continue;
      double d = index.landmark_metric_.At(i, j);
      double& slot_ij = index.cluster_dist_[ci * m + cj];
      if (d < slot_ij) {
        slot_ij = d;
        index.cluster_dist_[cj * m + ci] = d;
      }
    }
  }

  // Nominal speed: length-weighted mean over drivable edges.
  double total_len = 0.0;
  double total_time = 0.0;
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      if (e.drivable && e.time_s > 0) {
        total_len += e.length_m;
        total_time += e.time_s;
      }
    }
  }
  if (total_time > 0) index.nominal_speed_mps_ = total_len / total_time;

  // --- Tier 1: grids — representative node, landmark, walkable clusters ---
  std::size_t num_cells = index.grid_.CellCount();
  index.grid_node_.resize(num_cells);
  for (std::size_t g = 0; g < num_cells; ++g) {
    index.grid_node_[g] = spatial.NearestNode(index.grid_.CentroidOf(
        GridId(static_cast<GridId::underlying_type>(g))));
  }

  // Per-node nearest landmark by *driving* distance node->landmark, found by
  // one bounded Dijkstra per landmark on the reverse drivable graph
  // (distance on the reverse graph from landmark L to node v equals the
  // forward driving distance v->L).
  RoadGraph reverse = ReverseDrivableGraph(graph);
  DijkstraEngine rev_engine(reverse);
  std::vector<double> node_landmark_dist(graph.NumNodes(), kInf);
  std::vector<LandmarkId> node_landmark(graph.NumNodes());
  for (const Landmark& lm : index.landmarks_) {
    for (auto [node, dist] :
         rev_engine.NodesWithin(lm.node, options.max_drive_to_landmark_m,
                                Metric::kDriveDistance)) {
      double& best = node_landmark_dist[node.value()];
      LandmarkId& best_lm = node_landmark[node.value()];
      // Lowest landmark id wins ties, per the paper's ordering convention.
      if (dist < best || (dist == best && lm.id < best_lm)) {
        best = dist;
        best_lm = lm.id;
      }
    }
  }

  index.grid_landmark_.resize(num_cells);
  index.grid_landmark_drive_m_.assign(num_cells, kInf);
  for (std::size_t g = 0; g < num_cells; ++g) {
    NodeId node = index.grid_node_[g];
    if (node.valid() && node_landmark[node.value()].valid()) {
      index.grid_landmark_[g] = node_landmark[node.value()];
      index.grid_landmark_drive_m_[g] = node_landmark_dist[node.value()];
    }
  }

  // Per-node walkable clusters: one bounded walking Dijkstra per landmark
  // (walking arcs are symmetric, so forward == reverse). For each settled
  // node keep, per cluster, the minimum walking distance and the landmark
  // realizing it.
  DijkstraEngine walk_engine(graph);
  std::vector<std::unordered_map<std::uint32_t,
                                 std::pair<double, LandmarkId>>>
      node_walkable(graph.NumNodes());
  for (const Landmark& lm : index.landmarks_) {
    std::uint32_t cluster =
        index.clustering_.cluster_of[lm.id.value()].value();
    for (auto [node, dist] : walk_engine.NodesWithin(
             lm.node, options.max_walk_m, Metric::kWalkDistance)) {
      auto& slot = node_walkable[node.value()];
      auto it = slot.find(cluster);
      if (it == slot.end() || dist < it->second.first) {
        slot[cluster] = {dist, lm.id};
      }
    }
  }

  // Materialize per-grid sorted lists. The straight-line leg from the grid
  // centroid to its representative node is added so the stored w never
  // understates the true walk.
  index.walkable_offsets_.assign(num_cells + 1, 0);
  std::vector<std::vector<WalkableCluster>> per_grid(num_cells);
  for (std::size_t g = 0; g < num_cells; ++g) {
    NodeId node = index.grid_node_[g];
    if (!node.valid()) continue;
    double approach = EquirectangularMeters(
        index.grid_.CentroidOf(GridId(static_cast<GridId::underlying_type>(g))),
        graph.PositionOf(node));
    for (const auto& [cluster, entry] : node_walkable[node.value()]) {
      double w = entry.first + approach;
      if (w > options.max_walk_m) continue;
      per_grid[g].push_back(WalkableCluster{
          ClusterId(cluster), w, entry.second});
    }
    std::sort(per_grid[g].begin(), per_grid[g].end(),
              [](const WalkableCluster& a, const WalkableCluster& b) {
                return a.walk_m < b.walk_m;
              });
    index.walkable_offsets_[g + 1] = per_grid[g].size();
  }
  for (std::size_t g = 1; g <= num_cells; ++g) {
    index.walkable_offsets_[g] += index.walkable_offsets_[g - 1];
  }
  index.walkable_.reserve(index.walkable_offsets_[num_cells]);
  for (std::size_t g = 0; g < num_cells; ++g) {
    index.walkable_.insert(index.walkable_.end(), per_grid[g].begin(),
                           per_grid[g].end());
  }
  return index;
}

}  // namespace xar
