#ifndef XAR_DISCRETIZE_REGION_INDEX_H_
#define XAR_DISCRETIZE_REGION_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "discretize/distance_matrix.h"
#include "discretize/greedy_search.h"
#include "discretize/landmark.h"
#include "discretize/landmark_extractor.h"
#include "geo/grid.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"

namespace xar {

/// Parameters of the three-tier discretization (paper Section IV).
struct DiscretizationOptions {
  double grid_cell_m = 100.0;              ///< grid size (paper: 100 m)
  double delta_m = 250.0;                  ///< δ: cluster distance target
  /// Δ: max driving distance for a grid→landmark association. Larger Δ
  /// assigns more grids (finer pass-through detection); because insertion
  /// estimates use the landmark metric rather than Δ-anchored distances,
  /// a generous Δ does not cost accuracy (see bench/ablation_delta).
  double max_drive_to_landmark_m = 1500.0;
  double max_walk_m = 1000.0;              ///< W: system max walking distance
  LandmarkExtractionOptions landmarks;
};

/// One entry of a grid's walkable-cluster list: cluster C is reachable on
/// foot from the grid via `nearest_landmark`, at walking distance `walk_m`
/// (paper's <C, w> tuples, kept sorted by non-decreasing w).
struct WalkableCluster {
  ClusterId cluster;
  double walk_m = 0.0;
  LandmarkId nearest_landmark;
};

/// The immutable product of pre-processing (paper Fig. 1, left box): the
/// hierarchical region → clusters → landmarks → grids discretization, plus
/// the precomputed distances that let the runtime avoid shortest-path
/// computation during search.
///
/// Resolution contract: any point maps to a unique grid; a grid maps to at
/// most one landmark (the nearest by driving distance, if within Δ) and
/// carries a sorted list of walkable clusters (within W). A grid with
/// neither cannot be served (paper Section IV).
class RegionIndex {
 public:
  /// Runs the full pre-processing pipeline: landmark extraction, landmark
  /// metric, GREEDYSEARCH clustering with δ, grid→landmark assignment and
  /// walkable-cluster lists. When `backend` is non-null the landmark metric
  /// is computed with one batch query on it (bucket CH when prepared);
  /// null keeps the internal Dijkstra build.
  static RegionIndex Build(const RoadGraph& graph,
                           const SpatialNodeIndex& spatial,
                           const DiscretizationOptions& options,
                           RoutingBackend* backend = nullptr);

  // --- Geometry / hierarchy resolution ---------------------------------

  const GridSpec& grid() const { return grid_; }
  GridId GridOfPoint(const LatLng& p) const { return grid_.GridOf(p); }

  /// Road node representing a grid (nearest to its centroid).
  NodeId NodeOfGrid(GridId g) const { return grid_node_[g.value()]; }

  /// The landmark a grid is associated with, or Invalid if none within Δ.
  LandmarkId LandmarkOfGrid(GridId g) const {
    return grid_landmark_[g.value()];
  }

  /// Driving distance from the grid to its landmark (+inf if unassigned).
  double DriveToLandmarkOfGrid(GridId g) const {
    return grid_landmark_drive_m_[g.value()];
  }

  /// The cluster a grid belongs to via its landmark; Invalid if unassigned.
  ClusterId ClusterOfGrid(GridId g) const;

  /// Shorthand: point -> grid -> landmark -> cluster.
  ClusterId ClusterOfPoint(const LatLng& p) const {
    return ClusterOfGrid(GridOfPoint(p));
  }

  /// Walkable clusters of a grid, sorted by non-decreasing walking distance
  /// and truncated at W. Prune further by the per-request walking threshold
  /// by scanning the prefix.
  std::span<const WalkableCluster> WalkableClustersOf(GridId g) const {
    return {walkable_.data() + walkable_offsets_[g.value()],
            walkable_offsets_[g.value() + 1] - walkable_offsets_[g.value()]};
  }

  // --- Landmarks & clusters ---------------------------------------------

  const std::vector<Landmark>& landmarks() const { return landmarks_; }
  const Landmark& GetLandmark(LandmarkId id) const {
    return landmarks_[id.value()];
  }
  const Clustering& clustering() const { return clustering_; }
  std::size_t NumClusters() const { return clustering_.NumClusters(); }
  ClusterId ClusterOfLandmark(LandmarkId id) const {
    return clustering_.cluster_of[id.value()];
  }
  const std::vector<LandmarkId>& LandmarksInCluster(ClusterId c) const {
    return clustering_.clusters[c.value()];
  }

  /// Driving distance between clusters = distance between their closest
  /// landmark pair (paper Section VI). Precomputed; O(1).
  double ClusterDistance(ClusterId a, ClusterId b) const {
    return cluster_dist_[a.value() * NumClusters() + b.value()];
  }

  /// A representative road node for a cluster (its first landmark's node);
  /// used for coarse ETA estimation.
  NodeId RepresentativeNode(ClusterId c) const;

  /// The landmark metric used for clustering (driving distances).
  const DistanceMatrix& landmark_metric() const { return landmark_metric_; }

  // --- Guarantees & bookkeeping ------------------------------------------

  /// ε = 4δ: the worst-case intra-cluster distance guarantee (Theorem 6).
  double epsilon() const { return 4.0 * options_.delta_m; }
  const DiscretizationOptions& options() const { return options_; }

  /// Network-wide mean driving speed (m/s); used to turn precomputed
  /// distances into ETA estimates without touching the graph at search time.
  double nominal_speed_mps() const { return nominal_speed_mps_; }

  /// Bytes held by the discretization tables (Fig. 3c accounting).
  std::size_t MemoryFootprint() const;

  // --- Snapshotting --------------------------------------------------------
  // Pre-processing runs once per region (paper Section III); snapshots let
  // deployments skip it on restart. Same-machine binary format.

  /// Writes the fully-built index to `path`.
  Status Save(const std::string& path) const;

  /// Reads an index written by Save. The road graph is not part of the
  /// snapshot; the caller must pair the index with the same graph.
  static Result<RegionIndex> Load(const std::string& path);

 private:
  RegionIndex() = default;

  DiscretizationOptions options_;
  GridSpec grid_;
  std::vector<Landmark> landmarks_;
  DistanceMatrix landmark_metric_;
  Clustering clustering_;
  std::vector<double> cluster_dist_;  // NumClusters()^2, row-major

  std::vector<NodeId> grid_node_;               // grid -> nearest node
  std::vector<LandmarkId> grid_landmark_;       // grid -> landmark (or inv.)
  std::vector<double> grid_landmark_drive_m_;   // grid -> drive dist
  std::vector<std::size_t> walkable_offsets_;   // grid -> walkable_ range
  std::vector<WalkableCluster> walkable_;

  double nominal_speed_mps_ = 8.33;
};

}  // namespace xar

#endif  // XAR_DISCRETIZE_REGION_INDEX_H_
