#include "discretize/region_snapshot.h"

#include <memory>
#include <string>
#include <utility>

namespace xar {

std::shared_ptr<const RegionSnapshot> BorrowRegionSnapshot(
    const RegionIndex& index) {
  auto snapshot = std::make_shared<RegionSnapshot>();
  // Aliasing a caller-owned index: the deleter is a no-op because the caller
  // keeps ownership (the legacy XarSystem constructor contract).
  snapshot->index =
      std::shared_ptr<const RegionIndex>(&index, [](const RegionIndex*) {});
  snapshot->epoch = 0;
  return snapshot;
}

std::shared_ptr<const RegionSnapshot> BuildRegionSnapshot(
    const RoadGraph& graph, const SpatialNodeIndex& spatial,
    const DiscretizationOptions& options, std::uint64_t epoch,
    RoutingBackend* backend) {
  auto snapshot = std::make_shared<RegionSnapshot>();
  snapshot->index = std::make_shared<const RegionIndex>(
      RegionIndex::Build(graph, spatial, options, backend));
  snapshot->epoch = epoch;
  return snapshot;
}

StatsSection RefreshStatsSection(const RefreshStats& stats) {
  StatsSection section;
  section.name = "refresh";
  section.AddRow(
      {StatsMetric::Counter("epoch", stats.epoch),
       StatsMetric::Counter("refreshes", stats.refreshes),
       StatsMetric::Gauge("last_rebuild_ms", stats.last_rebuild_ms, 1),
       StatsMetric::Gauge("last_prewarm_ms", stats.last_prewarm_ms, 1),
       StatsMetric::Gauge("last_matrix_ms", stats.last_matrix_ms, 1),
       StatsMetric::Counter("last_rehomed", stats.last_rides_rehomed),
       StatsMetric::Counter("total_rehomed", stats.total_rides_rehomed)});
  return section;
}

}  // namespace xar
