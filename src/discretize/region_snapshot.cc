#include "discretize/region_snapshot.h"

#include <memory>
#include <string>
#include <utility>

namespace xar {

std::shared_ptr<const RegionSnapshot> BorrowRegionSnapshot(
    const RegionIndex& index) {
  auto snapshot = std::make_shared<RegionSnapshot>();
  // Aliasing a caller-owned index: the deleter is a no-op because the caller
  // keeps ownership (the legacy XarSystem constructor contract).
  snapshot->index =
      std::shared_ptr<const RegionIndex>(&index, [](const RegionIndex*) {});
  snapshot->epoch = 0;
  return snapshot;
}

std::shared_ptr<const RegionSnapshot> BuildRegionSnapshot(
    const RoadGraph& graph, const SpatialNodeIndex& spatial,
    const DiscretizationOptions& options, std::uint64_t epoch) {
  auto snapshot = std::make_shared<RegionSnapshot>();
  snapshot->index = std::make_shared<const RegionIndex>(
      RegionIndex::Build(graph, spatial, options));
  snapshot->epoch = epoch;
  return snapshot;
}

TextTable RefreshStatsTable(const RefreshStats& stats) {
  TextTable table({"epoch", "refreshes", "last_rebuild_ms", "last_prewarm_ms",
                   "last_rehomed", "total_rehomed"});
  table.AddRow({std::to_string(stats.epoch), std::to_string(stats.refreshes),
                TextTable::Num(stats.last_rebuild_ms, 1),
                TextTable::Num(stats.last_prewarm_ms, 1),
                std::to_string(stats.last_rides_rehomed),
                std::to_string(stats.total_rides_rehomed)});
  return table;
}

}  // namespace xar
