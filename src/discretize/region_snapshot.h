#ifndef XAR_DISCRETIZE_REGION_SNAPSHOT_H_
#define XAR_DISCRETIZE_REGION_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/stats_registry.h"
#include "common/table.h"
#include "discretize/region_index.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"

namespace xar {

class DistanceOracle;

/// A versioned, shareable view of the discretization. Searches pin the
/// snapshot they start on (a shared_ptr copy), so a refresh can swap the
/// current snapshot without invalidating in-flight readers; the old
/// RegionIndex stays alive until the last pinned search drops it.
struct RegionSnapshot {
  std::shared_ptr<const RegionIndex> index;
  /// Monotone refresh generation. 0 = the borrowed seed index the system
  /// was constructed with; each RefreshDiscretization increments it.
  std::uint64_t epoch = 0;
};

/// Wraps a caller-owned RegionIndex in a non-owning snapshot (epoch 0).
/// The caller must keep `index` alive for the snapshot's lifetime — this is
/// the legacy constructor path where the region outlives the system.
std::shared_ptr<const RegionSnapshot> BorrowRegionSnapshot(
    const RegionIndex& index);

/// Runs the full pre-processing pipeline and wraps the result in an owning
/// snapshot tagged with `epoch`. Pure function of its inputs; safe to call
/// on a background thread with no system locks held. `backend`, when
/// non-null, answers the landmark-metric batch (bucket CH when prepared);
/// it must route over `graph`.
std::shared_ptr<const RegionSnapshot> BuildRegionSnapshot(
    const RoadGraph& graph, const SpatialNodeIndex& spatial,
    const DiscretizationOptions& options, std::uint64_t epoch,
    RoutingBackend* backend = nullptr);

/// What changed underneath the discretization. All fields optional: an empty
/// delta requests a rebuild of the current region over the current graph
/// (a "no-op" refresh — same epoch bump, byte-identical tables).
///
/// A replacement graph must preserve node ids and topology (same nodes,
/// same arcs, new weights) — ride routes are re-profiled against it, not
/// re-planned, so a structural change would leave routes traversing arcs
/// that no longer exist.
struct GraphDelta {
  const RoadGraph* graph = nullptr;       ///< nullptr = keep current graph
  DistanceOracle* oracle = nullptr;       ///< nullptr = keep current oracle
  std::optional<DiscretizationOptions> options;  ///< nullopt = keep current
};

/// Refresh observability counters (ROADMAP metrics item).
struct RefreshStats {
  std::uint64_t epoch = 0;            ///< current snapshot generation
  std::size_t refreshes = 0;          ///< completed RefreshDiscretization calls
  double last_rebuild_ms = 0.0;       ///< wall time of the last rebuild+swap
  /// Wall time of the last oracle Prewarm (backend preprocessing, e.g. the
  /// per-metric contraction hierarchies) — runs off-thread with no locks
  /// held, before the snapshot is adopted.
  double last_prewarm_ms = 0.0;
  /// Wall time of the last rebuild's landmark-metric batch (inside
  /// last_rebuild_ms): the part the bucket-CH many-to-many path speeds up.
  double last_matrix_ms = 0.0;
  std::size_t last_rides_rehomed = 0; ///< live rides re-homed by the last swap
  std::size_t total_rides_rehomed = 0;
};

/// "refresh" stats section for the unified StatsRegistry surface.
StatsSection RefreshStatsSection(const RefreshStats& stats);

}  // namespace xar

#endif  // XAR_DISCRETIZE_REGION_SNAPSHOT_H_
