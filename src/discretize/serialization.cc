#include <cstdint>

#include "common/io.h"
#include "discretize/region_index.h"

namespace xar {
namespace {

constexpr std::uint32_t kRegionMagic = 0x52524158;  // "XARR"
constexpr std::uint32_t kRegionVersion = 1;

static_assert(std::is_trivially_copyable_v<GridSpec>);
static_assert(std::is_trivially_copyable_v<DiscretizationOptions>);
static_assert(std::is_trivially_copyable_v<Landmark>);
static_assert(std::is_trivially_copyable_v<WalkableCluster>);

}  // namespace

Status RegionIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.Write(kRegionMagic);
  writer.Write(kRegionVersion);

  writer.Write(options_);
  writer.Write(grid_);
  writer.WriteVector(landmarks_);

  writer.WriteU64(landmark_metric_.size());
  writer.WriteVector(landmark_metric_.values());

  writer.WriteU64(clustering_.clusters.size());
  for (const std::vector<LandmarkId>& members : clustering_.clusters) {
    writer.WriteVector(members);
  }
  writer.WriteVector(clustering_.cluster_of);
  writer.Write(clustering_.radius);
  writer.Write(clustering_.diameter);

  writer.WriteVector(cluster_dist_);
  writer.WriteVector(grid_node_);
  writer.WriteVector(grid_landmark_);
  writer.WriteVector(grid_landmark_drive_m_);
  writer.WriteVector(walkable_offsets_);
  writer.WriteVector(walkable_);
  writer.Write(nominal_speed_mps_);
  return writer.Close();
}

Result<RegionIndex> RegionIndex::Load(const std::string& path) {
  BinaryReader reader(path);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  reader.Read(&magic);
  reader.Read(&version);
  if (!reader.ok() || magic != kRegionMagic) {
    return Status::InvalidArgument("not a region-index snapshot: " + path);
  }
  if (version != kRegionVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }

  RegionIndex index;
  reader.Read(&index.options_);
  reader.Read(&index.grid_);
  reader.ReadVector(&index.landmarks_);

  std::uint64_t metric_n = reader.ReadU64();
  std::vector<double> metric_values;
  reader.ReadVector(&metric_values);
  if (!reader.ok() || metric_values.size() != metric_n * metric_n) {
    return Status::Internal("corrupt snapshot: landmark metric");
  }
  index.landmark_metric_ =
      DistanceMatrix::FromValues(metric_n, std::move(metric_values));

  std::uint64_t num_clusters = reader.ReadU64();
  if (!reader.ok() || num_clusters > (1ULL << 24)) {
    return Status::Internal("corrupt snapshot: cluster count");
  }
  index.clustering_.clusters.resize(num_clusters);
  for (std::uint64_t c = 0; c < num_clusters; ++c) {
    reader.ReadVector(&index.clustering_.clusters[c]);
  }
  reader.ReadVector(&index.clustering_.cluster_of);
  reader.Read(&index.clustering_.radius);
  reader.Read(&index.clustering_.diameter);

  reader.ReadVector(&index.cluster_dist_);
  reader.ReadVector(&index.grid_node_);
  reader.ReadVector(&index.grid_landmark_);
  reader.ReadVector(&index.grid_landmark_drive_m_);
  reader.ReadVector(&index.walkable_offsets_);
  reader.ReadVector(&index.walkable_);
  reader.Read(&index.nominal_speed_mps_);
  if (!reader.ok()) return Status::Internal("truncated snapshot: " + path);

  // Structural validation before handing the index out.
  if (index.cluster_dist_.size() != num_clusters * num_clusters ||
      index.clustering_.cluster_of.size() != index.landmarks_.size() ||
      index.grid_node_.size() != index.grid_.CellCount() ||
      index.grid_landmark_.size() != index.grid_.CellCount() ||
      index.grid_landmark_drive_m_.size() != index.grid_.CellCount() ||
      index.walkable_offsets_.size() != index.grid_.CellCount() + 1 ||
      index.walkable_.size() != index.walkable_offsets_.back()) {
    return Status::Internal("corrupt snapshot: inconsistent table sizes");
  }
  return index;
}

}  // namespace xar
