#include "geo/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace xar {

GridSpec::GridSpec(const BoundingBox& bounds, double cell_meters)
    : bounds_(bounds), cell_meters_(cell_meters) {
  assert(cell_meters > 0);
  cell_lat_deg_ = cell_meters / MetersPerDegreeLat();
  double mid_lat = (bounds.min_lat + bounds.max_lat) / 2;
  cell_lng_deg_ = cell_meters / MetersPerDegreeLng(mid_lat);
  rows_ = static_cast<std::size_t>(
      std::ceil((bounds.max_lat - bounds.min_lat) / cell_lat_deg_));
  cols_ = static_cast<std::size_t>(
      std::ceil((bounds.max_lng - bounds.min_lng) / cell_lng_deg_));
  rows_ = std::max<std::size_t>(rows_, 1);
  cols_ = std::max<std::size_t>(cols_, 1);
}

GridId GridSpec::GridOf(const LatLng& p) const {
  double frow = (p.lat - bounds_.min_lat) / cell_lat_deg_;
  double fcol = (p.lng - bounds_.min_lng) / cell_lng_deg_;
  std::ptrdiff_t row = static_cast<std::ptrdiff_t>(std::floor(frow));
  std::ptrdiff_t col = static_cast<std::ptrdiff_t>(std::floor(fcol));
  row = std::clamp<std::ptrdiff_t>(row, 0,
                                   static_cast<std::ptrdiff_t>(rows_) - 1);
  col = std::clamp<std::ptrdiff_t>(col, 0,
                                   static_cast<std::ptrdiff_t>(cols_) - 1);
  return At(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
}

LatLng GridSpec::CentroidOf(GridId g) const {
  assert(g.valid() && g.value() < CellCount());
  std::size_t row = RowOf(g);
  std::size_t col = ColOf(g);
  return LatLng{
      bounds_.min_lat + (static_cast<double>(row) + 0.5) * cell_lat_deg_,
      bounds_.min_lng + (static_cast<double>(col) + 0.5) * cell_lng_deg_};
}

std::vector<GridId> GridSpec::Ring(GridId center, std::size_t ring) const {
  std::vector<GridId> out;
  std::ptrdiff_t crow = static_cast<std::ptrdiff_t>(RowOf(center));
  std::ptrdiff_t ccol = static_cast<std::ptrdiff_t>(ColOf(center));
  std::ptrdiff_t r = static_cast<std::ptrdiff_t>(ring);
  auto push_if_valid = [&](std::ptrdiff_t row, std::ptrdiff_t col) {
    if (row < 0 || col < 0 || row >= static_cast<std::ptrdiff_t>(rows_) ||
        col >= static_cast<std::ptrdiff_t>(cols_)) {
      return;
    }
    out.push_back(
        At(static_cast<std::size_t>(row), static_cast<std::size_t>(col)));
  };
  if (ring == 0) {
    push_if_valid(crow, ccol);
    return out;
  }
  // Top and bottom edges of the ring square.
  for (std::ptrdiff_t col = ccol - r; col <= ccol + r; ++col) {
    push_if_valid(crow - r, col);
    push_if_valid(crow + r, col);
  }
  // Left and right edges (excluding corners already emitted).
  for (std::ptrdiff_t row = crow - r + 1; row <= crow + r - 1; ++row) {
    push_if_valid(row, ccol - r);
    push_if_valid(row, ccol + r);
  }
  return out;
}

std::vector<GridId> GridSpec::Neighborhood(GridId center,
                                           std::size_t radius) const {
  std::vector<GridId> out;
  for (std::size_t ring = 0; ring <= radius; ++ring) {
    std::vector<GridId> cells = Ring(center, ring);
    out.insert(out.end(), cells.begin(), cells.end());
  }
  return out;
}

}  // namespace xar
