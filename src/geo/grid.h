#ifndef XAR_GEO_GRID_H_
#define XAR_GEO_GRID_H_

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// Uniform square gridding of a geographic region (paper Definition 1).
///
/// Grids are *implicit*: a GridSpec stores only the region bounds and cell
/// size; any point maps numerically to a unique GridId (row-major), and a
/// GridId maps back to its centroid. The paper uses 100 m cells; distances
/// "from a grid" are measured from the centroid.
class GridSpec {
 public:
  GridSpec() = default;

  /// Covers `bounds` with square cells of `cell_meters` on a side. The last
  /// row/column may extend slightly past the bounds.
  GridSpec(const BoundingBox& bounds, double cell_meters);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t CellCount() const { return rows_ * cols_; }
  double cell_meters() const { return cell_meters_; }
  const BoundingBox& bounds() const { return bounds_; }

  /// True if `p` lies inside the gridded region (points outside have no grid).
  bool Contains(const LatLng& p) const { return bounds_.Contains(p); }

  /// Maps a point to its grid. Points outside the bounds are clamped to the
  /// nearest boundary cell, matching the paper's "any location maps to a
  /// unique grid" contract; call Contains() first if clamping is undesirable.
  GridId GridOf(const LatLng& p) const;

  /// Centroid of the cell.
  LatLng CentroidOf(GridId g) const;

  std::size_t RowOf(GridId g) const { return g.value() / cols_; }
  std::size_t ColOf(GridId g) const { return g.value() % cols_; }
  GridId At(std::size_t row, std::size_t col) const {
    return GridId(static_cast<GridId::underlying_type>(row * cols_ + col));
  }

  /// All cells whose Chebyshev ring index equals `ring` around `center`
  /// (ring 0 = the cell itself). Used by the T-Share baseline's expanding
  /// grid search. Returns only in-bounds cells.
  std::vector<GridId> Ring(GridId center, std::size_t ring) const;

  /// All cells within Chebyshev distance `radius` (inclusive), row-major.
  std::vector<GridId> Neighborhood(GridId center, std::size_t radius) const;

 private:
  BoundingBox bounds_;
  double cell_meters_ = 0.0;
  double cell_lat_deg_ = 0.0;
  double cell_lng_deg_ = 0.0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace xar

#endif  // XAR_GEO_GRID_H_
