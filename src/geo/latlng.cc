#include "geo/latlng.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xar {
namespace {

constexpr double kDegToRad = 0.017453292519943295;

}  // namespace

std::string LatLng::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", lat, lng);
  return buf;
}

double HaversineMeters(const LatLng& a, const LatLng& b) {
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlng = (b.lng - a.lng) * kDegToRad;
  double s1 = std::sin(dlat / 2);
  double s2 = std::sin(dlng / 2);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::min(1.0, h);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double EquirectangularMeters(const LatLng& a, const LatLng& b) {
  double mean_lat = (a.lat + b.lat) / 2 * kDegToRad;
  double x = (b.lng - a.lng) * kDegToRad * std::cos(mean_lat);
  double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

double MetersPerDegreeLat() { return kEarthRadiusMeters * kDegToRad; }

double MetersPerDegreeLng(double lat_deg) {
  return kEarthRadiusMeters * kDegToRad * std::cos(lat_deg * kDegToRad);
}

LatLng OffsetMeters(const LatLng& origin, double dx_meters, double dy_meters) {
  return LatLng{origin.lat + dy_meters / MetersPerDegreeLat(),
                origin.lng + dx_meters / MetersPerDegreeLng(origin.lat)};
}

double BoundingBox::WidthMeters() const {
  double mid_lat = (min_lat + max_lat) / 2;
  return (max_lng - min_lng) * MetersPerDegreeLng(mid_lat);
}

double BoundingBox::HeightMeters() const {
  return (max_lat - min_lat) * MetersPerDegreeLat();
}

void BoundingBox::Extend(const LatLng& p) {
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lng = std::min(min_lng, p.lng);
  max_lng = std::max(max_lng, p.lng);
}

BoundingBox BoundingBox::FromCenterAndSize(const LatLng& center,
                                           double width_m, double height_m) {
  double dlat = height_m / 2 / MetersPerDegreeLat();
  double dlng = width_m / 2 / MetersPerDegreeLng(center.lat);
  return BoundingBox{center.lat - dlat, center.lng - dlng, center.lat + dlat,
                     center.lng + dlng};
}

}  // namespace xar
