#ifndef XAR_GEO_LATLNG_H_
#define XAR_GEO_LATLNG_H_

#include <string>

namespace xar {

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A geographic point (degrees). Trivially copyable value type.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  friend bool operator==(const LatLng& a, const LatLng& b) {
    return a.lat == b.lat && a.lng == b.lng;
  }

  std::string ToString() const;
};

/// Great-circle distance in meters (haversine formula).
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Fast flat-earth approximation of distance in meters; accurate to well
/// under 0.1% at city scale. Used in inner loops where exactness of the
/// great-circle value does not matter.
double EquirectangularMeters(const LatLng& a, const LatLng& b);

/// Returns the point reached from `origin` by going `dx_meters` east and
/// `dy_meters` north (local tangent-plane approximation).
LatLng OffsetMeters(const LatLng& origin, double dx_meters, double dy_meters);

/// Meters per degree of longitude at latitude `lat_deg`.
double MetersPerDegreeLng(double lat_deg);

/// Meters per degree of latitude (constant to first order).
double MetersPerDegreeLat();

/// Axis-aligned geographic bounding box.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lng = 0.0;
  double max_lat = 0.0;
  double max_lng = 0.0;

  bool Contains(const LatLng& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lng >= min_lng &&
           p.lng <= max_lng;
  }

  LatLng Center() const {
    return LatLng{(min_lat + max_lat) / 2, (min_lng + max_lng) / 2};
  }

  double WidthMeters() const;   ///< East-west extent at the center latitude.
  double HeightMeters() const;  ///< North-south extent.

  /// Grows the box to include `p`.
  void Extend(const LatLng& p);

  /// Box spanning `width_m` x `height_m` meters centered at `center`.
  static BoundingBox FromCenterAndSize(const LatLng& center, double width_m,
                                       double height_m);
};

}  // namespace xar

#endif  // XAR_GEO_LATLNG_H_
