#include "graph/alt.h"

#include <algorithm>
#include <cassert>

#include "graph/dijkstra.h"
#include "graph/path_profile.h"

namespace xar {
namespace {

/// Mirror of the graph with all arcs reversed (weights preserved), used to
/// compute node->anchor distances with a forward engine.
RoadGraph ReverseGraph(const RoadGraph& g) {
  GraphBuilder builder;
  for (std::size_t i = 0; i < g.NumNodes(); ++i) {
    builder.AddNode(
        g.PositionOf(NodeId(static_cast<NodeId::underlying_type>(i))));
  }
  for (std::size_t u = 0; u < g.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : g.OutEdges(from)) {
      double speed = e.drivable && e.time_s > 0 ? e.length_m / e.time_s : 0;
      builder.AddArc(e.to, from, e.length_m, speed, e.drivable, e.walkable);
    }
  }
  return builder.Build();
}

}  // namespace

AltEngine::AltEngine(const RoadGraph& graph, std::size_t num_anchors,
                     Metric metric)
    : graph_(graph),
      metric_(metric),
      heap_(graph.NumNodes()),
      g_(graph.NumNodes(), kInf),
      mark_(graph.NumNodes(), 0),
      parent_(graph.NumNodes()) {
  assert(graph.NumNodes() > 0);
  num_anchors = std::min(num_anchors, graph.NumNodes());

  // Farthest-point anchor selection on the (symmetrized) distance from the
  // current anchor set — the standard ALT heuristic placement.
  DijkstraEngine forward(graph);
  RoadGraph reverse = ReverseGraph(graph);
  DijkstraEngine backward(reverse);

  auto tables = std::make_shared<Tables>();
  std::vector<double> min_dist(graph.NumNodes(), kInf);
  NodeId next(0);
  for (std::size_t a = 0; a < num_anchors; ++a) {
    tables->anchors.push_back(next);
    std::size_t base = a * graph.NumNodes();
    tables->dist_from.resize(base + graph.NumNodes(), kInf);
    tables->dist_to.resize(base + graph.NumNodes(), kInf);
    for (auto [node, dist] : forward.NodesWithin(next, kInf, metric_)) {
      tables->dist_from[base + node.value()] = dist;
    }
    for (auto [node, dist] : backward.NodesWithin(next, kInf, metric_)) {
      tables->dist_to[base + node.value()] = dist;
    }
    // Pick the node farthest from all chosen anchors as the next one.
    std::size_t best = 0;
    double best_d = -1;
    for (std::size_t v = 0; v < graph.NumNodes(); ++v) {
      double d = std::min(tables->dist_from[base + v], min_dist[v]);
      min_dist[v] = d;
      if (d != kInf && d > best_d) {
        best_d = d;
        best = v;
      }
    }
    next = NodeId(static_cast<NodeId::underlying_type>(best));
  }
  tables_ = std::move(tables);
}

AltEngine::AltEngine(const AltEngine& other)
    : graph_(other.graph_),
      metric_(other.metric_),
      tables_(other.tables_),
      heap_(other.graph_.NumNodes()),
      g_(other.graph_.NumNodes(), kInf),
      mark_(other.graph_.NumNodes(), 0),
      parent_(other.graph_.NumNodes()) {}

double AltEngine::LowerBound(NodeId v, NodeId dst) const {
  double bound = 0.0;
  std::size_t n = graph_.NumNodes();
  const Tables& t = *tables_;
  for (std::size_t a = 0; a < t.anchors.size(); ++a) {
    double av = t.dist_from[a * n + v.value()];
    double at = t.dist_from[a * n + dst.value()];
    double va = t.dist_to[a * n + v.value()];
    double ta = t.dist_to[a * n + dst.value()];
    // d(v,t) >= d(a,t) - d(a,v), valid when both finite.
    if (at != kInf && av != kInf) bound = std::max(bound, at - av);
    // d(v,t) >= d(v,a) - d(t,a).
    if (va != kInf && ta != kInf) bound = std::max(bound, va - ta);
  }
  return bound;
}

double AltEngine::Run(NodeId src, NodeId dst, bool record_parents) {
  ++generation_;
  heap_.Clear();
  last_settled_count_ = 0;

  auto gval = [&](std::size_t v) {
    return mark_[v] == generation_ ? g_[v] : kInf;
  };

  g_[src.value()] = 0.0;
  mark_[src.value()] = generation_;
  if (record_parents) parent_[src.value()] = NodeId::Invalid();
  heap_.Push(src.value(), LowerBound(src, dst));

  while (!heap_.empty()) {
    std::size_t u = heap_.PopMin();
    ++last_settled_count_;
    if (u == dst.value()) return gval(u);
    double du = gval(u);
    for (const RoadEdge& e :
         graph_.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric_);
      if (w == kInf) continue;
      std::size_t v = e.to.value();
      double nd = du + w;
      if (nd < gval(v)) {
        g_[v] = nd;
        mark_[v] = generation_;
        if (record_parents)
          parent_[v] = NodeId(static_cast<NodeId::underlying_type>(u));
        heap_.PushOrDecrease(
            v, nd + LowerBound(NodeId(static_cast<NodeId::underlying_type>(v)),
                               dst));
      }
    }
  }
  return kInf;
}

double AltEngine::Distance(NodeId src, NodeId dst) {
  return Run(src, dst, /*record_parents=*/false);
}

Path AltEngine::ShortestPath(NodeId src, NodeId dst) {
  double d = Run(src, dst, /*record_parents=*/true);
  if (d == kInf) return Path{};
  std::vector<NodeId> nodes;
  for (NodeId v = dst; v.valid(); v = parent_[v.value()]) {
    nodes.push_back(v);
    if (v == src) break;
  }
  std::reverse(nodes.begin(), nodes.end());
  return ProfileNodePath(graph_, std::move(nodes), metric_);
}

std::size_t AltEngine::MemoryFootprint() const {
  const Tables& t = *tables_;
  return (t.dist_from.capacity() + t.dist_to.capacity()) * sizeof(double) +
         t.anchors.capacity() * sizeof(NodeId) +
         g_.capacity() * sizeof(double) +
         mark_.capacity() * sizeof(std::uint32_t) +
         parent_.capacity() * sizeof(NodeId) + sizeof(*this);
}

}  // namespace xar
