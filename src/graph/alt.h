#ifndef XAR_GRAPH_ALT_H_
#define XAR_GRAPH_ALT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/heap.h"
#include "graph/road_graph.h"

namespace xar {

/// ALT point-to-point engine (A*, Landmarks, Triangle inequality; Goldberg &
/// Harrelson 2005): picks a handful of far-apart *anchor* nodes, precomputes
/// exact distances to/from each, and uses the triangle-inequality bounds
///   d(v,t) >= d(v,a) - d(t,a)   and   d(v,t) >= d(a,t) - d(a,v)
/// as an A* heuristic that is much tighter than the geometric one on road
/// networks with one-ways and speed variance.
///
/// ("Anchor" here to avoid confusion with the discretization's landmarks.)
/// The metric is fixed at construction; preprocessing costs
/// 2 * num_anchors Dijkstra runs.
class AltEngine {
 public:
  AltEngine(const RoadGraph& graph, std::size_t num_anchors = 8,
            Metric metric = Metric::kDriveDistance);

  /// One-to-one distance under the construction metric; +inf if unreachable.
  double Distance(NodeId src, NodeId dst);

  std::size_t num_anchors() const { return anchors_.size(); }
  const std::vector<NodeId>& anchors() const { return anchors_; }
  std::size_t last_settled_count() const { return last_settled_count_; }

  /// The (admissible) heuristic value used for `v` toward `dst`.
  double LowerBound(NodeId v, NodeId dst) const;

  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  const RoadGraph& graph_;
  Metric metric_;
  std::vector<NodeId> anchors_;
  // Flattened [anchor][node] exact distances.
  std::vector<double> dist_from_;  // anchor -> node
  std::vector<double> dist_to_;    // node -> anchor

  IndexedMinHeap heap_;
  std::vector<double> g_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_ALT_H_
