#ifndef XAR_GRAPH_ALT_H_
#define XAR_GRAPH_ALT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/heap.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// ALT point-to-point engine (A*, Landmarks, Triangle inequality; Goldberg &
/// Harrelson 2005): picks a handful of far-apart *anchor* nodes, precomputes
/// exact distances to/from each, and uses the triangle-inequality bounds
///   d(v,t) >= d(v,a) - d(t,a)   and   d(v,t) >= d(a,t) - d(a,v)
/// as an A* heuristic that is much tighter than the geometric one on road
/// networks with one-ways and speed variance.
///
/// ("Anchor" here to avoid confusion with the discretization's landmarks.)
/// The metric is fixed at construction; preprocessing costs
/// 2 * num_anchors Dijkstra runs. The anchor tables are immutable after
/// construction and shared between copies, so cloning an engine for another
/// thread costs only the per-query workspace (engines themselves are not
/// thread-safe; use one per thread).
class AltEngine {
 public:
  AltEngine(const RoadGraph& graph, std::size_t num_anchors = 8,
            Metric metric = Metric::kDriveDistance);

  /// Workspace clone: shares `other`'s preprocessed anchor tables, gets a
  /// fresh query workspace. This is what engine pools hand out.
  AltEngine(const AltEngine& other);
  AltEngine& operator=(const AltEngine&) = delete;

  /// One-to-one distance under the construction metric; +inf if unreachable.
  double Distance(NodeId src, NodeId dst);

  /// One-to-one path (nodes + both totals); empty path if unreachable.
  Path ShortestPath(NodeId src, NodeId dst);

  std::size_t num_anchors() const { return tables_->anchors.size(); }
  const std::vector<NodeId>& anchors() const { return tables_->anchors; }
  std::size_t last_settled_count() const { return last_settled_count_; }
  Metric metric() const { return metric_; }

  /// The (admissible) heuristic value used for `v` toward `dst`.
  double LowerBound(NodeId v, NodeId dst) const;

  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Immutable preprocessing product, shared across workspace clones.
  struct Tables {
    std::vector<NodeId> anchors;
    // Flattened [anchor][node] exact distances.
    std::vector<double> dist_from;  // anchor -> node
    std::vector<double> dist_to;    // node -> anchor
  };

  double Run(NodeId src, NodeId dst, bool record_parents);

  const RoadGraph& graph_;
  Metric metric_;
  std::shared_ptr<const Tables> tables_;

  IndexedMinHeap heap_;
  std::vector<double> g_;
  std::vector<std::uint32_t> mark_;
  std::vector<NodeId> parent_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_ALT_H_
