#include "graph/astar.h"

#include <algorithm>
#include <cassert>

namespace xar {

AStarEngine::AStarEngine(const RoadGraph& graph)
    : graph_(graph),
      heap_(graph.NumNodes()),
      g_(graph.NumNodes(), kInf),
      mark_(graph.NumNodes(), 0),
      parent_(graph.NumNodes()) {}

double AStarEngine::Heuristic(NodeId v, NodeId dst, Metric metric) const {
  double straight =
      EquirectangularMeters(graph_.PositionOf(v), graph_.PositionOf(dst));
  if (metric == Metric::kDriveTime) return straight / graph_.MaxSpeedMps();
  return straight;
}

double AStarEngine::Run(NodeId src, NodeId dst, Metric metric,
                        bool record_parents) {
  ++generation_;
  heap_.Clear();
  last_settled_count_ = 0;

  auto gval = [&](std::size_t v) {
    return mark_[v] == generation_ ? g_[v] : kInf;
  };

  g_[src.value()] = 0.0;
  mark_[src.value()] = generation_;
  if (record_parents) parent_[src.value()] = NodeId::Invalid();
  heap_.Push(src.value(), Heuristic(src, dst, metric));

  while (!heap_.empty()) {
    std::size_t u = heap_.PopMin();
    ++last_settled_count_;
    if (u == dst.value()) return gval(u);
    double du = gval(u);
    for (const RoadEdge& e :
         graph_.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w == kInf) continue;
      std::size_t v = e.to.value();
      double nd = du + w;
      if (nd < gval(v)) {
        g_[v] = nd;
        mark_[v] = generation_;
        if (record_parents)
          parent_[v] = NodeId(static_cast<NodeId::underlying_type>(u));
        heap_.PushOrDecrease(
            v, nd + Heuristic(NodeId(static_cast<NodeId::underlying_type>(v)),
                              dst, metric));
      }
    }
  }
  return kInf;
}

double AStarEngine::Distance(NodeId src, NodeId dst, Metric metric) {
  return Run(src, dst, metric, /*record_parents=*/false);
}

Path AStarEngine::ShortestPath(NodeId src, NodeId dst, Metric metric) {
  double d = Run(src, dst, metric, /*record_parents=*/true);
  Path path;
  if (d == kInf) return path;
  for (NodeId v = dst; v.valid(); v = parent_[v.value()]) {
    path.nodes.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  path.length_m = 0;
  path.time_s = 0;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const RoadEdge* best = nullptr;
    double best_w = kInf;
    for (const RoadEdge& e : graph_.OutEdges(path.nodes[i])) {
      if (e.to != path.nodes[i + 1]) continue;
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w < best_w) {
        best_w = w;
        best = &e;
      }
    }
    assert(best != nullptr);
    path.length_m += best->length_m;
    path.time_s += best->time_s;
  }
  return path;
}

}  // namespace xar
