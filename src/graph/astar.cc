#include "graph/astar.h"

#include <algorithm>
#include <cassert>

#include "graph/path_profile.h"

namespace xar {

AStarEngine::AStarEngine(const RoadGraph& graph)
    : graph_(graph),
      heap_(graph.NumNodes()),
      g_(graph.NumNodes(), kInf),
      mark_(graph.NumNodes(), 0),
      parent_(graph.NumNodes()) {
  constexpr Metric kMetrics[] = {Metric::kDriveDistance, Metric::kDriveTime,
                                 Metric::kWalkDistance};
  double scale[3] = {kInf, kInf, kInf};
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : graph.OutEdges(from)) {
      double straight = EquirectangularMeters(graph.PositionOf(from),
                                              graph.PositionOf(e.to));
      if (straight <= 0.0) continue;  // zero-length hop: no constraint
      for (std::size_t m = 0; m < 3; ++m) {
        double w = RoadGraph::EdgeWeight(e, kMetrics[m]);
        if (w != kInf) scale[m] = std::min(scale[m], w / straight);
      }
    }
  }
  for (std::size_t m = 0; m < 3; ++m) {
    heuristic_scale_[m] = scale[m] == kInf ? 0.0 : scale[m];
  }
}

double AStarEngine::Heuristic(NodeId v, NodeId dst, Metric metric) const {
  double straight =
      EquirectangularMeters(graph_.PositionOf(v), graph_.PositionOf(dst));
  return heuristic_scale_[static_cast<std::size_t>(metric)] * straight;
}

double AStarEngine::Run(NodeId src, NodeId dst, Metric metric,
                        bool record_parents) {
  ++generation_;
  heap_.Clear();
  last_settled_count_ = 0;

  auto gval = [&](std::size_t v) {
    return mark_[v] == generation_ ? g_[v] : kInf;
  };

  g_[src.value()] = 0.0;
  mark_[src.value()] = generation_;
  if (record_parents) parent_[src.value()] = NodeId::Invalid();
  heap_.Push(src.value(), Heuristic(src, dst, metric));

  while (!heap_.empty()) {
    std::size_t u = heap_.PopMin();
    ++last_settled_count_;
    if (u == dst.value()) return gval(u);
    double du = gval(u);
    for (const RoadEdge& e :
         graph_.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w == kInf) continue;
      std::size_t v = e.to.value();
      double nd = du + w;
      if (nd < gval(v)) {
        g_[v] = nd;
        mark_[v] = generation_;
        if (record_parents)
          parent_[v] = NodeId(static_cast<NodeId::underlying_type>(u));
        heap_.PushOrDecrease(
            v, nd + Heuristic(NodeId(static_cast<NodeId::underlying_type>(v)),
                              dst, metric));
      }
    }
  }
  return kInf;
}

double AStarEngine::Distance(NodeId src, NodeId dst, Metric metric) {
  return Run(src, dst, metric, /*record_parents=*/false);
}

Path AStarEngine::ShortestPath(NodeId src, NodeId dst, Metric metric) {
  double d = Run(src, dst, metric, /*record_parents=*/true);
  if (d == kInf) return Path{};
  std::vector<NodeId> nodes;
  for (NodeId v = dst; v.valid(); v = parent_[v.value()]) {
    nodes.push_back(v);
    if (v == src) break;
  }
  std::reverse(nodes.begin(), nodes.end());
  return ProfileNodePath(graph_, std::move(nodes), metric);
}

std::size_t AStarEngine::MemoryFootprint() const {
  return sizeof(*this) + g_.capacity() * sizeof(double) +
         mark_.capacity() * sizeof(std::uint32_t) +
         parent_.capacity() * sizeof(NodeId) + heap_.MemoryFootprint();
}

}  // namespace xar
