#ifndef XAR_GRAPH_ASTAR_H_
#define XAR_GRAPH_ASTAR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/heap.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// A* point-to-point search with an admissible geometric heuristic:
/// straight-line distance for distance metrics, straight-line distance over
/// the network's top speed for the time metric. Typically settles far fewer
/// nodes than plain Dijkstra on spread-out queries.
class AStarEngine {
 public:
  explicit AStarEngine(const RoadGraph& graph);

  /// One-to-one distance under `metric`; +inf if unreachable.
  double Distance(NodeId src, NodeId dst, Metric metric);

  /// One-to-one path (nodes + both totals); empty path if unreachable.
  Path ShortestPath(NodeId src, NodeId dst, Metric metric);

  std::size_t last_settled_count() const { return last_settled_count_; }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  double Heuristic(NodeId v, NodeId dst, Metric metric) const;
  double Run(NodeId src, NodeId dst, Metric metric, bool record_parents);

  const RoadGraph& graph_;
  IndexedMinHeap heap_;
  std::vector<double> g_;
  std::vector<std::uint32_t> mark_;
  std::vector<NodeId> parent_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_ASTAR_H_
