#ifndef XAR_GRAPH_ASTAR_H_
#define XAR_GRAPH_ASTAR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/heap.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// A* point-to-point search with an admissible geometric heuristic:
/// straight-line distance scaled by the graph's tightest weight-per-meter
/// ratio under the query metric. The ratio is measured from the actual edge
/// weights at construction, so the heuristic stays a true lower bound even
/// when weights dip below geometric length (e.g. after a traffic
/// perturbation); on plain geometric graphs it reduces to straight-line
/// distance (and straight-line over top speed for the time metric).
/// Typically settles far fewer nodes than plain Dijkstra on spread-out
/// queries.
class AStarEngine {
 public:
  explicit AStarEngine(const RoadGraph& graph);

  /// One-to-one distance under `metric`; +inf if unreachable.
  double Distance(NodeId src, NodeId dst, Metric metric);

  /// One-to-one path (nodes + both totals); empty path if unreachable.
  Path ShortestPath(NodeId src, NodeId dst, Metric metric);

  std::size_t last_settled_count() const { return last_settled_count_; }

  /// Bytes held by this engine's per-query workspace.
  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  double Heuristic(NodeId v, NodeId dst, Metric metric) const;
  double Run(NodeId src, NodeId dst, Metric metric, bool record_parents);

  const RoadGraph& graph_;
  /// Per-metric min over edges of weight / straight-line length. Every edge
  /// satisfies w(e) >= scale * straight(e), and a path's straight-line hops
  /// sum to at least straight(src, dst), so scale * straight(v, dst) is a
  /// lower bound on the remaining cost from v.
  double heuristic_scale_[3] = {0.0, 0.0, 0.0};
  IndexedMinHeap heap_;
  std::vector<double> g_;
  std::vector<std::uint32_t> mark_;
  std::vector<NodeId> parent_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_ASTAR_H_
