#include "graph/contraction_hierarchy.h"

#include <algorithm>
#include <cassert>

namespace xar {

ContractionHierarchy::ContractionHierarchy(const RoadGraph& graph,
                                           Metric metric, ChOptions options)
    : n_(graph.NumNodes()),
      options_(options),
      fwd_(n_),
      bwd_(n_),
      contracted_(n_, false),
      contracted_neighbors_(n_, 0),
      rank_(n_, 0),
      up_(n_),
      down_(n_),
      fwd_heap_(n_),
      bwd_heap_(n_),
      fwd_dist_(n_, kInf),
      bwd_dist_(n_, kInf),
      fwd_mark_(n_, 0),
      bwd_mark_(n_, 0),
      wit_dist_(n_, kInf),
      wit_mark_(n_, 0),
      wit_heap_(n_) {
  // Base adjacency under the chosen metric (lightest parallel arc only).
  for (std::size_t u = 0; u < n_; ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w == kInf) continue;
      fwd_[u].push_back(Arc{e.to.value(), w});
      bwd_[e.to.value()].push_back(Arc{static_cast<std::uint32_t>(u), w});
    }
  }
  auto dedup = [](std::vector<Arc>& arcs) {
    std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
      if (a.to != b.to) return a.to < b.to;
      return a.weight < b.weight;
    });
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const Arc& a, const Arc& b) {
                             return a.to == b.to;
                           }),
               arcs.end());
  };
  for (std::size_t u = 0; u < n_; ++u) {
    dedup(fwd_[u]);
    dedup(bwd_[u]);
  }

  // Lazy-update contraction order on (edge difference + contracted
  // neighbors).
  IndexedMinHeap order(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    order.Push(v, ContractPriority(static_cast<std::uint32_t>(v)));
  }
  std::size_t next_rank = 0;
  while (!order.empty()) {
    std::uint32_t v = static_cast<std::uint32_t>(order.PopMin());
    // Lazy re-evaluation: if the priority rose, re-insert.
    double fresh = ContractPriority(v);
    if (!order.empty() && fresh > order.MinKey()) {
      order.Push(v, fresh);
      continue;
    }
    rank_[v] = next_rank++;
    (void)SimulateContract(v, /*apply=*/true);
    contracted_[v] = true;
    for (const Arc& a : fwd_[v]) ++contracted_neighbors_[a.to];
    for (const Arc& a : bwd_[v]) ++contracted_neighbors_[a.to];
  }

  // Assemble the upward/downward search graphs from the final arc sets
  // (originals + shortcuts accumulated into fwd_/bwd_).
  for (std::size_t u = 0; u < n_; ++u) {
    for (const Arc& a : fwd_[u]) {
      if (rank_[a.to] > rank_[u]) up_[u].push_back(a);
    }
    for (const Arc& a : bwd_[u]) {
      if (rank_[a.to] > rank_[u]) down_[u].push_back(a);
    }
    dedup(up_[u]);
    dedup(down_[u]);
  }
}

double ContractionHierarchy::WitnessDistance(std::uint32_t from,
                                             std::uint32_t target,
                                             std::uint32_t excluded,
                                             double cutoff) {
  ++wit_generation_;
  wit_heap_.Clear();
  auto dist = [&](std::uint32_t v) {
    return wit_mark_[v] == wit_generation_ ? wit_dist_[v] : kInf;
  };
  wit_dist_[from] = 0;
  wit_mark_[from] = wit_generation_;
  wit_heap_.Push(from, 0);
  std::size_t settled = 0;
  while (!wit_heap_.empty() && settled < options_.witness_search_limit) {
    std::uint32_t u = static_cast<std::uint32_t>(wit_heap_.PopMin());
    ++settled;
    double du = dist(u);
    if (u == target || du > cutoff) break;
    for (const Arc& a : fwd_[u]) {
      if (a.to == excluded || contracted_[a.to]) continue;
      double nd = du + a.weight;
      if (nd < dist(a.to) && nd <= cutoff) {
        wit_dist_[a.to] = nd;
        wit_mark_[a.to] = wit_generation_;
        wit_heap_.PushOrDecrease(a.to, nd);
      }
    }
  }
  return dist(target);
}

std::vector<std::pair<ContractionHierarchy::Arc, std::uint32_t>>
ContractionHierarchy::SimulateContract(std::uint32_t v, bool apply) {
  std::vector<std::pair<Arc, std::uint32_t>> shortcuts;  // (arc, from)
  for (const Arc& in : bwd_[v]) {
    if (contracted_[in.to]) continue;
    for (const Arc& out : fwd_[v]) {
      if (contracted_[out.to] || out.to == in.to) continue;
      double via = in.weight + out.weight;
      double witness = WitnessDistance(in.to, out.to, v, via);
      if (witness <= via) continue;  // a path avoiding v is as good
      shortcuts.push_back({Arc{out.to, via}, in.to});
    }
  }
  if (apply) {
    for (const auto& [arc, from] : shortcuts) {
      fwd_[from].push_back(arc);
      bwd_[arc.to].push_back(Arc{from, arc.weight});
      ++num_shortcuts_;
    }
  }
  return shortcuts;
}

double ContractionHierarchy::ContractPriority(std::uint32_t v) {
  if (contracted_[v]) return kInf;
  std::size_t removed = 0;
  for (const Arc& a : fwd_[v]) removed += contracted_[a.to] ? 0 : 1;
  for (const Arc& a : bwd_[v]) removed += contracted_[a.to] ? 0 : 1;
  std::size_t added = SimulateContract(v, /*apply=*/false).size();
  return static_cast<double>(added) - static_cast<double>(removed) +
         2.0 * static_cast<double>(contracted_neighbors_[v]);
}

double ContractionHierarchy::Distance(NodeId src, NodeId dst) {
  if (src == dst) return 0.0;
  ++generation_;
  fwd_heap_.Clear();
  bwd_heap_.Clear();
  last_settled_count_ = 0;

  auto fdist = [&](std::uint32_t v) {
    return fwd_mark_[v] == generation_ ? fwd_dist_[v] : kInf;
  };
  auto bdist = [&](std::uint32_t v) {
    return bwd_mark_[v] == generation_ ? bwd_dist_[v] : kInf;
  };

  fwd_dist_[src.value()] = 0;
  fwd_mark_[src.value()] = generation_;
  bwd_dist_[dst.value()] = 0;
  bwd_mark_[dst.value()] = generation_;
  fwd_heap_.Push(src.value(), 0);
  bwd_heap_.Push(dst.value(), 0);

  double best = kInf;
  // Upward searches from both ends; a settled node reached by both sides
  // closes a candidate path. Standard CH stopping: a side stops once its
  // queue minimum exceeds the best candidate.
  while (!fwd_heap_.empty() || !bwd_heap_.empty()) {
    bool fwd_turn;
    if (fwd_heap_.empty()) {
      fwd_turn = false;
    } else if (bwd_heap_.empty()) {
      fwd_turn = true;
    } else {
      fwd_turn = fwd_heap_.MinKey() <= bwd_heap_.MinKey();
    }
    IndexedMinHeap& heap = fwd_turn ? fwd_heap_ : bwd_heap_;
    if (heap.MinKey() >= best) {
      heap.Clear();
      continue;
    }
    std::uint32_t u = static_cast<std::uint32_t>(heap.PopMin());
    ++last_settled_count_;
    double du = fwd_turn ? fdist(u) : bdist(u);
    double other = fwd_turn ? bdist(u) : fdist(u);
    if (other != kInf) best = std::min(best, du + other);
    const std::vector<Arc>& arcs = fwd_turn ? up_[u] : down_[u];
    for (const Arc& a : arcs) {
      double nd = du + a.weight;
      if (fwd_turn) {
        if (nd < fdist(a.to)) {
          fwd_dist_[a.to] = nd;
          fwd_mark_[a.to] = generation_;
          fwd_heap_.PushOrDecrease(a.to, nd);
        }
      } else {
        if (nd < bdist(a.to)) {
          bwd_dist_[a.to] = nd;
          bwd_mark_[a.to] = generation_;
          bwd_heap_.PushOrDecrease(a.to, nd);
        }
      }
    }
  }
  return best;
}

std::size_t ContractionHierarchy::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  auto count = [&](const std::vector<std::vector<Arc>>& adj) {
    for (const auto& arcs : adj) bytes += arcs.capacity() * sizeof(Arc);
  };
  count(fwd_);
  count(bwd_);
  count(up_);
  count(down_);
  bytes += n_ * (2 * sizeof(double) + 2 * sizeof(std::uint32_t) +
                 sizeof(std::size_t) + 2);
  return bytes;
}

}  // namespace xar
