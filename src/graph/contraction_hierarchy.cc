#include "graph/contraction_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "graph/path_profile.h"

namespace xar {

ContractionHierarchy::ContractionHierarchy(const RoadGraph& graph,
                                           Metric metric, ChOptions options)
    : graph_(&graph),
      metric_(metric),
      n_(graph.NumNodes()),
      options_(options),
      fwd_(n_),
      bwd_(n_),
      contracted_(n_, 0),
      in_batch_(n_, 0),
      contracted_neighbors_(n_, 0),
      priority_(n_, 0.0),
      rank_(n_, 0),
      up_(n_),
      down_(n_) {
  Stopwatch build_timer;
  // Base adjacency under the chosen metric (lightest parallel arc only).
  for (std::size_t u = 0; u < n_; ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w == kInf) continue;
      fwd_[u].push_back(Arc{e.to.value(), w, kNoVia});
      bwd_[e.to.value()].push_back(
          Arc{static_cast<std::uint32_t>(u), w, kNoVia});
    }
  }
  auto dedup = [](std::vector<Arc>& arcs) {
    std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
      if (a.to != b.to) return a.to < b.to;
      return a.weight < b.weight;
    });
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const Arc& a, const Arc& b) {
                             return a.to == b.to;
                           }),
               arcs.end());
  };
  for (std::size_t u = 0; u < n_; ++u) {
    dedup(fwd_[u]);
    dedup(bwd_[u]);
  }

  Contract();

  // Assemble the upward/downward search graphs from the final arc sets
  // (originals + shortcuts accumulated into fwd_/bwd_), and the unpack map
  // over ALL final arcs — shortcut expansion recurses through pairs that
  // the rank cut excludes from up_/down_.
  for (std::size_t u = 0; u < n_; ++u) {
    for (const Arc& a : fwd_[u]) {
      if (rank_[a.to] > rank_[u]) up_[u].push_back(a);
      auto [it, inserted] = unpack_.try_emplace(
          PackPair(static_cast<std::uint32_t>(u), a.to), a);
      if (!inserted && a.weight < it->second.weight) it->second = a;
    }
    for (const Arc& a : bwd_[u]) {
      if (rank_[a.to] > rank_[u]) down_[u].push_back(a);
    }
    dedup(up_[u]);
    dedup(down_[u]);
  }

  // Construction-only state is dead weight from here on; the query side
  // reads up_/down_/unpack_/rank_ only.
  std::vector<std::vector<Arc>>().swap(fwd_);
  std::vector<std::vector<Arc>>().swap(bwd_);
  std::vector<std::uint8_t>().swap(contracted_);
  std::vector<std::uint8_t>().swap(in_batch_);
  std::vector<std::uint32_t>().swap(contracted_neighbors_);
  std::vector<double>().swap(priority_);
  build_millis_ = build_timer.ElapsedMillis();
}

ContractionHierarchy::~ContractionHierarchy() = default;

void ContractionHierarchy::Contract() {
  std::size_t threads = options_.preprocess_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (n_ > 0) threads = std::min(threads, n_);
  threads_used_ = std::max<std::size_t>(1, threads);

  std::vector<WitnessSpace> spaces;
  spaces.reserve(threads_used_);
  for (std::size_t t = 0; t < threads_used_; ++t) spaces.emplace_back(n_);
  // Extra workers only; chunk 0 always runs on the calling thread, so a
  // 1-thread build spawns nothing.
  std::unique_ptr<ThreadPool> pool;
  if (threads_used_ > 1) {
    pool = std::make_unique<ThreadPool>(threads_used_ - 1);
  }

  // Runs fn(space, i) for i in [0, count), statically chunked so each chunk
  // owns one witness space. The phases below only ever write per-index
  // slots (priority_[v], shortcut lists), so results are independent of the
  // chunking; joining the futures sequences each phase before the next.
  auto parallel_for = [&](std::size_t count, auto&& fn) {
    const std::size_t chunks = std::min(threads_used_, std::max<std::size_t>(
                                                           1, count));
    const std::size_t per = (count + chunks - 1) / chunks;
    std::vector<std::future<void>> helpers;
    helpers.reserve(chunks > 0 ? chunks - 1 : 0);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(count, begin + per);
      if (begin >= end) break;
      helpers.push_back(pool->Submit([&, begin, end, c] {
        for (std::size_t i = begin; i < end; ++i) fn(spaces[c], i);
      }));
    }
    const std::size_t end0 = std::min(count, per);
    for (std::size_t i = 0; i < end0; ++i) fn(spaces[0], i);
    for (std::future<void>& helper : helpers) helper.get();
  };

  // Initial priorities for every node.
  parallel_for(n_, [&](WitnessSpace& space, std::size_t v) {
    priority_[v] = ContractPriority(space, static_cast<std::uint32_t>(v));
  });

  // `a` strictly before `b` in the contraction order (id tie-break keeps
  // batch selection — and hence the whole hierarchy — deterministic).
  auto before = [&](std::uint32_t a, std::uint32_t b) {
    if (priority_[a] != priority_[b]) return priority_[a] < priority_[b];
    return a < b;
  };

  std::vector<std::uint32_t> alive(n_);
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<std::uint32_t> batch;
  std::vector<std::vector<std::pair<Arc, std::uint32_t>>> batch_shortcuts;
  std::vector<std::uint32_t> dirty;
  std::size_t next_rank = 0;

  while (!alive.empty()) {
    ++num_batches_;
    // Select the independent set: uncontracted nodes that order before all
    // their uncontracted neighbors. The global minimum always qualifies, so
    // every round makes progress; two neighbors can never both qualify.
    batch.clear();
    for (std::uint32_t v : alive) {
      bool is_min = true;
      for (const Arc& a : fwd_[v]) {
        if (!contracted_[a.to] && before(a.to, v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) {
        for (const Arc& a : bwd_[v]) {
          if (!contracted_[a.to] && before(a.to, v)) {
            is_min = false;
            break;
          }
        }
      }
      if (is_min) batch.push_back(v);
    }
    for (std::uint32_t v : batch) in_batch_[v] = 1;

    // Simulate all batch contractions in parallel against the same
    // pre-batch graph. Witness searches avoid every batch member, so a
    // skipped shortcut always has a surviving witness path no matter which
    // order the batch lands in (equal-weight witnesses through two batch
    // members could otherwise cancel each other's shortcuts).
    batch_shortcuts.assign(batch.size(), {});
    parallel_for(batch.size(), [&](WitnessSpace& space, std::size_t i) {
      batch_shortcuts[i] = SimulateContract(space, batch[i]);
    });

    // Apply in ascending node id (the selection scan order): ranks,
    // shortcut arcs and counters land exactly as a serial replay would.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::uint32_t v = batch[i];
      rank_[v] = next_rank++;
      for (const auto& [arc, from] : batch_shortcuts[i]) {
        fwd_[from].push_back(arc);
        bwd_[arc.to].push_back(Arc{from, arc.weight, arc.via});
        ++num_shortcuts_;
      }
      contracted_[v] = 1;
    }

    // Lazy re-evaluation: only neighbors of the batch changed (lost a
    // neighbor and/or gained shortcut arcs) — refresh just their priorities.
    dirty.clear();
    for (std::uint32_t v : batch) {
      in_batch_[v] = 0;
      for (const Arc& a : fwd_[v]) {
        ++contracted_neighbors_[a.to];
        if (!contracted_[a.to]) dirty.push_back(a.to);
      }
      for (const Arc& a : bwd_[v]) {
        ++contracted_neighbors_[a.to];
        if (!contracted_[a.to]) dirty.push_back(a.to);
      }
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    parallel_for(dirty.size(), [&](WitnessSpace& space, std::size_t i) {
      priority_[dirty[i]] = ContractPriority(space, dirty[i]);
    });

    alive.erase(std::remove_if(alive.begin(), alive.end(),
                               [&](std::uint32_t v) {
                                 return contracted_[v] != 0;
                               }),
                alive.end());
  }
}

void ContractionHierarchy::WitnessSearch(WitnessSpace& space,
                                         std::uint32_t from,
                                         std::uint32_t excluded,
                                         double cutoff) const {
  ++space.generation;
  space.heap.Clear();
  space.dist[from] = 0;
  space.mark[from] = space.generation;
  space.heap.Push(from, 0);
  std::size_t settled = 0;
  while (!space.heap.empty() && settled < options_.witness_search_limit) {
    std::uint32_t u = static_cast<std::uint32_t>(space.heap.PopMin());
    ++settled;
    double du = WitnessLabel(space, u);
    if (du > cutoff) break;
    for (const Arc& a : fwd_[u]) {
      if (a.to == excluded || contracted_[a.to] || in_batch_[a.to]) continue;
      double nd = du + a.weight;
      if (nd < WitnessLabel(space, a.to) && nd <= cutoff) {
        space.dist[a.to] = nd;
        space.mark[a.to] = space.generation;
        space.heap.PushOrDecrease(a.to, nd);
      }
    }
  }
}

std::vector<std::pair<ContractionHierarchy::Arc, std::uint32_t>>
ContractionHierarchy::SimulateContract(WitnessSpace& space,
                                       std::uint32_t v) const {
  std::vector<std::pair<Arc, std::uint32_t>> shortcuts;  // (arc, from)
  for (const Arc& in : bwd_[v]) {
    if (contracted_[in.to]) continue;
    // One bounded Dijkstra from this incoming neighbor serves every
    // outgoing target (cutoff = the longest candidate via-path), instead of
    // one search per (in, out) pair.
    double max_out = -1.0;
    for (const Arc& out : fwd_[v]) {
      if (contracted_[out.to] || out.to == in.to) continue;
      max_out = std::max(max_out, out.weight);
    }
    if (max_out < 0.0) continue;
    WitnessSearch(space, in.to, v, in.weight + max_out);
    for (const Arc& out : fwd_[v]) {
      if (contracted_[out.to] || out.to == in.to) continue;
      double via = in.weight + out.weight;
      if (WitnessLabel(space, out.to) <= via) continue;  // witness path found
      shortcuts.push_back({Arc{out.to, via, v}, in.to});
    }
  }
  return shortcuts;
}

double ContractionHierarchy::ContractPriority(WitnessSpace& space,
                                              std::uint32_t v) const {
  if (contracted_[v]) return kInf;
  std::size_t removed = 0;
  for (const Arc& a : fwd_[v]) removed += contracted_[a.to] ? 0 : 1;
  for (const Arc& a : bwd_[v]) removed += contracted_[a.to] ? 0 : 1;
  std::size_t added = SimulateContract(space, v).size();
  return static_cast<double>(added) - static_cast<double>(removed) +
         2.0 * static_cast<double>(contracted_neighbors_[v]);
}

ChQuery& ContractionHierarchy::DefaultQuery() {
  if (!default_query_) default_query_ = std::make_unique<ChQuery>(*this);
  return *default_query_;
}

double ContractionHierarchy::Distance(NodeId src, NodeId dst) {
  return DefaultQuery().Distance(src, dst);
}

Path ContractionHierarchy::Route(NodeId src, NodeId dst) {
  return DefaultQuery().Route(src, dst);
}

std::size_t ContractionHierarchy::last_settled_count() const {
  return default_query_ ? default_query_->last_settled_count() : 0;
}

std::size_t ContractionHierarchy::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  auto count = [&](const std::vector<std::vector<Arc>>& adj) {
    for (const auto& arcs : adj) bytes += arcs.capacity() * sizeof(Arc);
  };
  count(up_);
  count(down_);
  // Hash map: key + value per entry plus bucket/link overhead.
  bytes += unpack_.size() *
           (sizeof(std::uint64_t) + sizeof(Arc) + 2 * sizeof(void*));
  bytes += rank_.capacity() * sizeof(std::size_t);
  return bytes;
}

ChQuery::ChQuery(const ContractionHierarchy& ch)
    : ch_(ch),
      fwd_heap_(ch.n_),
      bwd_heap_(ch.n_),
      fwd_dist_(ch.n_, kInf),
      bwd_dist_(ch.n_, kInf),
      fwd_mark_(ch.n_, 0),
      bwd_mark_(ch.n_, 0),
      fwd_parent_(ch.n_, kNoNode),
      bwd_parent_(ch.n_, kNoNode) {}

double ChQuery::Run(NodeId src, NodeId dst, bool record_parents,
                    std::uint32_t* meet) {
  using Arc = ContractionHierarchy::Arc;
  ++generation_;
  fwd_heap_.Clear();
  bwd_heap_.Clear();
  last_settled_count_ = 0;
  *meet = kNoNode;

  auto fdist = [&](std::uint32_t v) {
    return fwd_mark_[v] == generation_ ? fwd_dist_[v] : kInf;
  };
  auto bdist = [&](std::uint32_t v) {
    return bwd_mark_[v] == generation_ ? bwd_dist_[v] : kInf;
  };

  fwd_dist_[src.value()] = 0;
  fwd_mark_[src.value()] = generation_;
  bwd_dist_[dst.value()] = 0;
  bwd_mark_[dst.value()] = generation_;
  if (record_parents) {
    fwd_parent_[src.value()] = kNoNode;
    bwd_parent_[dst.value()] = kNoNode;
  }
  fwd_heap_.Push(src.value(), 0);
  bwd_heap_.Push(dst.value(), 0);

  double best = kInf;
  // Upward searches from both ends; a settled node reached by both sides
  // closes a candidate path. Standard CH stopping: a side stops once its
  // queue minimum exceeds the best candidate.
  while (!fwd_heap_.empty() || !bwd_heap_.empty()) {
    bool fwd_turn;
    if (fwd_heap_.empty()) {
      fwd_turn = false;
    } else if (bwd_heap_.empty()) {
      fwd_turn = true;
    } else {
      fwd_turn = fwd_heap_.MinKey() <= bwd_heap_.MinKey();
    }
    IndexedMinHeap& heap = fwd_turn ? fwd_heap_ : bwd_heap_;
    if (heap.MinKey() >= best) {
      heap.Clear();
      continue;
    }
    std::uint32_t u = static_cast<std::uint32_t>(heap.PopMin());
    ++last_settled_count_;
    double du = fwd_turn ? fdist(u) : bdist(u);
    // Stall-on-demand: if a higher-ranked neighbor reaches u more cheaply
    // than u's own label, u cannot be the apex of a shortest up-down path
    // (the apex's upward label is exact, so it never stalls) — skip both
    // the candidate update and the relaxations.
    {
      const std::vector<Arc>& stall = fwd_turn ? ch_.down_[u] : ch_.up_[u];
      bool stalled = false;
      for (const Arc& a : stall) {
        double dp = fwd_turn ? fdist(a.to) : bdist(a.to);
        if (dp + a.weight < du) {
          stalled = true;
          break;
        }
      }
      if (stalled) continue;
    }
    double other = fwd_turn ? bdist(u) : fdist(u);
    if (other != kInf && du + other < best) {
      best = du + other;
      *meet = u;
    }
    const std::vector<Arc>& arcs = fwd_turn ? ch_.up_[u] : ch_.down_[u];
    for (const Arc& a : arcs) {
      double nd = du + a.weight;
      if (fwd_turn) {
        if (nd < fdist(a.to)) {
          fwd_dist_[a.to] = nd;
          fwd_mark_[a.to] = generation_;
          if (record_parents) fwd_parent_[a.to] = u;
          fwd_heap_.PushOrDecrease(a.to, nd);
        }
      } else {
        if (nd < bdist(a.to)) {
          bwd_dist_[a.to] = nd;
          bwd_mark_[a.to] = generation_;
          if (record_parents) bwd_parent_[a.to] = u;
          bwd_heap_.PushOrDecrease(a.to, nd);
        }
      }
    }
  }
  return best;
}

double ChQuery::Distance(NodeId src, NodeId dst) {
  if (src == dst) return 0.0;
  std::uint32_t meet;
  return Run(src, dst, /*record_parents=*/false, &meet);
}

void ChQuery::BuildBuckets(const std::vector<NodeId>& targets) {
  using Arc = ContractionHierarchy::Arc;
  if (buckets_.empty()) buckets_.resize(ch_.n_);
  for (std::uint32_t v : bucket_nodes_) buckets_[v].clear();
  bucket_nodes_.clear();

  auto bdist = [&](std::uint32_t v) {
    return bwd_mark_[v] == generation_ ? bwd_dist_[v] : kInf;
  };

  // One full backward upward search per target (no best-distance pruning —
  // every settled node serves every future source). A node stalled by a
  // higher-ranked neighbor cannot be the apex of a shortest up-down path,
  // so skipping its bucket entry never loses the minimum.
  for (std::size_t t = 0; t < targets.size(); ++t) {
    ++generation_;
    bwd_heap_.Clear();
    std::uint32_t dst = targets[t].value();
    bwd_dist_[dst] = 0;
    bwd_mark_[dst] = generation_;
    bwd_heap_.Push(dst, 0);
    while (!bwd_heap_.empty()) {
      std::uint32_t u = static_cast<std::uint32_t>(bwd_heap_.PopMin());
      ++last_settled_count_;
      double du = bdist(u);
      bool stalled = false;
      for (const Arc& a : ch_.up_[u]) {
        if (bdist(a.to) + a.weight < du) {
          stalled = true;
          break;
        }
      }
      if (stalled) continue;
      if (buckets_[u].empty()) bucket_nodes_.push_back(u);
      buckets_[u].push_back(
          BucketEntry{static_cast<std::uint32_t>(t), du});
      for (const Arc& a : ch_.down_[u]) {
        double nd = du + a.weight;
        if (nd < bdist(a.to)) {
          bwd_dist_[a.to] = nd;
          bwd_mark_[a.to] = generation_;
          bwd_heap_.PushOrDecrease(a.to, nd);
        }
      }
    }
  }
}

void ChQuery::ScanBuckets(NodeId src, double* row) {
  using Arc = ContractionHierarchy::Arc;
  ++generation_;
  fwd_heap_.Clear();

  auto fdist = [&](std::uint32_t v) {
    return fwd_mark_[v] == generation_ ? fwd_dist_[v] : kInf;
  };

  fwd_dist_[src.value()] = 0;
  fwd_mark_[src.value()] = generation_;
  fwd_heap_.Push(src.value(), 0);
  while (!fwd_heap_.empty()) {
    std::uint32_t u = static_cast<std::uint32_t>(fwd_heap_.PopMin());
    ++last_settled_count_;
    double du = fdist(u);
    bool stalled = false;
    for (const Arc& a : ch_.down_[u]) {
      if (fdist(a.to) + a.weight < du) {
        stalled = true;
        break;
      }
    }
    if (stalled) continue;
    for (const BucketEntry& e : buckets_[u]) {
      double d = du + e.dist;
      if (d < row[e.target]) row[e.target] = d;
    }
    for (const Arc& a : ch_.up_[u]) {
      double nd = du + a.weight;
      if (nd < fdist(a.to)) {
        fwd_dist_[a.to] = nd;
        fwd_mark_[a.to] = generation_;
        fwd_heap_.PushOrDecrease(a.to, nd);
      }
    }
  }
}

std::vector<double> ChQuery::DistancesToMany(
    NodeId src, const std::vector<NodeId>& targets) {
  last_settled_count_ = 0;
  BuildBuckets(targets);
  std::vector<double> out(targets.size(), kInf);
  ScanBuckets(src, out.data());
  return out;
}

std::vector<double> ChQuery::ManyToMany(const std::vector<NodeId>& sources,
                                        const std::vector<NodeId>& targets) {
  last_settled_count_ = 0;
  BuildBuckets(targets);
  std::vector<double> out(sources.size() * targets.size(), kInf);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    ScanBuckets(sources[s], out.data() + s * targets.size());
  }
  return out;
}

void ChQuery::AppendUnpacked(std::uint32_t from, std::uint32_t to,
                             std::vector<NodeId>* out) const {
  // Explicit stack; pushing (a, via) after (via, b) keeps emission
  // left-to-right. Each expansion strictly lowers the middle rank, so this
  // terminates at original arcs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  stack.emplace_back(from, to);
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    auto it = ch_.unpack_.find(ContractionHierarchy::PackPair(a, b));
    std::uint32_t via =
        it == ch_.unpack_.end() ? ContractionHierarchy::kNoVia : it->second.via;
    if (via == ContractionHierarchy::kNoVia) {
      out->push_back(NodeId(static_cast<NodeId::underlying_type>(b)));
      continue;
    }
    stack.emplace_back(via, b);
    stack.emplace_back(a, via);
  }
}

Path ChQuery::Route(NodeId src, NodeId dst) {
  if (src == dst) {
    Path p;
    p.nodes = {src};
    p.length_m = 0;
    p.time_s = 0;
    return p;
  }
  std::uint32_t meet;
  double d = Run(src, dst, /*record_parents=*/true, &meet);
  if (d == kInf || meet == kNoNode) return Path{};

  // Forward half: src -> meet along fwd_parent_, each hop an up_ arc.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t v = meet; v != kNoNode; v = fwd_parent_[v]) {
    chain.push_back(v);
    if (v == src.value()) break;
  }
  std::vector<NodeId> nodes;
  nodes.push_back(src);
  for (std::size_t i = chain.size(); i-- > 1;) {
    AppendUnpacked(chain[i], chain[i - 1], &nodes);
  }
  // Backward half: an arc {p, w} relaxed from u in down_[u] stands for the
  // real arc p -> u, so bwd_parent_[p] = u is p's real successor.
  for (std::uint32_t v = meet; v != dst.value();) {
    std::uint32_t next = bwd_parent_[v];
    AppendUnpacked(v, next, &nodes);
    v = next;
  }
  return ProfileNodePath(*ch_.graph_, std::move(nodes), ch_.metric_);
}

std::size_t ChQuery::MemoryFootprint() const {
  std::size_t bytes =
      sizeof(*this) +
      (fwd_dist_.capacity() + bwd_dist_.capacity()) * sizeof(double) +
      (fwd_mark_.capacity() + bwd_mark_.capacity() +
       fwd_parent_.capacity() + bwd_parent_.capacity()) *
          sizeof(std::uint32_t) +
      ch_.NumNodes() * 4 * sizeof(std::size_t);  // both heaps, approx
  bytes += buckets_.capacity() * sizeof(std::vector<BucketEntry>);
  for (const std::vector<BucketEntry>& b : buckets_) {
    bytes += b.capacity() * sizeof(BucketEntry);
  }
  bytes += bucket_nodes_.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace xar
