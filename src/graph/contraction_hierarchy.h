#ifndef XAR_GRAPH_CONTRACTION_HIERARCHY_H_
#define XAR_GRAPH_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/heap.h"
#include "graph/road_graph.h"

namespace xar {

/// Options for the contraction-hierarchy preprocessing.
struct ChOptions {
  /// Cap on nodes settled by each witness search; smaller builds faster but
  /// inserts more (harmless) shortcuts.
  std::size_t witness_search_limit = 60;
};

/// Contraction Hierarchies (Geisberger et al. 2008) over one metric of a
/// RoadGraph: nodes are contracted in importance order, shortcut arcs
/// preserve shortest distances among the remaining nodes, and queries run
/// a bidirectional Dijkstra that only ever moves *upward* in the hierarchy
/// — typically settling orders of magnitude fewer nodes than plain
/// Dijkstra on large networks.
///
/// Exactness does not depend on the node order or the witness-search limit;
/// both only affect preprocessing time and shortcut count.
class ContractionHierarchy {
 public:
  explicit ContractionHierarchy(const RoadGraph& graph,
                                Metric metric = Metric::kDriveDistance,
                                ChOptions options = {});

  /// One-to-one distance under the construction metric; +inf if
  /// unreachable.
  double Distance(NodeId src, NodeId dst);

  /// Shortcut arcs added during preprocessing.
  std::size_t NumShortcuts() const { return num_shortcuts_; }

  /// Nodes settled by the most recent query (both directions).
  std::size_t last_settled_count() const { return last_settled_count_; }

  /// Contraction rank of a node (0 = contracted first / least important).
  std::size_t RankOf(NodeId n) const { return rank_[n.value()]; }

  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Arc {
    std::uint32_t to;
    double weight;
  };

  /// Witness search: shortest u->w distance in the remaining graph avoiding
  /// `excluded`, capped at `limit` settled nodes and `cutoff` distance.
  double WitnessDistance(std::uint32_t from, std::uint32_t target,
                         std::uint32_t excluded, double cutoff);

  /// Shortcuts needed if `v` were contracted now (returned, not applied).
  std::vector<std::pair<Arc, std::uint32_t>> SimulateContract(
      std::uint32_t v, bool apply);

  /// Priority term: edge difference + contracted-neighbor count.
  double ContractPriority(std::uint32_t v);

  std::size_t n_;
  ChOptions options_;

  // Remaining-graph adjacency during construction (forward and backward).
  std::vector<std::vector<Arc>> fwd_;
  std::vector<std::vector<Arc>> bwd_;
  std::vector<bool> contracted_;
  std::vector<std::uint32_t> contracted_neighbors_;
  std::vector<std::size_t> rank_;

  // Final search graphs: upward arcs for the forward search, and upward
  // arcs of the reverse graph for the backward search.
  std::vector<std::vector<Arc>> up_;
  std::vector<std::vector<Arc>> down_;

  // Query state (reused).
  IndexedMinHeap fwd_heap_;
  IndexedMinHeap bwd_heap_;
  std::vector<double> fwd_dist_;
  std::vector<double> bwd_dist_;
  std::vector<std::uint32_t> fwd_mark_;
  std::vector<std::uint32_t> bwd_mark_;
  std::uint32_t generation_ = 0;

  // Witness-search state (reused).
  std::vector<double> wit_dist_;
  std::vector<std::uint32_t> wit_mark_;
  std::uint32_t wit_generation_ = 0;
  IndexedMinHeap wit_heap_;

  std::size_t num_shortcuts_ = 0;
  std::size_t last_settled_count_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_CONTRACTION_HIERARCHY_H_
