#ifndef XAR_GRAPH_CONTRACTION_HIERARCHY_H_
#define XAR_GRAPH_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/heap.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

class ChQuery;

/// Options for the contraction-hierarchy preprocessing.
struct ChOptions {
  /// Cap on nodes settled by each witness search; smaller builds faster but
  /// inserts more (harmless) shortcuts.
  std::size_t witness_search_limit = 60;

  /// Worker threads for the contraction loop (0 = hardware concurrency).
  /// The hierarchy produced is byte-identical for every thread count: batch
  /// membership, shortcut decisions and ranks depend only on the graph.
  std::size_t preprocess_threads = 0;
};

/// Contraction Hierarchies (Geisberger et al. 2008) over one metric of a
/// RoadGraph: nodes are contracted in importance order, shortcut arcs
/// preserve shortest distances among the remaining nodes, and queries run
/// a bidirectional Dijkstra that only ever moves *upward* in the hierarchy
/// — typically settling orders of magnitude fewer nodes than plain
/// Dijkstra on large networks.
///
/// Exactness does not depend on the node order or the witness-search limit;
/// both only affect preprocessing time and shortcut count.
///
/// Every shortcut remembers the node it bypassed, so queries can *unpack*
/// their search-graph arcs back into original-graph node chains (Route).
/// After construction the hierarchy is immutable; any number of ChQuery
/// workspaces may read it concurrently. The Distance/Route methods on this
/// class delegate to one lazily created internal ChQuery and are therefore
/// convenience API for single-threaded use only.
///
/// Preprocessing contracts *batches* of independent nodes (pairwise
/// non-adjacent local priority minima) in parallel across
/// ChOptions::preprocess_threads workers, each with its own witness-search
/// workspace. Ties break on node id and witness searches during a batch
/// avoid every batch member, so the resulting hierarchy — ranks, shortcuts,
/// unpack map, and therefore every query answer — is identical for any
/// thread count (see DESIGN.md "Parallel preprocessing").
class ContractionHierarchy {
 public:
  explicit ContractionHierarchy(const RoadGraph& graph,
                                Metric metric = Metric::kDriveDistance,
                                ChOptions options = {});
  ~ContractionHierarchy();

  // ChQuery instances keep a reference to this hierarchy.
  ContractionHierarchy(const ContractionHierarchy&) = delete;
  ContractionHierarchy& operator=(const ContractionHierarchy&) = delete;

  /// One-to-one distance under the construction metric; +inf if
  /// unreachable. Not thread-safe (see class comment).
  double Distance(NodeId src, NodeId dst);

  /// One-to-one path in original-graph nodes (shortcuts unpacked), with
  /// both length and time totals. Empty path if unreachable. Not
  /// thread-safe (see class comment).
  Path Route(NodeId src, NodeId dst);

  /// Shortcut arcs added during preprocessing.
  std::size_t NumShortcuts() const { return num_shortcuts_; }

  /// Nodes settled by the most recent convenience query (both directions).
  std::size_t last_settled_count() const;

  /// Contraction rank of a node (0 = contracted first / least important).
  std::size_t RankOf(NodeId n) const { return rank_[n.value()]; }

  Metric metric() const { return metric_; }
  std::size_t NumNodes() const { return n_; }

  /// Wall time the contraction loop took, and the worker-thread count it
  /// ran with (after resolving preprocess_threads == 0). For the stats
  /// surface and the preprocessing bench.
  double build_millis() const { return build_millis_; }
  std::size_t threads_used() const { return threads_used_; }
  /// Independent-set batches the contraction ran in (parallelism rounds).
  std::size_t num_batches() const { return num_batches_; }

  std::size_t MemoryFootprint() const;

 private:
  friend class ChQuery;

  static constexpr double kInf = std::numeric_limits<double>::infinity();
  /// `via` value marking an original (non-shortcut) arc.
  static constexpr std::uint32_t kNoVia = 0xFFFFFFFFu;

  struct Arc {
    std::uint32_t to;
    double weight;
    std::uint32_t via;  ///< contracted middle node, or kNoVia if original
  };

  static std::uint64_t PackPair(std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Per-thread witness-search scratch: distance labels, generation marks
  /// and the search heap. One per preprocessing worker; reads the shared
  /// remaining graph, writes only itself.
  struct WitnessSpace {
    explicit WitnessSpace(std::size_t n)
        : dist(n, kInf), mark(n, 0), heap(n) {}
    std::vector<double> dist;
    std::vector<std::uint32_t> mark;
    std::uint32_t generation = 0;
    IndexedMinHeap heap;
  };

  /// One witness search in `space`: bounded Dijkstra from `from` through
  /// the remaining graph avoiding `excluded` and every current batch
  /// member, capped at the witness settle limit and `cutoff` distance.
  /// Labels stay in `space` afterwards (read with WitnessLabel) so a single
  /// search serves every outgoing target of the node being simulated.
  void WitnessSearch(WitnessSpace& space, std::uint32_t from,
                     std::uint32_t excluded, double cutoff) const;

  /// Distance label of `v` from the most recent WitnessSearch (kInf if
  /// unreached).
  static double WitnessLabel(const WitnessSpace& space, std::uint32_t v) {
    return space.mark[v] == space.generation ? space.dist[v] : kInf;
  }

  /// Shortcuts needed if `v` were contracted now (returned, not applied).
  /// Read-only on the shared graph state; safe to run concurrently for
  /// distinct batch members with distinct spaces.
  std::vector<std::pair<Arc, std::uint32_t>> SimulateContract(
      WitnessSpace& space, std::uint32_t v) const;

  /// Priority term: edge difference + contracted-neighbor count.
  double ContractPriority(WitnessSpace& space, std::uint32_t v) const;

  /// Runs the batched independent-set contraction loop (constructor body).
  void Contract();

  ChQuery& DefaultQuery();

  const RoadGraph* graph_;
  Metric metric_;
  std::size_t n_;
  ChOptions options_;

  // Remaining-graph adjacency during construction (forward and backward).
  // Freed once the final search graphs are assembled.
  std::vector<std::vector<Arc>> fwd_;
  std::vector<std::vector<Arc>> bwd_;
  // uint8 rather than vector<bool> so parallel witness searches read plain
  // bytes (no proxy objects); both are written only between batches.
  std::vector<std::uint8_t> contracted_;
  std::vector<std::uint8_t> in_batch_;
  std::vector<std::uint32_t> contracted_neighbors_;
  std::vector<double> priority_;
  std::vector<std::size_t> rank_;

  // Final search graphs: upward arcs for the forward search, and upward
  // arcs of the reverse graph for the backward search (an arc {p, w} in
  // down_[u] stands for the real arc p -> u).
  std::vector<std::vector<Arc>> up_;
  std::vector<std::vector<Arc>> down_;

  // (from, to) -> lightest final arc between them, for shortcut unpacking.
  // Covers every arc ever added, including those below query rank cuts, so
  // recursive expansion always terminates at original edges.
  std::unordered_map<std::uint64_t, Arc> unpack_;

  std::size_t num_shortcuts_ = 0;
  double build_millis_ = 0.0;
  std::size_t threads_used_ = 1;
  std::size_t num_batches_ = 0;
  std::unique_ptr<ChQuery> default_query_;
};

/// Per-thread query workspace over an immutable ContractionHierarchy.
/// Holds the bidirectional heaps, distance labels, and parent arrays; the
/// hierarchy itself is only read, so one hierarchy can serve many ChQuery
/// instances concurrently (one per thread — a single ChQuery is not
/// thread-safe).
class ChQuery {
 public:
  explicit ChQuery(const ContractionHierarchy& ch);

  /// One-to-one distance under the hierarchy's metric; +inf if unreachable.
  double Distance(NodeId src, NodeId dst);

  /// One-to-one path in original-graph nodes (shortcuts unpacked). Empty
  /// path if unreachable.
  Path Route(NodeId src, NodeId dst);

  /// One-to-many distances via target buckets (Knopp et al.): one backward
  /// upward search per target deposits (target, dist) entries in per-node
  /// buckets, then one forward upward search from `src` scans the buckets
  /// of every node it settles. Answers match Distance() exactly — stalling
  /// a node only suppresses bucket entries that a cheaper up-down path
  /// already covers. Returns one distance per target (+inf if unreachable).
  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets);

  /// Many-to-many distances, row-major |sources| x |targets|. The target
  /// buckets are built once and scanned by one forward search per source,
  /// so the per-source cost is independent of the target count.
  std::vector<double> ManyToMany(const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets);

  /// Nodes settled by the most recent query (both directions; for the batch
  /// queries, summed over every backward and forward search).
  std::size_t last_settled_count() const { return last_settled_count_; }

  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  /// Bidirectional upward search; returns the distance and, when finite,
  /// sets `*meet` to the node where the best forward/backward labels join.
  double Run(NodeId src, NodeId dst, bool record_parents,
             std::uint32_t* meet);

  /// Appends the original-graph expansion of search arc (from, to) to
  /// `out`, excluding `from` itself (assumed already present).
  void AppendUnpacked(std::uint32_t from, std::uint32_t to,
                      std::vector<NodeId>* out) const;

  /// One bucket entry: a target (by index into the batch's target list)
  /// reachable from the bucket's node by a downward path of length `dist`.
  struct BucketEntry {
    std::uint32_t target;
    double dist;
  };

  /// Clears the previous batch's buckets (O(touched)) and repopulates them
  /// with one backward upward search per target. Adds to
  /// last_settled_count_.
  void BuildBuckets(const std::vector<NodeId>& targets);

  /// Forward upward search from `src` scanning the current buckets; writes
  /// one distance per target of the batch into `row` (sized and pre-filled
  /// with kInf by the caller). Adds to last_settled_count_.
  void ScanBuckets(NodeId src, double* row);

  const ContractionHierarchy& ch_;

  IndexedMinHeap fwd_heap_;
  IndexedMinHeap bwd_heap_;
  std::vector<double> fwd_dist_;
  std::vector<double> bwd_dist_;
  std::vector<std::uint32_t> fwd_mark_;
  std::vector<std::uint32_t> bwd_mark_;
  std::vector<std::uint32_t> fwd_parent_;
  std::vector<std::uint32_t> bwd_parent_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;

  // Bucket workspace for the batch queries, allocated on first use.
  // buckets_ is indexed by node; bucket_nodes_ lists the nodes with
  // non-empty buckets so the next batch clears in O(touched).
  std::vector<std::vector<BucketEntry>> buckets_;
  std::vector<std::uint32_t> bucket_nodes_;
};

}  // namespace xar

#endif  // XAR_GRAPH_CONTRACTION_HIERARCHY_H_
