#include "graph/dijkstra.h"

#include <algorithm>
#include <cassert>

#include "graph/path_profile.h"

namespace xar {

DijkstraEngine::DijkstraEngine(const RoadGraph& graph)
    : graph_(graph),
      heap_(graph.NumNodes()),
      dist_(graph.NumNodes(), kInf),
      visit_mark_(graph.NumNodes(), 0),
      parent_(graph.NumNodes()) {}

void DijkstraEngine::Reset() {
  ++generation_;
  heap_.Clear();
  last_settled_count_ = 0;
}

template <typename DoneFn>
void DijkstraEngine::Run(NodeId src, Metric metric, bool record_parents,
                         DoneFn done) {
  Reset();
  SetDist(src.value(), 0.0);
  if (record_parents) parent_[src.value()] = NodeId::Invalid();
  heap_.Push(src.value(), 0.0);
  while (!heap_.empty()) {
    std::size_t u = heap_.PopMin();
    ++last_settled_count_;
    if (done(NodeId(static_cast<NodeId::underlying_type>(u)))) return;
    double du = Dist(u);
    for (const RoadEdge& e :
         graph_.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w == kInf) continue;
      double nd = du + w;
      std::size_t v = e.to.value();
      if (nd < Dist(v)) {
        SetDist(v, nd);
        if (record_parents)
          parent_[v] = NodeId(static_cast<NodeId::underlying_type>(u));
        heap_.PushOrDecrease(v, nd);
      }
    }
  }
}

double DijkstraEngine::Distance(NodeId src, NodeId dst, Metric metric) {
  Run(src, metric, /*record_parents=*/false,
      [dst](NodeId settled) { return settled == dst; });
  return Dist(dst.value());
}

Path DijkstraEngine::ShortestPath(NodeId src, NodeId dst, Metric metric) {
  Run(src, metric, /*record_parents=*/true,
      [dst](NodeId settled) { return settled == dst; });
  if (Dist(dst.value()) == kInf) return Path{};

  // Reconstruct node chain; ProfileNodePath fills in both totals.
  std::vector<NodeId> nodes;
  for (NodeId v = dst; v.valid(); v = parent_[v.value()]) {
    nodes.push_back(v);
    if (v == src) break;
  }
  std::reverse(nodes.begin(), nodes.end());
  return ProfileNodePath(graph_, std::move(nodes), metric);
}

std::size_t DijkstraEngine::MemoryFootprint() const {
  return sizeof(*this) + dist_.capacity() * sizeof(double) +
         visit_mark_.capacity() * sizeof(std::uint32_t) +
         parent_.capacity() * sizeof(NodeId) + heap_.MemoryFootprint();
}

std::vector<double> DijkstraEngine::DistancesToMany(
    NodeId src, const std::vector<NodeId>& targets, Metric metric) {
  // Mark targets for O(1) membership tests.
  std::vector<std::uint8_t> is_target(graph_.NumNodes(), 0);
  std::size_t remaining = 0;
  for (NodeId t : targets) {
    if (!is_target[t.value()]) {
      is_target[t.value()] = 1;
      ++remaining;
    }
  }
  Run(src, metric, /*record_parents=*/false, [&](NodeId settled) {
    if (is_target[settled.value()]) {
      is_target[settled.value()] = 0;
      if (--remaining == 0) return true;
    }
    return false;
  });
  std::vector<double> out;
  out.reserve(targets.size());
  for (NodeId t : targets) out.push_back(Dist(t.value()));
  return out;
}

std::vector<std::pair<NodeId, double>> DijkstraEngine::NodesWithin(
    NodeId src, double bound, Metric metric) {
  std::vector<std::pair<NodeId, double>> settled;
  Run(src, metric, /*record_parents=*/false, [&](NodeId u) {
    double d = Dist(u.value());
    if (d > bound) return true;  // Monotone frontier: all later pops exceed.
    settled.emplace_back(u, d);
    return false;
  });
  return settled;
}

BidirectionalDijkstra::BidirectionalDijkstra(const RoadGraph& graph)
    : graph_(graph),
      fwd_heap_(graph.NumNodes()),
      bwd_heap_(graph.NumNodes()),
      fwd_dist_(graph.NumNodes(), kInf),
      bwd_dist_(graph.NumNodes(), kInf),
      fwd_mark_(graph.NumNodes(), 0),
      bwd_mark_(graph.NumNodes(), 0) {
  // Build reverse CSR once.
  std::size_t n = graph.NumNodes();
  rev_offsets_.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      ++rev_offsets_[e.to.value() + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) rev_offsets_[i] += rev_offsets_[i - 1];
  rev_edges_.resize(graph.NumEdges());
  std::vector<std::size_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (std::size_t u = 0; u < n; ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      RoadEdge rev = e;
      rev.to = NodeId(static_cast<NodeId::underlying_type>(u));
      rev_edges_[cursor[e.to.value()]++] = rev;
    }
  }
}

double BidirectionalDijkstra::Distance(NodeId src, NodeId dst, Metric metric) {
  if (src == dst) return 0.0;
  ++generation_;
  fwd_heap_.Clear();
  bwd_heap_.Clear();

  auto fdist = [&](std::size_t v) {
    return fwd_mark_[v] == generation_ ? fwd_dist_[v] : kInf;
  };
  auto bdist = [&](std::size_t v) {
    return bwd_mark_[v] == generation_ ? bwd_dist_[v] : kInf;
  };

  fwd_dist_[src.value()] = 0.0;
  fwd_mark_[src.value()] = generation_;
  bwd_dist_[dst.value()] = 0.0;
  bwd_mark_[dst.value()] = generation_;
  fwd_heap_.Push(src.value(), 0.0);
  bwd_heap_.Push(dst.value(), 0.0);

  double best = kInf;
  while (!fwd_heap_.empty() || !bwd_heap_.empty()) {
    double fmin = fwd_heap_.empty() ? kInf : fwd_heap_.MinKey();
    double bmin = bwd_heap_.empty() ? kInf : bwd_heap_.MinKey();
    if (fmin + bmin >= best) break;  // Standard stopping criterion.

    bool forward = fmin <= bmin;
    IndexedMinHeap& heap = forward ? fwd_heap_ : bwd_heap_;
    std::size_t u = heap.PopMin();
    double du = forward ? fdist(u) : bdist(u);
    double other = forward ? bdist(u) : fdist(u);
    if (other != kInf) best = std::min(best, du + other);

    if (forward) {
      for (const RoadEdge& e :
           graph_.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
        double w = RoadGraph::EdgeWeight(e, metric);
        if (w == kInf) continue;
        std::size_t v = e.to.value();
        double nd = du + w;
        if (nd < fdist(v)) {
          fwd_dist_[v] = nd;
          fwd_mark_[v] = generation_;
          fwd_heap_.PushOrDecrease(v, nd);
          if (bdist(v) != kInf) best = std::min(best, nd + bdist(v));
        }
      }
    } else {
      for (std::size_t i = rev_offsets_[u]; i < rev_offsets_[u + 1]; ++i) {
        const RoadEdge& e = rev_edges_[i];
        double w = RoadGraph::EdgeWeight(e, metric);
        if (w == kInf) continue;
        std::size_t v = e.to.value();
        double nd = du + w;
        if (nd < bdist(v)) {
          bwd_dist_[v] = nd;
          bwd_mark_[v] = generation_;
          bwd_heap_.PushOrDecrease(v, nd);
          if (fdist(v) != kInf) best = std::min(best, nd + fdist(v));
        }
      }
    }
  }
  return best;
}

}  // namespace xar
