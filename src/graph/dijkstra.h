#ifndef XAR_GRAPH_DIJKSTRA_H_
#define XAR_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/heap.h"
#include "common/ids.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Reusable single-source shortest-path engine over a RoadGraph.
///
/// Allocates its working arrays once (sized to the graph) and reuses them
/// across queries via a generation counter, so repeated queries do not pay
/// O(V) reset costs. Not thread-safe; create one engine per thread.
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadGraph& graph);

  /// One-to-one distance under `metric`; +inf if unreachable.
  double Distance(NodeId src, NodeId dst, Metric metric);

  /// One-to-one path with both length and (driving) time filled in.
  Path ShortestPath(NodeId src, NodeId dst, Metric metric);

  /// One-to-many: distance from `src` to each of `targets` (same order),
  /// stopping as soon as all targets are settled. Unreachable => +inf.
  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets,
                                      Metric metric);

  /// Settles every node with distance <= `bound` from `src`. Returns the
  /// settled (node, distance) pairs, in nondecreasing distance order.
  std::vector<std::pair<NodeId, double>> NodesWithin(NodeId src, double bound,
                                                     Metric metric);

  /// Number of heap pops in the most recent query (for benchmarking).
  std::size_t last_settled_count() const { return last_settled_count_; }

  /// Bytes held by this engine's per-query workspace.
  std::size_t MemoryFootprint() const;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  void Reset();
  double Dist(std::size_t v) const {
    return visit_mark_[v] == generation_ ? dist_[v] : kInf;
  }
  void SetDist(std::size_t v, double d) {
    visit_mark_[v] = generation_;
    dist_[v] = d;
  }

  /// Runs Dijkstra from src until `done(settled_node)` returns true or the
  /// frontier empties. Records parents when `record_parents`.
  template <typename DoneFn>
  void Run(NodeId src, Metric metric, bool record_parents, DoneFn done);

  const RoadGraph& graph_;
  IndexedMinHeap heap_;
  std::vector<double> dist_;
  std::vector<std::uint32_t> visit_mark_;
  std::vector<NodeId> parent_;
  std::uint32_t generation_ = 0;
  std::size_t last_settled_count_ = 0;
};

/// Bidirectional Dijkstra point-to-point query. Roughly halves the search
/// space of unidirectional Dijkstra on city-scale graphs; used by the
/// distance oracle on the booking/creation path.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const RoadGraph& graph);

  /// One-to-one distance under `metric`; +inf if unreachable.
  ///
  /// Note: requires a metric whose reverse graph is available; this class
  /// builds the reverse adjacency on construction.
  double Distance(NodeId src, NodeId dst, Metric metric);

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  const RoadGraph& graph_;
  // Reverse CSR (weights mirrored from the forward graph).
  std::vector<std::size_t> rev_offsets_;
  std::vector<RoadEdge> rev_edges_;

  IndexedMinHeap fwd_heap_;
  IndexedMinHeap bwd_heap_;
  std::vector<double> fwd_dist_;
  std::vector<double> bwd_dist_;
  std::vector<std::uint32_t> fwd_mark_;
  std::vector<std::uint32_t> bwd_mark_;
  std::uint32_t generation_ = 0;
};

}  // namespace xar

#endif  // XAR_GRAPH_DIJKSTRA_H_
