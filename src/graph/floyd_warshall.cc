#include "graph/floyd_warshall.h"

#include <algorithm>
#include <limits>

namespace xar {

std::vector<double> FloydWarshallDistances(const RoadGraph& graph,
                                           Metric metric) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t n = graph.NumNodes();
  std::vector<double> d(n * n, kInf);
  for (std::size_t u = 0; u < n; ++u) {
    d[u * n + u] = 0.0;
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w < d[u * n + e.to.value()]) d[u * n + e.to.value()] = w;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double dik = d[i * n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        double nd = dik + d[k * n + j];
        if (nd < d[i * n + j]) d[i * n + j] = nd;
      }
    }
  }
  return d;
}

}  // namespace xar
