#ifndef XAR_GRAPH_FLOYD_WARSHALL_H_
#define XAR_GRAPH_FLOYD_WARSHALL_H_

#include <vector>

#include "graph/road_graph.h"

namespace xar {

/// All-pairs shortest distances by Floyd-Warshall. O(V^3): reference
/// implementation used as a test oracle against the Dijkstra/A* engines on
/// small graphs. Result is row-major: d[u * n + v].
std::vector<double> FloydWarshallDistances(const RoadGraph& graph,
                                           Metric metric);

}  // namespace xar

#endif  // XAR_GRAPH_FLOYD_WARSHALL_H_
