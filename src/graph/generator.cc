#include "graph/generator.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/rng.h"

namespace xar {
namespace {

/// Largest strongly connected component of the drivable subgraph, via
/// iterative Kosaraju. Returns a keep-mask over node ids.
std::vector<bool> LargestDrivableScc(const RoadGraph& g) {
  std::size_t n = g.NumNodes();
  // Forward and reverse drivable adjacency.
  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const RoadEdge& e :
         g.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      if (!e.drivable) continue;
      fwd[u].push_back(e.to.value());
      rev[e.to.value()].push_back(static_cast<std::uint32_t>(u));
    }
  }

  // Pass 1: finish order on forward graph.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    seen[s] = 1;
    stack.emplace_back(static_cast<std::uint32_t>(s), 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < fwd[u].size()) {
        std::uint32_t v = fwd[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }

  // Pass 2: components on reverse graph in reverse finish order.
  std::vector<std::int32_t> comp(n, -1);
  std::int32_t num_comps = 0;
  std::vector<std::uint32_t> dfs;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    dfs.push_back(*it);
    comp[*it] = num_comps;
    while (!dfs.empty()) {
      std::uint32_t u = dfs.back();
      dfs.pop_back();
      for (std::uint32_t v : rev[u]) {
        if (comp[v] == -1) {
          comp[v] = num_comps;
          dfs.push_back(v);
        }
      }
    }
    ++num_comps;
  }

  std::vector<std::size_t> comp_size(static_cast<std::size_t>(num_comps), 0);
  for (std::size_t u = 0; u < n; ++u)
    ++comp_size[static_cast<std::size_t>(comp[u])];
  std::size_t best = static_cast<std::size_t>(
      std::max_element(comp_size.begin(), comp_size.end()) -
      comp_size.begin());

  std::vector<bool> keep(n, false);
  for (std::size_t u = 0; u < n; ++u) {
    keep[u] = comp[u] == static_cast<std::int32_t>(best);
  }
  return keep;
}

/// Rebuilds `g` with only the nodes in `keep`, densifying node ids.
RoadGraph FilterGraph(const RoadGraph& g, const std::vector<bool>& keep) {
  GraphBuilder builder;
  std::vector<NodeId> remap(g.NumNodes(), NodeId::Invalid());
  for (std::size_t u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      remap[u] = builder.AddNode(
          g.PositionOf(NodeId(static_cast<NodeId::underlying_type>(u))));
    }
  }
  for (std::size_t u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (const RoadEdge& e :
         g.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      if (!keep[e.to.value()]) continue;
      double speed = e.drivable && e.time_s > 0 ? e.length_m / e.time_s : 0.0;
      builder.AddArc(remap[u], remap[e.to.value()], e.length_m, speed,
                     e.drivable, e.walkable);
    }
  }
  return builder.Build();
}

}  // namespace

RoadGraph GenerateCity(const CityOptions& opt) {
  assert(opt.rows >= 2 && opt.cols >= 2);
  Rng rng(opt.seed);
  GraphBuilder builder;

  // Lattice nodes with positional jitter.
  std::vector<NodeId> node(opt.rows * opt.cols);
  auto at = [&](std::size_t r, std::size_t c) -> NodeId& {
    return node[r * opt.cols + c];
  };
  for (std::size_t r = 0; r < opt.rows; ++r) {
    for (std::size_t c = 0; c < opt.cols; ++c) {
      double jx = rng.Uniform(-opt.jitter_frac, opt.jitter_frac) * opt.block_m;
      double jy = rng.Uniform(-opt.jitter_frac, opt.jitter_frac) * opt.block_m;
      at(r, c) = builder.AddNode(
          OffsetMeters(opt.origin, static_cast<double>(c) * opt.block_m + jx,
                       static_cast<double>(r) * opt.block_m + jy));
    }
  }

  auto is_avenue_col = [&](std::size_t c) { return c % opt.avenue_every == 0; };
  auto is_avenue_row = [&](std::size_t r) { return r % opt.avenue_every == 0; };

  // Vertical segments (between row r and r+1 in column c).
  for (std::size_t c = 0; c < opt.cols; ++c) {
    for (std::size_t r = 0; r + 1 < opt.rows; ++r) {
      bool avenue = is_avenue_col(c);
      if (!avenue && rng.Bernoulli(opt.removed_fraction)) continue;
      double speed = avenue ? opt.avenue_speed_mps : opt.street_speed_mps;
      if (!avenue && rng.Bernoulli(opt.one_way_fraction)) {
        // Alternate direction by column parity, like Manhattan avenues.
        if (c % 2 == 0) {
          builder.AddOneWayStreet(at(r, c), at(r + 1, c), speed);
        } else {
          builder.AddOneWayStreet(at(r + 1, c), at(r, c), speed);
        }
      } else {
        builder.AddTwoWayStreet(at(r, c), at(r + 1, c), speed);
      }
    }
  }

  // Horizontal segments (between column c and c+1 in row r).
  for (std::size_t r = 0; r < opt.rows; ++r) {
    for (std::size_t c = 0; c + 1 < opt.cols; ++c) {
      bool avenue = is_avenue_row(r);
      if (!avenue && rng.Bernoulli(opt.removed_fraction)) continue;
      double speed = avenue ? opt.avenue_speed_mps : opt.street_speed_mps;
      if (!avenue && rng.Bernoulli(opt.one_way_fraction)) {
        if (r % 2 == 0) {
          builder.AddOneWayStreet(at(r, c), at(r, c + 1), speed);
        } else {
          builder.AddOneWayStreet(at(r, c + 1), at(r, c), speed);
        }
      } else {
        builder.AddTwoWayStreet(at(r, c), at(r, c + 1), speed);
      }
    }
  }

  // Broadway-style diagonal: fast two-way shortcuts along the main diagonal.
  if (opt.diagonal_avenue) {
    std::size_t steps = std::min(opt.rows, opt.cols) - 1;
    for (std::size_t i = 0; i < steps; ++i) {
      builder.AddTwoWayStreet(at(i, i), at(i + 1, i + 1),
                              opt.diagonal_speed_mps);
    }
  }

  RoadGraph full = builder.Build();
  std::vector<bool> keep = LargestDrivableScc(full);
  return FilterGraph(full, keep);
}

RoadGraph GenerateRadialCity(const RadialCityOptions& opt) {
  assert(opt.rings >= 1 && opt.spokes >= 3);
  Rng rng(opt.seed);
  GraphBuilder builder;

  NodeId center = builder.AddNode(opt.center);
  // node(ring, spoke), rings indexed from 1.
  std::vector<NodeId> nodes(opt.rings * opt.spokes);
  auto at = [&](std::size_t ring, std::size_t spoke) -> NodeId& {
    return nodes[(ring - 1) * opt.spokes + spoke];
  };
  constexpr double kTau = 6.283185307179586;
  for (std::size_t ring = 1; ring <= opt.rings; ++ring) {
    double radius = static_cast<double>(ring) * opt.ring_spacing_m;
    for (std::size_t s = 0; s < opt.spokes; ++s) {
      double angle = kTau * static_cast<double>(s) /
                     static_cast<double>(opt.spokes);
      at(ring, s) = builder.AddNode(OffsetMeters(
          opt.center, radius * std::sin(angle), radius * std::cos(angle)));
    }
  }

  // Spokes: center -> ring 1 -> ... -> outermost ring (arterial two-ways;
  // outer segments occasionally missing).
  for (std::size_t s = 0; s < opt.spokes; ++s) {
    builder.AddTwoWayStreet(center, at(1, s), opt.spoke_speed_mps);
    for (std::size_t ring = 1; ring + 1 <= opt.rings; ++ring) {
      if (ring >= 2 && rng.Bernoulli(opt.removed_fraction)) continue;
      builder.AddTwoWayStreet(at(ring, s), at(ring + 1, s),
                              opt.spoke_speed_mps);
    }
  }

  // Rings: adjacent spokes on the same ring; whole rings may be one-way
  // with direction alternating by ring parity (inner ring always two-way so
  // the center stays richly connected).
  for (std::size_t ring = 1; ring <= opt.rings; ++ring) {
    bool one_way = ring > 1 && rng.Bernoulli(opt.one_way_ring_fraction);
    bool clockwise = ring % 2 == 0;
    for (std::size_t s = 0; s < opt.spokes; ++s) {
      std::size_t next = (s + 1) % opt.spokes;
      if (ring > 1 && rng.Bernoulli(opt.removed_fraction)) continue;
      if (one_way) {
        if (clockwise) {
          builder.AddOneWayStreet(at(ring, s), at(ring, next),
                                  opt.ring_speed_mps);
        } else {
          builder.AddOneWayStreet(at(ring, next), at(ring, s),
                                  opt.ring_speed_mps);
        }
      } else {
        builder.AddTwoWayStreet(at(ring, s), at(ring, next),
                                opt.ring_speed_mps);
      }
    }
  }

  RoadGraph full = builder.Build();
  std::vector<bool> keep = LargestDrivableScc(full);
  return FilterGraph(full, keep);
}

RoadGraph PerturbEdgeWeights(const RoadGraph& graph, double spread,
                             std::uint64_t seed) {
  assert(spread >= 0.0 && spread < 1.0);
  GraphBuilder builder;
  for (std::size_t n = 0; n < graph.NumNodes(); ++n) {
    builder.AddNode(
        graph.PositionOf(NodeId(static_cast<NodeId::underlying_type>(n))));
  }
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : graph.OutEdges(from)) {
      // One factor per unordered endpoint pair: both directions of a street
      // scale together, keeping walking distances symmetric.
      std::uint64_t lo = std::min<std::uint64_t>(u, e.to.value());
      std::uint64_t hi = std::max<std::uint64_t>(u, e.to.value());
      Rng rng(seed ^ (lo * 0x9e3779b97f4a7c15ULL + hi));
      double factor = 1.0 + spread * (2.0 * rng.NextDouble() - 1.0);
      // Keep the speed, scale the length: AddArc derives time = length /
      // speed, so driving time scales by the same factor.
      double speed =
          e.drivable && e.time_s > 0.0 ? e.length_m / e.time_s : 1.0;
      builder.AddArc(from, e.to, e.length_m * factor, speed, e.drivable,
                     e.walkable);
    }
  }
  return builder.Build();
}

RoadGraph ScaleEdgeWeights(
    const RoadGraph& graph,
    const std::function<double(NodeId from, NodeId to)>& time_factor) {
  GraphBuilder builder;
  for (std::size_t n = 0; n < graph.NumNodes(); ++n) {
    builder.AddNode(
        graph.PositionOf(NodeId(static_cast<NodeId::underlying_type>(n))));
  }
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : graph.OutEdges(from)) {
      double speed =
          e.drivable && e.time_s > 0.0 ? e.length_m / e.time_s : 1.0;
      if (e.drivable && e.time_s > 0.0) {
        // AddArc derives time = length / speed, so dividing the speed by the
        // factor scales driving time without touching the length.
        double factor = time_factor(from, e.to);
        assert(factor > 0.0);
        speed /= factor;
      }
      builder.AddArc(from, e.to, e.length_m, speed, e.drivable, e.walkable);
    }
  }
  return builder.Build();
}

}  // namespace xar
