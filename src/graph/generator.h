#ifndef XAR_GRAPH_GENERATOR_H_
#define XAR_GRAPH_GENERATOR_H_

#include <cstdint>
#include <functional>

#include "geo/latlng.h"
#include "graph/road_graph.h"

namespace xar {

/// Parameters for the synthetic Manhattan-style city generator.
///
/// This is the reproduction's substitute for the paper's OpenStreetMap NYC
/// extract (see DESIGN.md §1): a jittered lattice with avenue/street speed
/// classes, alternating one-way streets, randomly missing street segments
/// and an optional high-speed diagonal. One-ways and missing segments make
/// driving distance genuinely asymmetric and longer than walking distance,
/// which is exactly what exercises XAR's walkable-cluster and Δ-miss logic.
struct CityOptions {
  std::size_t rows = 24;          ///< lattice intersections north-south
  std::size_t cols = 24;          ///< lattice intersections east-west
  double block_m = 250.0;         ///< nominal block edge length
  double jitter_frac = 0.15;      ///< node position jitter as fraction of block
  std::size_t avenue_every = 5;   ///< every k-th row/col is a two-way avenue
  double one_way_fraction = 0.6;  ///< chance a minor street is one-way
  double removed_fraction = 0.06; ///< chance a street segment is missing
  bool diagonal_avenue = true;    ///< add a Broadway-style diagonal
  double street_speed_mps = 8.33;   ///< ~30 km/h
  double avenue_speed_mps = 11.11;  ///< ~40 km/h
  double diagonal_speed_mps = 13.89;///< ~50 km/h
  LatLng origin{40.700, -74.020};   ///< south-west corner (NYC-ish)
  std::uint64_t seed = 42;
};

/// Generates a synthetic city road network. The result is guaranteed to be
/// strongly connected for driving (nodes outside the largest drivable SCC
/// are dropped and ids re-densified).
RoadGraph GenerateCity(const CityOptions& options);

/// Parameters for the radial (European-style) city generator: concentric
/// ring roads crossed by spokes radiating from the center, with ring
/// one-ways alternating direction. Exercises topologies the lattice
/// generator cannot — curved detours, hub-and-spoke shortest paths and a
/// dense center — useful for validating that nothing in the stack assumes
/// grid-like streets.
struct RadialCityOptions {
  std::size_t rings = 6;            ///< concentric ring roads
  std::size_t spokes = 12;          ///< radial roads
  double ring_spacing_m = 500.0;    ///< distance between rings
  double one_way_ring_fraction = 0.5;  ///< chance a ring is one-way
  double removed_fraction = 0.05;   ///< chance a segment is missing
  double spoke_speed_mps = 11.11;   ///< spokes are arterial
  double ring_speed_mps = 8.33;
  LatLng center{40.740, -73.975};
  std::uint64_t seed = 7;
};

/// Generates a radial city; same strong-connectivity guarantee as
/// GenerateCity.
RoadGraph GenerateRadialCity(const RadialCityOptions& options);

/// Returns a copy of `graph` with every edge length (and hence driving
/// time) scaled by a deterministic per-street factor uniform in
/// [1-spread, 1+spread] — a live "traffic update" for refresh tests. Node
/// ids, positions and topology are preserved, so spatial indexes built over
/// `graph` remain valid. Both directions of a street share one factor
/// (keyed on the unordered endpoint pair), preserving the walking-distance
/// symmetry the discretization relies on. Requires 0 <= spread < 1.
RoadGraph PerturbEdgeWeights(const RoadGraph& graph, double spread,
                             std::uint64_t seed);

/// Returns a copy of `graph` with each drivable edge's *driving time* scaled
/// by `time_factor(from, to)` (>= 1 is a congestion slow-down; must be > 0).
/// Lengths are untouched — congestion slows traffic, it does not lengthen
/// streets — so walking distances and detour budgets (both in meters) are
/// unaffected. Node ids, positions and topology are preserved: the result
/// satisfies the GraphDelta contract (same nodes/arcs, new weights) and can
/// feed RefreshDiscretization directly. Callers who want both directions of
/// a street to slow together (the event sim's per-road load model) key their
/// factor on the unordered endpoint pair.
RoadGraph ScaleEdgeWeights(
    const RoadGraph& graph,
    const std::function<double(NodeId from, NodeId to)>& time_factor);

}  // namespace xar

#endif  // XAR_GRAPH_GENERATOR_H_
