#include "graph/oracle.h"

namespace xar {
namespace {

std::uint64_t PackKey(NodeId from, NodeId to, Metric metric) {
  return (static_cast<std::uint64_t>(from.value()) << 34) |
         (static_cast<std::uint64_t>(to.value()) << 2) |
         static_cast<std::uint64_t>(metric);
}

}  // namespace

GraphOracle::GraphOracle(const RoadGraph& graph, std::size_t cache_capacity)
    : graph_(graph),
      astar_(graph),
      dijkstra_(graph),
      cache_capacity_(cache_capacity) {}

double GraphOracle::CachedDistance(NodeId from, NodeId to, Metric metric) {
  if (cache_capacity_ == 0) {
    ++computations_;
    return astar_.Distance(from, to, metric);
  }
  std::uint64_t key = PackKey(from, to, metric);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.distance;
  }
  ++computations_;
  double d = astar_.Distance(from, to, metric);
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{d, lru_.begin()});
  if (cache_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return d;
}

double GraphOracle::DriveDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveDistance);
}

double GraphOracle::DriveTime(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveTime);
}

double GraphOracle::WalkDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kWalkDistance);
}

Path GraphOracle::DriveRoute(NodeId from, NodeId to) {
  ++computations_;
  return astar_.ShortestPath(from, to, Metric::kDriveDistance);
}

HaversineOracle::HaversineOracle(const RoadGraph& graph,
                                 double drive_speed_mps)
    : graph_(graph), drive_speed_mps_(drive_speed_mps) {}

double HaversineOracle::DriveDistance(NodeId from, NodeId to) {
  return HaversineMeters(graph_.PositionOf(from), graph_.PositionOf(to));
}

double HaversineOracle::DriveTime(NodeId from, NodeId to) {
  return DriveDistance(from, to) / drive_speed_mps_;
}

double HaversineOracle::WalkDistance(NodeId from, NodeId to) {
  return DriveDistance(from, to);
}

Path HaversineOracle::DriveRoute(NodeId from, NodeId to) {
  Path p;
  p.nodes = {from, to};
  p.length_m = DriveDistance(from, to);
  p.time_s = DriveTime(from, to);
  return p;
}

}  // namespace xar
