#include "graph/oracle.h"

#include <algorithm>
#include <utility>

namespace xar {
namespace {

/// Stripe-count heuristic: enough stripes to keep shard-parallel bookings
/// off each other's locks, but never so many that per-stripe capacity drops
/// below a useful LRU window (tiny test caches get exactly one stripe, i.e.
/// strict global LRU — the pre-concurrency behaviour).
std::size_t StripeCountFor(std::size_t cache_capacity) {
  constexpr std::size_t kMaxStripes = 16;
  constexpr std::size_t kMinStripeCapacity = 64;
  std::size_t stripes = 1;
  while (stripes < kMaxStripes &&
         cache_capacity / (stripes * 2) >= kMinStripeCapacity) {
    stripes *= 2;
  }
  return stripes;
}

}  // namespace

std::vector<double> DistanceOracle::DriveDistancesToMany(
    NodeId from, const std::vector<NodeId>& targets) {
  std::vector<double> out;
  out.reserve(targets.size());
  for (NodeId t : targets) out.push_back(DriveDistance(from, t));
  return out;
}

std::vector<double> DistanceOracle::DriveDistanceMatrix(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& targets) {
  std::vector<double> out;
  out.reserve(sources.size() * targets.size());
  for (NodeId s : sources) {
    std::vector<double> row = DriveDistancesToMany(s, targets);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

GraphOracle::GraphOracle(const RoadGraph& graph, std::size_t cache_capacity,
                         RoutingBackendKind backend,
                         const RoutingBackendOptions& backend_options,
                         OracleCachePolicy cache_policy)
    : GraphOracle(graph, MakeRoutingBackend(backend, graph, backend_options),
                  cache_capacity, cache_policy) {}

GraphOracle::GraphOracle(const RoadGraph& graph,
                         std::unique_ptr<RoutingBackend> backend,
                         std::size_t cache_capacity,
                         OracleCachePolicy cache_policy)
    : graph_(graph),
      backend_(std::move(backend)),
      cache_capacity_(cache_capacity),
      policy_(cache_policy) {
  if (cache_capacity_ == 0) return;
  if (policy_ == OracleCachePolicy::kClock) {
    clock_cache_ = std::make_unique<OracleClockCache>(cache_capacity_);
    return;
  }
  std::size_t num_stripes = StripeCountFor(cache_capacity_);
  stripe_capacity_ = std::max<std::size_t>(1, cache_capacity_ / num_stripes);
  stripes_.reserve(num_stripes);
  for (std::size_t s = 0; s < num_stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void GraphOracle::Prewarm() {
  backend_->Prepare(Metric::kDriveDistance);
  backend_->Prepare(Metric::kDriveTime);
  backend_->Prepare(Metric::kWalkDistance);
}

OracleCacheCounters GraphOracle::cache_counters() const {
  if (clock_cache_ != nullptr) return clock_cache_->counters();
  OracleCacheCounters c;
  c.insertions = lru_insertions_.load(std::memory_order_relaxed);
  c.evictions = lru_evictions_.load(std::memory_order_relaxed);
  c.races = lru_races_.load(std::memory_order_relaxed);
  return c;
}

double GraphOracle::CachedDistance(NodeId from, NodeId to, Metric metric) {
  if (cache_capacity_ == 0) {
    computations_.fetch_add(1, std::memory_order_relaxed);
    return backend_->Distance(from, to, metric);
  }
  OracleCacheKey key = MakeOracleCacheKey(from, to, metric);
  if (clock_cache_ != nullptr) {
    if (std::optional<double> cached = clock_cache_->Lookup(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
    computations_.fetch_add(1, std::memory_order_relaxed);
    double d = backend_->Distance(from, to, metric);
    // Lossy: a lost race or an all-hot window simply drops the entry — the
    // next miss recomputes. Correctness never depends on the insert landing.
    (void)clock_cache_->Insert(key, d);
    return d;
  }
  return StripedLruDistance(key, from, to, metric);
}

double GraphOracle::StripedLruDistance(const OracleCacheKey& key, NodeId from,
                                       NodeId to, Metric metric) {
  Stripe& stripe = StripeOf(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
      return it->second.distance;
    }
  }
  // Miss: compute outside the stripe lock so same-stripe lookups (and other
  // threads racing on this very key) are never blocked behind a search.
  computations_.fetch_add(1, std::memory_order_relaxed);
  double d = backend_->Distance(from, to, metric);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    // A racing thread inserted the same key first; keep its entry.
    lru_races_.fetch_add(1, std::memory_order_relaxed);
    return it->second.distance;
  }
  stripe.lru.push_front(key);
  stripe.map.emplace(key, CacheEntry{d, stripe.lru.begin()});
  lru_insertions_.fetch_add(1, std::memory_order_relaxed);
  if (stripe.map.size() > stripe_capacity_) {
    stripe.map.erase(stripe.lru.back());
    stripe.lru.pop_back();
    lru_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

std::optional<double> GraphOracle::CacheProbe(const OracleCacheKey& key) {
  if (cache_capacity_ == 0) return std::nullopt;
  if (clock_cache_ != nullptr) return clock_cache_->Lookup(key);
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) return std::nullopt;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  return it->second.distance;
}

void GraphOracle::CacheInsert(const OracleCacheKey& key, double distance) {
  if (cache_capacity_ == 0) return;
  if (clock_cache_ != nullptr) {
    (void)clock_cache_->Insert(key, distance);
    return;
  }
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.map.find(key) != stripe.map.end()) {
    lru_races_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stripe.lru.push_front(key);
  stripe.map.emplace(key, CacheEntry{distance, stripe.lru.begin()});
  lru_insertions_.fetch_add(1, std::memory_order_relaxed);
  if (stripe.map.size() > stripe_capacity_) {
    stripe.map.erase(stripe.lru.back());
    stripe.lru.pop_back();
    lru_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<double> GraphOracle::DriveDistancesToMany(
    NodeId from, const std::vector<NodeId>& targets) {
  return DriveDistanceMatrix({from}, targets);
}

std::vector<double> GraphOracle::DriveDistanceMatrix(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& targets) {
  const Metric metric = Metric::kDriveDistance;
  const std::size_t s_count = sources.size();
  const std::size_t t_count = targets.size();
  std::vector<double> out(s_count * t_count, 0.0);
  if (s_count == 0 || t_count == 0) return out;

  // Probe the cache per pair; remember which rows/columns still owe a
  // distance so the backend batch covers exactly the missing span.
  std::vector<char> missing(s_count * t_count, 0);
  std::vector<char> src_missing(s_count, 0);
  std::vector<char> tgt_missing(t_count, 0);
  std::size_t hits = 0;
  std::size_t misses = 0;
  for (std::size_t s = 0; s < s_count; ++s) {
    for (std::size_t t = 0; t < t_count; ++t) {
      OracleCacheKey key = MakeOracleCacheKey(sources[s], targets[t], metric);
      if (std::optional<double> cached = CacheProbe(key)) {
        out[s * t_count + t] = *cached;
        ++hits;
      } else {
        missing[s * t_count + t] = 1;
        src_missing[s] = 1;
        tgt_missing[t] = 1;
        ++misses;
      }
    }
  }
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (misses == 0) return out;
  computations_.fetch_add(misses, std::memory_order_relaxed);

  // One backend many-to-many over the rows/columns with at least one miss.
  // The submatrix may recompute a few cached pairs — harmless; a bucket-CH
  // source scan costs the same regardless of how many of its targets are
  // wanted.
  std::vector<NodeId> miss_sources;
  std::vector<std::size_t> src_at(s_count, 0);
  for (std::size_t s = 0; s < s_count; ++s) {
    if (src_missing[s]) {
      src_at[s] = miss_sources.size();
      miss_sources.push_back(sources[s]);
    }
  }
  std::vector<NodeId> miss_targets;
  std::vector<std::size_t> tgt_at(t_count, 0);
  for (std::size_t t = 0; t < t_count; ++t) {
    if (tgt_missing[t]) {
      tgt_at[t] = miss_targets.size();
      miss_targets.push_back(targets[t]);
    }
  }
  std::vector<double> sub =
      backend_->ManyToMany(miss_sources, miss_targets, metric);

  for (std::size_t s = 0; s < s_count; ++s) {
    for (std::size_t t = 0; t < t_count; ++t) {
      if (!missing[s * t_count + t]) continue;
      double d = sub[src_at[s] * miss_targets.size() + tgt_at[t]];
      out[s * t_count + t] = d;
      CacheInsert(MakeOracleCacheKey(sources[s], targets[t], metric), d);
    }
  }
  return out;
}

double GraphOracle::DriveDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveDistance);
}

double GraphOracle::DriveTime(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveTime);
}

double GraphOracle::WalkDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kWalkDistance);
}

Path GraphOracle::DriveRoute(NodeId from, NodeId to) {
  computations_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Route(from, to, Metric::kDriveDistance);
}

HaversineOracle::HaversineOracle(const RoadGraph& graph,
                                 double drive_speed_mps)
    : graph_(graph), drive_speed_mps_(drive_speed_mps) {}

double HaversineOracle::DriveDistance(NodeId from, NodeId to) {
  return HaversineMeters(graph_.PositionOf(from), graph_.PositionOf(to));
}

double HaversineOracle::DriveTime(NodeId from, NodeId to) {
  return DriveDistance(from, to) / drive_speed_mps_;
}

double HaversineOracle::WalkDistance(NodeId from, NodeId to) {
  return DriveDistance(from, to);
}

Path HaversineOracle::DriveRoute(NodeId from, NodeId to) {
  Path p;
  p.nodes = {from, to};
  p.length_m = DriveDistance(from, to);
  p.time_s = DriveTime(from, to);
  return p;
}

StatsSection OracleStatsSection(const DistanceOracle& oracle) {
  std::size_t computations = oracle.computation_count();
  std::size_t hits = oracle.cache_hit_count();
  std::size_t lookups = computations + hits;
  double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  OracleCacheCounters cache = oracle.cache_counters();
  const RoutingBackend* backend = oracle.routing_backend();
  StatsSection section;
  section.name = "oracle";
  section.AddRow({StatsMetric::Text("backend", oracle.backend_name()),
                  StatsMetric::Text("cache", oracle.cache_policy_name()),
                  StatsMetric::Counter("computations", computations),
                  StatsMetric::Counter("cache_hits", hits),
                  StatsMetric::Gauge("hit_rate", hit_rate),
                  StatsMetric::Counter("settled_nodes",
                                       oracle.settled_count()),
                  StatsMetric::Counter("m2m_batch_queries",
                                       backend ? backend->m2m_batch_count()
                                               : 0),
                  StatsMetric::Counter("m2m_fallback_queries",
                                       backend ? backend->m2m_fallback_count()
                                               : 0),
                  StatsMetric::Counter("cache_insertions", cache.insertions),
                  StatsMetric::Counter("cache_evictions", cache.evictions),
                  StatsMetric::Counter("cache_drops", cache.drops),
                  StatsMetric::Counter("cache_races", cache.races)});
  return section;
}

StatsSection PreprocessStatsSection(const RoutingBackend& backend) {
  StatsSection section;
  section.name = "preprocess";
  for (const PreprocessTiming& t : backend.preprocess_timings()) {
    section.AddRow({StatsMetric::Text("metric", MetricName(t.metric)),
                    StatsMetric::Gauge("build_ms", t.build_ms, 1),
                    StatsMetric::Counter("threads", t.threads),
                    StatsMetric::Counter("batches", t.batches),
                    StatsMetric::Counter("shortcuts", t.shortcuts)});
  }
  return section;
}

}  // namespace xar
