#include "graph/oracle.h"

#include <algorithm>
#include <utility>

namespace xar {
namespace {

/// Stripe-count heuristic: enough stripes to keep shard-parallel bookings
/// off each other's locks, but never so many that per-stripe capacity drops
/// below a useful LRU window (tiny test caches get exactly one stripe, i.e.
/// strict global LRU — the pre-concurrency behaviour).
std::size_t StripeCountFor(std::size_t cache_capacity) {
  constexpr std::size_t kMaxStripes = 16;
  constexpr std::size_t kMinStripeCapacity = 64;
  std::size_t stripes = 1;
  while (stripes < kMaxStripes &&
         cache_capacity / (stripes * 2) >= kMinStripeCapacity) {
    stripes *= 2;
  }
  return stripes;
}

}  // namespace

GraphOracle::GraphOracle(const RoadGraph& graph, std::size_t cache_capacity,
                         RoutingBackendKind backend,
                         const RoutingBackendOptions& backend_options,
                         OracleCachePolicy cache_policy)
    : GraphOracle(graph, MakeRoutingBackend(backend, graph, backend_options),
                  cache_capacity, cache_policy) {}

GraphOracle::GraphOracle(const RoadGraph& graph,
                         std::unique_ptr<RoutingBackend> backend,
                         std::size_t cache_capacity,
                         OracleCachePolicy cache_policy)
    : graph_(graph),
      backend_(std::move(backend)),
      cache_capacity_(cache_capacity),
      policy_(cache_policy) {
  if (cache_capacity_ == 0) return;
  if (policy_ == OracleCachePolicy::kClock) {
    clock_cache_ = std::make_unique<OracleClockCache>(cache_capacity_);
    return;
  }
  std::size_t num_stripes = StripeCountFor(cache_capacity_);
  stripe_capacity_ = std::max<std::size_t>(1, cache_capacity_ / num_stripes);
  stripes_.reserve(num_stripes);
  for (std::size_t s = 0; s < num_stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void GraphOracle::Prewarm() {
  backend_->Prepare(Metric::kDriveDistance);
  backend_->Prepare(Metric::kDriveTime);
  backend_->Prepare(Metric::kWalkDistance);
}

OracleCacheCounters GraphOracle::cache_counters() const {
  if (clock_cache_ != nullptr) return clock_cache_->counters();
  OracleCacheCounters c;
  c.insertions = lru_insertions_.load(std::memory_order_relaxed);
  c.evictions = lru_evictions_.load(std::memory_order_relaxed);
  c.races = lru_races_.load(std::memory_order_relaxed);
  return c;
}

double GraphOracle::CachedDistance(NodeId from, NodeId to, Metric metric) {
  if (cache_capacity_ == 0) {
    computations_.fetch_add(1, std::memory_order_relaxed);
    return backend_->Distance(from, to, metric);
  }
  OracleCacheKey key = MakeOracleCacheKey(from, to, metric);
  if (clock_cache_ != nullptr) {
    if (std::optional<double> cached = clock_cache_->Lookup(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
    computations_.fetch_add(1, std::memory_order_relaxed);
    double d = backend_->Distance(from, to, metric);
    // Lossy: a lost race or an all-hot window simply drops the entry — the
    // next miss recomputes. Correctness never depends on the insert landing.
    (void)clock_cache_->Insert(key, d);
    return d;
  }
  return StripedLruDistance(key, from, to, metric);
}

double GraphOracle::StripedLruDistance(const OracleCacheKey& key, NodeId from,
                                       NodeId to, Metric metric) {
  Stripe& stripe = StripeOf(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
      return it->second.distance;
    }
  }
  // Miss: compute outside the stripe lock so same-stripe lookups (and other
  // threads racing on this very key) are never blocked behind a search.
  computations_.fetch_add(1, std::memory_order_relaxed);
  double d = backend_->Distance(from, to, metric);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    // A racing thread inserted the same key first; keep its entry.
    lru_races_.fetch_add(1, std::memory_order_relaxed);
    return it->second.distance;
  }
  stripe.lru.push_front(key);
  stripe.map.emplace(key, CacheEntry{d, stripe.lru.begin()});
  lru_insertions_.fetch_add(1, std::memory_order_relaxed);
  if (stripe.map.size() > stripe_capacity_) {
    stripe.map.erase(stripe.lru.back());
    stripe.lru.pop_back();
    lru_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

double GraphOracle::DriveDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveDistance);
}

double GraphOracle::DriveTime(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveTime);
}

double GraphOracle::WalkDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kWalkDistance);
}

Path GraphOracle::DriveRoute(NodeId from, NodeId to) {
  computations_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Route(from, to, Metric::kDriveDistance);
}

HaversineOracle::HaversineOracle(const RoadGraph& graph,
                                 double drive_speed_mps)
    : graph_(graph), drive_speed_mps_(drive_speed_mps) {}

double HaversineOracle::DriveDistance(NodeId from, NodeId to) {
  return HaversineMeters(graph_.PositionOf(from), graph_.PositionOf(to));
}

double HaversineOracle::DriveTime(NodeId from, NodeId to) {
  return DriveDistance(from, to) / drive_speed_mps_;
}

double HaversineOracle::WalkDistance(NodeId from, NodeId to) {
  return DriveDistance(from, to);
}

Path HaversineOracle::DriveRoute(NodeId from, NodeId to) {
  Path p;
  p.nodes = {from, to};
  p.length_m = DriveDistance(from, to);
  p.time_s = DriveTime(from, to);
  return p;
}

StatsSection OracleStatsSection(const DistanceOracle& oracle) {
  std::size_t computations = oracle.computation_count();
  std::size_t hits = oracle.cache_hit_count();
  std::size_t lookups = computations + hits;
  double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  OracleCacheCounters cache = oracle.cache_counters();
  StatsSection section;
  section.name = "oracle";
  section.AddRow({StatsMetric::Text("backend", oracle.backend_name()),
                  StatsMetric::Text("cache", oracle.cache_policy_name()),
                  StatsMetric::Counter("computations", computations),
                  StatsMetric::Counter("cache_hits", hits),
                  StatsMetric::Gauge("hit_rate", hit_rate),
                  StatsMetric::Counter("settled_nodes",
                                       oracle.settled_count()),
                  StatsMetric::Counter("cache_insertions", cache.insertions),
                  StatsMetric::Counter("cache_evictions", cache.evictions),
                  StatsMetric::Counter("cache_drops", cache.drops),
                  StatsMetric::Counter("cache_races", cache.races)});
  return section;
}

StatsSection PreprocessStatsSection(const RoutingBackend& backend) {
  StatsSection section;
  section.name = "preprocess";
  for (const PreprocessTiming& t : backend.preprocess_timings()) {
    section.AddRow({StatsMetric::Text("metric", MetricName(t.metric)),
                    StatsMetric::Gauge("build_ms", t.build_ms, 1),
                    StatsMetric::Counter("threads", t.threads),
                    StatsMetric::Counter("batches", t.batches),
                    StatsMetric::Counter("shortcuts", t.shortcuts)});
  }
  return section;
}

}  // namespace xar
