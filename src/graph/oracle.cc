#include "graph/oracle.h"

#include <algorithm>
#include <utility>

namespace xar {
namespace {

/// Stripe-count heuristic: enough stripes to keep shard-parallel bookings
/// off each other's locks, but never so many that per-stripe capacity drops
/// below a useful LRU window (tiny test caches get exactly one stripe, i.e.
/// strict global LRU — the pre-concurrency behaviour).
std::size_t StripeCountFor(std::size_t cache_capacity) {
  constexpr std::size_t kMaxStripes = 16;
  constexpr std::size_t kMinStripeCapacity = 64;
  std::size_t stripes = 1;
  while (stripes < kMaxStripes &&
         cache_capacity / (stripes * 2) >= kMinStripeCapacity) {
    stripes *= 2;
  }
  return stripes;
}

}  // namespace

GraphOracle::GraphOracle(const RoadGraph& graph, std::size_t cache_capacity,
                         RoutingBackendKind backend,
                         const RoutingBackendOptions& backend_options)
    : GraphOracle(graph, MakeRoutingBackend(backend, graph, backend_options),
                  cache_capacity) {}

GraphOracle::GraphOracle(const RoadGraph& graph,
                         std::unique_ptr<RoutingBackend> backend,
                         std::size_t cache_capacity)
    : graph_(graph),
      backend_(std::move(backend)),
      cache_capacity_(cache_capacity) {
  std::size_t num_stripes = StripeCountFor(cache_capacity);
  stripe_capacity_ = std::max<std::size_t>(1, cache_capacity / num_stripes);
  stripes_.reserve(num_stripes);
  for (std::size_t s = 0; s < num_stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void GraphOracle::Prewarm() {
  backend_->Prepare(Metric::kDriveDistance);
  backend_->Prepare(Metric::kDriveTime);
  backend_->Prepare(Metric::kWalkDistance);
}

double GraphOracle::CachedDistance(NodeId from, NodeId to, Metric metric) {
  if (cache_capacity_ == 0) {
    computations_.fetch_add(1, std::memory_order_relaxed);
    return backend_->Distance(from, to, metric);
  }
  OracleCacheKey key = MakeOracleCacheKey(from, to, metric);
  Stripe& stripe = StripeOf(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
      return it->second.distance;
    }
  }
  // Miss: compute outside the stripe lock so same-stripe lookups (and other
  // threads racing on this very key) are never blocked behind a search.
  computations_.fetch_add(1, std::memory_order_relaxed);
  double d = backend_->Distance(from, to, metric);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    // A racing thread inserted the same key first; keep its entry.
    return it->second.distance;
  }
  stripe.lru.push_front(key);
  stripe.map.emplace(key, CacheEntry{d, stripe.lru.begin()});
  if (stripe.map.size() > stripe_capacity_) {
    stripe.map.erase(stripe.lru.back());
    stripe.lru.pop_back();
  }
  return d;
}

double GraphOracle::DriveDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveDistance);
}

double GraphOracle::DriveTime(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kDriveTime);
}

double GraphOracle::WalkDistance(NodeId from, NodeId to) {
  return CachedDistance(from, to, Metric::kWalkDistance);
}

Path GraphOracle::DriveRoute(NodeId from, NodeId to) {
  computations_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Route(from, to, Metric::kDriveDistance);
}

HaversineOracle::HaversineOracle(const RoadGraph& graph,
                                 double drive_speed_mps)
    : graph_(graph), drive_speed_mps_(drive_speed_mps) {}

double HaversineOracle::DriveDistance(NodeId from, NodeId to) {
  return HaversineMeters(graph_.PositionOf(from), graph_.PositionOf(to));
}

double HaversineOracle::DriveTime(NodeId from, NodeId to) {
  return DriveDistance(from, to) / drive_speed_mps_;
}

double HaversineOracle::WalkDistance(NodeId from, NodeId to) {
  return DriveDistance(from, to);
}

Path HaversineOracle::DriveRoute(NodeId from, NodeId to) {
  Path p;
  p.nodes = {from, to};
  p.length_m = DriveDistance(from, to);
  p.time_s = DriveTime(from, to);
  return p;
}

StatsSection OracleStatsSection(const DistanceOracle& oracle) {
  std::size_t computations = oracle.computation_count();
  std::size_t hits = oracle.cache_hit_count();
  std::size_t lookups = computations + hits;
  double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  StatsSection section;
  section.name = "oracle";
  section.AddRow({StatsMetric::Text("backend", oracle.backend_name()),
                  StatsMetric::Counter("computations", computations),
                  StatsMetric::Counter("cache_hits", hits),
                  StatsMetric::Gauge("hit_rate", hit_rate),
                  StatsMetric::Counter("settled_nodes",
                                       oracle.settled_count())});
  return section;
}

StatsSection PreprocessStatsSection(const RoutingBackend& backend) {
  StatsSection section;
  section.name = "preprocess";
  for (const PreprocessTiming& t : backend.preprocess_timings()) {
    section.AddRow({StatsMetric::Text("metric", MetricName(t.metric)),
                    StatsMetric::Gauge("build_ms", t.build_ms, 1),
                    StatsMetric::Counter("threads", t.threads),
                    StatsMetric::Counter("batches", t.batches),
                    StatsMetric::Counter("shortcuts", t.shortcuts)});
  }
  return section;
}

TextTable OracleStatsTable(const DistanceOracle& oracle) {
  return StatsSectionTable(OracleStatsSection(oracle));
}

}  // namespace xar
