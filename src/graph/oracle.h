#ifndef XAR_GRAPH_ORACLE_H_
#define XAR_GRAPH_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats_registry.h"
#include "graph/oracle_cache.h"
#include "graph/path.h"
#include "graph/road_graph.h"
#include "graph/routing_backend.h"

namespace xar {

/// Point-to-point distance/route provider.
///
/// Everything above the graph layer (discretization, XAR booking/creation,
/// T-Share's lazy shortest paths, the MMTP) talks to this interface, which
/// makes the routing backend swappable: real routing, haversine (the paper's
/// Fig. 5a T-Share variant) or a test double.
///
/// Implementations must be safe to call from multiple threads: the sharded
/// ConcurrentXarSystem lets bookings on different shards run concurrently,
/// and all of them share one oracle.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Driving distance in meters; +inf if unreachable.
  virtual double DriveDistance(NodeId from, NodeId to) = 0;

  /// Driving time in seconds; +inf if unreachable.
  virtual double DriveTime(NodeId from, NodeId to) = 0;

  /// Walking distance in meters; +inf if unreachable.
  virtual double WalkDistance(NodeId from, NodeId to) = 0;

  /// Full driving route (shortest by distance). Empty path if unreachable.
  virtual Path DriveRoute(NodeId from, NodeId to) = 0;

  /// Driving distance from `from` to each of `targets` (same order); +inf
  /// where unreachable. Default: one DriveDistance per target, so every
  /// oracle (haversine, test doubles) supports the batch API.
  virtual std::vector<double> DriveDistancesToMany(
      NodeId from, const std::vector<NodeId>& targets);

  /// Batch driving distances, row-major |sources| x |targets|. GraphOracle
  /// probes its cache per pair and answers all misses with ONE backend
  /// many-to-many call (CH target buckets); the default loops
  /// DriveDistance.
  virtual std::vector<double> DriveDistanceMatrix(
      const std::vector<NodeId>& sources, const std::vector<NodeId>& targets);

  /// Number of real shortest-path computations performed (cache misses).
  /// Lets benchmarks report how many shortest paths each operation cost.
  virtual std::size_t computation_count() const { return 0; }

  /// Distance queries answered from a cache without a computation.
  virtual std::size_t cache_hit_count() const { return 0; }

  /// Cumulative nodes settled by the underlying search backend.
  virtual std::size_t settled_count() const { return 0; }

  /// Stable name of the routing backend answering cache misses.
  virtual const char* backend_name() const { return "none"; }

  /// Stable name of the distance-cache policy ("none" for cache-less
  /// oracles); see OracleCachePolicy.
  virtual const char* cache_policy_name() const { return "none"; }

  /// Insert-path counters of the distance cache (all zero for cache-less
  /// oracles); see OracleCacheCounters.
  virtual OracleCacheCounters cache_counters() const { return {}; }

  /// Forces any lazy backend preprocessing (e.g. contraction hierarchies
  /// for all metrics) to run now. Refresh paths call this off-thread, with
  /// no locks held, so the first post-swap query never pays a build.
  virtual void Prewarm() {}

  /// The routing backend answering cache misses, when there is one
  /// (GraphOracle); nullptr for backend-less oracles (haversine, doubles).
  /// Lets the stats surface reach preprocessing timings through the
  /// DistanceOracle interface the systems hold.
  virtual const RoutingBackend* routing_backend() const { return nullptr; }

  /// Mutable variant, for callers that route batch work through the
  /// backend directly (the landmark-matrix rebuild during a refresh).
  virtual RoutingBackend* mutable_routing_backend() { return nullptr; }
};

/// Exact oracle backed by a pluggable RoutingBackend over a RoadGraph, with
/// a distance result cache in front of it (distance queries only; routes are
/// always computed). The default backend is contraction hierarchies — the
/// fastest per query once its lazy per-metric build has run; pass
/// RoutingBackendKind::kAStar for the preprocessing-free behaviour this
/// class had before backends were pluggable.
///
/// The cache is policy-pluggable (OracleCachePolicy):
///  - kClock (default): lossy lock-free CLOCK approximation — no locks on
///    the read or insert path, so same-bucket insertions never serialize.
///    Losing an insert race drops the entry and the backend recomputes;
///    returned distances are bit-identical either way because the backend
///    is a pure function of (from, to, metric).
///  - kStripedLru: the previous exact striped LRU (per-stripe mutex and LRU
///    list; hot-path locks are per-stripe and never held during a
///    shortest-path computation). Kept behind the policy enum so
///    differential tests can compare both.
///
/// Thread-safe under either policy: the backend leases per-thread
/// workspaces internally, so any number of threads can query concurrently.
/// Two threads racing on the same cold key may both compute it;
/// computation_count() reports real computations, so single-threaded
/// counts are exactly as before.
class GraphOracle : public DistanceOracle {
 public:
  /// `cache_capacity` = max cached (src,dst,metric) distance entries;
  /// 0 disables caching. For kStripedLru, small capacities use a single
  /// stripe so eviction order stays strict LRU.
  explicit GraphOracle(const RoadGraph& graph,
                       std::size_t cache_capacity = 1 << 16,
                       RoutingBackendKind backend = RoutingBackendKind::kCh,
                       const RoutingBackendOptions& backend_options = {},
                       OracleCachePolicy cache_policy =
                           OracleCachePolicy::kClock);

  /// Takes ownership of a caller-built backend (tests, unusual configs).
  GraphOracle(const RoadGraph& graph, std::unique_ptr<RoutingBackend> backend,
              std::size_t cache_capacity = 1 << 16,
              OracleCachePolicy cache_policy = OracleCachePolicy::kClock);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

  std::vector<double> DriveDistancesToMany(
      NodeId from, const std::vector<NodeId>& targets) override;
  std::vector<double> DriveDistanceMatrix(
      const std::vector<NodeId>& sources,
      const std::vector<NodeId>& targets) override;

  std::size_t computation_count() const override {
    return computations_.load(std::memory_order_relaxed);
  }
  std::size_t cache_hit_count() const override {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::size_t settled_count() const override {
    return backend_->settled_count();
  }
  const char* backend_name() const override { return backend_->name(); }
  const char* cache_policy_name() const override {
    return cache_capacity_ == 0 ? "none" : OracleCachePolicyName(policy_);
  }
  OracleCacheCounters cache_counters() const override;
  void Prewarm() override;

  OracleCachePolicy cache_policy() const { return policy_; }
  RoutingBackend& backend() { return *backend_; }
  const RoutingBackend& backend() const { return *backend_; }
  const RoutingBackend* routing_backend() const override {
    return backend_.get();
  }
  RoutingBackend* mutable_routing_backend() override { return backend_.get(); }

 private:
  struct CacheEntry {
    double distance;
    std::list<OracleCacheKey>::iterator lru_it;
  };
  struct Stripe {
    std::mutex mutex;
    std::list<OracleCacheKey> lru;
    std::unordered_map<OracleCacheKey, CacheEntry, OracleCacheKeyHash> map;
  };

  double CachedDistance(NodeId from, NodeId to, Metric metric);
  double StripedLruDistance(const OracleCacheKey& key, NodeId from, NodeId to,
                            Metric metric);
  /// Probe-only cache read (either policy); no counters, no computation.
  std::optional<double> CacheProbe(const OracleCacheKey& key);
  /// Insert-only cache write (either policy); keeps the insert-path
  /// counters of the active policy.
  void CacheInsert(const OracleCacheKey& key, double distance);
  Stripe& StripeOf(const OracleCacheKey& key) {
    return *stripes_[OracleCacheKeyHash{}(key) % stripes_.size()];
  }

  const RoadGraph& graph_;
  std::unique_ptr<RoutingBackend> backend_;
  std::size_t cache_capacity_;
  OracleCachePolicy policy_;

  // kClock state.
  std::unique_ptr<OracleClockCache> clock_cache_;

  // kStripedLru state.
  std::size_t stripe_capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> lru_insertions_{0};
  std::atomic<std::uint64_t> lru_evictions_{0};
  std::atomic<std::uint64_t> lru_races_{0};

  std::atomic<std::size_t> computations_{0};
  std::atomic<std::size_t> cache_hits_{0};
};

/// Straight-line (haversine) approximation oracle. DriveRoute returns the
/// two-node direct path. Used for the "no shortest path" T-Share variant and
/// as a cheap lower-bound oracle in tests. Stateless per query, hence
/// trivially thread-safe.
class HaversineOracle : public DistanceOracle {
 public:
  /// `drive_speed_mps` converts distances to times.
  explicit HaversineOracle(const RoadGraph& graph,
                           double drive_speed_mps = 8.33);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

  const char* backend_name() const override { return "haversine"; }

 private:
  const RoadGraph& graph_;
  double drive_speed_mps_;
};

/// "oracle" stats section (backend, cache policy, computations, cache hits,
/// hit rate, settled nodes, insert-path counters) — the observability the
/// ROADMAP's striped-cache question asked for. Register on a StatsRegistry:
///   registry.Register("oracle", [&] { return OracleStatsSection(oracle); });
StatsSection OracleStatsSection(const DistanceOracle& oracle);

/// "preprocess" stats section: one row per completed backend preprocessing
/// build (metric, build ms, worker threads, batches, shortcuts). Empty for
/// preprocessing-free backends.
StatsSection PreprocessStatsSection(const RoutingBackend& backend);

}  // namespace xar

#endif  // XAR_GRAPH_ORACLE_H_
