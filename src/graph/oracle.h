#ifndef XAR_GRAPH_ORACLE_H_
#define XAR_GRAPH_ORACLE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Point-to-point distance/route provider.
///
/// Everything above the graph layer (discretization, XAR booking/creation,
/// T-Share's lazy shortest paths, the MMTP) talks to this interface, which
/// makes the routing backend swappable: real routing, haversine (the paper's
/// Fig. 5a T-Share variant) or a test double.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Driving distance in meters; +inf if unreachable.
  virtual double DriveDistance(NodeId from, NodeId to) = 0;

  /// Driving time in seconds; +inf if unreachable.
  virtual double DriveTime(NodeId from, NodeId to) = 0;

  /// Walking distance in meters; +inf if unreachable.
  virtual double WalkDistance(NodeId from, NodeId to) = 0;

  /// Full driving route (shortest by distance). Empty path if unreachable.
  virtual Path DriveRoute(NodeId from, NodeId to) = 0;

  /// Number of real shortest-path computations performed (cache misses).
  /// Lets benchmarks report how many shortest paths each operation cost.
  virtual std::size_t computation_count() const { return 0; }
};

/// Exact oracle backed by A* / bidirectional Dijkstra over a RoadGraph, with
/// an LRU result cache (distance queries only; routes are always computed).
class GraphOracle : public DistanceOracle {
 public:
  /// `cache_capacity` = max cached (src,dst,metric) distance entries;
  /// 0 disables caching.
  explicit GraphOracle(const RoadGraph& graph,
                       std::size_t cache_capacity = 1 << 16);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

  std::size_t computation_count() const override { return computations_; }
  std::size_t cache_hit_count() const { return cache_hits_; }

 private:
  double CachedDistance(NodeId from, NodeId to, Metric metric);

  const RoadGraph& graph_;
  AStarEngine astar_;
  DijkstraEngine dijkstra_;

  // LRU cache keyed by (from, to, metric) packed into 8 bytes.
  std::size_t cache_capacity_;
  std::list<std::uint64_t> lru_;
  struct CacheEntry {
    double distance;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::size_t computations_ = 0;
  std::size_t cache_hits_ = 0;
};

/// Straight-line (haversine) approximation oracle. DriveRoute returns the
/// two-node direct path. Used for the "no shortest path" T-Share variant and
/// as a cheap lower-bound oracle in tests.
class HaversineOracle : public DistanceOracle {
 public:
  /// `drive_speed_mps` converts distances to times.
  explicit HaversineOracle(const RoadGraph& graph,
                           double drive_speed_mps = 8.33);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

 private:
  const RoadGraph& graph_;
  double drive_speed_mps_;
};

}  // namespace xar

#endif  // XAR_GRAPH_ORACLE_H_
