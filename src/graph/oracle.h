#ifndef XAR_GRAPH_ORACLE_H_
#define XAR_GRAPH_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Point-to-point distance/route provider.
///
/// Everything above the graph layer (discretization, XAR booking/creation,
/// T-Share's lazy shortest paths, the MMTP) talks to this interface, which
/// makes the routing backend swappable: real routing, haversine (the paper's
/// Fig. 5a T-Share variant) or a test double.
///
/// Implementations must be safe to call from multiple threads: the sharded
/// ConcurrentXarSystem lets bookings on different shards run concurrently,
/// and all of them share one oracle.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Driving distance in meters; +inf if unreachable.
  virtual double DriveDistance(NodeId from, NodeId to) = 0;

  /// Driving time in seconds; +inf if unreachable.
  virtual double DriveTime(NodeId from, NodeId to) = 0;

  /// Walking distance in meters; +inf if unreachable.
  virtual double WalkDistance(NodeId from, NodeId to) = 0;

  /// Full driving route (shortest by distance). Empty path if unreachable.
  virtual Path DriveRoute(NodeId from, NodeId to) = 0;

  /// Number of real shortest-path computations performed (cache misses).
  /// Lets benchmarks report how many shortest paths each operation cost.
  virtual std::size_t computation_count() const { return 0; }
};

/// Cache key of one (from, to, metric) distance query. `from` and `to` use
/// the full 32 bits each: the old single-uint64 packing (`from << 34 |
/// to << 2 | metric`) silently dropped the top bits of `from` for node ids
/// >= 2^30, aliasing distinct queries onto one cache slot.
struct OracleCacheKey {
  std::uint64_t nodes = 0;  ///< from in the high 32 bits, to in the low 32
  std::uint32_t metric = 0;

  friend bool operator==(const OracleCacheKey& a, const OracleCacheKey& b) {
    return a.nodes == b.nodes && a.metric == b.metric;
  }
};

inline OracleCacheKey MakeOracleCacheKey(NodeId from, NodeId to,
                                         Metric metric) {
  OracleCacheKey key;
  key.nodes = (static_cast<std::uint64_t>(from.value()) << 32) |
              static_cast<std::uint64_t>(to.value());
  key.metric = static_cast<std::uint32_t>(metric);
  return key;
}

struct OracleCacheKeyHash {
  std::size_t operator()(const OracleCacheKey& key) const noexcept {
    // splitmix64-style mix of both fields.
    std::uint64_t h = key.nodes + 0x9e3779b97f4a7c15ull * (key.metric + 1);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// Exact oracle backed by A* over a RoadGraph, with a striped LRU result
/// cache (distance queries only; routes are always computed).
///
/// Thread-safe: the cache is striped (each stripe has its own mutex and LRU
/// list, hot-path locks are per-stripe and never held during a shortest-path
/// computation) and search engines are leased from an internal pool, so any
/// number of threads can query concurrently. Two threads racing on the same
/// cold key may both compute it; computation_count() reports real
/// computations, so single-threaded counts are exactly as before.
class GraphOracle : public DistanceOracle {
 public:
  /// `cache_capacity` = max cached (src,dst,metric) distance entries across
  /// all stripes; 0 disables caching. Small capacities use a single stripe
  /// so eviction order stays strict LRU.
  explicit GraphOracle(const RoadGraph& graph,
                       std::size_t cache_capacity = 1 << 16);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

  std::size_t computation_count() const override {
    return computations_.load(std::memory_order_relaxed);
  }
  std::size_t cache_hit_count() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  struct CacheEntry {
    double distance;
    std::list<OracleCacheKey>::iterator lru_it;
  };
  struct Stripe {
    std::mutex mutex;
    std::list<OracleCacheKey> lru;
    std::unordered_map<OracleCacheKey, CacheEntry, OracleCacheKeyHash> map;
  };

  /// RAII lease of an A* engine from the pool (engines keep per-query
  /// workspace, so one engine must never run two queries at once).
  class EngineLease {
   public:
    explicit EngineLease(GraphOracle& oracle)
        : oracle_(oracle), engine_(oracle.AcquireEngine()) {}
    ~EngineLease() { oracle_.ReleaseEngine(std::move(engine_)); }
    AStarEngine& operator*() { return *engine_; }
    AStarEngine* operator->() { return engine_.get(); }

   private:
    GraphOracle& oracle_;
    std::unique_ptr<AStarEngine> engine_;
  };

  double CachedDistance(NodeId from, NodeId to, Metric metric);
  Stripe& StripeOf(const OracleCacheKey& key) {
    return *stripes_[OracleCacheKeyHash{}(key) % stripes_.size()];
  }
  std::unique_ptr<AStarEngine> AcquireEngine();
  void ReleaseEngine(std::unique_ptr<AStarEngine> engine);

  const RoadGraph& graph_;
  std::size_t cache_capacity_;
  std::size_t stripe_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::mutex engines_mutex_;
  std::vector<std::unique_ptr<AStarEngine>> idle_engines_;

  std::atomic<std::size_t> computations_{0};
  std::atomic<std::size_t> cache_hits_{0};
};

/// Straight-line (haversine) approximation oracle. DriveRoute returns the
/// two-node direct path. Used for the "no shortest path" T-Share variant and
/// as a cheap lower-bound oracle in tests. Stateless per query, hence
/// trivially thread-safe.
class HaversineOracle : public DistanceOracle {
 public:
  /// `drive_speed_mps` converts distances to times.
  explicit HaversineOracle(const RoadGraph& graph,
                           double drive_speed_mps = 8.33);

  double DriveDistance(NodeId from, NodeId to) override;
  double DriveTime(NodeId from, NodeId to) override;
  double WalkDistance(NodeId from, NodeId to) override;
  Path DriveRoute(NodeId from, NodeId to) override;

 private:
  const RoadGraph& graph_;
  double drive_speed_mps_;
};

}  // namespace xar

#endif  // XAR_GRAPH_ORACLE_H_
