#include "graph/oracle_cache.h"

#include <atomic>
#include <string>

#include "common/enum_option.h"

namespace xar {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* OracleCachePolicyName(OracleCachePolicy policy) {
  switch (policy) {
    case OracleCachePolicy::kStripedLru:
      return "striped_lru";
    case OracleCachePolicy::kClock:
      return "clock";
  }
  return "unknown";
}

std::optional<OracleCachePolicy> ParseOracleCachePolicy(
    std::string_view name) {
  Result<OracleCachePolicy> policy = OracleCachePolicyFromString(name);
  if (!policy.ok()) return std::nullopt;
  return policy.value();
}

Result<OracleCachePolicy> OracleCachePolicyFromString(std::string_view name) {
  return ParseEnumOption<OracleCachePolicy>(
      "oracle cache policy", name,
      {{"striped_lru", OracleCachePolicy::kStripedLru},
       {"clock", OracleCachePolicy::kClock}});
}

OracleClockCache::OracleClockCache(std::size_t capacity)
    : capacity_(RoundUpPow2(capacity < 8 ? 8 : capacity)),
      mask_(capacity_ - 1),
      window_(capacity_ < 8 ? capacity_ : 8),
      slots_(new Slot[capacity_]) {}

std::optional<double> OracleClockCache::Lookup(const OracleCacheKey& key) {
  const std::size_t base = BucketOf(key);
  for (std::size_t i = 0; i < window_; ++i) {
    Slot& slot = slots_[(base + i) & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq & 1) continue;  // writer mid-flight: treat as a miss
    const std::uint64_t nodes = slot.nodes.load(std::memory_order_relaxed);
    const std::uint32_t metric =
        slot.metric_plus1.load(std::memory_order_relaxed);
    const std::uint64_t bits = slot.value_bits.load(std::memory_order_relaxed);
    // Seqlock validation: if the sequence moved, the payload reads above may
    // be torn — treat the slot as a miss (the backend recomputes).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    if (metric == 0) return std::nullopt;  // never-written slot ends the probe
    if (nodes == key.nodes && metric == key.metric + 1) {
      slot.ref.store(1, std::memory_order_relaxed);  // CLOCK second chance
      return std::bit_cast<double>(bits);
    }
  }
  return std::nullopt;
}

bool OracleClockCache::TryWrite(Slot& slot, std::uint64_t seq_even,
                                const OracleCacheKey& key, double value,
                                bool* was_empty) {
  if (!slot.seq.compare_exchange_strong(seq_even, seq_even + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return false;
  }
  // Slot claimed (seq is odd): we are the only writer and the sequence is
  // monotone, so the fields are ours until the release below.
  *was_empty = slot.metric_plus1.load(std::memory_order_relaxed) == 0;
  slot.nodes.store(key.nodes, std::memory_order_relaxed);
  slot.metric_plus1.store(key.metric + 1, std::memory_order_relaxed);
  slot.value_bits.store(std::bit_cast<std::uint64_t>(value),
                        std::memory_order_relaxed);
  slot.ref.store(1, std::memory_order_relaxed);
  slot.seq.store(seq_even + 2, std::memory_order_release);
  return true;
}

OracleClockCache::InsertOutcome OracleClockCache::Insert(
    const OracleCacheKey& key, double value) {
  const std::size_t base = BucketOf(key);
  // Pass 1: a racing duplicate, or the first empty slot in the window.
  for (std::size_t i = 0; i < window_; ++i) {
    Slot& slot = slots_[(base + i) & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq & 1) continue;
    const std::uint64_t nodes = slot.nodes.load(std::memory_order_relaxed);
    const std::uint32_t metric =
        slot.metric_plus1.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    if (metric == 0) {
      // The claim CAS only succeeds if seq is unchanged since the reads
      // above, and seq is monotone — so a successful claim still sees the
      // empty slot.
      bool was_empty = false;
      if (TryWrite(slot, seq, key, value, &was_empty)) {
        occupied_.fetch_add(1, std::memory_order_relaxed);
        insertions_.fetch_add(1, std::memory_order_relaxed);
        return InsertOutcome::kInserted;
      }
      continue;  // a racer took this slot; keep probing
    }
    if (nodes == key.nodes && metric == key.metric + 1) {
      // A racing thread computed and inserted this very key first. Its value
      // is bit-identical (the backend is deterministic), so keep its entry.
      races_.fetch_add(1, std::memory_order_relaxed);
      return InsertOutcome::kAlreadyPresent;
    }
  }
  // Pass 2: CLOCK second-chance sweep over the window, starting offset
  // rotated by the global hand. Referenced slots get their bit cleared and
  // survive this sweep; the first unreferenced, stable slot is the victim.
  const std::uint64_t start = hand_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t attempt = 0; attempt < 2 * window_; ++attempt) {
    const std::size_t offset =
        static_cast<std::size_t>(start + attempt) % window_;
    Slot& slot = slots_[(base + offset) & mask_];
    if (slot.ref.load(std::memory_order_relaxed) != 0) {
      slot.ref.store(0, std::memory_order_relaxed);  // second chance
      continue;
    }
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq & 1) continue;
    bool was_empty = false;
    if (TryWrite(slot, seq, key, value, &was_empty)) {
      if (was_empty) occupied_.fetch_add(1, std::memory_order_relaxed);
      insertions_.fetch_add(1, std::memory_order_relaxed);
      if (!was_empty) evictions_.fetch_add(1, std::memory_order_relaxed);
      return was_empty ? InsertOutcome::kInserted : InsertOutcome::kEvicted;
    }
  }
  // Every claim lost its race (all slots hot or contended). Lossy by
  // design: the entry just is not cached this time.
  drops_.fetch_add(1, std::memory_order_relaxed);
  return InsertOutcome::kDropped;
}

}  // namespace xar
