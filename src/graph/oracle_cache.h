#ifndef XAR_GRAPH_ORACLE_CACHE_H_
#define XAR_GRAPH_ORACLE_CACHE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "common/ids.h"
#include "common/result.h"
#include "graph/road_graph.h"

namespace xar {

/// Which distance-cache implementation a GraphOracle runs in front of its
/// routing backend (XarOptions::oracle_cache picks one per system).
enum class OracleCachePolicy {
  /// Striped LRU: exact LRU order per stripe, per-stripe mutex. Insertions
  /// on the same stripe serialize — the scaling hazard the ROADMAP flags.
  kStripedLru,
  /// Lossy lock-free CLOCK approximation (OracleClockCache): no locks on
  /// the read or insert path; losing a race simply drops the entry and the
  /// backend recomputes. The production default.
  kClock,
};

/// Stable lowercase name ("striped_lru", "clock") for logs/stats/JSON.
const char* OracleCachePolicyName(OracleCachePolicy policy);

/// Inverse of OracleCachePolicyName; nullopt on unknown names.
std::optional<OracleCachePolicy> ParseOracleCachePolicy(std::string_view name);

/// Like ParseOracleCachePolicy, but unknown names yield an InvalidArgument
/// status listing the valid names — use for user input (env vars, CLI).
Result<OracleCachePolicy> OracleCachePolicyFromString(std::string_view name);

/// Cache key of one (from, to, metric) distance query. `from` and `to` use
/// the full 32 bits each: the old single-uint64 packing (`from << 34 |
/// to << 2 | metric`) silently dropped the top bits of `from` for node ids
/// >= 2^30, aliasing distinct queries onto one cache slot.
struct OracleCacheKey {
  std::uint64_t nodes = 0;  ///< from in the high 32 bits, to in the low 32
  std::uint32_t metric = 0;

  friend bool operator==(const OracleCacheKey& a, const OracleCacheKey& b) {
    return a.nodes == b.nodes && a.metric == b.metric;
  }
};

inline OracleCacheKey MakeOracleCacheKey(NodeId from, NodeId to,
                                         Metric metric) {
  OracleCacheKey key;
  key.nodes = (static_cast<std::uint64_t>(from.value()) << 32) |
              static_cast<std::uint64_t>(to.value());
  key.metric = static_cast<std::uint32_t>(metric);
  return key;
}

struct OracleCacheKeyHash {
  std::size_t operator()(const OracleCacheKey& key) const noexcept {
    // splitmix64-style mix of both fields.
    std::uint64_t h = key.nodes + 0x9e3779b97f4a7c15ull * (key.metric + 1);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// Structural counters shared by both cache policies. Hits and misses are
/// counted by the owning GraphOracle (cache_hit_count / computation_count);
/// these count what happened on the insert path.
struct OracleCacheCounters {
  std::uint64_t insertions = 0;  ///< entries written into the cache
  std::uint64_t evictions = 0;   ///< insertions that displaced a live entry
  std::uint64_t drops = 0;       ///< insertions abandoned (lost every CAS)
  std::uint64_t races = 0;       ///< key already present at insert time
};

/// Lossy, lock-free CLOCK-approximation distance cache.
///
/// Layout: a fixed-capacity (power-of-two) open-addressed table of slots.
/// Each slot is a tiny seqlock — a monotone sequence counter (even =
/// stable, odd = writer mid-flight) plus the key, the value bits and a
/// CLOCK reference bit, all individually atomic. Readers retry nothing:
/// a torn or mid-write slot is simply treated as a miss and the backend
/// recomputes, which is always correct because the backend is a pure
/// function of (from, to, metric).
///
/// Insertion probes a short linear window from the key's hash bucket:
/// a matching key counts as a race (a concurrent thread computed the same
/// pair first — keep its entry, the values are identical); an empty slot
/// is claimed by CAS-ing its sequence counter to odd. When the window is
/// full, a CLOCK second-chance sweep evicts: a global atomic hand rotates
/// the sweep's starting offset, slots with the reference bit set get it
/// cleared and survive, and the first unreferenced slot is claimed by the
/// same CAS. If every claim attempt loses its race the insertion is
/// dropped — lossy by design, the entry just isn't cached this time.
///
/// No mutex anywhere; no operation ever blocks another. TSan-clean: every
/// shared field is a std::atomic and the per-slot publication protocol is
/// the standard seqlock (acquire fence between the payload reads and the
/// sequence re-check, release store publishing the new sequence).
class OracleClockCache {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8). The probe
  /// window is min(8, capacity): with capacity 8 every key's window is the
  /// whole table, which unit tests use to force eviction deterministically.
  explicit OracleClockCache(std::size_t capacity);

  OracleClockCache(const OracleClockCache&) = delete;
  OracleClockCache& operator=(const OracleClockCache&) = delete;

  /// Value cached for `key`, or nullopt. A hit sets the slot's reference
  /// bit (the CLOCK second chance). Lock-free and wait-free.
  std::optional<double> Lookup(const OracleCacheKey& key);

  enum class InsertOutcome {
    kInserted,        ///< wrote into an empty slot
    kEvicted,         ///< wrote over a CLOCK-selected victim
    kAlreadyPresent,  ///< a racing thread inserted this key first
    kDropped,         ///< lost every CAS; entry not cached (benign)
  };

  /// Inserts `value` for `key`. Never blocks; see InsertOutcome.
  InsertOutcome Insert(const OracleCacheKey& key, double value);

  std::size_t capacity() const { return capacity_; }
  std::size_t probe_window() const { return window_; }
  /// Live entries (never exceeds capacity; evictions keep it constant).
  std::size_t occupied() const {
    return occupied_.load(std::memory_order_relaxed);
  }
  OracleCacheCounters counters() const {
    OracleCacheCounters c;
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.drops = drops_.load(std::memory_order_relaxed);
    c.races = races_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  struct Slot {
    /// Even = stable, odd = writer mid-flight. Monotone, so the claim CAS
    /// has no ABA window.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> nodes{0};
    /// metric + 1; 0 = slot has never been written.
    std::atomic<std::uint32_t> metric_plus1{0};
    /// CLOCK reference bit (hint only — no ordering with the seqlock).
    std::atomic<std::uint32_t> ref{0};
    std::atomic<std::uint64_t> value_bits{0};
  };

  std::size_t BucketOf(const OracleCacheKey& key) const {
    return OracleCacheKeyHash{}(key) & mask_;
  }

  /// Claims `slot` (seq CAS even->odd), writes the entry, publishes
  /// (seq -> even). Returns false if the claim CAS lost; `*was_empty`
  /// reports whether the overwritten slot had never held an entry.
  bool TryWrite(Slot& slot, std::uint64_t seq_even, const OracleCacheKey& key,
                double value, bool* was_empty);

  std::size_t capacity_;
  std::size_t mask_;
  std::size_t window_;
  std::unique_ptr<Slot[]> slots_;
  /// The CLOCK hand: rotates the eviction sweep's starting offset so
  /// repeated evictions in one window don't always victimize slot 0.
  std::atomic<std::uint64_t> hand_{0};
  std::atomic<std::size_t> occupied_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> races_{0};
};

}  // namespace xar

#endif  // XAR_GRAPH_ORACLE_CACHE_H_
