#ifndef XAR_GRAPH_PATH_H_
#define XAR_GRAPH_PATH_H_

#include <limits>
#include <vector>

#include "common/ids.h"

namespace xar {

/// A shortest path through the road network. `nodes` lists the way-points
/// from source to destination inclusive; an unreachable pair yields an empty
/// node list and infinite weights.
struct Path {
  std::vector<NodeId> nodes;
  double length_m = std::numeric_limits<double>::infinity();
  double time_s = std::numeric_limits<double>::infinity();

  bool Found() const { return !nodes.empty(); }
};

}  // namespace xar

#endif  // XAR_GRAPH_PATH_H_
