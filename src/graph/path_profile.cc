#include "graph/path_profile.h"

#include <cassert>
#include <limits>

namespace xar {

Path ProfileNodePath(const RoadGraph& graph, std::vector<NodeId> nodes,
                     Metric metric) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Path path;
  if (nodes.empty()) return path;
  path.nodes = std::move(nodes);
  path.length_m = 0;
  path.time_s = 0;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const RoadEdge* best = nullptr;
    double best_w = kInf;
    for (const RoadEdge& e : graph.OutEdges(path.nodes[i])) {
      if (e.to != path.nodes[i + 1]) continue;
      double w = RoadGraph::EdgeWeight(e, metric);
      if (w < best_w) {
        best_w = w;
        best = &e;
      }
    }
    assert(best != nullptr);
    path.length_m += best->length_m;
    path.time_s += best->time_s;
  }
  return path;
}

}  // namespace xar
