#ifndef XAR_GRAPH_PATH_PROFILE_H_
#define XAR_GRAPH_PATH_PROFILE_H_

#include <utility>
#include <vector>

#include "common/ids.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Turns a node chain into a full Path by walking the graph and, for each
/// hop, charging the cheapest parallel edge under `metric` (the edge a
/// shortest-path search would have relaxed). Fills in BOTH totals —
/// length_m and time_s — regardless of the query metric, which is why every
/// engine's route reconstruction funnels through here instead of summing
/// its own distance labels.
Path ProfileNodePath(const RoadGraph& graph, std::vector<NodeId> nodes,
                     Metric metric);

}  // namespace xar

#endif  // XAR_GRAPH_PATH_PROFILE_H_
