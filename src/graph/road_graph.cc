#include "graph/road_graph.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xar {

double RoadGraph::EdgeWeight(const RoadEdge& e, Metric metric) {
  switch (metric) {
    case Metric::kDriveDistance:
      return e.drivable ? e.length_m : std::numeric_limits<double>::infinity();
    case Metric::kDriveTime:
      return e.drivable ? e.time_s : std::numeric_limits<double>::infinity();
    case Metric::kWalkDistance:
      return e.walkable ? e.length_m : std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

std::size_t RoadGraph::MemoryFootprint() const {
  return positions_.capacity() * sizeof(LatLng) +
         offsets_.capacity() * sizeof(std::size_t) +
         edges_.capacity() * sizeof(RoadEdge) + sizeof(*this);
}

NodeId GraphBuilder::AddNode(const LatLng& pos) {
  positions_.push_back(pos);
  return NodeId(static_cast<NodeId::underlying_type>(positions_.size() - 1));
}

void GraphBuilder::AddArc(NodeId from, NodeId to, double length_m,
                          double speed_mps, bool drivable, bool walkable) {
  assert(from.value() < positions_.size() && to.value() < positions_.size());
  if (length_m <= 0) {
    length_m =
        HaversineMeters(positions_[from.value()], positions_[to.value()]);
  }
  RoadEdge e;
  e.to = to;
  e.length_m = length_m;
  e.time_s = drivable && speed_mps > 0 ? length_m / speed_mps : 0.0;
  e.drivable = drivable;
  e.walkable = walkable;
  if (drivable && speed_mps > max_speed_mps_) max_speed_mps_ = speed_mps;
  arcs_.push_back(PendingArc{from, e});
}

void GraphBuilder::AddTwoWayStreet(NodeId a, NodeId b, double speed_mps,
                                   double length_m) {
  AddArc(a, b, length_m, speed_mps, /*drivable=*/true, /*walkable=*/true);
  AddArc(b, a, length_m, speed_mps, /*drivable=*/true, /*walkable=*/true);
}

void GraphBuilder::AddOneWayStreet(NodeId from, NodeId to, double speed_mps,
                                   double length_m) {
  AddArc(from, to, length_m, speed_mps, /*drivable=*/true, /*walkable=*/true);
  // Pedestrians ignore the one-way restriction.
  AddArc(to, from, length_m, speed_mps, /*drivable=*/false, /*walkable=*/true);
}

RoadGraph GraphBuilder::Build() {
  RoadGraph g;
  g.positions_ = std::move(positions_);
  g.max_speed_mps_ = max_speed_mps_;

  std::size_t n = g.positions_.size();
  g.offsets_.assign(n + 1, 0);
  for (const PendingArc& a : arcs_) {
    ++g.offsets_[a.from.value() + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.edges_.resize(arcs_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const PendingArc& a : arcs_) {
    g.edges_[cursor[a.from.value()]++] = a.edge;
  }

  if (!g.positions_.empty()) {
    g.bounds_ = BoundingBox{g.positions_[0].lat, g.positions_[0].lng,
                            g.positions_[0].lat, g.positions_[0].lng};
    for (const LatLng& p : g.positions_) g.bounds_.Extend(p);
  }
  arcs_.clear();
  return g;
}

}  // namespace xar
