#ifndef XAR_GRAPH_ROAD_GRAPH_H_
#define XAR_GRAPH_ROAD_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// Which edge weight a shortest-path query minimizes.
enum class Metric {
  kDriveDistance,  ///< meters along drivable edges
  kDriveTime,      ///< seconds along drivable edges
  kWalkDistance,   ///< meters along walkable edges (one-ways ignored)
};

/// A directed road-network edge. Drivability and walkability are independent
/// flags: a one-way street contributes one drivable arc but two walkable
/// arcs; a pedestrian path contributes walkable arcs only.
struct RoadEdge {
  NodeId to;
  double length_m = 0.0;  ///< geometric length
  double time_s = 0.0;    ///< driving traversal time (meaningless if !drivable)
  bool drivable = false;
  bool walkable = false;
};

/// Immutable directed road network in CSR (compressed sparse row) layout,
/// with per-node coordinates. Built once by GraphBuilder; all runtime
/// components (routing, discretization, XAR, T-Share) share one instance.
class RoadGraph {
 public:
  RoadGraph() = default;

  std::size_t NumNodes() const { return positions_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const LatLng& PositionOf(NodeId n) const { return positions_[n.value()]; }

  /// Outgoing edges of `n`.
  std::span<const RoadEdge> OutEdges(NodeId n) const {
    return {edges_.data() + offsets_[n.value()],
            offsets_[n.value() + 1] - offsets_[n.value()]};
  }

  /// Geographic bounding box of all nodes.
  const BoundingBox& bounds() const { return bounds_; }

  /// Straight-line lower bound on driving time between two nodes, using the
  /// network's maximum speed. Admissible A* heuristic.
  double MaxSpeedMps() const { return max_speed_mps_; }

  /// The weight of `e` under `metric`, or +inf if the edge does not
  /// participate in that metric.
  static double EdgeWeight(const RoadEdge& e, Metric metric);

  /// Rough resident-memory estimate of this structure, in bytes.
  std::size_t MemoryFootprint() const;

 private:
  friend class GraphBuilder;

  std::vector<LatLng> positions_;
  std::vector<std::size_t> offsets_;  // NumNodes() + 1
  std::vector<RoadEdge> edges_;
  BoundingBox bounds_;
  double max_speed_mps_ = 1.0;
};

/// Incremental builder producing a CSR RoadGraph.
class GraphBuilder {
 public:
  /// Adds a node at `pos`; returns its id (dense, starting at 0).
  NodeId AddNode(const LatLng& pos);

  /// Adds a directed arc. If `length_m` <= 0 the geometric distance between
  /// the endpoints is used. `speed_mps` sets driving time (ignored when not
  /// drivable).
  void AddArc(NodeId from, NodeId to, double length_m, double speed_mps,
              bool drivable, bool walkable);

  /// Adds a two-way street: drivable+walkable arcs in both directions.
  void AddTwoWayStreet(NodeId a, NodeId b, double speed_mps,
                       double length_m = -1.0);

  /// Adds a one-way street: drivable arc `from`->`to`, but walkable both ways.
  void AddOneWayStreet(NodeId from, NodeId to, double speed_mps,
                       double length_m = -1.0);

  std::size_t NumNodes() const { return positions_.size(); }

  /// Finalizes into CSR form. The builder may not be reused afterwards.
  RoadGraph Build();

 private:
  struct PendingArc {
    NodeId from;
    RoadEdge edge;
  };

  std::vector<LatLng> positions_;
  std::vector<PendingArc> arcs_;
  double max_speed_mps_ = 1.0;
};

}  // namespace xar

#endif  // XAR_GRAPH_ROAD_GRAPH_H_
