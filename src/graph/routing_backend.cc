#include "graph/routing_backend.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "common/enum_option.h"
#include "graph/alt.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"

namespace xar {

std::vector<double> RoutingBackend::DistancesToMany(
    NodeId src, const std::vector<NodeId>& targets, Metric metric) {
  CountFallbackQuery();
  std::vector<double> out;
  out.reserve(targets.size());
  for (NodeId t : targets) out.push_back(Distance(src, t, metric));
  return out;
}

std::vector<double> RoutingBackend::ManyToMany(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& targets,
    Metric metric) {
  // Fallback shape: one one-to-many per source (each row counts itself via
  // the DistancesToMany override it lands in).
  std::vector<double> out;
  out.reserve(sources.size() * targets.size());
  for (NodeId s : sources) {
    std::vector<double> row = DistancesToMany(s, targets, metric);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

namespace {

constexpr std::size_t kNumMetrics = 3;

std::size_t MetricIndex(Metric metric) {
  return static_cast<std::size_t>(metric);
}

/// Lease pool of per-thread query workspaces: engines keep mutable state,
/// so one engine must never run two queries at once. The pool grows to the
/// peak number of concurrent callers and then stops allocating.
template <typename Engine>
class EnginePool {
 public:
  class Lease {
   public:
    Lease(EnginePool& pool, std::unique_ptr<Engine> engine)
        : pool_(pool), engine_(std::move(engine)) {}
    ~Lease() { pool_.Release(std::move(engine_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Engine& operator*() { return *engine_; }
    Engine* operator->() { return engine_.get(); }

   private:
    EnginePool& pool_;
    std::unique_ptr<Engine> engine_;
  };

  template <typename Factory>
  Lease Acquire(Factory&& make) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<Engine> engine = std::move(idle_.back());
        idle_.pop_back();
        return Lease(*this, std::move(engine));
      }
    }
    return Lease(*this, make());
  }

  /// Sum of `footprint` over idle engines (leased ones are transient).
  template <typename FootprintFn>
  std::size_t IdleFootprint(FootprintFn&& footprint) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t bytes = 0;
    for (const auto& engine : idle_) bytes += footprint(*engine);
    return bytes;
  }

 private:
  void Release(std::unique_ptr<Engine> engine) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(engine));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Engine>> idle_;
};

class DijkstraBackend final : public RoutingBackend {
 public:
  explicit DijkstraBackend(const RoadGraph& graph) : graph_(graph) {}

  double Distance(NodeId from, NodeId to, Metric metric) override {
    auto engine = AcquireEngine();
    double d = engine->Distance(from, to, metric);
    Account(engine->last_settled_count());
    return d;
  }

  Path Route(NodeId from, NodeId to, Metric metric) override {
    auto engine = AcquireEngine();
    Path p = engine->ShortestPath(from, to, metric);
    Account(engine->last_settled_count());
    return p;
  }

  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets,
                                      Metric metric) override {
    CountFallbackQuery();
    auto engine = AcquireEngine();
    std::vector<double> out = engine->DistancesToMany(src, targets, metric);
    Account(engine->last_settled_count());
    return out;
  }

  std::vector<double> ManyToMany(const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets,
                                 Metric metric) override {
    // One leased engine serves every row; each row is still a native
    // single-source search, so it counts as a fallback query.
    auto engine = AcquireEngine();
    std::vector<double> out;
    out.reserve(sources.size() * targets.size());
    for (NodeId s : sources) {
      CountFallbackQuery();
      std::vector<double> row = engine->DistancesToMany(s, targets, metric);
      Account(engine->last_settled_count());
      out.insert(out.end(), row.begin(), row.end());
    }
    return out;
  }

  RoutingBackendKind kind() const override {
    return RoutingBackendKind::kDijkstra;
  }
  std::size_t settled_count() const override {
    return settled_.load(std::memory_order_relaxed);
  }
  std::size_t query_count() const override {
    return queries_.load(std::memory_order_relaxed);
  }
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + pool_.IdleFootprint([](const DijkstraEngine& e) {
      return e.MemoryFootprint();
    });
  }

 private:
  EnginePool<DijkstraEngine>::Lease AcquireEngine() {
    return pool_.Acquire(
        [this] { return std::make_unique<DijkstraEngine>(graph_); });
  }
  void Account(std::size_t settled) {
    settled_.fetch_add(settled, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
  }

  const RoadGraph& graph_;
  EnginePool<DijkstraEngine> pool_;
  std::atomic<std::size_t> settled_{0};
  std::atomic<std::size_t> queries_{0};
};

class AStarBackend final : public RoutingBackend {
 public:
  explicit AStarBackend(const RoadGraph& graph) : graph_(graph) {}

  double Distance(NodeId from, NodeId to, Metric metric) override {
    auto engine = AcquireEngine();
    double d = engine->Distance(from, to, metric);
    Account(engine->last_settled_count());
    return d;
  }

  Path Route(NodeId from, NodeId to, Metric metric) override {
    auto engine = AcquireEngine();
    Path p = engine->ShortestPath(from, to, metric);
    Account(engine->last_settled_count());
    return p;
  }

  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets,
                                      Metric metric) override {
    // Per-pair A* (no one-to-many structure), but through ONE leased engine
    // so the loop does not pay a pool round-trip per target.
    CountFallbackQuery();
    auto engine = AcquireEngine();
    std::vector<double> out;
    out.reserve(targets.size());
    std::size_t settled = 0;
    for (NodeId t : targets) {
      out.push_back(engine->Distance(src, t, metric));
      settled += engine->last_settled_count();
    }
    Account(settled);
    return out;
  }

  RoutingBackendKind kind() const override { return RoutingBackendKind::kAStar; }
  std::size_t settled_count() const override {
    return settled_.load(std::memory_order_relaxed);
  }
  std::size_t query_count() const override {
    return queries_.load(std::memory_order_relaxed);
  }
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + pool_.IdleFootprint([](const AStarEngine& e) {
      return e.MemoryFootprint();
    });
  }

 private:
  EnginePool<AStarEngine>::Lease AcquireEngine() {
    return pool_.Acquire(
        [this] { return std::make_unique<AStarEngine>(graph_); });
  }
  void Account(std::size_t settled) {
    settled_.fetch_add(settled, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
  }

  const RoadGraph& graph_;
  EnginePool<AStarEngine> pool_;
  std::atomic<std::size_t> settled_{0};
  std::atomic<std::size_t> queries_{0};
};

/// Shared scaffolding for the preprocessing backends (ALT, CH): one lazily
/// built immutable product per metric (std::call_once so racing first
/// queries — and TSan — see exactly one build), plus a workspace pool.
class AltBackend final : public RoutingBackend {
 public:
  AltBackend(const RoadGraph& graph, std::size_t anchors)
      : graph_(graph), anchors_(anchors) {}

  double Distance(NodeId from, NodeId to, Metric metric) override {
    PerMetric& pm = Ensure(metric);
    auto engine = pm.pool.Acquire(
        [&pm] { return std::make_unique<AltEngine>(*pm.prototype); });
    double d = engine->Distance(from, to);
    Account(engine->last_settled_count());
    return d;
  }

  Path Route(NodeId from, NodeId to, Metric metric) override {
    PerMetric& pm = Ensure(metric);
    auto engine = pm.pool.Acquire(
        [&pm] { return std::make_unique<AltEngine>(*pm.prototype); });
    Path p = engine->ShortestPath(from, to);
    Account(engine->last_settled_count());
    return p;
  }

  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets,
                                      Metric metric) override {
    // Per-pair ALT through one leased engine (see AStarBackend).
    CountFallbackQuery();
    PerMetric& pm = Ensure(metric);
    auto engine = pm.pool.Acquire(
        [&pm] { return std::make_unique<AltEngine>(*pm.prototype); });
    std::vector<double> out;
    out.reserve(targets.size());
    std::size_t settled = 0;
    for (NodeId t : targets) {
      out.push_back(engine->Distance(src, t));
      settled += engine->last_settled_count();
    }
    Account(settled);
    return out;
  }

  void Prepare(Metric metric) override { Ensure(metric); }

  RoutingBackendKind kind() const override { return RoutingBackendKind::kAlt; }
  std::size_t settled_count() const override {
    return settled_.load(std::memory_order_relaxed);
  }
  std::size_t query_count() const override {
    return queries_.load(std::memory_order_relaxed);
  }
  double preprocess_millis() const override {
    return static_cast<double>(
               preprocess_micros_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  std::size_t MemoryFootprint() const override {
    std::size_t bytes = sizeof(*this);
    for (const PerMetric& pm : metrics_) {
      // The prototype's footprint covers the shared tables; idle clones
      // only add their workspaces, which the prototype's count mirrors.
      if (pm.prototype) bytes += pm.prototype->MemoryFootprint();
      bytes += pm.pool.IdleFootprint([](const AltEngine& e) {
        return e.MemoryFootprint() / 2;  // tables shared with the prototype
      });
    }
    return bytes;
  }

 private:
  struct PerMetric {
    std::once_flag once;
    std::unique_ptr<AltEngine> prototype;
    EnginePool<AltEngine> pool;
  };

  PerMetric& Ensure(Metric metric) {
    PerMetric& pm = metrics_[MetricIndex(metric)];
    std::call_once(pm.once, [this, &pm, metric] {
      auto start = std::chrono::steady_clock::now();
      pm.prototype = std::make_unique<AltEngine>(graph_, anchors_, metric);
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      preprocess_micros_.fetch_add(micros, std::memory_order_relaxed);
    });
    return pm;
  }
  void Account(std::size_t settled) {
    settled_.fetch_add(settled, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
  }

  const RoadGraph& graph_;
  std::size_t anchors_;
  PerMetric metrics_[kNumMetrics];
  std::atomic<std::size_t> settled_{0};
  std::atomic<std::size_t> queries_{0};
  std::atomic<std::int64_t> preprocess_micros_{0};
};

class ChBackend final : public RoutingBackend {
 public:
  ChBackend(const RoadGraph& graph, ChOptions options)
      : graph_(graph), options_(options) {}

  double Distance(NodeId from, NodeId to, Metric metric) override {
    PerMetric& pm = Ensure(metric);
    auto query = pm.pool.Acquire(
        [&pm] { return std::make_unique<ChQuery>(*pm.hierarchy); });
    double d = query->Distance(from, to);
    Account(query->last_settled_count());
    return d;
  }

  Path Route(NodeId from, NodeId to, Metric metric) override {
    PerMetric& pm = Ensure(metric);
    auto query = pm.pool.Acquire(
        [&pm] { return std::make_unique<ChQuery>(*pm.hierarchy); });
    Path p = query->Route(from, to);
    Account(query->last_settled_count());
    return p;
  }

  std::vector<double> DistancesToMany(NodeId src,
                                      const std::vector<NodeId>& targets,
                                      Metric metric) override {
    CountBatchQuery();
    PerMetric& pm = Ensure(metric);
    auto query = pm.pool.Acquire(
        [&pm] { return std::make_unique<ChQuery>(*pm.hierarchy); });
    std::vector<double> out = query->DistancesToMany(src, targets);
    Account(query->last_settled_count());
    return out;
  }

  std::vector<double> ManyToMany(const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets,
                                 Metric metric) override {
    CountBatchQuery();
    PerMetric& pm = Ensure(metric);
    auto query = pm.pool.Acquire(
        [&pm] { return std::make_unique<ChQuery>(*pm.hierarchy); });
    std::vector<double> out = query->ManyToMany(sources, targets);
    Account(query->last_settled_count());
    return out;
  }

  void Prepare(Metric metric) override { Ensure(metric); }

  RoutingBackendKind kind() const override { return RoutingBackendKind::kCh; }
  std::size_t settled_count() const override {
    return settled_.load(std::memory_order_relaxed);
  }
  std::size_t query_count() const override {
    return queries_.load(std::memory_order_relaxed);
  }
  double preprocess_millis() const override {
    return static_cast<double>(
               preprocess_micros_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  std::vector<PreprocessTiming> preprocess_timings() const override {
    std::vector<PreprocessTiming> timings;
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      const PerMetric& pm = metrics_[i];
      if (!pm.ready.load(std::memory_order_acquire)) continue;
      PreprocessTiming t;
      t.metric = static_cast<Metric>(i);
      t.build_ms = pm.hierarchy->build_millis();
      t.threads = pm.hierarchy->threads_used();
      t.batches = pm.hierarchy->num_batches();
      t.shortcuts = pm.hierarchy->NumShortcuts();
      timings.push_back(t);
    }
    return timings;
  }
  std::size_t MemoryFootprint() const override {
    std::size_t bytes = sizeof(*this);
    for (const PerMetric& pm : metrics_) {
      if (pm.hierarchy) bytes += pm.hierarchy->MemoryFootprint();
      bytes += pm.pool.IdleFootprint([](const ChQuery& q) {
        return q.MemoryFootprint();
      });
    }
    return bytes;
  }

 private:
  struct PerMetric {
    std::once_flag once;
    std::unique_ptr<const ContractionHierarchy> hierarchy;
    /// Set (release) after `hierarchy` is fully built, so stats readers can
    /// observe finished builds without racing the call_once.
    std::atomic<bool> ready{false};
    EnginePool<ChQuery> pool;
  };

  PerMetric& Ensure(Metric metric) {
    PerMetric& pm = metrics_[MetricIndex(metric)];
    std::call_once(pm.once, [this, &pm, metric] {
      auto start = std::chrono::steady_clock::now();
      pm.hierarchy =
          std::make_unique<const ContractionHierarchy>(graph_, metric, options_);
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      preprocess_micros_.fetch_add(micros, std::memory_order_relaxed);
      pm.ready.store(true, std::memory_order_release);
    });
    return pm;
  }
  void Account(std::size_t settled) {
    settled_.fetch_add(settled, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
  }

  const RoadGraph& graph_;
  ChOptions options_;
  PerMetric metrics_[kNumMetrics];
  std::atomic<std::size_t> settled_{0};
  std::atomic<std::size_t> queries_{0};
  std::atomic<std::int64_t> preprocess_micros_{0};
};

}  // namespace

const char* RoutingBackendName(RoutingBackendKind kind) {
  switch (kind) {
    case RoutingBackendKind::kDijkstra:
      return "dijkstra";
    case RoutingBackendKind::kAStar:
      return "astar";
    case RoutingBackendKind::kAlt:
      return "alt";
    case RoutingBackendKind::kCh:
      return "ch";
  }
  return "unknown";
}

std::optional<RoutingBackendKind> ParseRoutingBackend(std::string_view name) {
  Result<RoutingBackendKind> kind = RoutingBackendFromString(name);
  if (!kind.ok()) return std::nullopt;
  return kind.value();
}

Result<RoutingBackendKind> RoutingBackendFromString(std::string_view name) {
  return ParseEnumOption<RoutingBackendKind>(
      "routing backend", name,
      {{"dijkstra", RoutingBackendKind::kDijkstra},
       {"astar", RoutingBackendKind::kAStar},
       {"alt", RoutingBackendKind::kAlt},
       {"ch", RoutingBackendKind::kCh}});
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kDriveDistance:
      return "drive_m";
    case Metric::kDriveTime:
      return "drive_s";
    case Metric::kWalkDistance:
      return "walk_m";
  }
  return "unknown";
}

std::unique_ptr<RoutingBackend> MakeRoutingBackend(
    RoutingBackendKind kind, const RoadGraph& graph,
    const RoutingBackendOptions& options) {
  switch (kind) {
    case RoutingBackendKind::kDijkstra:
      return std::make_unique<DijkstraBackend>(graph);
    case RoutingBackendKind::kAStar:
      return std::make_unique<AStarBackend>(graph);
    case RoutingBackendKind::kAlt:
      return std::make_unique<AltBackend>(graph, options.alt_anchors);
    case RoutingBackendKind::kCh:
      return std::make_unique<ChBackend>(graph, options.ch);
  }
  return nullptr;
}

}  // namespace xar
