#ifndef XAR_GRAPH_ROUTING_BACKEND_H_
#define XAR_GRAPH_ROUTING_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "graph/contraction_hierarchy.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Stable lowercase name of a metric ("drive_m", "drive_s", "walk_m") for
/// logs, stats sections and bench JSON.
const char* MetricName(Metric metric);

/// The shortest-path algorithm the oracle runs on a cache miss.
enum class RoutingBackendKind {
  kDijkstra,  ///< plain unidirectional Dijkstra (baseline; best one-to-many)
  kAStar,     ///< A* with the geometric heuristic (no preprocessing)
  kAlt,       ///< A* with landmark (anchor) lower bounds (light preprocessing)
  kCh,        ///< contraction hierarchies (heavy preprocessing, fastest)
};

/// Stable lowercase name ("dijkstra", "astar", "alt", "ch") for logs/JSON.
const char* RoutingBackendName(RoutingBackendKind kind);

/// Inverse of RoutingBackendName; nullopt on unknown names.
std::optional<RoutingBackendKind> ParseRoutingBackend(std::string_view name);

/// Like ParseRoutingBackend, but unknown names yield an InvalidArgument
/// status that lists the valid names. Use this wherever the name comes
/// from user input (CLI flags, environment variables, config files) so a
/// typo is an error instead of a silent fall-through to the default.
Result<RoutingBackendKind> RoutingBackendFromString(std::string_view name);

/// One completed preprocessing build (e.g. one metric's contraction
/// hierarchy): what was built, how long it took and with how many worker
/// threads. The stats surface renders these under the "preprocess" section.
struct PreprocessTiming {
  Metric metric = Metric::kDriveDistance;
  double build_ms = 0.0;
  std::size_t threads = 1;   ///< worker threads the build ran with
  std::size_t batches = 0;   ///< independent-set rounds (CH; 0 otherwise)
  std::size_t shortcuts = 0; ///< shortcut arcs added (CH; 0 otherwise)
};

struct RoutingBackendOptions {
  /// Landmark count for the ALT backend.
  std::size_t alt_anchors = 8;
  /// Preprocessing knobs for the CH backend.
  ChOptions ch;
};

/// Point-to-point routing engine behind the DistanceOracle.
///
/// A backend owns whatever preprocessing its algorithm needs (anchor tables,
/// hierarchies) plus a pool of per-thread query workspaces, so every method
/// is safe to call from any number of threads concurrently. Preprocessing
/// is lazy per metric: the first query (or an explicit Prepare) under a
/// metric pays the build, later queries reuse it.
class RoutingBackend {
 public:
  virtual ~RoutingBackend() = default;

  /// One-to-one distance under `metric`; +inf if unreachable.
  virtual double Distance(NodeId from, NodeId to, Metric metric) = 0;

  /// One-to-one path (original-graph nodes + both totals); empty path if
  /// unreachable.
  virtual Path Route(NodeId from, NodeId to, Metric metric) = 0;

  /// Distance from `src` to each of `targets` (same order); +inf where
  /// unreachable. Backends with a fast one-to-many (Dijkstra's native
  /// search, CH target buckets) override the default point-to-point loop.
  virtual std::vector<double> DistancesToMany(NodeId src,
                                              const std::vector<NodeId>& targets,
                                              Metric metric);

  /// Batch distances from every source to every target, row-major
  /// |sources| x |targets| (+inf where unreachable). The CH backend answers
  /// the whole batch with one bucket structure (build the target buckets
  /// once, scan them once per source); everything else falls back to one
  /// DistancesToMany per source.
  virtual std::vector<double> ManyToMany(const std::vector<NodeId>& sources,
                                         const std::vector<NodeId>& targets,
                                         Metric metric);

  /// Forces any preprocessing for `metric` to run now (no-op for backends
  /// without preprocessing). Used to build hierarchies off-thread before a
  /// refresh swap so no query ever pays the build under a lock.
  virtual void Prepare(Metric /*metric*/) {}

  virtual RoutingBackendKind kind() const = 0;
  const char* name() const { return RoutingBackendName(kind()); }

  /// Cumulative nodes settled across all queries (all threads).
  virtual std::size_t settled_count() const = 0;

  /// Cumulative Distance/Route/DistancesToMany calls.
  virtual std::size_t query_count() const = 0;

  /// Total milliseconds spent in preprocessing so far (0 when none ran).
  virtual double preprocess_millis() const { return 0.0; }

  /// Per-build preprocessing timings completed so far (one entry per
  /// metric whose build has run). Empty for preprocessing-free backends.
  virtual std::vector<PreprocessTiming> preprocess_timings() const {
    return {};
  }

  /// Rough bytes held: preprocessing products + pooled idle workspaces.
  virtual std::size_t MemoryFootprint() const = 0;

  /// Batch calls (DistancesToMany / ManyToMany) answered by a true
  /// many-to-many structure — the CH target buckets. One increment per
  /// batch call, regardless of its size.
  std::size_t m2m_batch_count() const {
    return m2m_batch_.load(std::memory_order_relaxed);
  }

  /// One-to-many requests served by a fallback loop (per-pair or native
  /// single-source). A ManyToMany falling back counts once per source row —
  /// that is what it actually costs.
  std::size_t m2m_fallback_count() const {
    return m2m_fallback_.load(std::memory_order_relaxed);
  }

 protected:
  void CountBatchQuery() {
    m2m_batch_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountFallbackQuery() {
    m2m_fallback_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> m2m_batch_{0};
  std::atomic<std::size_t> m2m_fallback_{0};
};

/// Builds a backend of `kind` over `graph`. The graph must outlive the
/// backend.
std::unique_ptr<RoutingBackend> MakeRoutingBackend(
    RoutingBackendKind kind, const RoadGraph& graph,
    const RoutingBackendOptions& options = {});

}  // namespace xar

#endif  // XAR_GRAPH_ROUTING_BACKEND_H_
