#include "graph/serialization.h"

#include <cstdint>

#include "common/io.h"

namespace xar {
namespace {

constexpr std::uint32_t kGraphMagic = 0x47524158;  // "XARG"
constexpr std::uint32_t kGraphVersion = 1;

/// Flattened edge record (bools widened for a stable layout).
struct EdgeRecord {
  std::uint32_t from;
  std::uint32_t to;
  double length_m;
  double time_s;
  std::uint8_t drivable;
  std::uint8_t walkable;
};

}  // namespace

Status SaveRoadGraph(const RoadGraph& graph, const std::string& path) {
  BinaryWriter writer(path);
  writer.Write(kGraphMagic);
  writer.Write(kGraphVersion);

  std::vector<LatLng> positions;
  positions.reserve(graph.NumNodes());
  std::vector<EdgeRecord> edges;
  edges.reserve(graph.NumEdges());
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    NodeId n(static_cast<NodeId::underlying_type>(u));
    positions.push_back(graph.PositionOf(n));
    for (const RoadEdge& e : graph.OutEdges(n)) {
      edges.push_back(EdgeRecord{static_cast<std::uint32_t>(u),
                                 e.to.value(), e.length_m, e.time_s,
                                 e.drivable ? std::uint8_t{1} : std::uint8_t{0},
                                 e.walkable ? std::uint8_t{1} : std::uint8_t{0}});
    }
  }
  writer.WriteVector(positions);
  writer.WriteVector(edges);
  return writer.Close();
}

Result<RoadGraph> LoadRoadGraph(const std::string& path) {
  BinaryReader reader(path);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  reader.Read(&magic);
  reader.Read(&version);
  if (!reader.ok() || magic != kGraphMagic) {
    return Status::InvalidArgument("not a road-graph snapshot: " + path);
  }
  if (version != kGraphVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  std::vector<LatLng> positions;
  std::vector<EdgeRecord> edges;
  reader.ReadVector(&positions);
  reader.ReadVector(&edges);
  if (!reader.ok()) return Status::Internal("truncated snapshot: " + path);

  GraphBuilder builder;
  for (const LatLng& p : positions) builder.AddNode(p);
  for (const EdgeRecord& e : edges) {
    if (e.from >= positions.size() || e.to >= positions.size()) {
      return Status::Internal("corrupt snapshot: edge endpoint out of range");
    }
    double speed = e.drivable != 0 && e.time_s > 0 ? e.length_m / e.time_s : 0;
    builder.AddArc(NodeId(e.from), NodeId(e.to), e.length_m, speed,
                   e.drivable != 0, e.walkable != 0);
  }
  return builder.Build();
}

}  // namespace xar
