#ifndef XAR_GRAPH_SERIALIZATION_H_
#define XAR_GRAPH_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/road_graph.h"

namespace xar {

/// Writes a road graph snapshot to `path` (binary, same-machine format).
Status SaveRoadGraph(const RoadGraph& graph, const std::string& path);

/// Reads a snapshot produced by SaveRoadGraph.
Result<RoadGraph> LoadRoadGraph(const std::string& path);

}  // namespace xar

#endif  // XAR_GRAPH_SERIALIZATION_H_
