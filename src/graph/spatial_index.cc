#include "graph/spatial_index.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace xar {

SpatialNodeIndex::SpatialNodeIndex(const RoadGraph& graph,
                                   double bucket_meters)
    : graph_(graph) {
  assert(graph.NumNodes() > 0);
  // Pad the bounds slightly so boundary points map cleanly.
  BoundingBox b = graph.bounds();
  LatLng pad_lo = OffsetMeters({b.min_lat, b.min_lng}, -10, -10);
  LatLng pad_hi = OffsetMeters({b.max_lat, b.max_lng}, 10, 10);
  buckets_ = GridSpec(BoundingBox{pad_lo.lat, pad_lo.lng, pad_hi.lat,
                                  pad_hi.lng},
                      bucket_meters);
  bucket_nodes_.resize(buckets_.CellCount());
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    NodeId n(static_cast<NodeId::underlying_type>(i));
    bucket_nodes_[buckets_.GridOf(graph.PositionOf(n)).value()].push_back(n);
  }
}

NodeId SpatialNodeIndex::NearestNode(const LatLng& p) const {
  GridId center = buckets_.GridOf(p);
  NodeId best = NodeId::Invalid();
  double best_d = std::numeric_limits<double>::infinity();
  std::size_t max_ring = std::max(buckets_.rows(), buckets_.cols());
  for (std::size_t ring = 0; ring <= max_ring; ++ring) {
    // Once we have a candidate, any ring whose nearest possible point is
    // farther than the candidate cannot improve it.
    if (best.valid()) {
      double ring_min_d =
          (static_cast<double>(ring) - 1.0) * buckets_.cell_meters();
      if (ring_min_d > best_d) break;
    }
    for (GridId g : buckets_.Ring(center, ring)) {
      for (NodeId n : bucket_nodes_[g.value()]) {
        double d = EquirectangularMeters(p, graph_.PositionOf(n));
        if (d < best_d) {
          best_d = d;
          best = n;
        }
      }
    }
  }
  return best;
}

std::vector<NodeId> SpatialNodeIndex::NodesWithin(const LatLng& p,
                                                  double radius_m) const {
  std::vector<NodeId> out;
  std::size_t rings = static_cast<std::size_t>(
                          std::ceil(radius_m / buckets_.cell_meters())) +
                      1;
  for (GridId g : buckets_.Neighborhood(buckets_.GridOf(p), rings)) {
    for (NodeId n : bucket_nodes_[g.value()]) {
      if (EquirectangularMeters(p, graph_.PositionOf(n)) <= radius_m) {
        out.push_back(n);
      }
    }
  }
  return out;
}

}  // namespace xar
