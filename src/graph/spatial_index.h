#ifndef XAR_GRAPH_SPATIAL_INDEX_H_
#define XAR_GRAPH_SPATIAL_INDEX_H_

#include <vector>

#include "geo/grid.h"
#include "geo/latlng.h"
#include "graph/road_graph.h"

namespace xar {

/// Grid-bucketed nearest-node lookup over a RoadGraph. Maps arbitrary
/// lat/lng points (trip pickups, landmarks, transit stops) to their closest
/// network node in roughly O(1) expected time.
class SpatialNodeIndex {
 public:
  /// `bucket_meters` controls bucket granularity; a few hundred meters is a
  /// good default for city networks.
  explicit SpatialNodeIndex(const RoadGraph& graph,
                            double bucket_meters = 250.0);

  /// Nearest node by straight-line distance. The graph must be non-empty.
  NodeId NearestNode(const LatLng& p) const;

  /// All nodes within `radius_m` straight-line meters of `p`.
  std::vector<NodeId> NodesWithin(const LatLng& p, double radius_m) const;

 private:
  const RoadGraph& graph_;
  GridSpec buckets_;
  std::vector<std::vector<NodeId>> bucket_nodes_;
};

}  // namespace xar

#endif  // XAR_GRAPH_SPATIAL_INDEX_H_
