#include "graph/text_io.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

namespace xar {
namespace {

/// Splits a CSV line into up to `max_fields` trimmed fields.
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r' && c != '\n') {
      current += c;
    }
  }
  fields.push_back(current);
  for (std::string& f : fields) {
    while (!f.empty() && std::isspace(static_cast<unsigned char>(f.front())))
      f.erase(f.begin());
    while (!f.empty() && std::isspace(static_cast<unsigned char>(f.back())))
      f.pop_back();
  }
  return fields;
}

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

/// Reads all data lines of a CSV file (skipping comments and a header).
Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, std::size_t min_fields) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  char buf[512];
  std::size_t line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    std::string line(buf);
    if (line.empty() || line[0] == '#' || line == "\n") continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (!LooksNumeric(fields[0])) {
      if (line_no == 1) continue;  // header
      std::fclose(f);
      return Status::InvalidArgument(path + ": non-numeric line " +
                                     std::to_string(line_no));
    }
    if (fields.size() < min_fields) {
      std::fclose(f);
      return Status::InvalidArgument(path + ": too few fields on line " +
                                     std::to_string(line_no));
    }
    rows.push_back(std::move(fields));
  }
  std::fclose(f);
  return rows;
}

}  // namespace

Result<RoadGraph> LoadGraphFromCsv(const std::string& nodes_path,
                                   const std::string& edges_path) {
  XAR_ASSIGN_OR_RETURN(auto node_rows, ReadCsv(nodes_path, 3));
  XAR_ASSIGN_OR_RETURN(auto edge_rows, ReadCsv(edges_path, 6));

  GraphBuilder builder;
  std::unordered_map<unsigned long long, NodeId> remap;
  for (const auto& row : node_rows) {
    unsigned long long ext_id = std::strtoull(row[0].c_str(), nullptr, 10);
    if (remap.count(ext_id) != 0) {
      return Status::InvalidArgument(nodes_path + ": duplicate node id " +
                                     row[0]);
    }
    double lat = std::strtod(row[1].c_str(), nullptr);
    double lng = std::strtod(row[2].c_str(), nullptr);
    if (lat < -90 || lat > 90 || lng < -180 || lng > 180) {
      return Status::InvalidArgument(nodes_path + ": bad coordinates for " +
                                     row[0]);
    }
    remap[ext_id] = builder.AddNode(LatLng{lat, lng});
  }

  for (const auto& row : edge_rows) {
    auto from = remap.find(std::strtoull(row[0].c_str(), nullptr, 10));
    auto to = remap.find(std::strtoull(row[1].c_str(), nullptr, 10));
    if (from == remap.end() || to == remap.end()) {
      return Status::InvalidArgument(edges_path + ": edge references " +
                                     "unknown node (" + row[0] + "," +
                                     row[1] + ")");
    }
    double length = std::strtod(row[2].c_str(), nullptr);
    double speed = std::strtod(row[3].c_str(), nullptr);
    bool oneway = row[4] != "0";
    bool walkable = row[5] != "0";
    if (speed <= 0) {
      return Status::InvalidArgument(edges_path + ": non-positive speed");
    }
    if (oneway) {
      builder.AddArc(from->second, to->second, length, speed,
                     /*drivable=*/true, walkable);
      if (walkable) {
        // Pedestrians ignore one-ways.
        builder.AddArc(to->second, from->second, length, speed,
                       /*drivable=*/false, /*walkable=*/true);
      }
    } else {
      builder.AddArc(from->second, to->second, length, speed, true, walkable);
      builder.AddArc(to->second, from->second, length, speed, true, walkable);
    }
  }
  if (builder.NumNodes() == 0) {
    return Status::InvalidArgument(nodes_path + ": no nodes");
  }
  return builder.Build();
}

Status WriteGraphCsv(const RoadGraph& graph, const std::string& nodes_path,
                     const std::string& edges_path) {
  std::FILE* nf = std::fopen(nodes_path.c_str(), "w");
  if (nf == nullptr) return Status::Internal("cannot write " + nodes_path);
  std::fprintf(nf, "id,lat,lng\n");
  for (std::size_t i = 0; i < graph.NumNodes(); ++i) {
    const LatLng& p =
        graph.PositionOf(NodeId(static_cast<NodeId::underlying_type>(i)));
    std::fprintf(nf, "%zu,%.7f,%.7f\n", i, p.lat, p.lng);
  }
  if (std::fclose(nf) != 0) return Status::Internal("write failed");

  std::FILE* ef = std::fopen(edges_path.c_str(), "w");
  if (ef == nullptr) return Status::Internal("cannot write " + edges_path);
  std::fprintf(ef, "from,to,length_m,speed_mps,oneway,walkable\n");
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      // Every stored arc becomes an explicit one-way record; walk-only
      // reverse arcs are regenerated by the loader, so skip them here.
      if (!e.drivable) continue;
      double speed = e.time_s > 0 ? e.length_m / e.time_s : 1.0;
      std::fprintf(ef, "%zu,%u,%.3f,%.3f,1,%d\n", u, e.to.value(),
                   e.length_m, speed, e.walkable ? 1 : 0);
    }
  }
  if (std::fclose(ef) != 0) return Status::Internal("write failed");
  return Status::OK();
}

}  // namespace xar
