#ifndef XAR_GRAPH_TEXT_IO_H_
#define XAR_GRAPH_TEXT_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/road_graph.h"

namespace xar {

/// Loads a road network from two CSV files — the bridge for real
/// (OSM-derived) data.
///
/// nodes CSV: `id,lat,lng` — `id` is any non-negative integer (remapped to
/// dense NodeIds in file order). edges CSV:
/// `from,to,length_m,speed_mps,oneway,walkable` where `length_m <= 0` means
/// "use the geometric distance", `oneway`/`walkable` are 0/1, and a two-way
/// edge contributes arcs in both directions. Lines starting with `#` and a
/// leading header line (any line whose first field is not a number) are
/// skipped.
Result<RoadGraph> LoadGraphFromCsv(const std::string& nodes_path,
                                   const std::string& edges_path);

/// Writes `graph` in the same CSV pair format (each stored arc emitted as a
/// one-way edge, so a round-trip preserves the arc set exactly).
Status WriteGraphCsv(const RoadGraph& graph, const std::string& nodes_path,
                     const std::string& edges_path);

}  // namespace xar

#endif  // XAR_GRAPH_TEXT_IO_H_
