#include "match/cluster_match_index.h"

#include <algorithm>

namespace xar {

ClusterMatchIndex::ClusterMatchIndex(
    std::shared_ptr<const RegionSnapshot> snapshot, const RoadGraph& graph)
    : snapshot_(std::move(snapshot)),
      graph_(&graph),
      impl_(std::make_unique<RideIndex>(
          *snapshot_.load(std::memory_order_relaxed)->index, graph)) {}

void ClusterMatchIndex::Insert(const Ride& ride) {
  impl_->RegisterRide(ride);
  counters_.inserts.fetch_add(1, std::memory_order_relaxed);
}

void ClusterMatchIndex::Remove(RideId ride) {
  impl_->UnregisterRide(ride);
  counters_.removes.fetch_add(1, std::memory_order_relaxed);
}

void ClusterMatchIndex::Update(const Ride& ride) {
  impl_->ReregisterRide(ride);
  counters_.updates.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ClusterMatchIndex::Advance(const Ride& ride, double now_s) {
  std::size_t evicted = impl_->AdvanceRide(ride, now_s);
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

double ClusterMatchIndex::NextEventTime(RideId ride) const {
  return impl_->NextEventTime(ride);
}

bool ClusterMatchIndex::ChooseInsertionSegments(
    const Ride& ride, ClusterId source_cluster, LandmarkId pickup_landmark,
    ClusterId dest_cluster, LandmarkId dropoff_landmark, std::size_t* seg_src,
    std::size_t* seg_dst, double* joint_estimate_m) const {
  return impl_->ChooseInsertionSegments(ride, source_cluster, pickup_landmark,
                                        dest_cluster, dropoff_landmark,
                                        seg_src, seg_dst, joint_estimate_m);
}

void ClusterMatchIndex::OnEpochSwap(
    std::shared_ptr<const RegionSnapshot> snapshot, const RoadGraph& graph) {
  graph_ = &graph;
  impl_ = std::make_unique<RideIndex>(*snapshot->index, graph);
  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

std::size_t ClusterMatchIndex::MemoryFootprint() const {
  return sizeof(*this) + impl_->MemoryFootprint();
}

void ClusterMatchIndex::CollectSideCandidates(
    const RegionIndex& region, const LatLng& location, double walk_limit_m,
    double eta_begin, double eta_end, std::size_t per_ride,
    std::vector<std::pair<RideId, SideCandidate>>* out) const {
  GridId grid = region.GridOfPoint(location);
  // Walkable clusters are sorted by walking distance: scan the prefix within
  // the request's threshold (paper: linear traversal of the sorted list).
  for (const WalkableCluster& wc : region.WalkableClustersOf(grid)) {
    if (wc.walk_m > walk_limit_m) break;
    const ClusterRideList& list = impl_->ListOf(wc.cluster);
    for (const PotentialRide& pr : list.EtaRange(eta_begin, eta_end)) {
      out->emplace_back(pr.ride, SideCandidate{wc.walk_m, pr.eta_s,
                                               pr.detour_m, wc.cluster,
                                               wc.nearest_landmark});
    }
  }
  // Keep, per ride, the `per_ride` least-walk candidates (ties: earlier ETA)
  // with distinct landmarks — the list is small; sort + compact keeps it
  // allocation-light.
  std::sort(out->begin(), out->end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.walk_m != b.second.walk_m)
      return a.second.walk_m < b.second.walk_m;
    return a.second.eta_s < b.second.eta_s;
  });
  if (per_ride <= 1) {
    out->erase(std::unique(out->begin(), out->end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               out->end());
    return;
  }
  // Meeting points: in-place compaction keeping up to per_ride entries per
  // ride. Kept entries of the current ride live in [run_begin, w), so the
  // distinct-landmark scan is O(per_ride) per entry.
  std::size_t w = 0;
  std::size_t run_begin = 0;
  std::size_t kept_in_run = 0;
  RideId current = RideId::Invalid();
  for (std::size_t r = 0; r < out->size(); ++r) {
    if (w == 0 || (*out)[r].first != current) {
      current = (*out)[r].first;
      run_begin = w;
      kept_in_run = 0;
    }
    if (kept_in_run >= per_ride) continue;
    bool duplicate_landmark = false;
    for (std::size_t p = run_begin; p < w; ++p) {
      if ((*out)[p].second.landmark == (*out)[r].second.landmark) {
        duplicate_landmark = true;
        break;
      }
    }
    if (duplicate_landmark) continue;
    (*out)[w++] = (*out)[r];
    ++kept_in_run;
  }
  out->resize(w);
}

std::vector<RideMatch> ClusterMatchIndex::Candidates(
    const RideRequest& request, const MatchTuning& tuning,
    const RideLookup& rides) const {
  const double walk_limit = tuning.walk_limit_m;
  const std::size_t per_ride = tuning.per_ride;

  // Pin the snapshot for the whole search: every region probe below resolves
  // against one epoch even if a refresh swaps the snapshot mid-flight.
  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  const RegionIndex& region = *pinned->index;

  // Step 1: candidate rides around the source, keyed by pickup-cluster ETA
  // inside the departure window.
  std::vector<std::pair<RideId, SideCandidate>> source_side;
  CollectSideCandidates(region, request.source, walk_limit,
                        request.earliest_departure_s -
                            tuning.eta_window_slack_s,
                        request.latest_departure_s + tuning.eta_window_slack_s,
                        per_ride, &source_side);

  // Step 2: candidate rides around the destination; the drop-off may happen
  // any time between the window start and the onboard bound.
  std::vector<std::pair<RideId, SideCandidate>> dest_side;
  CollectSideCandidates(region, request.destination, walk_limit,
                        request.earliest_departure_s,
                        request.latest_departure_s + tuning.max_onboard_s,
                        per_ride, &dest_side);

  // Intersection R' = R1 ∩ R2 on sorted ride ids, then the final walking &
  // detour threshold checks (paper Section VII). Both sides hold runs of up
  // to per_ride entries per ride (least-walk first); each feasible
  // cross-combination of a run pair is a distinct meeting-point match, at
  // most per_ride of them per ride.
  std::vector<RideMatch> matches;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < source_side.size() && j < dest_side.size()) {
    if (source_side[i].first < dest_side[j].first) {
      ++i;
      continue;
    }
    if (dest_side[j].first < source_side[i].first) {
      ++j;
      continue;
    }
    const RideId ride_id = source_side[i].first;
    std::size_t i_end = i;
    while (i_end < source_side.size() && source_side[i_end].first == ride_id)
      ++i_end;
    std::size_t j_end = j;
    while (j_end < dest_side.size() && dest_side[j_end].first == ride_id)
      ++j_end;
    const Ride* ride = rides.Find(ride_id);
    std::size_t emitted = 0;
    if (ride != nullptr && ride->active &&
        ride->seats_available >= request.seats) {
      for (std::size_t ii = i; ii < i_end && emitted < per_ride; ++ii) {
        const SideCandidate& s = source_side[ii].second;
        for (std::size_t jj = j; jj < j_end && emitted < per_ride; ++jj) {
          const SideCandidate& d = dest_side[jj].second;
          // The ride must reach the pickup cluster before the drop-off
          // cluster, and they must differ (same-cluster trips are below
          // system resolution).
          if (s.cluster == d.cluster || s.eta_s > d.eta_s) continue;
          if (s.walk_m + d.walk_m > walk_limit) continue;
          // Combined detour check (paper Section VII, final step) with the
          // joint cluster-level estimate — pure index lookups, no shortest
          // paths.
          std::size_t seg_s = 0;
          std::size_t seg_d = 0;
          double joint_detour = 0.0;
          if (!impl_->ChooseInsertionSegments(*ride, s.cluster, s.landmark,
                                              d.cluster, d.landmark, &seg_s,
                                              &seg_d, &joint_detour)) {
            continue;
          }
          if (joint_detour > ride->RemainingDetourBudget()) continue;

          RideMatch m;
          m.ride = ride_id;
          m.walk_source_m = s.walk_m;
          m.walk_dest_m = d.walk_m;
          m.eta_source_s = s.eta_s;
          m.eta_dest_s = d.eta_s;
          m.detour_estimate_m = joint_detour;
          m.source_cluster = s.cluster;
          m.dest_cluster = d.cluster;
          m.pickup_landmark = s.landmark;
          m.dropoff_landmark = d.landmark;
          m.epoch = pinned->epoch;
          matches.push_back(m);
          ++emitted;
        }
      }
    }
    i = i_end;
    j = j_end;
  }

  std::sort(matches.begin(), matches.end(),
            [](const RideMatch& a, const RideMatch& b) {
              if (a.TotalWalkM() != b.TotalWalkM())
                return a.TotalWalkM() < b.TotalWalkM();
              return a.ride < b.ride;
            });
  if (tuning.max_results > 0 && matches.size() > tuning.max_results)
    matches.resize(tuning.max_results);
  CountSearch(matches.size());
  return matches;
}

}  // namespace xar
