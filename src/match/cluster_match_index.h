#ifndef XAR_MATCH_CLUSTER_MATCH_INDEX_H_
#define XAR_MATCH_CLUSTER_MATCH_INDEX_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "match/match_index.h"
#include "match/ride_index.h"

namespace xar {

/// The default MatchIndex backend: the paper's cluster-centric two-step
/// search (Section VII) over the per-cluster potential-ride lists of
/// RideIndex (Section VI). Candidates() is a verbatim port of the
/// pre-extraction XarSystem search path — results are bit-equal to it, which
/// is what the match_index_test differential suite pins.
class ClusterMatchIndex final : public MatchIndex {
 public:
  ClusterMatchIndex(std::shared_ptr<const RegionSnapshot> snapshot,
                    const RoadGraph& graph);

  MatchIndexKind kind() const override { return MatchIndexKind::kCluster; }

  void Insert(const Ride& ride) override;
  void Remove(RideId ride) override;
  void Update(const Ride& ride) override;

  std::vector<RideMatch> Candidates(const RideRequest& request,
                                    const MatchTuning& tuning,
                                    const RideLookup& rides) const override;

  std::size_t Advance(const Ride& ride, double now_s) override;
  double NextEventTime(RideId ride) const override;

  bool ChooseInsertionSegments(const Ride& ride, ClusterId source_cluster,
                               LandmarkId pickup_landmark,
                               ClusterId dest_cluster,
                               LandmarkId dropoff_landmark,
                               std::size_t* seg_src, std::size_t* seg_dst,
                               double* joint_estimate_m) const override;

  void OnEpochSwap(std::shared_ptr<const RegionSnapshot> snapshot,
                   const RoadGraph& graph) override;

  std::size_t NumRegisteredRides() const override {
    return impl_->NumRegisteredRides();
  }
  std::size_t MemoryFootprint() const override;

  /// The wrapped cluster structure, for introspection (pass-through and
  /// registration views used by tests/examples and XarSystem::ride_index()).
  const RideIndex& impl() const { return *impl_; }

 private:
  struct SideCandidate {
    double walk_m;
    double eta_s;
    double detour_m;
    ClusterId cluster;
    LandmarkId landmark;
  };

  /// Step 1/2 of Search: per-ride candidates from one endpoint, resolved
  /// against the pinned `region`. Keeps up to `per_ride` distinct-landmark
  /// candidates per ride in least-walk order.
  void CollectSideCandidates(
      const RegionIndex& region, const LatLng& location, double walk_limit_m,
      double eta_begin, double eta_end, std::size_t per_ride,
      std::vector<std::pair<RideId, SideCandidate>>* out) const;

  /// Pinned per search (acquire), swapped by OnEpochSwap (release): the
  /// same discipline the pre-extraction system used for its snapshot member.
  std::atomic<std::shared_ptr<const RegionSnapshot>> snapshot_;
  const RoadGraph* graph_;
  /// Rebuilt (not mutated in place) on epoch swap — RideIndex resolves
  /// against exactly one region epoch.
  std::unique_ptr<RideIndex> impl_;
};

}  // namespace xar

#endif  // XAR_MATCH_CLUSTER_MATCH_INDEX_H_
