#include "match/cluster_ride_list.h"

#include <algorithm>
#include <cassert>

namespace xar {
namespace {

bool EtaLess(const PotentialRide& a, const PotentialRide& b) {
  if (a.eta_s != b.eta_s) return a.eta_s < b.eta_s;
  return a.ride < b.ride;
}

bool RideLess(const PotentialRide& a, const PotentialRide& b) {
  return a.ride < b.ride;
}

}  // namespace

void ClusterRideList::Upsert(RideId ride, double eta_s, double detour_m) {
  PotentialRide entry{ride, eta_s, detour_m};
  auto rit = std::lower_bound(by_ride_.begin(), by_ride_.end(), entry,
                              RideLess);
  if (rit != by_ride_.end() && rit->ride == ride) {
    // Update in place: relocate the ETA-sorted copy.
    PotentialRide old = *rit;
    *rit = entry;
    auto eit = std::lower_bound(by_eta_.begin(), by_eta_.end(), old, EtaLess);
    assert(eit != by_eta_.end() && eit->ride == ride);
    by_eta_.erase(eit);
  } else {
    by_ride_.insert(rit, entry);
  }
  by_eta_.insert(
      std::lower_bound(by_eta_.begin(), by_eta_.end(), entry, EtaLess), entry);
}

bool ClusterRideList::Remove(RideId ride) {
  PotentialRide probe{ride, 0.0, 0.0};
  auto rit =
      std::lower_bound(by_ride_.begin(), by_ride_.end(), probe, RideLess);
  if (rit == by_ride_.end() || rit->ride != ride) return false;
  PotentialRide old = *rit;
  by_ride_.erase(rit);
  auto eit = std::lower_bound(by_eta_.begin(), by_eta_.end(), old, EtaLess);
  assert(eit != by_eta_.end() && eit->ride == ride);
  by_eta_.erase(eit);
  return true;
}

bool ClusterRideList::Contains(RideId ride) const {
  return Find(ride) != nullptr;
}

const PotentialRide* ClusterRideList::Find(RideId ride) const {
  PotentialRide probe{ride, 0.0, 0.0};
  auto rit =
      std::lower_bound(by_ride_.begin(), by_ride_.end(), probe, RideLess);
  if (rit == by_ride_.end() || rit->ride != ride) return nullptr;
  return &*rit;
}

std::span<const PotentialRide> ClusterRideList::EtaRange(double t_begin,
                                                         double t_end) const {
  PotentialRide lo{RideId(0), t_begin, 0.0};
  auto first = std::lower_bound(by_eta_.begin(), by_eta_.end(), lo, EtaLess);
  auto last = first;
  while (last != by_eta_.end() && last->eta_s <= t_end) ++last;
  return {by_eta_.data() + (first - by_eta_.begin()),
          static_cast<std::size_t>(last - first)};
}

}  // namespace xar
