#ifndef XAR_MATCH_CLUSTER_RIDE_LIST_H_
#define XAR_MATCH_CLUSTER_RIDE_LIST_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.h"

namespace xar {

/// One entry of a cluster's potential-ride list: ride r is expected to be
/// able to serve pickups in this cluster around time `eta_s`, at an
/// estimated extra detour of `detour_m` (0 for pass-through clusters).
struct PotentialRide {
  RideId ride;
  double eta_s = 0.0;
  double detour_m = 0.0;
};

/// The paper's per-cluster potential-ride structure (Section VI): the same
/// tuples maintained in two sorted orders — by non-decreasing ETA (for the
/// logarithmic time-window probe of Search Step 1/2) and by ride id (for
/// O(log n) point updates and membership checks).
class ClusterRideList {
 public:
  /// Inserts or updates the entry for `ride`.
  void Upsert(RideId ride, double eta_s, double detour_m);

  /// Removes `ride` if present; returns whether it was present.
  bool Remove(RideId ride);

  bool Contains(RideId ride) const;

  /// The entry for `ride`, or nullptr.
  const PotentialRide* Find(RideId ride) const;

  /// All entries with eta in [t_begin, t_end], by binary search on the
  /// ETA-sorted list.
  std::span<const PotentialRide> EtaRange(double t_begin, double t_end) const;

  std::size_t size() const { return by_ride_.size(); }
  bool empty() const { return by_ride_.empty(); }

  /// Entries in ride-id order (for intersection-style traversals).
  const std::vector<PotentialRide>& by_ride() const { return by_ride_; }

  std::size_t MemoryFootprint() const {
    return (by_eta_.capacity() + by_ride_.capacity()) *
               sizeof(PotentialRide) +
           sizeof(*this);
  }

 private:
  std::vector<PotentialRide> by_eta_;   // sorted by (eta_s, ride)
  std::vector<PotentialRide> by_ride_;  // sorted by ride
};

}  // namespace xar

#endif  // XAR_MATCH_CLUSTER_RIDE_LIST_H_
