#include "match/match_index.h"

#include <string>
#include <utility>

#include "common/enum_option.h"
#include "match/cluster_match_index.h"
#include "match/st_hash_index.h"

namespace xar {

const char* MatchIndexName(MatchIndexKind kind) {
  switch (kind) {
    case MatchIndexKind::kCluster:
      return "cluster";
    case MatchIndexKind::kSpatioTemporalHash:
      return "st_hash";
  }
  return "unknown";
}

std::optional<MatchIndexKind> ParseMatchIndex(std::string_view name) {
  Result<MatchIndexKind> kind = MatchIndexFromString(name);
  if (!kind.ok()) return std::nullopt;
  return kind.value();
}

Result<MatchIndexKind> MatchIndexFromString(std::string_view name) {
  return ParseEnumOption<MatchIndexKind>(
      "match index", name,
      {{"cluster", MatchIndexKind::kCluster},
       {"st_hash", MatchIndexKind::kSpatioTemporalHash}});
}

StatsSection MatchStatsSection(const MatchIndexStats& stats) {
  StatsSection section;
  section.name = "match";
  section.AddRow(
      {StatsMetric::Text("backend", stats.backend),
       StatsMetric::Gauge("registered_rides",
                          static_cast<double>(stats.registered_rides), 0),
       StatsMetric::Gauge("bytes", static_cast<double>(stats.bytes), 0),
       StatsMetric::Counter("inserts", stats.counters.inserts),
       StatsMetric::Counter("removes", stats.counters.removes),
       StatsMetric::Counter("updates", stats.counters.updates),
       StatsMetric::Counter("evictions", stats.counters.evictions),
       StatsMetric::Counter("searches", stats.counters.searches),
       StatsMetric::Counter("empty_searches", stats.counters.empty_searches),
       StatsMetric::Counter("candidates", stats.counters.candidates)});
  return section;
}

std::unique_ptr<MatchIndex> MakeMatchIndex(
    MatchIndexKind kind, std::shared_ptr<const RegionSnapshot> snapshot,
    const RoadGraph& graph, const MatchIndexOptions& options) {
  switch (kind) {
    case MatchIndexKind::kCluster:
      return std::make_unique<ClusterMatchIndex>(std::move(snapshot), graph);
    case MatchIndexKind::kSpatioTemporalHash:
      return std::make_unique<StHashMatchIndex>(std::move(snapshot), graph,
                                                options);
  }
  return nullptr;
}

}  // namespace xar
