#include "match/match_index.h"

#include <string>
#include <utility>

#include "match/cluster_match_index.h"
#include "match/st_hash_index.h"

namespace xar {

const char* MatchIndexName(MatchIndexKind kind) {
  switch (kind) {
    case MatchIndexKind::kCluster:
      return "cluster";
    case MatchIndexKind::kSpatioTemporalHash:
      return "st_hash";
  }
  return "unknown";
}

std::optional<MatchIndexKind> ParseMatchIndex(std::string_view name) {
  if (name == "cluster") return MatchIndexKind::kCluster;
  if (name == "st_hash") return MatchIndexKind::kSpatioTemporalHash;
  return std::nullopt;
}

Result<MatchIndexKind> MatchIndexFromString(std::string_view name) {
  std::optional<MatchIndexKind> kind = ParseMatchIndex(name);
  if (kind.has_value()) return *kind;
  return Status::InvalidArgument("unknown match index \"" + std::string(name) +
                                 "\" (valid: cluster, st_hash)");
}

StatsSection MatchStatsSection(const MatchIndexStats& stats) {
  StatsSection section;
  section.name = "match";
  section.AddRow(
      {StatsMetric::Text("backend", stats.backend),
       StatsMetric::Gauge("registered_rides",
                          static_cast<double>(stats.registered_rides), 0),
       StatsMetric::Gauge("bytes", static_cast<double>(stats.bytes), 0),
       StatsMetric::Counter("inserts", stats.counters.inserts),
       StatsMetric::Counter("removes", stats.counters.removes),
       StatsMetric::Counter("updates", stats.counters.updates),
       StatsMetric::Counter("evictions", stats.counters.evictions),
       StatsMetric::Counter("searches", stats.counters.searches),
       StatsMetric::Counter("empty_searches", stats.counters.empty_searches),
       StatsMetric::Counter("candidates", stats.counters.candidates)});
  return section;
}

std::unique_ptr<MatchIndex> MakeMatchIndex(
    MatchIndexKind kind, std::shared_ptr<const RegionSnapshot> snapshot,
    const RoadGraph& graph, const MatchIndexOptions& options) {
  switch (kind) {
    case MatchIndexKind::kCluster:
      return std::make_unique<ClusterMatchIndex>(std::move(snapshot), graph);
    case MatchIndexKind::kSpatioTemporalHash:
      return std::make_unique<StHashMatchIndex>(std::move(snapshot), graph,
                                                options);
  }
  return nullptr;
}

}  // namespace xar
