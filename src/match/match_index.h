#ifndef XAR_MATCH_MATCH_INDEX_H_
#define XAR_MATCH_MATCH_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/stats_registry.h"
#include "discretize/region_snapshot.h"
#include "graph/road_graph.h"
#include "xar/ride.h"

namespace xar {

/// Which candidate-generation index a system runs behind the MatchIndex
/// interface (ROADMAP "pluggable match-index backends"). The systems layer —
/// booking, pricing, tracking, refresh — is backend-agnostic; only the way
/// Search turns a request into ranked candidate rides changes.
enum class MatchIndexKind {
  /// The paper's cluster-centric index (Sections VI/VII): per-cluster
  /// potential-ride lists over pass-through/reachable clusters. The default.
  kCluster,
  /// Spatio-temporal hash buckets over ride trajectories (Dutta, "When
  /// Hashing Met Matching", arXiv 1809.02680): rides hash their route into
  /// (grid-cell × time-bucket) keys; a request unions the entries of its
  /// reachable buckets. Booking-time exact pricing downstream is unchanged,
  /// so the 4ε detour bound is preserved by construction.
  kSpatioTemporalHash,
};

/// Stable lowercase name ("cluster", "st_hash") for logs, stats and env vars.
const char* MatchIndexName(MatchIndexKind kind);

/// Parses a MatchIndexName; nullopt on unknown names.
std::optional<MatchIndexKind> ParseMatchIndex(std::string_view name);

/// Parses a MatchIndexName. Unknown names are a hard InvalidArgument error —
/// never a silent fall-through to the default backend (same contract as
/// RoutingBackendFromString).
Result<MatchIndexKind> MatchIndexFromString(std::string_view name);

/// Tuning knobs of the spatio-temporal hash backend (ignored by kCluster).
struct MatchIndexOptions {
  /// Side length of the spatial hash cells (meters). Coarser than the
  /// region's 100 m grids: a request probes all cells within its walking
  /// radius, so the cell size trades probe fan-out against bucket density.
  double st_hash_cell_m = 500.0;

  /// Width of the temporal buckets (seconds). A ride's route point at ETA t
  /// lands in bucket floor(t / width); a request probes every bucket
  /// overlapping its (slack-widened) time window.
  double st_hash_bucket_s = 300.0;

  /// Safety cap on spatial cells probed per request side (wide walk limits
  /// on tiny cells would otherwise probe quadratically many cells).
  std::size_t st_hash_max_probe_cells = 4096;
};

/// Point-in-time copy of a backend's counters (the "match" stats section).
struct MatchCounters {
  std::uint64_t inserts = 0;         ///< rides registered
  std::uint64_t removes = 0;         ///< rides fully unregistered
  std::uint64_t updates = 0;         ///< re-registrations after bookings
  std::uint64_t evictions = 0;       ///< tracking evictions (cluster lists /
                                     ///< hash-bucket entries crossed)
  std::uint64_t searches = 0;        ///< Candidates() calls
  std::uint64_t empty_searches = 0;  ///< Candidates() calls returning none
  std::uint64_t candidates = 0;      ///< matches returned, total

  MatchCounters& operator+=(const MatchCounters& other) {
    inserts += other.inserts;
    removes += other.removes;
    updates += other.updates;
    evictions += other.evictions;
    searches += other.searches;
    empty_searches += other.empty_searches;
    candidates += other.candidates;
    return *this;
  }
};

/// Aggregated view of one or more backends (a sharded system sums its
/// shards) for the stats surface.
struct MatchIndexStats {
  const char* backend = "";
  std::size_t registered_rides = 0;
  std::size_t bytes = 0;
  MatchCounters counters;
};

/// "match" stats section for the unified StatsRegistry surface.
StatsSection MatchStatsSection(const MatchIndexStats& stats);

/// Resolves a candidate ride id to the live ride state. Implemented by the
/// owning XarSystem; backends never store ride state themselves, so a
/// candidate probe always checks seats/activity against the current truth.
class RideLookup {
 public:
  virtual ~RideLookup() = default;
  virtual const Ride* Find(RideId id) const = 0;
};

/// The per-search knobs the systems layer resolved for one Candidates()
/// call (defaults applied, meeting-points fan-out, top-k). A plain value
/// type: copyable, no lifetime ties to the request it rides along with.
struct MatchTuning {
  double walk_limit_m = 0.0;        ///< resolved walking threshold
  double eta_window_slack_s = 0.0;  ///< departure-window slack (both sides)
  double max_onboard_s = 0.0;       ///< destination-side ETA probe bound
  std::size_t per_ride = 1;         ///< meeting-point candidates per side
  std::size_t max_results = 0;      ///< top-k (0 = all)
};

/// The pluggable candidate-generation layer (mirrors the routing-backend
/// extraction one level up): everything XarSystem needs from a search index,
/// with the booking/pricing path downstream kept backend-independent.
///
/// Contract:
///  - Insert/Remove/Update track ride lifecycle; Update re-derives all
///    associations after a booking/cancellation changed the ride's shape.
///  - Candidates returns ranked feasible matches (least total walking,
///    ties by ride id), each carrying the landmarks/clusters Book needs and
///    stamped with the epoch of the snapshot it was computed on.
///  - Advance implements tracking (paper Section VIII-A): retire index
///    entries the ride has driven past; NextEventTime is the next moment
///    tracking has work to do for the ride.
///  - ChooseInsertionSegments resolves a match to concrete via-segment
///    insertion points with a precomputed-metric detour estimate — no
///    shortest paths. Book then splices with <= 4 exact shortest paths and
///    charges the *actual* detour, which is what keeps the paper's 4ε
///    guarantee backend-independent (DESIGN.md §12).
///  - OnEpochSwap rebinds the index to a fresh discretization snapshot,
///    dropping every registration; the caller re-Inserts live rides (the
///    refresh path's re-homing).
///
/// Thread safety: none — instances are owned by one XarSystem and guarded
/// by its shard lock, exactly like the ride state they index. Counters are
/// atomics only because Candidates() is called under shared (reader) locks.
class MatchIndex {
 public:
  virtual ~MatchIndex() = default;

  virtual MatchIndexKind kind() const = 0;

  virtual void Insert(const Ride& ride) = 0;
  virtual void Remove(RideId ride) = 0;
  virtual void Update(const Ride& ride) = 0;

  virtual std::vector<RideMatch> Candidates(const RideRequest& request,
                                            const MatchTuning& tuning,
                                            const RideLookup& rides) const = 0;

  /// Returns the number of index entries evicted.
  virtual std::size_t Advance(const Ride& ride, double now_s) = 0;
  virtual double NextEventTime(RideId ride) const = 0;

  virtual bool ChooseInsertionSegments(const Ride& ride,
                                       ClusterId source_cluster,
                                       LandmarkId pickup_landmark,
                                       ClusterId dest_cluster,
                                       LandmarkId dropoff_landmark,
                                       std::size_t* seg_src,
                                       std::size_t* seg_dst,
                                       double* joint_estimate_m) const = 0;

  virtual void OnEpochSwap(std::shared_ptr<const RegionSnapshot> snapshot,
                           const RoadGraph& graph) = 0;

  virtual std::size_t NumRegisteredRides() const = 0;
  virtual std::size_t MemoryFootprint() const = 0;

  /// Snapshot of this instance's counters.
  MatchCounters counters() const {
    MatchCounters c;
    c.inserts = counters_.inserts.load(std::memory_order_relaxed);
    c.removes = counters_.removes.load(std::memory_order_relaxed);
    c.updates = counters_.updates.load(std::memory_order_relaxed);
    c.evictions = counters_.evictions.load(std::memory_order_relaxed);
    c.searches = counters_.searches.load(std::memory_order_relaxed);
    c.empty_searches =
        counters_.empty_searches.load(std::memory_order_relaxed);
    c.candidates = counters_.candidates.load(std::memory_order_relaxed);
    return c;
  }

  /// This instance's stats row (single-system surface; sharded systems
  /// aggregate counters() across shards instead).
  MatchIndexStats stats() const {
    MatchIndexStats s;
    s.backend = MatchIndexName(kind());
    s.registered_rides = NumRegisteredRides();
    s.bytes = MemoryFootprint();
    s.counters = counters();
    return s;
  }

 protected:
  struct AtomicCounters {
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> removes{0};
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> evictions{0};
    mutable std::atomic<std::uint64_t> searches{0};
    mutable std::atomic<std::uint64_t> empty_searches{0};
    mutable std::atomic<std::uint64_t> candidates{0};
  };

  void CountSearch(std::size_t returned) const {
    counters_.searches.fetch_add(1, std::memory_order_relaxed);
    if (returned == 0) {
      counters_.empty_searches.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.candidates.fetch_add(returned, std::memory_order_relaxed);
    }
  }

  AtomicCounters counters_;
};

/// Builds a backend of `kind` bound to `snapshot`'s discretization over
/// `graph`. The snapshot is pinned by the index (kept alive across
/// refreshes of the owning system until OnEpochSwap).
std::unique_ptr<MatchIndex> MakeMatchIndex(
    MatchIndexKind kind, std::shared_ptr<const RegionSnapshot> snapshot,
    const RoadGraph& graph, const MatchIndexOptions& options = {});

}  // namespace xar

#endif  // XAR_MATCH_MATCH_INDEX_H_
