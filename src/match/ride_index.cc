#include "match/ride_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xar {

RideIndex::RideIndex(const RegionIndex& region, const RoadGraph& graph)
    : region_(region), graph_(graph), lists_(region.NumClusters()) {}

std::vector<PassThroughCluster> RideIndex::ComputePassThroughs(
    const Ride& ride) const {
  std::vector<PassThroughCluster> out;
  if (ride.route.nodes.empty() || ride.via_points.size() < 2) return out;

  double budget = ride.RemainingDetourBudget();
  std::size_t m = region_.NumClusters();

  for (std::size_t seg = 0; seg + 1 < ride.via_points.size(); ++seg) {
    std::size_t begin = ride.via_route_index[seg];
    std::size_t end = ride.via_route_index[seg + 1];
    // Cluster of the segment's end via-point, for the detour triangle test.
    ClusterId next_cluster = region_.ClusterOfPoint(
        graph_.PositionOf(ride.via_points[seg + 1].node));

    ClusterId prev = ClusterId::Invalid();
    std::vector<bool> seen_in_segment(m, false);
    for (std::size_t j = begin; j <= end && j < ride.route.nodes.size(); ++j) {
      GridId grid =
          region_.GridOfPoint(graph_.PositionOf(ride.route.nodes[j]));
      ClusterId c = region_.ClusterOfGrid(grid);
      if (!c.valid() || c == prev) continue;
      prev = c;
      if (seen_in_segment[c.value()]) continue;
      seen_in_segment[c.value()] = true;

      PassThroughCluster pt;
      pt.cluster = c;
      pt.landmark = region_.LandmarkOfGrid(grid);
      pt.segment = seg;
      pt.eta_s = ride.departure_time_s + ride.route_cum_time_s[j];

      // Reachable clusters (paper Section VI): candidates within the detour
      // budget of C, kept iff the round-trip detour via C' does not exceed
      // the budget: d(C,C') + d(C',v_next) - d(C,v_next) <= d.
      for (std::size_t other = 0; other < m; ++other) {
        ClusterId cp(static_cast<ClusterId::underlying_type>(other));
        if (cp == c) continue;
        double d1 = region_.ClusterDistance(c, cp);
        if (d1 > budget) continue;
        double detour = d1;
        if (next_cluster.valid()) {
          double via = d1 + region_.ClusterDistance(cp, next_cluster) -
                       region_.ClusterDistance(c, next_cluster);
          detour = std::max(0.0, via);
        }
        if (detour > budget) continue;
        pt.reachable.push_back(cp);
        pt.reachable_detour_m.push_back(detour);
      }
      out.push_back(std::move(pt));
    }
  }
  return out;
}

std::unordered_map<ClusterId, RideIndex::Support>
RideIndex::AggregateSupports(const RideRegistration& reg) const {
  std::unordered_map<ClusterId, Support> agg;
  double speed = region_.nominal_speed_mps();
  auto offer = [&](ClusterId c, double eta, double detour) {
    auto [it, inserted] = agg.emplace(c, Support{eta, detour});
    if (!inserted) {
      it->second.eta_s = std::min(it->second.eta_s, eta);
      it->second.detour_m = std::min(it->second.detour_m, detour);
    }
  };
  for (const PassThroughCluster& pt : reg.pass_throughs) {
    if (pt.crossed) continue;
    offer(pt.cluster, pt.eta_s, 0.0);
    for (std::size_t i = 0; i < pt.reachable.size(); ++i) {
      double travel =
          region_.ClusterDistance(pt.cluster, pt.reachable[i]) / speed;
      offer(pt.reachable[i], pt.eta_s + travel, pt.reachable_detour_m[i]);
    }
  }
  return agg;
}

void RideIndex::RegisterRide(const Ride& ride) {
  assert(registrations_.find(ride.id) == registrations_.end());
  RideRegistration reg;
  reg.pass_throughs = ComputePassThroughs(ride);

  std::unordered_map<ClusterId, Support> agg = AggregateSupports(reg);
  reg.registered_clusters.reserve(agg.size());
  for (const auto& [cluster, support] : agg) {
    lists_[cluster.value()].Upsert(ride.id, support.eta_s, support.detour_m);
    reg.registered_clusters.push_back(cluster);
  }
  std::sort(reg.registered_clusters.begin(), reg.registered_clusters.end());
  registrations_[ride.id] = std::move(reg);
}

void RideIndex::UnregisterRide(RideId ride) {
  auto it = registrations_.find(ride);
  if (it == registrations_.end()) return;
  for (ClusterId c : it->second.registered_clusters) {
    lists_[c.value()].Remove(ride);
  }
  registrations_.erase(it);
}

void RideIndex::ReregisterRide(const Ride& ride) {
  UnregisterRide(ride.id);
  RegisterRide(ride);
}

std::size_t RideIndex::AdvanceRide(const Ride& ride, double now_s) {
  auto it = registrations_.find(ride.id);
  if (it == registrations_.end()) return 0;
  RideRegistration& reg = it->second;

  // Step 1: mark newly crossed pass-throughs and collect the clusters they
  // were supporting (themselves + their reachable sets) as obsolete
  // candidates.
  std::vector<ClusterId> affected;
  bool any_crossed = false;
  for (PassThroughCluster& pt : reg.pass_throughs) {
    if (pt.crossed || pt.eta_s >= now_s) continue;
    pt.crossed = true;
    any_crossed = true;
    affected.push_back(pt.cluster);
    affected.insert(affected.end(), pt.reachable.begin(), pt.reachable.end());
  }
  if (!any_crossed) return 0;
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  // Step 2: a candidate stays only if some valid pass-through still reaches
  // it; otherwise the ride is evicted from that cluster's potential list.
  std::unordered_map<ClusterId, Support> agg = AggregateSupports(reg);
  std::size_t evicted = 0;
  std::vector<ClusterId> still_registered;
  still_registered.reserve(reg.registered_clusters.size());
  for (ClusterId c : reg.registered_clusters) {
    auto support = agg.find(c);
    if (support == agg.end()) {
      if (lists_[c.value()].Remove(ride.id)) ++evicted;
      continue;
    }
    still_registered.push_back(c);
    // Refresh ETA/detour if this cluster lost its best supporting
    // pass-through.
    if (std::binary_search(affected.begin(), affected.end(), c)) {
      lists_[c.value()].Upsert(ride.id, support->second.eta_s,
                               support->second.detour_m);
    }
  }
  reg.registered_clusters = std::move(still_registered);

  // Step 3 (remove crossed pass-throughs) is represented by the `crossed`
  // flag; physically erase them to keep the registration compact.
  std::erase_if(reg.pass_throughs,
                [](const PassThroughCluster& pt) { return pt.crossed; });
  return evicted;
}

const RideRegistration* RideIndex::RegistrationOf(RideId ride) const {
  auto it = registrations_.find(ride);
  return it == registrations_.end() ? nullptr : &it->second;
}

double RideIndex::NextEventTime(RideId ride) const {
  const RideRegistration* reg = RegistrationOf(ride);
  double next = std::numeric_limits<double>::infinity();
  if (reg == nullptr) return next;
  for (const PassThroughCluster& pt : reg->pass_throughs) {
    if (!pt.crossed) next = std::min(next, pt.eta_s);
  }
  return next;
}

const PassThroughCluster* RideIndex::BestSupport(RideId ride,
                                                 ClusterId cluster) const {
  const RideRegistration* reg = RegistrationOf(ride);
  if (reg == nullptr) return nullptr;
  // Pick the support with the smallest detour contribution (ETA breaks
  // ties) so that booking inserts where the search-time estimate assumed.
  const PassThroughCluster* best = nullptr;
  double best_detour = std::numeric_limits<double>::infinity();
  for (const PassThroughCluster& pt : reg->pass_throughs) {
    if (pt.crossed) continue;
    double detour = std::numeric_limits<double>::infinity();
    if (pt.cluster == cluster) {
      detour = 0.0;
    } else {
      auto it = std::find(pt.reachable.begin(), pt.reachable.end(), cluster);
      if (it != pt.reachable.end()) {
        detour = pt.reachable_detour_m[static_cast<std::size_t>(
            it - pt.reachable.begin())];
      }
    }
    if (detour == std::numeric_limits<double>::infinity()) continue;
    if (best == nullptr || detour < best_detour ||
        (detour == best_detour && pt.eta_s < best->eta_s)) {
      best = &pt;
      best_detour = detour;
    }
  }
  return best;
}

bool RideIndex::ChooseInsertionSegments(const Ride& ride,
                                        ClusterId source_cluster,
                                        LandmarkId pickup_landmark,
                                        ClusterId dest_cluster,
                                        LandmarkId dropoff_landmark,
                                        std::size_t* seg_src,
                                        std::size_t* seg_dst,
                                        double* joint_estimate_m) const {
  const RideRegistration* reg = RegistrationOf(ride.id);
  if (reg == nullptr) return false;
  const DistanceMatrix& lm = region_.landmark_metric();

  auto supports = [](const PassThroughCluster& pt, ClusterId c) {
    return pt.cluster == c ||
           std::find(pt.reachable.begin(), pt.reachable.end(), c) !=
               pt.reachable.end();
  };
  // Landmark of the via-point ending segment `seg` (invalid when the
  // via-point's grid carries no landmark).
  auto via_landmark = [&](std::size_t seg) {
    return region_.LandmarkOfGrid(region_.GridOfPoint(
        graph_.PositionOf(ride.via_points[seg + 1].node)));
  };
  // Landmark-metric distance with a cluster-level fallback when either
  // landmark is unknown.
  auto dist = [&](LandmarkId a, LandmarkId b, ClusterId ca, ClusterId cb) {
    if (a.valid() && b.valid()) return lm.At(a.value(), b.value());
    if (ca.valid() && cb.valid()) return region_.ClusterDistance(ca, cb);
    return 0.0;
  };
  auto cluster_of = [&](LandmarkId l) {
    return l.valid() ? region_.ClusterOfLandmark(l) : ClusterId::Invalid();
  };

  double best = std::numeric_limits<double>::infinity();
  for (const PassThroughCluster& ps : reg->pass_throughs) {
    if (ps.crossed || !supports(ps, source_cluster)) continue;
    LandmarkId next_s = via_landmark(ps.segment);
    for (const PassThroughCluster& pd : reg->pass_throughs) {
      if (pd.crossed || pd.segment < ps.segment) continue;
      if (!supports(pd, dest_cluster)) continue;
      double est;
      if (ps.segment == pd.segment) {
        // Sequential same-segment insertion: at -> pickup -> dropoff -> next.
        est = dist(ps.landmark, pickup_landmark, ps.cluster, source_cluster) +
              dist(pickup_landmark, dropoff_landmark, source_cluster,
                   dest_cluster);
        if (next_s.valid() || cluster_of(next_s).valid()) {
          est += dist(dropoff_landmark, next_s, dest_cluster,
                      cluster_of(next_s)) -
                 dist(ps.landmark, next_s, ps.cluster, cluster_of(next_s));
        }
        est = std::max(0.0, est);
      } else {
        LandmarkId next_d = via_landmark(pd.segment);
        double est_src =
            dist(ps.landmark, pickup_landmark, ps.cluster, source_cluster);
        if (next_s.valid()) {
          est_src = std::max(
              0.0, est_src +
                       dist(pickup_landmark, next_s, source_cluster,
                            cluster_of(next_s)) -
                       dist(ps.landmark, next_s, ps.cluster,
                            cluster_of(next_s)));
        }
        double est_dst =
            dist(pd.landmark, dropoff_landmark, pd.cluster, dest_cluster);
        if (next_d.valid()) {
          est_dst = std::max(
              0.0, est_dst +
                       dist(dropoff_landmark, next_d, dest_cluster,
                            cluster_of(next_d)) -
                       dist(pd.landmark, next_d, pd.cluster,
                            cluster_of(next_d)));
        }
        est = est_src + est_dst;
      }
      if (est < best) {
        best = est;
        *seg_src = ps.segment;
        *seg_dst = pd.segment;
      }
    }
  }
  if (best == std::numeric_limits<double>::infinity()) return false;
  *joint_estimate_m = best;
  return true;
}

std::size_t RideIndex::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const ClusterRideList& list : lists_) bytes += list.MemoryFootprint();
  for (const auto& [id, reg] : registrations_) {
    bytes += sizeof(id) + sizeof(reg);
    for (const PassThroughCluster& pt : reg.pass_throughs) {
      bytes += sizeof(pt) + pt.reachable.capacity() * sizeof(ClusterId) +
               pt.reachable_detour_m.capacity() * sizeof(double);
    }
    bytes += reg.registered_clusters.capacity() * sizeof(ClusterId);
  }
  return bytes;
}

}  // namespace xar
