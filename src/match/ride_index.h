#ifndef XAR_MATCH_RIDE_INDEX_H_
#define XAR_MATCH_RIDE_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "discretize/region_index.h"
#include "graph/road_graph.h"
#include "match/cluster_ride_list.h"
#include "xar/ride.h"

namespace xar {

/// A ride's association with one pass-through cluster (paper Section VI):
/// the cluster a route segment drives through, its ETA, and the clusters
/// reachable from it within the ride's remaining detour budget.
struct PassThroughCluster {
  ClusterId cluster;
  LandmarkId landmark;      ///< landmark of the grid where the route entered
  double eta_s = 0.0;
  std::size_t segment = 0;  ///< which via-point segment produced it
  bool crossed = false;     ///< tracking: the ride has already passed it
  /// Reachable clusters (paper's detour test d_CC' + d_C'v - d_Cv <= d)
  /// and their cluster-level detour estimates, parallel arrays.
  std::vector<ClusterId> reachable;
  std::vector<double> reachable_detour_m;
};

/// Everything the index knows about one registered ride.
struct RideRegistration {
  std::vector<PassThroughCluster> pass_throughs;
  /// Every cluster this ride currently appears under (sorted, unique).
  std::vector<ClusterId> registered_clusters;
};

/// The XAR in-memory ride index: per-cluster potential-ride lists plus the
/// per-ride cluster associations needed to keep them valid as rides move
/// (tracking) and change shape (booking). This is the structure whose size
/// Fig. 3c reports and whose probes make Search shortest-path-free.
class RideIndex {
 public:
  explicit RideIndex(const RegionIndex& region, const RoadGraph& graph);

  /// Computes `ride`'s pass-through clusters (from its current route and
  /// via-points) and their reachable clusters (within the remaining detour
  /// budget), then registers the ride under all of them. The ride must not
  /// already be registered.
  void RegisterRide(const Ride& ride);

  /// Removes the ride from every cluster list. No-op if absent.
  void UnregisterRide(RideId ride);

  /// Re-derives all associations after a booking changed the ride's route,
  /// via-points or detour budget.
  void ReregisterRide(const Ride& ride);

  /// Tracking (paper Section VIII-A): marks pass-through clusters with
  /// eta < now as crossed, and evicts the ride from clusters no longer
  /// supported by any valid pass-through. Returns the number of clusters the
  /// ride was evicted from.
  std::size_t AdvanceRide(const Ride& ride, double now_s);

  /// The potential-ride list of a cluster.
  const ClusterRideList& ListOf(ClusterId c) const {
    return lists_[c.value()];
  }

  const RideRegistration* RegistrationOf(RideId ride) const;

  /// Earliest ETA among the ride's uncrossed pass-through clusters — the
  /// next moment tracking has work to do for this ride. +inf if none.
  double NextEventTime(RideId ride) const;

  /// The uncrossed pass-through of `ride` that supports `cluster` (as
  /// itself or as a reachable cluster) at the lowest detour estimate.
  /// Returns nullptr if unsupported.
  const PassThroughCluster* BestSupport(RideId ride, ClusterId cluster) const;

  /// Picks the pickup/drop-off insertion segments for a booking *jointly*,
  /// minimizing the estimate of the composed detour (the two independent
  /// per-side estimates are not additive when both points land on the same
  /// segment). Candidate supports are found at cluster level; the estimate
  /// itself is computed on the precomputed *landmark* metric (the paper's
  /// in-memory landmark distances) using the concrete pickup/drop-off
  /// landmarks, which is what keeps the Fig. 3a approximation tight.
  /// Requires seg_src <= seg_dst. Returns false when no valid support pair
  /// exists (stale match). No shortest paths are computed.
  bool ChooseInsertionSegments(const Ride& ride, ClusterId source_cluster,
                               LandmarkId pickup_landmark,
                               ClusterId dest_cluster,
                               LandmarkId dropoff_landmark,
                               std::size_t* seg_src, std::size_t* seg_dst,
                               double* joint_estimate_m) const;

  std::size_t NumRegisteredRides() const { return registrations_.size(); }

  /// Bytes held by all cluster lists and registrations (Fig. 3c).
  std::size_t MemoryFootprint() const;

 private:
  struct Support {
    double eta_s;
    double detour_m;
  };

  /// Min-aggregated (eta, detour) of `ride` for each cluster it touches,
  /// over uncrossed pass-throughs.
  std::unordered_map<ClusterId, Support> AggregateSupports(
      const RideRegistration& reg) const;

  std::vector<PassThroughCluster> ComputePassThroughs(const Ride& ride) const;

  const RegionIndex& region_;
  const RoadGraph& graph_;
  std::vector<ClusterRideList> lists_;  // one per cluster
  std::unordered_map<RideId, RideRegistration> registrations_;
};

}  // namespace xar

#endif  // XAR_MATCH_RIDE_INDEX_H_
