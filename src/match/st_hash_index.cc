#include "match/st_hash_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/latlng.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StHashMatchIndex::StHashMatchIndex(
    std::shared_ptr<const RegionSnapshot> snapshot, const RoadGraph& graph,
    const MatchIndexOptions& options)
    : snapshot_(std::move(snapshot)), graph_(&graph), options_(options) {
  const RegionIndex& region =
      *snapshot_.load(std::memory_order_relaxed)->index;
  hash_grid_ = GridSpec(region.grid().bounds(), options_.st_hash_cell_m);
}

void StHashMatchIndex::Insert(const Ride& ride) {
  InsertInternal(ride);
  counters_.inserts.fetch_add(1, std::memory_order_relaxed);
}

void StHashMatchIndex::InsertInternal(const Ride& ride) {
  Registration reg;
  if (ride.route.nodes.empty() || ride.via_points.size() < 2) {
    regs_[ride.id] = std::move(reg);
    return;
  }
  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  const RegionIndex& region = *pinned->index;

  reg.vias.reserve(ride.via_points.size());
  for (const ViaPoint& vp : ride.via_points) {
    GridId g = region.GridOfPoint(graph_->PositionOf(vp.node));
    LandmarkId lm = region.LandmarkOfGrid(g);
    ViaAnchor anchor;
    anchor.landmark = lm;
    anchor.cluster =
        lm.valid() ? region.ClusterOfLandmark(lm) : ClusterId::Invalid();
    anchor.eta_s = vp.eta_s;
    reg.vias.push_back(anchor);
  }

  // Sample the trajectory: every route point contributes its (coarse cell,
  // time bucket) key plus the region landmark nearest to it. Samples are
  // produced in route order, so ETAs are non-decreasing.
  std::vector<std::pair<std::uint64_t, Entry>> samples;
  for (std::size_t seg = 0; seg + 1 < ride.via_points.size(); ++seg) {
    std::size_t begin = ride.via_route_index[seg];
    std::size_t end = ride.via_route_index[seg + 1];
    for (std::size_t j = begin; j <= end && j < ride.route.nodes.size(); ++j) {
      const LatLng& pos = graph_->PositionOf(ride.route.nodes[j]);
      LandmarkId lm = region.LandmarkOfGrid(region.GridOfPoint(pos));
      if (!lm.valid()) continue;
      Entry e;
      e.ride = ride.id;
      e.eta_s = ride.departure_time_s + ride.route_cum_time_s[j];
      e.landmark = lm;
      e.cluster = region.ClusterOfLandmark(lm);
      e.segment = static_cast<std::uint32_t>(seg);
      samples.emplace_back(PackKey(hash_grid_.GridOf(pos),
                                   TimeBucketOf(e.eta_s)),
                           e);

      // Insertion anchors: distinct (segment, landmark), first-ETA wins.
      bool seen = false;
      for (auto a = reg.anchors.rbegin();
           a != reg.anchors.rend() && a->segment == e.segment; ++a) {
        if (a->landmark == lm) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        reg.anchors.push_back(Anchor{e.eta_s, lm, e.cluster, e.segment});
      }
    }
  }

  // One entry per (bucket, landmark): earliest ETA wins (stable route-order
  // tie-break keeps this deterministic).
  std::stable_sort(samples.begin(), samples.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     if (a.second.landmark != b.second.landmark)
                       return a.second.landmark < b.second.landmark;
                     return a.second.eta_s < b.second.eta_s;
                   });
  samples.erase(std::unique(samples.begin(), samples.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first &&
                                     a.second.landmark == b.second.landmark;
                            }),
                samples.end());

  for (const auto& [key, entry] : samples) {
    buckets_[key].push_back(entry);
    if (reg.keys.empty() || reg.keys.back() != key) reg.keys.push_back(key);
  }
  std::sort(reg.keys.begin(), reg.keys.end());
  reg.keys.erase(std::unique(reg.keys.begin(), reg.keys.end()),
                 reg.keys.end());
  regs_[ride.id] = std::move(reg);
}

std::size_t StHashMatchIndex::RemoveInternal(RideId ride) {
  auto it = regs_.find(ride);
  if (it == regs_.end()) return 0;
  std::size_t removed = 0;
  for (std::uint64_t key : it->second.keys) {
    auto bucket = buckets_.find(key);
    if (bucket == buckets_.end()) continue;
    std::size_t before = bucket->second.size();
    std::erase_if(bucket->second,
                  [ride](const Entry& e) { return e.ride == ride; });
    removed += before - bucket->second.size();
    if (bucket->second.empty()) buckets_.erase(bucket);
  }
  regs_.erase(it);
  return removed;
}

void StHashMatchIndex::Remove(RideId ride) {
  RemoveInternal(ride);
  counters_.removes.fetch_add(1, std::memory_order_relaxed);
}

void StHashMatchIndex::Update(const Ride& ride) {
  double advanced = 0.0;
  if (auto it = regs_.find(ride.id); it != regs_.end()) {
    advanced = it->second.advanced_to_s;
  }
  RemoveInternal(ride.id);
  InsertInternal(ride);
  counters_.updates.fetch_add(1, std::memory_order_relaxed);
  if (advanced > 0.0) Advance(ride, advanced);  // do not resurrect the past
}

std::size_t StHashMatchIndex::Advance(const Ride& ride, double now_s) {
  auto it = regs_.find(ride.id);
  if (it == regs_.end()) return 0;
  Registration& reg = it->second;
  if (now_s <= reg.advanced_to_s) return 0;
  reg.advanced_to_s = now_s;
  while (reg.anchor_next < reg.anchors.size() &&
         reg.anchors[reg.anchor_next].eta_s < now_s) {
    ++reg.anchor_next;
  }
  // Evict bucket entries the ride has driven past; drop keys whose bucket no
  // longer holds the ride.
  std::size_t evicted = 0;
  std::vector<std::uint64_t> kept_keys;
  kept_keys.reserve(reg.keys.size());
  for (std::uint64_t key : reg.keys) {
    auto bucket = buckets_.find(key);
    if (bucket == buckets_.end()) continue;
    bool still_present = false;
    std::size_t before = bucket->second.size();
    std::erase_if(bucket->second, [&](const Entry& e) {
      if (e.ride != ride.id) return false;
      if (e.eta_s < now_s) return true;
      still_present = true;
      return false;
    });
    evicted += before - bucket->second.size();
    if (bucket->second.empty()) {
      buckets_.erase(bucket);
    } else if (still_present) {
      kept_keys.push_back(key);
    }
  }
  reg.keys = std::move(kept_keys);
  if (evicted > 0) {
    counters_.evictions.fetch_add(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

double StHashMatchIndex::NextEventTime(RideId ride) const {
  auto it = regs_.find(ride);
  if (it == regs_.end()) return kInf;
  const Registration& reg = it->second;
  if (reg.anchor_next >= reg.anchors.size()) return kInf;
  return reg.anchors[reg.anchor_next].eta_s;
}

void StHashMatchIndex::CollectSideCandidates(
    const RegionIndex& region, const LatLng& location, double walk_limit_m,
    double eta_begin, double eta_end, std::size_t per_ride,
    std::vector<std::pair<RideId, SideCandidate>>* out) const {
  if (eta_end < 0.0 || eta_end < eta_begin) return;
  const double cell_m = hash_grid_.cell_meters();
  std::size_t radius =
      cell_m > 0.0
          ? static_cast<std::size_t>(std::ceil(walk_limit_m / cell_m))
          : 0;
  std::vector<GridId> cells =
      hash_grid_.Neighborhood(hash_grid_.GridOf(location), radius);
  if (cells.size() > options_.st_hash_max_probe_cells) {
    cells.resize(options_.st_hash_max_probe_cells);
  }
  const std::uint64_t b0 = TimeBucketOf(std::max(0.0, eta_begin));
  const std::uint64_t b1 = TimeBucketOf(std::max(0.0, eta_end));

  for (GridId cell : cells) {
    for (std::uint64_t b = b0; b <= b1; ++b) {
      auto bucket = buckets_.find(PackKey(cell, b));
      if (bucket == buckets_.end()) continue;
      for (const Entry& e : bucket->second) {
        if (e.eta_s < eta_begin || e.eta_s > eta_end) continue;
        double walk = HaversineMeters(
            location, region.GetLandmark(e.landmark).position);
        if (walk > walk_limit_m) continue;
        out->emplace_back(
            e.ride, SideCandidate{walk, e.eta_s, e.cluster, e.landmark});
      }
    }
  }

  // Keep, per ride, the `per_ride` least-walk candidates with distinct
  // landmarks — same compaction as the cluster backend, so downstream
  // merge-join code sees the identical run structure.
  std::sort(out->begin(), out->end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.walk_m != b.second.walk_m)
      return a.second.walk_m < b.second.walk_m;
    return a.second.eta_s < b.second.eta_s;
  });
  std::size_t w = 0;
  std::size_t run_begin = 0;
  std::size_t kept_in_run = 0;
  RideId current = RideId::Invalid();
  for (std::size_t r = 0; r < out->size(); ++r) {
    if (w == 0 || (*out)[r].first != current) {
      current = (*out)[r].first;
      run_begin = w;
      kept_in_run = 0;
    }
    if (kept_in_run >= per_ride) continue;
    bool duplicate_landmark = false;
    for (std::size_t p = run_begin; p < w; ++p) {
      if ((*out)[p].second.landmark == (*out)[r].second.landmark) {
        duplicate_landmark = true;
        break;
      }
    }
    if (duplicate_landmark) continue;
    (*out)[w++] = (*out)[r];
    ++kept_in_run;
  }
  out->resize(w);
}

std::vector<RideMatch> StHashMatchIndex::Candidates(
    const RideRequest& request, const MatchTuning& tuning,
    const RideLookup& rides) const {
  const double walk_limit = tuning.walk_limit_m;
  const std::size_t per_ride = tuning.per_ride;

  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  const RegionIndex& region = *pinned->index;

  std::vector<std::pair<RideId, SideCandidate>> source_side;
  CollectSideCandidates(region, request.source, walk_limit,
                        request.earliest_departure_s -
                            tuning.eta_window_slack_s,
                        request.latest_departure_s + tuning.eta_window_slack_s,
                        per_ride, &source_side);
  std::vector<std::pair<RideId, SideCandidate>> dest_side;
  CollectSideCandidates(region, request.destination, walk_limit,
                        request.earliest_departure_s,
                        request.latest_departure_s + tuning.max_onboard_s,
                        per_ride, &dest_side);

  // Merge-join on sorted ride ids, then the same feasibility gates as the
  // cluster backend: order (pickup before drop-off), combined walking
  // threshold, joint insertion estimate against the remaining budget.
  std::vector<RideMatch> matches;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < source_side.size() && j < dest_side.size()) {
    if (source_side[i].first < dest_side[j].first) {
      ++i;
      continue;
    }
    if (dest_side[j].first < source_side[i].first) {
      ++j;
      continue;
    }
    const RideId ride_id = source_side[i].first;
    std::size_t i_end = i;
    while (i_end < source_side.size() && source_side[i_end].first == ride_id)
      ++i_end;
    std::size_t j_end = j;
    while (j_end < dest_side.size() && dest_side[j_end].first == ride_id)
      ++j_end;
    const Ride* ride = rides.Find(ride_id);
    std::size_t emitted = 0;
    if (ride != nullptr && ride->active &&
        ride->seats_available >= request.seats) {
      for (std::size_t ii = i; ii < i_end && emitted < per_ride; ++ii) {
        const SideCandidate& s = source_side[ii].second;
        for (std::size_t jj = j; jj < j_end && emitted < per_ride; ++jj) {
          const SideCandidate& d = dest_side[jj].second;
          if (s.cluster == d.cluster || s.eta_s > d.eta_s) continue;
          if (s.walk_m + d.walk_m > walk_limit) continue;
          std::size_t seg_s = 0;
          std::size_t seg_d = 0;
          double joint_detour = 0.0;
          if (!ChooseInsertionSegments(*ride, s.cluster, s.landmark,
                                       d.cluster, d.landmark, &seg_s, &seg_d,
                                       &joint_detour)) {
            continue;
          }
          if (joint_detour > ride->RemainingDetourBudget()) continue;

          RideMatch m;
          m.ride = ride_id;
          m.walk_source_m = s.walk_m;
          m.walk_dest_m = d.walk_m;
          m.eta_source_s = s.eta_s;
          m.eta_dest_s = d.eta_s;
          m.detour_estimate_m = joint_detour;
          m.source_cluster = s.cluster;
          m.dest_cluster = d.cluster;
          m.pickup_landmark = s.landmark;
          m.dropoff_landmark = d.landmark;
          m.epoch = pinned->epoch;
          matches.push_back(m);
          ++emitted;
        }
      }
    }
    i = i_end;
    j = j_end;
  }

  std::sort(matches.begin(), matches.end(),
            [](const RideMatch& a, const RideMatch& b) {
              if (a.TotalWalkM() != b.TotalWalkM())
                return a.TotalWalkM() < b.TotalWalkM();
              return a.ride < b.ride;
            });
  if (tuning.max_results > 0 && matches.size() > tuning.max_results)
    matches.resize(tuning.max_results);
  CountSearch(matches.size());
  return matches;
}

bool StHashMatchIndex::ChooseInsertionSegments(
    const Ride& ride, ClusterId source_cluster, LandmarkId pickup_landmark,
    ClusterId dest_cluster, LandmarkId dropoff_landmark, std::size_t* seg_src,
    std::size_t* seg_dst, double* joint_estimate_m) const {
  auto it = regs_.find(ride.id);
  if (it == regs_.end()) return false;
  const Registration& reg = it->second;
  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  const RegionIndex& region = *pinned->index;
  const DistanceMatrix& lm = region.landmark_metric();

  // Landmark-metric distance with a cluster-level fallback when either
  // landmark is unknown (same convention as the cluster backend).
  auto dist = [&](LandmarkId a, LandmarkId b, ClusterId ca, ClusterId cb) {
    if (a.valid() && b.valid()) return lm.At(a.value(), b.value());
    if (ca.valid() && cb.valid()) return region.ClusterDistance(ca, cb);
    return 0.0;
  };
  auto supports = [](const Anchor& a, LandmarkId l, ClusterId c) {
    return a.landmark == l || a.cluster == c;
  };

  double best = kInf;
  for (std::size_t ia = reg.anchor_next; ia < reg.anchors.size(); ++ia) {
    const Anchor& as = reg.anchors[ia];
    if (!supports(as, pickup_landmark, source_cluster)) continue;
    const ViaAnchor& via_s = reg.vias[as.segment + 1];
    for (std::size_t id = reg.anchor_next; id < reg.anchors.size(); ++id) {
      const Anchor& ad = reg.anchors[id];
      if (ad.segment < as.segment) continue;
      if (!supports(ad, dropoff_landmark, dest_cluster)) continue;
      double est;
      if (as.segment == ad.segment) {
        // Sequential same-segment insertion: at -> pickup -> dropoff -> next.
        est = dist(as.landmark, pickup_landmark, as.cluster, source_cluster) +
              dist(pickup_landmark, dropoff_landmark, source_cluster,
                   dest_cluster);
        if (via_s.landmark.valid() || via_s.cluster.valid()) {
          est += dist(dropoff_landmark, via_s.landmark, dest_cluster,
                      via_s.cluster) -
                 dist(as.landmark, via_s.landmark, as.cluster, via_s.cluster);
        }
        est = std::max(0.0, est);
      } else {
        const ViaAnchor& via_d = reg.vias[ad.segment + 1];
        double est_src =
            dist(as.landmark, pickup_landmark, as.cluster, source_cluster);
        if (via_s.landmark.valid()) {
          est_src = std::max(
              0.0, est_src +
                       dist(pickup_landmark, via_s.landmark, source_cluster,
                            via_s.cluster) -
                       dist(as.landmark, via_s.landmark, as.cluster,
                            via_s.cluster));
        }
        double est_dst =
            dist(ad.landmark, dropoff_landmark, ad.cluster, dest_cluster);
        if (via_d.landmark.valid()) {
          est_dst = std::max(
              0.0, est_dst +
                       dist(dropoff_landmark, via_d.landmark, dest_cluster,
                            via_d.cluster) -
                       dist(ad.landmark, via_d.landmark, ad.cluster,
                            via_d.cluster));
        }
        est = est_src + est_dst;
      }
      if (est < best) {
        best = est;
        *seg_src = as.segment;
        *seg_dst = ad.segment;
      }
    }
  }
  if (best == kInf) return false;
  *joint_estimate_m = best;
  return true;
}

void StHashMatchIndex::OnEpochSwap(
    std::shared_ptr<const RegionSnapshot> snapshot, const RoadGraph& graph) {
  graph_ = &graph;
  buckets_.clear();
  regs_.clear();
  hash_grid_ = GridSpec(snapshot->index->grid().bounds(),
                        options_.st_hash_cell_m);
  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

std::size_t StHashMatchIndex::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [key, entries] : buckets_) {
    bytes += sizeof(key) + sizeof(entries) +
             entries.capacity() * sizeof(Entry);
  }
  for (const auto& [id, reg] : regs_) {
    bytes += sizeof(id) + sizeof(reg) +
             reg.keys.capacity() * sizeof(std::uint64_t) +
             reg.anchors.capacity() * sizeof(Anchor) +
             reg.vias.capacity() * sizeof(ViaAnchor);
  }
  return bytes;
}

}  // namespace xar
