#ifndef XAR_MATCH_ST_HASH_INDEX_H_
#define XAR_MATCH_ST_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "match/match_index.h"

namespace xar {

/// Spatio-temporal hash MatchIndex backend (Dutta, "When Hashing Met
/// Matching", arXiv 1809.02680).
///
/// A ride hashes its trajectory into buckets keyed by (coarse grid cell,
/// time bucket): every route point's position at its ETA produces an entry
/// {ride, eta, nearest landmark, cluster, via-segment}, deduplicated per
/// (bucket, landmark). A request probes the cells within its walking radius
/// of each endpoint, crossed with the time buckets overlapping its
/// (slack-widened) window, and unions the entries found — candidate
/// generation is a pure hash lookup, no cluster reachability tables.
///
/// Differences from the cluster backend that matter for match quality:
///  - only rides that *drive* within walking distance of both endpoints are
///    found (no detour-reachable candidates), so the candidate set is a
///    conservative subset in exchange for a much cheaper index build;
///  - rider walking is the great-circle distance to the entry's landmark
///    (the cluster backend uses the region's precomputed walk lists).
///
/// The 4ε detour bound is preserved by construction: matches carry region
/// landmarks/clusters like any other backend, insertion estimates come from
/// the same landmark metric, and Book still splices with exact shortest
/// paths, re-checks the budget, and charges the actual detour (DESIGN.md
/// §12).
class StHashMatchIndex final : public MatchIndex {
 public:
  StHashMatchIndex(std::shared_ptr<const RegionSnapshot> snapshot,
                   const RoadGraph& graph, const MatchIndexOptions& options);

  MatchIndexKind kind() const override {
    return MatchIndexKind::kSpatioTemporalHash;
  }

  void Insert(const Ride& ride) override;
  void Remove(RideId ride) override;
  void Update(const Ride& ride) override;

  std::vector<RideMatch> Candidates(const RideRequest& request,
                                    const MatchTuning& tuning,
                                    const RideLookup& rides) const override;

  std::size_t Advance(const Ride& ride, double now_s) override;
  double NextEventTime(RideId ride) const override;

  bool ChooseInsertionSegments(const Ride& ride, ClusterId source_cluster,
                               LandmarkId pickup_landmark,
                               ClusterId dest_cluster,
                               LandmarkId dropoff_landmark,
                               std::size_t* seg_src, std::size_t* seg_dst,
                               double* joint_estimate_m) const override;

  void OnEpochSwap(std::shared_ptr<const RegionSnapshot> snapshot,
                   const RoadGraph& graph) override;

  std::size_t NumRegisteredRides() const override { return regs_.size(); }
  std::size_t MemoryFootprint() const override;

  /// Number of non-empty (cell × time) buckets currently held.
  std::size_t NumBuckets() const { return buckets_.size(); }

 private:
  /// One trajectory sample in a bucket.
  struct Entry {
    RideId ride;
    double eta_s = 0.0;
    LandmarkId landmark;       ///< region landmark nearest the route point
    ClusterId cluster;         ///< its cluster
    std::uint32_t segment = 0; ///< via-segment that produced the sample
  };

  /// Distinct (segment, landmark) insertion anchor of a ride, in ETA order —
  /// the hash backend's lightweight analogue of a pass-through record.
  struct Anchor {
    double eta_s = 0.0;
    LandmarkId landmark;
    ClusterId cluster;
    std::uint32_t segment = 0;
  };

  /// Landmark anchor of one via-point (for the insertion detour estimate).
  struct ViaAnchor {
    LandmarkId landmark;
    ClusterId cluster;
    double eta_s = 0.0;
  };

  struct Registration {
    std::vector<std::uint64_t> keys;  ///< buckets holding entries (unique)
    std::vector<Anchor> anchors;      ///< sorted by eta_s
    std::vector<ViaAnchor> vias;      ///< one per via-point
    std::size_t anchor_next = 0;      ///< first anchor with eta >= advanced
    double advanced_to_s = 0.0;
  };

  struct SideCandidate {
    double walk_m;
    double eta_s;
    ClusterId cluster;
    LandmarkId landmark;
  };

  static std::uint64_t PackKey(GridId cell, std::uint64_t time_bucket) {
    return (static_cast<std::uint64_t>(cell.value()) << 32) |
           (time_bucket & 0xffffffffull);
  }
  std::uint64_t TimeBucketOf(double eta_s) const {
    double b = eta_s / options_.st_hash_bucket_s;
    return b <= 0.0 ? 0 : static_cast<std::uint64_t>(b);
  }

  void InsertInternal(const Ride& ride);
  std::size_t RemoveInternal(RideId ride);

  /// One endpoint's probe: union the entries of every (cell within the
  /// walking radius × bucket overlapping [eta_begin, eta_end]), filter by
  /// exact walk/ETA, then keep per ride the `per_ride` least-walk
  /// distinct-landmark candidates.
  void CollectSideCandidates(
      const RegionIndex& region, const LatLng& location, double walk_limit_m,
      double eta_begin, double eta_end, std::size_t per_ride,
      std::vector<std::pair<RideId, SideCandidate>>* out) const;

  std::atomic<std::shared_ptr<const RegionSnapshot>> snapshot_;
  const RoadGraph* graph_;
  MatchIndexOptions options_;
  GridSpec hash_grid_;  ///< coarse cells over the region bounds

  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  std::unordered_map<RideId, Registration> regs_;
};

}  // namespace xar

#endif  // XAR_MATCH_ST_HASH_INDEX_H_
