#include "mmtp/integration.h"

#include <algorithm>
#include <limits>
#include <string>

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rider's arrival time at trip-plan point `i` (0 = origin).
double ArrivalAtPoint(const Journey& plan, std::size_t i) {
  return i == 0 ? plan.DepartureS() : plan.legs[i - 1].arrival_s;
}

/// Scheduled departure from point `j` (kInf at the final destination).
double DepartureFromPoint(const Journey& plan, std::size_t j) {
  return j >= plan.legs.size() ? kInf : plan.legs[j].depart_s;
}

/// Location of trip-plan point `i`.
LatLng PointAt(const Journey& plan, std::size_t i) {
  return i == 0 ? plan.legs.front().from : plan.legs[i - 1].to;
}

/// plan.legs[0..i) + ride_legs + plan.legs[j..end), with the post-splice
/// leg's waiting time recomputed.
Journey Compose(const Journey& plan, std::size_t i, std::size_t j,
                const std::vector<JourneyLeg>& ride_legs) {
  Journey out;
  out.feasible = true;
  out.legs.assign(plan.legs.begin(),
                  plan.legs.begin() + static_cast<std::ptrdiff_t>(i));
  out.legs.insert(out.legs.end(), ride_legs.begin(), ride_legs.end());
  for (std::size_t l = j; l < plan.legs.size(); ++l) {
    JourneyLeg leg = plan.legs[l];
    if (l == j && !out.legs.empty()) {
      double arrive = out.legs.back().arrival_s;
      if (arrive <= leg.depart_s) leg.start_s = arrive;
    }
    out.legs.push_back(leg);
  }
  return out;
}

}  // namespace

XarMmtpIntegration::XarMmtpIntegration(const TripPlanner& planner,
                                       XarSystem& xar,
                                       IntegrationOptions options)
    : planner_(planner), xar_(xar), options_(options) {}

std::vector<RideMatch> XarMmtpIntegration::ProbeSegment(
    const LatLng& from, const LatLng& to, double earliest, double latest,
    RequestId request_id) const {
  RideRequest req;
  req.id = request_id;
  req.source = from;
  req.destination = to;
  req.earliest_departure_s = earliest;
  req.latest_departure_s = latest;
  return xar_.Search(req);
}

std::vector<JourneyLeg> XarMmtpIntegration::RideLegs(const RideMatch& match,
                                                     const LatLng& from,
                                                     const LatLng& to,
                                                     double start_s) const {
  const RegionIndex& region = xar_.region();
  LatLng pickup = region.GetLandmark(match.pickup_landmark).position;
  LatLng dropoff = region.GetLandmark(match.dropoff_landmark).position;
  double walk_speed = planner_.options().csa.walk_speed_mps;

  std::vector<JourneyLeg> legs;
  JourneyLeg walk_in;
  walk_in.mode = LegMode::kWalk;
  walk_in.from = from;
  walk_in.to = pickup;
  walk_in.start_s = walk_in.depart_s = start_s;
  walk_in.walk_m = match.walk_source_m;
  walk_in.arrival_s = start_s + match.walk_source_m / walk_speed;
  legs.push_back(walk_in);

  JourneyLeg ride;
  ride.mode = LegMode::kRideShare;
  ride.from = pickup;
  ride.to = dropoff;
  ride.start_s = walk_in.arrival_s;
  ride.depart_s = std::max(match.eta_source_s, walk_in.arrival_s);
  ride.arrival_s =
      std::max(match.eta_dest_s, ride.depart_s);  // ETA estimates may cross
  ride.description = "shared ride #" + std::to_string(match.ride.value());
  legs.push_back(ride);

  JourneyLeg walk_out;
  walk_out.mode = LegMode::kWalk;
  walk_out.from = dropoff;
  walk_out.to = to;
  walk_out.start_s = walk_out.depart_s = ride.arrival_s;
  walk_out.walk_m = match.walk_dest_m;
  walk_out.arrival_s = ride.arrival_s + match.walk_dest_m / walk_speed;
  legs.push_back(walk_out);
  return legs;
}

IntegrationResult XarMmtpIntegration::Aid(const Journey& plan,
                                          RequestId request_id) {
  IntegrationResult result;
  result.journey = plan;
  if (!plan.feasible || plan.legs.empty()) return result;

  Journey out;
  out.feasible = true;
  for (std::size_t l = 0; l < plan.legs.size(); ++l) {
    const JourneyLeg& leg = plan.legs[l];
    bool infeasible = leg.walk_m > options_.infeasible_walk_m ||
                      (leg.depart_s - leg.start_s) > options_.infeasible_wait_s;
    if (!infeasible) {
      out.legs.push_back(leg);
      continue;
    }
    ++result.segments_probed;
    double start = out.legs.empty() ? leg.start_s : out.legs.back().arrival_s;
    std::vector<RideMatch> matches =
        ProbeSegment(leg.from, leg.to, start, start + options_.window_slack_s,
                     request_id);
    // Accept the best match only if the substitution does not arrive later
    // than the original segment (no downstream schedule damage).
    const RideMatch* chosen = nullptr;
    std::vector<JourneyLeg> ride_legs;
    for (const RideMatch& m : matches) {
      std::vector<JourneyLeg> candidate =
          RideLegs(m, leg.from, leg.to, start);
      if (candidate.back().arrival_s <= leg.arrival_s) {
        chosen = &m;
        ride_legs = std::move(candidate);
        break;
      }
    }
    if (chosen == nullptr) {
      out.legs.push_back(leg);
      continue;
    }
    if (options_.book_matches) {
      RideRequest req;
      req.id = request_id;
      req.source = leg.from;
      req.destination = leg.to;
      req.earliest_departure_s = start;
      req.latest_departure_s = start + options_.window_slack_s;
      if (!xar_.Book(chosen->ride, req, *chosen).ok()) {
        out.legs.push_back(leg);
        continue;
      }
    }
    out.legs.insert(out.legs.end(), ride_legs.begin(), ride_legs.end());
    ++result.segments_replaced;
  }
  result.improved = result.segments_replaced > 0;
  if (result.improved) result.journey = std::move(out);
  return result;
}

IntegrationResult XarMmtpIntegration::Enhance(const Journey& plan,
                                              RequestId request_id) {
  IntegrationResult result;
  result.journey = plan;
  if (!plan.feasible || plan.legs.size() < 2) return result;

  std::size_t num_legs = plan.legs.size();       // points are 0..num_legs
  std::size_t k = num_legs - 1;                  // intermediate hops

  // Candidate (i, j) point pairs: all non-adjacent pairs for small k, only
  // endpoint-touching pairs otherwise (paper Section IX-B).
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  if (k <= options_.max_hops_for_all_pairs) {
    for (std::size_t i = 0; i + 2 <= num_legs; ++i) {
      for (std::size_t j = i + 2; j <= num_legs; ++j) {
        pairs.emplace_back(i, j);
      }
    }
  } else {
    for (std::size_t j = 2; j <= num_legs; ++j) pairs.emplace_back(0, j);
    for (std::size_t i = 1; i + 2 <= num_legs; ++i) {
      pairs.emplace_back(i, num_legs);
    }
  }

  Journey best = plan;
  const RideMatch* best_match = nullptr;
  RideMatch best_match_storage;
  std::pair<std::size_t, std::size_t> best_pair{0, 0};

  auto better = [](const Journey& a, const Journey& b) {
    if (a.Hops() != b.Hops()) return a.Hops() < b.Hops();
    return a.ArrivalS() < b.ArrivalS();
  };

  for (auto [i, j] : pairs) {
    ++result.segments_probed;
    double earliest = ArrivalAtPoint(plan, i);
    double deadline = DepartureFromPoint(plan, j);
    std::vector<RideMatch> matches =
        ProbeSegment(PointAt(plan, i), PointAt(plan, j), earliest,
                     earliest + options_.window_slack_s, request_id);
    for (const RideMatch& m : matches) {
      std::vector<JourneyLeg> legs =
          RideLegs(m, PointAt(plan, i), PointAt(plan, j), earliest);
      if (legs.back().arrival_s > deadline) continue;
      Journey candidate = Compose(plan, i, j, legs);
      if (better(candidate, best)) {
        best = candidate;
        best_match_storage = m;
        best_match = &best_match_storage;
        best_pair = {i, j};
      }
      break;  // matches are sorted by least walking; first viable is enough
    }
  }

  if (best_match != nullptr) {
    if (options_.book_matches) {
      RideRequest req;
      req.id = request_id;
      req.source = PointAt(plan, best_pair.first);
      req.destination = PointAt(plan, best_pair.second);
      req.earliest_departure_s = ArrivalAtPoint(plan, best_pair.first);
      req.latest_departure_s =
          req.earliest_departure_s + options_.window_slack_s;
      if (!xar_.Book(best_match->ride, req, *best_match).ok()) {
        return result;  // booking raced away; keep the original plan
      }
    }
    result.journey = std::move(best);
    result.segments_replaced = 1;
    result.improved = true;
  }
  return result;
}

}  // namespace xar
