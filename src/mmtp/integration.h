#ifndef XAR_MMTP_INTEGRATION_H_
#define XAR_MMTP_INTEGRATION_H_

#include <cstddef>
#include <vector>

#include "mmtp/trip_planner.h"
#include "transit/journey.h"
#include "xar/xar_system.h"

namespace xar {

/// Thresholds and limits for the Section IX integration modes.
struct IntegrationOptions {
  /// A trip-plan segment is *infeasible* when it asks for more walking or
  /// waiting than this (paper Fig. 6 setup: 1 km / 10 min).
  double infeasible_walk_m = 1000.0;
  double infeasible_wait_s = 600.0;

  /// Enhancer mode: with at most this many intermediate hops, all
  /// (k+1 choose 2) non-adjacent point pairs are probed; beyond it, only the
  /// 2k+1 pairs touching the trip endpoints (paper Section IX-B).
  std::size_t max_hops_for_all_pairs = 4;

  /// Slack allowed around segment times when forming ride-request windows.
  double window_slack_s = 300.0;

  /// If true, winning matches are booked on the spot (Fig. 6 RS+PT mode);
  /// if false the integration only *searches* (look-to-book style probing).
  bool book_matches = true;
};

/// Outcome of an Aider/Enhancer pass over one trip plan.
struct IntegrationResult {
  Journey journey;                     ///< possibly enhanced plan
  std::size_t segments_probed = 0;     ///< XAR searches issued
  std::size_t segments_replaced = 0;   ///< legs replaced by shared rides
  bool improved = false;
};

/// The Section IX integration layer: connects a multi-modal trip planner to
/// a XAR instance, replacing infeasible segments (Aider mode) or probing all
/// segment combinations for improvements (Enhancer mode).
class XarMmtpIntegration {
 public:
  XarMmtpIntegration(const TripPlanner& planner, XarSystem& xar,
                     IntegrationOptions options = {});

  /// Aider mode (Section IX-A): for each infeasible segment of `plan`
  /// (excess walking or waiting), asks XAR for a shared ride covering that
  /// segment and substitutes the best match.
  IntegrationResult Aid(const Journey& plan, RequestId request_id);

  /// Enhancer mode (Section IX-B): probes ride-share substitutions for the
  /// (k+1 choose 2) combinations of trip-plan points (or the 2k+1 endpoint
  /// pairs when k exceeds the threshold), and applies the substitution that
  /// improves the plan most (fewer hops, then earlier arrival).
  IntegrationResult Enhance(const Journey& plan, RequestId request_id);

  const IntegrationOptions& options() const { return options_; }

 private:
  /// Issues a XAR search for a ride from `from` to `to` in the window
  /// [earliest, latest]; returns matches sorted by least walking.
  std::vector<RideMatch> ProbeSegment(const LatLng& from, const LatLng& to,
                                      double earliest, double latest,
                                      RequestId request_id) const;

  /// Builds the legs of a ride-share substitution (walk + ride + walk).
  std::vector<JourneyLeg> RideLegs(const RideMatch& match, const LatLng& from,
                                   const LatLng& to, double start_s) const;

  const TripPlanner& planner_;
  XarSystem& xar_;
  IntegrationOptions options_;
};

}  // namespace xar

#endif  // XAR_MMTP_INTEGRATION_H_
