#include "mmtp/trip_planner.h"

namespace xar {

TripPlanner::TripPlanner(const Timetable& timetable,
                         TripPlannerOptions options)
    : timetable_(timetable), csa_(timetable, options.csa),
      options_(options) {}

Journey TripPlanner::WalkOnly(const LatLng& origin,
                              const LatLng& destination,
                              double departure_s) const {
  Journey j;
  double walk = EquirectangularMeters(origin, destination) *
                options_.csa.walk_detour_factor;
  JourneyLeg leg;
  leg.mode = LegMode::kWalk;
  leg.from = origin;
  leg.to = destination;
  leg.start_s = leg.depart_s = departure_s;
  leg.arrival_s = departure_s + walk / options_.csa.walk_speed_mps;
  leg.walk_m = walk;
  j.legs.push_back(leg);
  j.feasible = true;
  return j;
}

Journey TripPlanner::PlanTrip(const LatLng& origin,
                              const LatLng& destination,
                              double departure_s) const {
  Journey transit = csa_.EarliestArrival(origin, destination, departure_s);
  double direct = EquirectangularMeters(origin, destination);
  bool walk_allowed = direct * options_.csa.walk_detour_factor <=
                      options_.direct_walk_max_m;
  if (!transit.feasible) {
    if (walk_allowed) return WalkOnly(origin, destination, departure_s);
    return transit;  // infeasible
  }
  if (walk_allowed) {
    Journey walk = WalkOnly(origin, destination, departure_s);
    if (walk.ArrivalS() <= transit.ArrivalS()) return walk;
  }
  return transit;
}

}  // namespace xar
