#ifndef XAR_MMTP_TRIP_PLANNER_H_
#define XAR_MMTP_TRIP_PLANNER_H_

#include "geo/latlng.h"
#include "transit/csa.h"
#include "transit/journey.h"
#include "transit/timetable.h"

namespace xar {

/// Options of the multi-modal trip planner.
struct TripPlannerOptions {
  CsaOptions csa;
  /// Trips shorter than this may be answered with a pure walking plan when
  /// walking beats transit.
  double direct_walk_max_m = 2000.0;
};

/// The multi-modal trip planner (OpenTripPlanner stand-in): walking +
/// scheduled transit via the Connection Scan planner. Produces Journey
/// objects whose legs the XAR integration modes (Section IX) inspect and
/// enhance.
class TripPlanner {
 public:
  explicit TripPlanner(const Timetable& timetable,
                       TripPlannerOptions options = {});

  /// Best door-to-door plan departing at/after `departure_s`: the earliest
  /// arriving of {transit journey, pure walk (if within the walk cap)}.
  /// Journey.feasible == false when neither mode can serve the trip.
  Journey PlanTrip(const LatLng& origin, const LatLng& destination,
                   double departure_s) const;

  /// A pure walking journey (always well-formed; caller checks distance).
  Journey WalkOnly(const LatLng& origin, const LatLng& destination,
                   double departure_s) const;

  const TripPlannerOptions& options() const { return options_; }

 private:
  const Timetable& timetable_;
  ConnectionScanPlanner csa_;
  TripPlannerOptions options_;
};

}  // namespace xar

#endif  // XAR_MMTP_TRIP_PLANNER_H_
