#include "schedule/kinetic_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

KineticTree::KineticTree(NodeId origin, double start_time_s, int capacity,
                         DistanceOracle& oracle, int onboard)
    : oracle_(&oracle),
      position_(origin),
      time_s_(start_time_s),
      capacity_(capacity),
      onboard_(onboard) {
  assert(capacity >= 1);
  assert(onboard >= 0 && onboard <= capacity);
}

std::unique_ptr<KineticTree::Node> KineticTree::CopyRebased(
    const Node& node, NodeId from, double at_time, int onboard) const {
  double arrival = at_time + oracle_->DriveTime(from, node.stop.node);
  if (arrival > node.stop.deadline_s) return nullptr;
  int onboard_after = onboard + (node.stop.is_pickup ? 1 : -1);
  if (onboard_after > capacity_ || onboard_after < 0) return nullptr;

  auto copy = std::make_unique<Node>();
  copy->stop = node.stop;
  copy->arrival_s = arrival;
  copy->onboard_after = onboard_after;
  for (const std::unique_ptr<Node>& child : node.children) {
    std::unique_ptr<Node> rebased =
        CopyRebased(*child, node.stop.node, arrival, onboard_after);
    if (rebased != nullptr) copy->children.push_back(std::move(rebased));
  }
  // A non-leaf whose orderings all died cannot serve its remaining stops.
  if (!node.children.empty() && copy->children.empty()) return nullptr;
  return copy;
}

std::vector<std::unique_ptr<KineticTree::Node>> KineticTree::InsertInto(
    const std::vector<std::unique_ptr<Node>>& children, NodeId from,
    double at_time, int onboard, const ScheduleStop& stop,
    const ScheduleStop* then) const {
  std::vector<std::unique_ptr<Node>> result;

  // Option A: serve `stop` next, then everything else (with `then`, if any,
  // inserted somewhere below it).
  double arrival = at_time + oracle_->DriveTime(from, stop.node);
  int onboard_after = onboard + (stop.is_pickup ? 1 : -1);
  if (arrival <= stop.deadline_s && onboard_after <= capacity_ &&
      onboard_after >= 0) {
    std::vector<std::unique_ptr<Node>> kids;
    if (then != nullptr) {
      kids = InsertInto(children, stop.node, arrival, onboard_after, *then,
                        nullptr);
    } else {
      for (const std::unique_ptr<Node>& child : children) {
        std::unique_ptr<Node> rebased =
            CopyRebased(*child, stop.node, arrival, onboard_after);
        if (rebased != nullptr) kids.push_back(std::move(rebased));
      }
    }
    bool needs_kids = !children.empty() || then != nullptr;
    if (!needs_kids || !kids.empty()) {
      auto node = std::make_unique<Node>();
      node->stop = stop;
      node->arrival_s = arrival;
      node->onboard_after = onboard_after;
      node->children = std::move(kids);
      result.push_back(std::move(node));
    }
  }

  // Option B: some existing stop is served first; `stop` (and `then`) go
  // deeper into that branch.
  for (const std::unique_ptr<Node>& child : children) {
    double child_arrival = at_time + oracle_->DriveTime(from,
                                                        child->stop.node);
    if (child_arrival > child->stop.deadline_s) continue;
    int child_onboard = onboard + (child->stop.is_pickup ? 1 : -1);
    if (child_onboard > capacity_ || child_onboard < 0) continue;
    std::vector<std::unique_ptr<Node>> deeper =
        InsertInto(child->children, child->stop.node, child_arrival,
                   child_onboard, stop, then);
    if (deeper.empty()) continue;
    auto node = std::make_unique<Node>();
    node->stop = child->stop;
    node->arrival_s = child_arrival;
    node->onboard_after = child_onboard;
    node->children = std::move(deeper);
    result.push_back(std::move(node));
  }
  return result;
}

void KineticTree::BestLeafPath(const Node& node,
                               std::vector<const Node*>* current,
                               std::vector<const Node*>* best,
                               double* best_time) const {
  current->push_back(&node);
  if (node.children.empty()) {
    if (node.arrival_s < *best_time) {
      *best_time = node.arrival_s;
      *best = *current;
    }
  } else {
    for (const std::unique_ptr<Node>& child : node.children) {
      BestLeafPath(*child, current, best, best_time);
    }
  }
  current->pop_back();
}

std::size_t KineticTree::CountLeaves(const Node& node) const {
  if (node.children.empty()) return 1;
  std::size_t total = 0;
  for (const std::unique_ptr<Node>& child : node.children) {
    total += CountLeaves(*child);
  }
  return total;
}

double KineticTree::TryInsert(const ScheduleStop& pickup,
                              const ScheduleStop& dropoff) const {
  std::vector<std::unique_ptr<Node>> candidate =
      InsertInto(roots_, position_, time_s_, onboard_, pickup, &dropoff);
  double best = kInf;
  std::vector<const Node*> path, best_path;
  for (const std::unique_ptr<Node>& root : candidate) {
    BestLeafPath(*root, &path, &best_path, &best);
  }
  return best;
}

bool KineticTree::Insert(const ScheduleStop& pickup,
                         const ScheduleStop& dropoff) {
  assert(pickup.is_pickup && !dropoff.is_pickup);
  assert(pickup.request == dropoff.request);
  std::vector<std::unique_ptr<Node>> next =
      InsertInto(roots_, position_, time_s_, onboard_, pickup, &dropoff);
  if (next.empty()) return false;
  roots_ = std::move(next);
  pending_stops_ += 2;
  return true;
}

bool KineticTree::InsertSingle(const ScheduleStop& stop) {
  std::vector<std::unique_ptr<Node>> next =
      InsertInto(roots_, position_, time_s_, onboard_, stop, nullptr);
  if (next.empty()) return false;
  roots_ = std::move(next);
  pending_stops_ += 1;
  return true;
}

double KineticTree::NextStopEtaS() const {
  double best = kInf;
  std::vector<const Node*> path, best_path;
  for (const std::unique_ptr<Node>& root : roots_) {
    BestLeafPath(*root, &path, &best_path, &best);
  }
  return best_path.empty() ? kInf : best_path.front()->arrival_s;
}

Schedule KineticTree::BestSchedule() const {
  Schedule schedule;
  double best = kInf;
  std::vector<const Node*> path, best_path;
  for (const std::unique_ptr<Node>& root : roots_) {
    BestLeafPath(*root, &path, &best_path, &best);
  }
  for (const Node* node : best_path) schedule.stops.push_back(node->stop);
  schedule.completion_time_s = best_path.empty() ? time_s_ : best;
  return schedule;
}

std::size_t KineticTree::NumSchedules() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Node>& root : roots_) {
    total += CountLeaves(*root);
  }
  return total;
}

std::size_t KineticTree::NumNodes() const {
  std::size_t total = 0;
  std::vector<const Node*> work;
  for (const std::unique_ptr<Node>& root : roots_) work.push_back(root.get());
  while (!work.empty()) {
    const Node* node = work.back();
    work.pop_back();
    ++total;
    for (const std::unique_ptr<Node>& child : node->children) {
      work.push_back(child.get());
    }
  }
  return total;
}

ScheduleStop KineticTree::AdvanceToNextStop() {
  assert(!roots_.empty());
  // Commit to the branch whose best leaf finishes earliest.
  double best = kInf;
  std::size_t best_root = 0;
  std::vector<const Node*> path, best_path;
  for (std::size_t r = 0; r < roots_.size(); ++r) {
    double before = best;
    BestLeafPath(*roots_[r], &path, &best_path, &best);
    if (best < before) best_root = r;
  }
  std::unique_ptr<Node> chosen = std::move(roots_[best_root]);
  position_ = chosen->stop.node;
  time_s_ = chosen->arrival_s;
  onboard_ = chosen->onboard_after;
  roots_ = std::move(chosen->children);
  --pending_stops_;
  return chosen->stop;
}

namespace {

void EnumerateSchedules(
    const std::vector<std::pair<ScheduleStop, ScheduleStop>>& riders,
    std::vector<int>& state,  // 0 = none, 1 = picked, 2 = dropped
    NodeId at, double time, int onboard, int capacity,
    DistanceOracle& oracle, std::vector<ScheduleStop>& current,
    Schedule* best) {
  bool done = true;
  for (std::size_t r = 0; r < riders.size(); ++r) {
    if (state[r] == 2) continue;  // rider fully served
    done = false;
    int prev_state = state[r];
    const ScheduleStop& next =
        prev_state == 0 ? riders[r].first : riders[r].second;
    double arrival = time + oracle.DriveTime(at, next.node);
    if (arrival > next.deadline_s) continue;
    int onboard_after = onboard + (next.is_pickup ? 1 : -1);
    if (onboard_after > capacity || onboard_after < 0) continue;
    state[r] = prev_state + 1;  // 0 -> picked, 1 -> dropped
    current.push_back(next);
    EnumerateSchedules(riders, state, next.node, arrival, onboard_after,
                       capacity, oracle, current, best);
    current.pop_back();
    state[r] = prev_state;
  }
  if (done) {
    if (time < best->completion_time_s) {
      best->completion_time_s = time;
      best->stops = current;
    }
  }
}

}  // namespace

Schedule BruteForceBestSchedule(
    NodeId origin, double start_time_s, int capacity, DistanceOracle& oracle,
    const std::vector<std::pair<ScheduleStop, ScheduleStop>>& riders) {
  Schedule best;
  best.completion_time_s = kInf;
  std::vector<int> state(riders.size(), 0);
  std::vector<ScheduleStop> current;
  EnumerateSchedules(riders, state, origin, start_time_s, 0, capacity,
                     oracle, current, &best);
  if (best.completion_time_s == kInf) {
    best.completion_time_s = start_time_s;  // no riders => empty schedule
    if (!riders.empty()) best.completion_time_s = kInf;
  }
  return best;
}

}  // namespace xar
