#ifndef XAR_SCHEDULE_KINETIC_TREE_H_
#define XAR_SCHEDULE_KINETIC_TREE_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "graph/oracle.h"
#include "schedule/stop.h"

namespace xar {

/// Kinetic-tree schedule maintainer (after Huang et al., VLDB 2014 — the
/// dynamic scheduling layer the XAR paper names as complementary to its
/// search index).
///
/// The tree's root is the vehicle's current position/time; every root-to-
/// leaf path is a *feasible* ordering of the outstanding pickup/drop-off
/// stops (deadlines met, pickup before drop-off, seats never exceeded).
/// Inserting a new rider explores all placements of their pickup and
/// drop-off across all retained orderings, pruning infeasible branches —
/// so the best schedule after any sequence of insertions is exact over the
/// retained orderings, without re-enumerating permutations from scratch.
///
/// Intended scale matches ride sharing: a handful of concurrent riders per
/// vehicle. Driving times come from the DistanceOracle.
class KineticTree {
 public:
  /// A vehicle at `origin`, free from `start_time_s`, with `capacity` seats
  /// for riders. `onboard` riders already occupy seats at the root (a tree
  /// built for an in-progress vehicle: their pickups are history, only their
  /// drop-off stops — inserted via InsertSingle — remain).
  KineticTree(NodeId origin, double start_time_s, int capacity,
              DistanceOracle& oracle, int onboard = 0);

  KineticTree(const KineticTree&) = delete;
  KineticTree& operator=(const KineticTree&) = delete;
  KineticTree(KineticTree&&) = default;
  KineticTree& operator=(KineticTree&&) = default;

  /// Best completion time if `pickup`+`dropoff` were inserted, without
  /// committing; +inf when no feasible ordering exists.
  double TryInsert(const ScheduleStop& pickup,
                   const ScheduleStop& dropoff) const;

  /// Inserts the rider's stop pair, keeping every feasible ordering.
  /// Returns false (and leaves the tree unchanged) when infeasible.
  bool Insert(const ScheduleStop& pickup, const ScheduleStop& dropoff);

  /// Inserts a lone stop across all placements — the drop-off of a rider
  /// who already boarded (counted in the root's `onboard`). Returns false
  /// (tree unchanged) when no feasible ordering admits it.
  bool InsertSingle(const ScheduleStop& stop);

  /// Commits the vehicle to the *best* schedule's first stop: the root
  /// moves there, alternatives that begin differently are discarded.
  /// Returns the stop served. Requires a non-empty schedule.
  ScheduleStop AdvanceToNextStop();

  /// Arrival time at the best schedule's first stop; +inf when empty. The
  /// wake-up time a persistent schedule owner uses to prune passed stops.
  double NextStopEtaS() const;

  /// Minimum-completion-time ordering among all retained feasible ones.
  Schedule BestSchedule() const;

  /// Number of feasible orderings currently retained (leaf count).
  std::size_t NumSchedules() const;

  /// Outstanding stops (any single ordering's length).
  std::size_t NumPendingStops() const { return pending_stops_; }

  bool empty() const { return pending_stops_ == 0; }
  NodeId position() const { return position_; }
  double time() const { return time_s_; }
  int onboard() const { return onboard_; }
  int capacity() const { return capacity_; }

  /// Retained tree nodes (all orderings, shared prefixes counted once).
  std::size_t NumNodes() const;

 private:
  struct Node {
    ScheduleStop stop;
    double arrival_s = 0.0;
    int onboard_after = 0;  ///< riders on board after serving this stop
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Deep copy with arrival times recomputed from (`from`, `at_time`);
  /// returns nullptr if the subtree becomes infeasible.
  std::unique_ptr<Node> CopyRebased(const Node& node, NodeId from,
                                    double at_time, int onboard) const;

  /// All placements of `stop` into `subtree` (which hangs off `from` at
  /// `at_time`): as a new node above each child subset point and recursively
  /// deeper. When `then` is non-null, it is inserted into the subtree below
  /// each placement of `stop` (the pickup-then-dropoff constraint).
  std::vector<std::unique_ptr<Node>> InsertInto(
      const std::vector<std::unique_ptr<Node>>& children, NodeId from,
      double at_time, int onboard, const ScheduleStop& stop,
      const ScheduleStop* then) const;

  void BestLeafPath(const Node& node, std::vector<const Node*>* current,
                    std::vector<const Node*>* best, double* best_time) const;
  std::size_t CountLeaves(const Node& node) const;

  DistanceOracle* oracle_;
  NodeId position_;
  double time_s_;
  int capacity_;
  int onboard_ = 0;
  std::size_t pending_stops_ = 0;
  std::vector<std::unique_ptr<Node>> roots_;  ///< first-stop alternatives
};

/// Reference solver: exact best schedule by enumerating all valid
/// permutations of the stop pairs. Exponential; test oracle only.
Schedule BruteForceBestSchedule(
    NodeId origin, double start_time_s, int capacity, DistanceOracle& oracle,
    const std::vector<std::pair<ScheduleStop, ScheduleStop>>& riders);

}  // namespace xar

#endif  // XAR_SCHEDULE_KINETIC_TREE_H_
