#include "schedule/ride_schedule.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kCorrupt = std::numeric_limits<std::size_t>::max();

}  // namespace

RideSchedule::RideSchedule(NodeId root, double root_time_s, int capacity,
                           DistanceOracle& oracle)
    : oracle_(&oracle), tree_(root, root_time_s, capacity, oracle) {}

void RideSchedule::SeedPendingRider(const ScheduleStop& pickup,
                                    const ScheduleStop& dropoff) {
  assert(pickup.is_pickup && !dropoff.is_pickup);
  assert(pickup.request == dropoff.request);
  RiderPlan plan;
  plan.request = pickup.request;
  plan.pickup = pickup;
  plan.dropoff = dropoff;
  riders_.push_back(plan);
}

void RideSchedule::SeedOnboardRider(const ScheduleStop& committed_pickup,
                                    const ScheduleStop& dropoff) {
  assert(committed_pickup.is_pickup && !dropoff.is_pickup);
  assert(committed_pickup.request == dropoff.request);
  RiderPlan plan;
  plan.request = dropoff.request;
  plan.pickup = committed_pickup;
  plan.dropoff = dropoff;
  plan.picked_up = true;
  riders_.push_back(plan);
  committed_.push_back(committed_pickup);
}

bool RideSchedule::FinishSeeding() { return RebuildTree() != kCorrupt; }

double RideSchedule::TryInsert(const ScheduleStop& pickup,
                               const ScheduleStop& dropoff) const {
  if (FindRider(pickup.request) != nullptr) return kInf;
  return tree_.TryInsert(pickup, dropoff);
}

bool RideSchedule::Insert(const ScheduleStop& pickup,
                          const ScheduleStop& dropoff) {
  assert(pickup.is_pickup && !dropoff.is_pickup);
  assert(pickup.request == dropoff.request);
  if (FindRider(pickup.request) != nullptr) return false;
  if (!tree_.Insert(pickup, dropoff)) return false;
  RiderPlan plan;
  plan.request = pickup.request;
  plan.pickup = pickup;
  plan.dropoff = dropoff;
  riders_.push_back(plan);
  return true;
}

bool RideSchedule::Remove(RequestId request) {
  auto it = std::find_if(
      riders_.begin(), riders_.end(),
      [request](const RiderPlan& r) { return r.request == request; });
  if (it == riders_.end()) return false;
  riders_.erase(it);
  committed_.erase(
      std::remove_if(committed_.begin(), committed_.end(),
                     [request](const ScheduleStop& s) {
                       return s.request == request;
                     }),
      committed_.end());
  // Regraft by replaying the survivors: exact, because insertion keeps
  // every feasible ordering — the rebuilt tree equals what incremental
  // maintenance would have produced had this rider never booked.
  std::size_t relaxed = RebuildTree();
  assert(relaxed != kCorrupt &&
         "removing a rider cannot make the others infeasible");
  (void)relaxed;
  return true;
}

std::size_t RideSchedule::AdvanceTo(double now_s) {
  std::size_t advanced = 0;
  while (!tree_.empty() && tree_.NextStopEtaS() <= now_s) {
    ScheduleStop stop = tree_.AdvanceToNextStop();
    for (RiderPlan& rider : riders_) {
      if (rider.request != stop.request) continue;
      if (stop.is_pickup) {
        rider.picked_up = true;
      } else {
        rider.dropped_off = true;
      }
      break;
    }
    committed_.push_back(stop);
    ++advanced;
  }
  return advanced;
}

std::size_t RideSchedule::Reprice(DistanceOracle& oracle) {
  oracle_ = &oracle;
  std::size_t relaxed = RebuildTree();
  assert(relaxed != kCorrupt && "relaxed rebuild cannot fail");
  return relaxed == kCorrupt ? 0 : relaxed;
}

std::size_t RideSchedule::ActiveRiders() const {
  std::size_t active = 0;
  for (const RiderPlan& rider : riders_) {
    if (!rider.dropped_off) ++active;
  }
  return active;
}

std::vector<RideSchedule::PendingRider> RideSchedule::PendingRiders() const {
  std::vector<PendingRider> pending;
  for (const RiderPlan& rider : riders_) {
    if (rider.dropped_off) continue;
    PendingRider p;
    p.request = rider.request;
    p.pickup = rider.pickup;
    p.dropoff = rider.dropoff;
    p.onboard = rider.picked_up;
    pending.push_back(p);
  }
  return pending;
}

std::size_t RideSchedule::MemoryFootprint() const {
  return sizeof(*this) + riders_.capacity() * sizeof(RiderPlan) +
         committed_.capacity() * sizeof(ScheduleStop) +
         tree_.NumNodes() * 64;  // rough per-node overhead
}

const RideSchedule::RiderPlan* RideSchedule::FindRider(
    RequestId request) const {
  for (const RiderPlan& rider : riders_) {
    if (rider.request == request && !rider.dropped_off) return &rider;
  }
  return nullptr;
}

std::size_t RideSchedule::RebuildTree() {
  NodeId root = tree_.position();
  double root_time = tree_.time();
  int capacity = tree_.capacity();
  int onboard = 0;
  for (const RiderPlan& rider : riders_) {
    if (rider.picked_up && !rider.dropped_off) ++onboard;
  }

  // Insert with true deadlines first; a rider who no longer fits (a refresh
  // made the metric slower, or an earlier relaxation cascaded) is retried
  // with an infinite deadline — booked riders stay scheduled, late. The
  // relaxation is written back into the plan: it is a permanent contract
  // change, and PendingRiders() must report the deadlines the tree holds.
  std::size_t relaxed = 0;
  KineticTree fresh(root, root_time, capacity, *oracle_, onboard);
  for (RiderPlan& rider : riders_) {
    if (rider.dropped_off) continue;
    bool ok;
    if (rider.picked_up) {
      ok = fresh.InsertSingle(rider.dropoff);
      if (!ok) {
        rider.dropoff.deadline_s = kInf;
        ok = fresh.InsertSingle(rider.dropoff);
        if (ok) ++relaxed;
      }
    } else {
      ok = fresh.Insert(rider.pickup, rider.dropoff);
      if (!ok) {
        rider.pickup.deadline_s = kInf;
        rider.dropoff.deadline_s = kInf;
        ok = fresh.Insert(rider.pickup, rider.dropoff);
        if (ok) ++relaxed;
      }
    }
    if (!ok) return kCorrupt;  // seat-infeasible: corrupted ride state
  }
  tree_ = std::move(fresh);
  return relaxed;
}

}  // namespace xar
