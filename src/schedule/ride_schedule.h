#ifndef XAR_SCHEDULE_RIDE_SCHEDULE_H_
#define XAR_SCHEDULE_RIDE_SCHEDULE_H_

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "graph/oracle.h"
#include "schedule/kinetic_tree.h"
#include "schedule/stop.h"

namespace xar {

/// Persistent per-ride kinetic schedule (Yao & Bekhor, arXiv 2005.11195:
/// a dynamic tree of feasible stop sequences maintained per vehicle).
///
/// Where the original kinetic-booking path rebuilt a KineticTree from
/// scratch on every booking of a not-yet-departed ride, a RideSchedule is
/// owned by the ride for its whole life:
///
///  - **Insert** places a new rider's pickup/drop-off pair into the live
///    tree — O(tree), every feasible ordering retained — including into
///    *in-progress* rides, where the tree is rooted at the last stop the
///    vehicle committed to and already-boarded riders occupy seats at the
///    root (their drop-offs ride along as single stops).
///  - **AdvanceTo** prunes the tree as the vehicle passes stops: the best
///    ordering's next stop is committed, alternatives that begin
///    differently are discarded, and the stop is appended to the committed
///    prefix (the fixed part of the ride's via list).
///  - **Remove** unwinds a rider (cancellation / no-show): their remaining
///    stops leave the tree and their committed stops leave the prefix; the
///    tree is regrafted by re-inserting the surviving riders in their
///    original insertion order — which reproduces exactly the tree a
///    from-scratch build would make, because insertion retains *all*
///    feasible orderings (the persistent-vs-rebuild differential suite
///    pins this equivalence).
///  - **Reprice** re-bases every subtree on a new oracle after a
///    discretization refresh swaps the travel-time metric: same stops,
///    same root, re-computed arrival times. Riders whose deadlines became
///    unmeetable under the new metric are retained with relaxed deadlines —
///    a booked rider is a commitment, not a candidate.
///
/// Feasibility inside the tree is per-rider: each stop carries a deadline
/// (the rider's remaining detour budget expressed as a latest acceptable
/// arrival), and seat capacity is enforced at every prefix of every
/// retained ordering. Thread-safety is the owner's problem: XarSystem
/// mutates a RideSchedule only under the owning shard's exclusive lock.
class RideSchedule {
 public:
  /// A schedule rooted where the vehicle is (or will start): `root` at
  /// `root_time_s`, with `capacity` total rider seats.
  RideSchedule(NodeId root, double root_time_s, int capacity,
               DistanceOracle& oracle);

  RideSchedule(const RideSchedule&) = delete;
  RideSchedule& operator=(const RideSchedule&) = delete;

  // --- Seeding (materializing a schedule for a ride with history) ---------

  /// Registers a rider whose pickup is still ahead. Seed calls only
  /// describe state; FinishSeeding() builds the tree.
  void SeedPendingRider(const ScheduleStop& pickup,
                        const ScheduleStop& dropoff);

  /// Registers a rider already aboard: the pickup is history (it joins the
  /// committed prefix), only the drop-off enters the tree, and the rider
  /// occupies a seat at the root.
  void SeedOnboardRider(const ScheduleStop& committed_pickup,
                        const ScheduleStop& dropoff);

  /// Builds the tree from the seeded riders. Always succeeds for a seat-
  /// feasible ride (deadlines are relaxed per rider if needed — see
  /// Reprice); returns false only if even the relaxed build has no
  /// ordering, which indicates corrupted ride state.
  bool FinishSeeding();

  // --- Persistent mutations ----------------------------------------------

  /// Best completion time if the pair were inserted, without committing;
  /// +inf when no feasible ordering exists.
  double TryInsert(const ScheduleStop& pickup,
                   const ScheduleStop& dropoff) const;

  /// Inserts a new rider's stop pair into the live tree. False (tree
  /// unchanged) when infeasible or the request is already scheduled.
  bool Insert(const ScheduleStop& pickup, const ScheduleStop& dropoff);

  /// Unwinds a rider: remaining stops leave the tree (regraft by rebuild),
  /// committed stops leave the prefix. False if the request is unknown.
  bool Remove(RequestId request);

  /// Commits every stop whose best-schedule arrival is <= now_s (the
  /// vehicle passed it): root moves, alternatives prune, riders board and
  /// alight. Returns the number of stops committed.
  std::size_t AdvanceTo(double now_s);

  /// Re-bases the tree on `oracle` (post-refresh travel times): same
  /// stops, same root, re-priced subtrees. Returns the number of riders
  /// whose deadlines had to be relaxed to keep them aboard.
  std::size_t Reprice(DistanceOracle& oracle);

  // --- Introspection ------------------------------------------------------

  /// Minimum-completion-time ordering of the *remaining* stops.
  Schedule Best() const { return tree_.BestSchedule(); }
  /// Arrival at the next stop of the best ordering; +inf when drained.
  double NextStopEtaS() const { return tree_.NextStopEtaS(); }
  /// Stops already committed (passed), in commit order, rider stops only.
  const std::vector<ScheduleStop>& committed() const { return committed_; }

  NodeId root() const { return tree_.position(); }
  double root_time_s() const { return tree_.time(); }
  int capacity() const { return tree_.capacity(); }
  /// Riders currently aboard (picked up, not yet dropped off).
  int Onboard() const { return tree_.onboard(); }
  /// Outstanding stops (schedule depth).
  std::size_t PendingStops() const { return tree_.NumPendingStops(); }
  /// Feasible orderings currently retained.
  std::size_t NumSchedules() const { return tree_.NumSchedules(); }
  /// Retained tree nodes (memory/width signal).
  std::size_t NumNodes() const { return tree_.NumNodes(); }
  /// Riders not yet fully served (pending or aboard).
  std::size_t ActiveRiders() const;
  bool empty() const { return tree_.empty(); }

  /// One not-yet-completed rider, as the differential suite re-builds it:
  /// `onboard` riders contribute only their drop-off.
  struct PendingRider {
    RequestId request;
    ScheduleStop pickup;
    ScheduleStop dropoff;
    bool onboard = false;
  };
  /// Active riders in insertion order — the exact sequence a from-scratch
  /// rebuild must replay to reproduce this tree.
  std::vector<PendingRider> PendingRiders() const;

  std::size_t MemoryFootprint() const;

 private:
  struct RiderPlan {
    RequestId request;
    ScheduleStop pickup;
    ScheduleStop dropoff;
    bool picked_up = false;
    bool dropped_off = false;
  };

  const RiderPlan* FindRider(RequestId request) const;

  /// Rebuilds the tree from the root with every active rider's remaining
  /// stops (insertion order). Riders that no longer fit their deadlines
  /// are retried with relaxed (infinite) deadlines; returns how many were
  /// relaxed, or SIZE_MAX if even that failed (corrupt state).
  std::size_t RebuildTree();

  DistanceOracle* oracle_;
  KineticTree tree_;
  std::vector<RiderPlan> riders_;        ///< insertion order, never reordered
  std::vector<ScheduleStop> committed_;  ///< passed stops, commit order
};

}  // namespace xar

#endif  // XAR_SCHEDULE_RIDE_SCHEDULE_H_
