#ifndef XAR_SCHEDULE_STOP_H_
#define XAR_SCHEDULE_STOP_H_

#include <vector>

#include "common/ids.h"

namespace xar {

/// One scheduled vehicle stop: a rider's pickup or drop-off, with the
/// latest acceptable arrival time (service-quality deadline).
struct ScheduleStop {
  NodeId node;
  RequestId request;
  bool is_pickup = false;
  double deadline_s = 0.0;  ///< latest acceptable arrival

  friend bool operator==(const ScheduleStop& a, const ScheduleStop& b) {
    return a.node == b.node && a.request == b.request &&
           a.is_pickup == b.is_pickup && a.deadline_s == b.deadline_s;
  }
};

/// A concrete stop ordering with its timing.
struct Schedule {
  std::vector<ScheduleStop> stops;
  double completion_time_s = 0.0;  ///< arrival at the last stop
};

}  // namespace xar

#endif  // XAR_SCHEDULE_STOP_H_
