#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/clock.h"

namespace xar {
namespace serve {

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_tag_(other.next_tag_),
      decoder_(std::move(other.decoder_)),
      parked_(std::move(other.parked_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_tag_ = other.next_tag_;
    decoder_ = std::move(other.decoder_);
    parked_ = std::move(other.parked_);
  }
  return *this;
}

Status ServeClient::Connect(std::uint16_t port, const std::string& host) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::Internal(std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal(std::string("connect: ") +
                                     std::strerror(errno));
    Close();
    return status;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder();
  parked_.clear();
}

Status ServeClient::SendBytes(const void* data, std::size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status ServeClient::SendFrame(std::uint64_t tag, Verb verb,
                              const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  AppendFrame(tag, static_cast<std::uint8_t>(verb), payload, &bytes);
  return SendBytes(bytes.data(), bytes.size());
}

Result<Frame> ServeClient::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Stopwatch waited;
  for (;;) {
    Frame frame;
    FrameDecoder::Next next = decoder_.Pop(&frame);
    if (next == FrameDecoder::Next::kFrame) return frame;
    if (next == FrameDecoder::Next::kError) {
      return Status::Internal("response framing error: " + decoder_.error());
    }
    const double remaining_ms =
        static_cast<double>(timeout_ms) - waited.ElapsedMillis();
    if (remaining_ms <= 0) return Status::ResourceExhausted("read timeout");
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms) + 1);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready <= 0) continue;
    std::uint8_t buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return Status::NotFound("connection closed by server");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

Result<Frame> ServeClient::WaitForTag(std::uint64_t tag, int timeout_ms) {
  for (std::size_t i = 0; i < parked_.size(); ++i) {
    if (parked_[i].tag == tag) {
      Frame frame = std::move(parked_[i]);
      parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
      return frame;
    }
  }
  Stopwatch waited;
  for (;;) {
    const double remaining_ms =
        static_cast<double>(timeout_ms) - waited.ElapsedMillis();
    if (remaining_ms <= 0) return Status::ResourceExhausted("read timeout");
    Result<Frame> frame = ReadFrame(static_cast<int>(remaining_ms) + 1);
    if (!frame.ok()) return frame.status();
    if (frame->tag == tag) return frame;
    parked_.push_back(std::move(*frame));
  }
}

Status ServeClient::FrameError(const Frame& frame) {
  const std::string text(frame.payload.begin(), frame.payload.end());
  switch (static_cast<RespStatus>(frame.code)) {
    case RespStatus::kOk:
      return Status::OK();
    case RespStatus::kBusy:
      return Status::ResourceExhausted("BUSY");
    case RespStatus::kMalformed:
      return Status::InvalidArgument("MALFORMED: " + text);
    case RespStatus::kFailed:
      return Status::FailedPrecondition(text.empty() ? "FAILED" : text);
    case RespStatus::kUnknownVerb:
      return Status::Unimplemented("UNKNOWN_VERB");
  }
  return Status::Internal("invalid response status " +
                          std::to_string(frame.code));
}

Result<Frame> ServeClient::Call(Verb verb,
                                const std::vector<std::uint8_t>& payload,
                                int timeout_ms) {
  const std::uint64_t tag = next_tag_++;
  Status sent = SendFrame(tag, verb, payload);
  if (!sent.ok()) return sent;
  return WaitForTag(tag, timeout_ms);
}

Result<SearchResult> ServeClient::Search(const SearchPayload& request,
                                         int timeout_ms) {
  std::vector<std::uint8_t> payload;
  EncodeSearch(request, &payload);
  Result<Frame> frame = Call(Verb::kSearch, payload, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->code != static_cast<std::uint8_t>(RespStatus::kOk)) {
    return FrameError(*frame);
  }
  SearchResult result;
  if (!DecodeSearchResult(frame->payload.data(), frame->payload.size(),
                          &result)) {
    return Status::Internal("bad SEARCH response payload");
  }
  return result;
}

Result<BookingResult> ServeClient::Book(std::uint32_t rider_id,
                                        std::uint32_t ride_id,
                                        int timeout_ms) {
  std::vector<std::uint8_t> payload;
  EncodeBook({rider_id, ride_id}, &payload);
  Result<Frame> frame = Call(Verb::kBook, payload, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->code != static_cast<std::uint8_t>(RespStatus::kOk)) {
    return FrameError(*frame);
  }
  BookingResult result;
  if (!DecodeBookingResult(frame->payload.data(), frame->payload.size(),
                           &result)) {
    return Status::Internal("bad BOOK response payload");
  }
  return result;
}

Result<BookingResult> ServeClient::SearchAndBook(const SearchPayload& request,
                                                 int timeout_ms) {
  std::vector<std::uint8_t> payload;
  EncodeSearch(request, &payload);
  Result<Frame> frame = Call(Verb::kSearchAndBook, payload, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->code != static_cast<std::uint8_t>(RespStatus::kOk)) {
    return FrameError(*frame);
  }
  BookingResult result;
  if (!DecodeBookingResult(frame->payload.data(), frame->payload.size(),
                           &result)) {
    return Status::Internal("bad SEARCH_AND_BOOK response payload");
  }
  return result;
}

Result<std::string> ServeClient::Stats(const std::string& section,
                                       int timeout_ms) {
  std::vector<std::uint8_t> payload(section.begin(), section.end());
  Result<Frame> frame = Call(Verb::kStats, payload, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->code != static_cast<std::uint8_t>(RespStatus::kOk)) {
    return FrameError(*frame);
  }
  return std::string(frame->payload.begin(), frame->payload.end());
}

Result<RefreshResult> ServeClient::Refresh(int timeout_ms) {
  Result<Frame> frame = Call(Verb::kRefresh, {}, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->code != static_cast<std::uint8_t>(RespStatus::kOk)) {
    return FrameError(*frame);
  }
  RefreshResult result;
  if (!DecodeRefreshResult(frame->payload.data(), frame->payload.size(),
                           &result)) {
    return Status::Internal("bad REFRESH response payload");
  }
  return result;
}

}  // namespace serve
}  // namespace xar
