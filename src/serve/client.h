#ifndef XAR_SERVE_CLIENT_H_
#define XAR_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/frame.h"

namespace xar {
namespace serve {

/// Blocking client for the serving layer's frame protocol — the driver the
/// test suites and the soak load generator speak through. One instance is
/// one connection; it is NOT thread-safe (the soak harness gives each
/// client thread its own instance).
///
/// Typed calls (Search/Book/...) are synchronous round trips: send one
/// frame, read responses until the matching tag arrives. Raw frame and
/// byte-level access (SendBytes/SendFrame/ReadFrame) is exposed for the
/// protocol/fuzz suites, which need to write garbage and observe exactly
/// what comes back.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  Status Connect(std::uint16_t port, const std::string& host = "127.0.0.1");
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Raw access (protocol tests, fuzzing, pipelining) -------------------

  /// Writes raw bytes to the socket (may be a frame fragment or garbage).
  Status SendBytes(const void* data, std::size_t n);

  /// Frames and sends one request. Does not wait for the response.
  Status SendFrame(std::uint64_t tag, Verb verb,
                   const std::vector<std::uint8_t>& payload);

  /// Blocks until one complete response frame arrives (or the timeout/EOF).
  /// Returns ResourceExhausted on timeout and NotFound on a clean EOF.
  Result<Frame> ReadFrame(int timeout_ms = 5000);

  // --- Typed round trips ---------------------------------------------------
  // Application-level failures surface as FailedPrecondition carrying the
  // server's message; a BUSY shed surfaces as ResourceExhausted("BUSY").

  /// One full call: send `verb`, wait for the frame echoing its tag
  /// (out-of-order responses to other tags are parked and delivered to
  /// their own callers later).
  Result<Frame> Call(Verb verb, const std::vector<std::uint8_t>& payload,
                     int timeout_ms = 5000);

  Result<SearchResult> Search(const SearchPayload& request,
                              int timeout_ms = 5000);
  Result<BookingResult> Book(std::uint32_t rider_id, std::uint32_t ride_id,
                             int timeout_ms = 5000);
  Result<BookingResult> SearchAndBook(const SearchPayload& request,
                                      int timeout_ms = 5000);
  Result<std::string> Stats(const std::string& section = "",
                            int timeout_ms = 5000);
  Result<RefreshResult> Refresh(int timeout_ms = 30000);

 private:
  Result<Frame> WaitForTag(std::uint64_t tag, int timeout_ms);
  /// Converts a non-OK response frame into the matching Status.
  static Status FrameError(const Frame& frame);

  int fd_ = -1;
  std::uint64_t next_tag_ = 1;
  FrameDecoder decoder_;
  std::vector<Frame> parked_;  ///< responses read while waiting on another tag
};

}  // namespace serve
}  // namespace xar

#endif  // XAR_SERVE_CLIENT_H_
