#include "serve/frame.h"

#include <cstring>

namespace xar {
namespace serve {

const char* RespStatusName(RespStatus status) {
  switch (status) {
    case RespStatus::kOk: return "OK";
    case RespStatus::kBusy: return "BUSY";
    case RespStatus::kMalformed: return "MALFORMED";
    case RespStatus::kFailed: return "FAILED";
    case RespStatus::kUnknownVerb: return "UNKNOWN_VERB";
  }
  return "INVALID";
}

// --- ByteWriter / ByteReader ----------------------------------------------

void ByteWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutF64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  out_->insert(out_->end(), p, p + n);
}

bool ByteReader::GetU8(std::uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool ByteReader::GetU32(std::uint32_t* v) {
  if (remaining() < 4) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::GetU64(std::uint64_t* v) {
  if (remaining() < 8) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::GetF64(double* v) {
  std::uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

// --- Framing ---------------------------------------------------------------

void AppendFrame(std::uint64_t tag, std::uint8_t code,
                 const std::uint8_t* payload, std::size_t payload_len,
                 std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU32(static_cast<std::uint32_t>(kMinBodyBytes + payload_len));
  w.PutU64(tag);
  w.PutU8(code);
  if (payload_len > 0) w.PutBytes(payload, payload_len);
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t n) {
  if (!error_.empty()) return;  // desynced: drop everything after the error
  // Compact the consumed prefix before it grows unboundedly.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Next FrameDecoder::Pop(Frame* out) {
  if (!error_.empty()) return Next::kError;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Next::kNeedMore;
  ByteReader header(buf_.data() + pos_, kFrameHeaderBytes);
  std::uint32_t body_len = 0;
  header.GetU32(&body_len);
  if (body_len < kMinBodyBytes) {
    error_ = "undersized frame body (" + std::to_string(body_len) + " bytes)";
    return Next::kError;
  }
  if (body_len > max_body_bytes_) {
    error_ = "oversized frame body (" + std::to_string(body_len) +
             " > max " + std::to_string(max_body_bytes_) + ")";
    return Next::kError;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + body_len) return Next::kNeedMore;
  ByteReader body(buf_.data() + pos_ + kFrameHeaderBytes, body_len);
  body.GetU64(&out->tag);
  body.GetU8(&out->code);
  out->payload.assign(body.cursor(), body.cursor() + body.remaining());
  pos_ += kFrameHeaderBytes + body_len;
  return Next::kFrame;
}

// --- Payload codecs --------------------------------------------------------

void EncodeSearch(const SearchPayload& p, std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU32(p.rider_id);
  w.PutF64(p.source_lat);
  w.PutF64(p.source_lng);
  w.PutF64(p.dest_lat);
  w.PutF64(p.dest_lng);
  w.PutF64(p.earliest_departure_s);
  w.PutF64(p.latest_departure_s);
  w.PutF64(p.walk_limit_m);
  w.PutU32(p.top_k);
}

bool DecodeSearch(const std::uint8_t* data, std::size_t n, SearchPayload* p) {
  ByteReader r(data, n);
  return r.GetU32(&p->rider_id) && r.GetF64(&p->source_lat) &&
         r.GetF64(&p->source_lng) && r.GetF64(&p->dest_lat) &&
         r.GetF64(&p->dest_lng) && r.GetF64(&p->earliest_departure_s) &&
         r.GetF64(&p->latest_departure_s) && r.GetF64(&p->walk_limit_m) &&
         r.GetU32(&p->top_k) && r.AtEnd();
}

void EncodeBook(const BookPayload& p, std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU32(p.rider_id);
  w.PutU32(p.ride_id);
}

bool DecodeBook(const std::uint8_t* data, std::size_t n, BookPayload* p) {
  ByteReader r(data, n);
  return r.GetU32(&p->rider_id) && r.GetU32(&p->ride_id) && r.AtEnd();
}

void EncodeSearchResult(const SearchResult& res,
                        std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU32(static_cast<std::uint32_t>(res.matches.size()));
  for (const MatchRow& m : res.matches) {
    w.PutU32(m.ride_id);
    w.PutF64(m.walk_m);
    w.PutF64(m.eta_s);
    w.PutF64(m.detour_m);
  }
}

bool DecodeSearchResult(const std::uint8_t* data, std::size_t n,
                        SearchResult* res) {
  ByteReader r(data, n);
  std::uint32_t count = 0;
  if (!r.GetU32(&count)) return false;
  // 28 bytes per row; reject counts the payload cannot hold before
  // reserving anything.
  if (r.remaining() != static_cast<std::size_t>(count) * 28) return false;
  res->matches.resize(count);
  for (MatchRow& m : res->matches) {
    if (!r.GetU32(&m.ride_id) || !r.GetF64(&m.walk_m) || !r.GetF64(&m.eta_s) ||
        !r.GetF64(&m.detour_m)) {
      return false;
    }
  }
  return r.AtEnd();
}

void EncodeBookingResult(const BookingResult& res,
                         std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU32(res.ride_id);
  w.PutF64(res.pickup_eta_s);
  w.PutF64(res.dropoff_eta_s);
  w.PutF64(res.detour_m);
  w.PutF64(res.walk_m);
}

bool DecodeBookingResult(const std::uint8_t* data, std::size_t n,
                         BookingResult* res) {
  ByteReader r(data, n);
  return r.GetU32(&res->ride_id) && r.GetF64(&res->pickup_eta_s) &&
         r.GetF64(&res->dropoff_eta_s) && r.GetF64(&res->detour_m) &&
         r.GetF64(&res->walk_m) && r.AtEnd();
}

void EncodeRefreshResult(const RefreshResult& res,
                         std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  w.PutU64(res.epoch);
  w.PutF64(res.rebuild_ms);
}

bool DecodeRefreshResult(const std::uint8_t* data, std::size_t n,
                         RefreshResult* res) {
  ByteReader r(data, n);
  return r.GetU64(&res->epoch) && r.GetF64(&res->rebuild_ms) && r.AtEnd();
}

}  // namespace serve
}  // namespace xar
