#ifndef XAR_SERVE_FRAME_H_
#define XAR_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xar {
namespace serve {

/// Wire protocol of the serving layer (DESIGN.md "Serving layer"): a stream
/// of length-prefixed binary frames, identical framing in both directions.
///
///   frame    := u32 body_len (LE) | body
///   request  := u64 tag | u8 verb   | payload
///   response := u64 tag | u8 status | payload
///
/// `body_len` counts the body only (tag + code + payload), so the minimum
/// legal value is 9. The tag is an opaque client-chosen correlation id
/// echoed verbatim in the response — responses to pipelined requests on one
/// connection may arrive out of order (they are handled by different
/// workers), and the tag is how the client re-associates them. All integers
/// are little-endian; doubles are IEEE-754 bit patterns in little-endian
/// byte order.
///
/// Framing errors (body_len < 9 or > the server's max_frame_bytes) are
/// unrecoverable — the byte stream has desynced — so the server answers a
/// single MALFORMED response (tag 0) and closes the connection. Payload
/// errors inside a well-formed frame are recoverable: the server answers
/// MALFORMED with the frame's tag and keeps the connection open.

/// Request verbs.
enum class Verb : std::uint8_t {
  kSearch = 1,         ///< SearchPayload -> SearchResult
  kBook = 2,           ///< BookPayload -> BookingResult (look-then-book)
  kSearchAndBook = 3,  ///< SearchPayload -> BookingResult (atomic)
  kStats = 4,          ///< optional section name (text) -> text
  kRefresh = 5,        ///< empty -> RefreshResult
};

/// Response status codes (first byte of every response body).
enum class RespStatus : std::uint8_t {
  kOk = 0,
  kBusy = 1,         ///< load shed: worker queue full, retry later
  kMalformed = 2,    ///< framing or payload decode error
  kFailed = 3,       ///< application error; payload = status message text
  kUnknownVerb = 4,  ///< verb byte not recognized
};

const char* RespStatusName(RespStatus status);

constexpr std::size_t kFrameHeaderBytes = 4;  ///< the u32 length prefix
constexpr std::size_t kMinBodyBytes = 9;      ///< u64 tag + u8 code
constexpr std::size_t kDefaultMaxBodyBytes = 1 << 20;

/// One decoded frame (request or response; `code` is a Verb or RespStatus
/// depending on direction).
struct Frame {
  std::uint64_t tag = 0;
  std::uint8_t code = 0;
  std::vector<std::uint8_t> payload;
};

// --- Bounds-checked little-endian readers/writers -------------------------

/// Appends little-endian primitives to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(v); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutF64(double v);
  void PutBytes(const void* data, std::size_t n);

 private:
  std::vector<std::uint8_t>* out_;
};

/// Reads little-endian primitives from a byte span; every getter returns
/// false (and reads nothing) once the span is exhausted.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}

  bool GetU8(std::uint8_t* v);
  bool GetU32(std::uint32_t* v);
  bool GetU64(std::uint64_t* v);
  bool GetF64(double* v);
  std::size_t remaining() const { return size_ - pos_; }
  const std::uint8_t* cursor() const { return data_ + pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Appends one complete frame (header + body) to `out`.
void AppendFrame(std::uint64_t tag, std::uint8_t code,
                 const std::uint8_t* payload, std::size_t payload_len,
                 std::vector<std::uint8_t>* out);

inline void AppendFrame(std::uint64_t tag, std::uint8_t code,
                        const std::vector<std::uint8_t>& payload,
                        std::vector<std::uint8_t>* out) {
  AppendFrame(tag, code, payload.data(), payload.size(), out);
}

/// Incremental frame parser: feed raw socket bytes in arbitrary chunks
/// (partial reads, coalesced frames), pop complete frames. A framing error
/// (undersized or oversized length prefix) is sticky: the stream has
/// desynced and the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  void Feed(const std::uint8_t* data, std::size_t n);

  enum class Next {
    kFrame,     ///< *out holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< framing error; see error(); sticky
  };
  Next Pop(Frame* out);

  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_body_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- Payload codecs --------------------------------------------------------
// Every Decode* requires the payload to be exactly consumed (trailing bytes
// are a decode error) so a malformed client can't smuggle garbage.

/// SEARCH / SEARCH_AND_BOOK request payload.
struct SearchPayload {
  std::uint32_t rider_id = 0;      ///< request id (pending-search key)
  double source_lat = 0.0, source_lng = 0.0;
  double dest_lat = 0.0, dest_lng = 0.0;
  double earliest_departure_s = 0.0;
  double latest_departure_s = 0.0;
  double walk_limit_m = -1.0;      ///< -1 = system default
  std::uint32_t top_k = 0;         ///< 0 = all matches
};

void EncodeSearch(const SearchPayload& p, std::vector<std::uint8_t>* out);
bool DecodeSearch(const std::uint8_t* data, std::size_t n, SearchPayload* p);

/// BOOK request payload: books `ride_id` from the connection's most recent
/// SEARCH for `rider_id` (the look-then-book flow).
struct BookPayload {
  std::uint32_t rider_id = 0;
  std::uint32_t ride_id = 0;
};

void EncodeBook(const BookPayload& p, std::vector<std::uint8_t>* out);
bool DecodeBook(const std::uint8_t* data, std::size_t n, BookPayload* p);

/// One row of a SEARCH response.
struct MatchRow {
  std::uint32_t ride_id = 0;
  double walk_m = 0.0;
  double eta_s = 0.0;
  double detour_m = 0.0;
};

/// SEARCH response payload.
struct SearchResult {
  std::vector<MatchRow> matches;
};

void EncodeSearchResult(const SearchResult& r, std::vector<std::uint8_t>* out);
bool DecodeSearchResult(const std::uint8_t* data, std::size_t n,
                        SearchResult* r);

/// BOOK / SEARCH_AND_BOOK success payload.
struct BookingResult {
  std::uint32_t ride_id = 0;
  double pickup_eta_s = 0.0;
  double dropoff_eta_s = 0.0;
  double detour_m = 0.0;
  double walk_m = 0.0;
};

void EncodeBookingResult(const BookingResult& r,
                         std::vector<std::uint8_t>* out);
bool DecodeBookingResult(const std::uint8_t* data, std::size_t n,
                         BookingResult* r);

/// REFRESH success payload.
struct RefreshResult {
  std::uint64_t epoch = 0;
  double rebuild_ms = 0.0;
};

void EncodeRefreshResult(const RefreshResult& r,
                         std::vector<std::uint8_t>* out);
bool DecodeRefreshResult(const std::uint8_t* data, std::size_t n,
                         RefreshResult* r);

}  // namespace serve
}  // namespace xar

#endif  // XAR_SERVE_FRAME_H_
