#ifndef XAR_SERVE_LATENCY_HISTOGRAM_H_
#define XAR_SERVE_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xar {
namespace serve {

/// Lock-free log-linear latency histogram (HdrHistogram-style): microsecond
/// values land in one of 16 sub-buckets per power of two, giving ~6%
/// relative resolution across 1 µs .. ~9.5 h with a fixed 544-slot atomic
/// array. Record() is a single relaxed fetch_add, safe from any number of
/// worker threads; Snapshot() is approximate under concurrent writes (each
/// counter is read once), which is fine for the trend series the soak
/// harness records.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kMaxExp = 36;  ///< values cap at 2^36 us (~19 h)
  static constexpr std::size_t kBuckets =
      kSubBuckets + static_cast<std::size_t>(kMaxExp - 4) * kSubBuckets;

  void Record(double micros) {
    std::uint64_t us =
        micros <= 0.0 ? 0 : static_cast<std::uint64_t>(micros + 0.5);
    counts_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_us_.compare_exchange_weak(prev, us,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Point-in-time copy from which percentiles can be read repeatedly.
  struct Snapshot {
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;

    /// Percentile estimate in microseconds (lower bound of the covering
    /// bucket); q in [0, 1].
    double PercentileUs(double q) const {
      if (count == 0) return 0.0;
      std::uint64_t target = static_cast<std::uint64_t>(
          q * static_cast<double>(count));
      target = std::min(target, count - 1);
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen > target) return BucketLowUs(b);
      }
      return static_cast<double>(max_us);
    }

    double MeanUs() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_us) /
                              static_cast<double>(count);
    }
  };

  Snapshot Take() const {
    Snapshot s;
    s.counts.resize(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_us = sum_us_.load(std::memory_order_relaxed);
    s.max_us = max_us_.load(std::memory_order_relaxed);
    return s;
  }

  /// The difference `now - since`, for time-bucketed series: counters are
  /// cumulative, so per-bucket distributions are snapshot deltas.
  static Snapshot Delta(const Snapshot& now, const Snapshot& since) {
    Snapshot d;
    d.counts.resize(now.counts.size());
    for (std::size_t b = 0; b < now.counts.size(); ++b) {
      d.counts[b] = now.counts[b] - since.counts[b];
    }
    d.count = now.count - since.count;
    d.sum_us = now.sum_us - since.sum_us;
    d.max_us = now.max_us;  // max does not difference; keep the running max
    return d;
  }

  static std::size_t BucketOf(std::uint64_t us) {
    if (us < kSubBuckets) return static_cast<std::size_t>(us);
    int exp = 63 - __builtin_clzll(us);
    if (exp >= kMaxExp) {
      exp = kMaxExp - 1;
      us = (std::uint64_t{1} << kMaxExp) - 1;
    }
    int sub = static_cast<int>((us >> (exp - 4)) & (kSubBuckets - 1));
    return static_cast<std::size_t>(kSubBuckets * (exp - 3) + sub);
  }

  static double BucketLowUs(std::size_t bucket) {
    if (bucket < kSubBuckets) return static_cast<double>(bucket);
    int exp = static_cast<int>(bucket) / kSubBuckets + 3;
    int sub = static_cast<int>(bucket) % kSubBuckets;
    return static_cast<double>((std::uint64_t{1} << exp) +
                               (static_cast<std::uint64_t>(sub)
                                << (exp - 4)));
  }

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace serve
}  // namespace xar

#endif  // XAR_SERVE_LATENCY_HISTOGRAM_H_
