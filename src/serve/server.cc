#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/clock.h"
#include "discretize/region_snapshot.h"

namespace xar {
namespace serve {
namespace {

std::vector<std::uint8_t> TextPayload(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kSearch: return "search";
    case Verb::kBook: return "book";
    case Verb::kSearchAndBook: return "search_and_book";
    case Verb::kStats: return "stats";
    case Verb::kRefresh: return "refresh";
  }
  return "unknown";
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// A fuzzer (or hostile client) can deliver any IEEE-754 bit pattern in a
/// well-formed frame; NaN/inf coordinates must die at the protocol boundary,
/// not inside the spatial index.
bool AllFinite(const SearchPayload& p) {
  return std::isfinite(p.source_lat) && std::isfinite(p.source_lng) &&
         std::isfinite(p.dest_lat) && std::isfinite(p.dest_lng) &&
         std::isfinite(p.earliest_departure_s) &&
         std::isfinite(p.latest_departure_s) && std::isfinite(p.walk_limit_m);
}

}  // namespace

/// Per-connection state. The event-loop thread owns the read side (the
/// decoder); workers share the write side (write_mutex) and the
/// look-then-book pending map (pending_mutex). The fd is closed by the
/// destructor, which only runs once the event loop has dropped its map
/// entry AND every in-flight worker task has released its shared_ptr — so
/// no thread ever writes to a recycled fd.
struct XarServeServer::Connection {
  Connection(int fd_in, std::size_t max_frame_bytes)
      : fd(fd_in), decoder(max_frame_bytes) {}
  ~Connection() { ::close(fd); }

  const int fd;
  FrameDecoder decoder;  ///< event-loop thread only
  std::atomic<bool> closed{false};

  std::mutex write_mutex;

  struct PendingSearch {
    RideRequest request;
    std::vector<RideMatch> matches;
  };
  std::mutex pending_mutex;
  std::unordered_map<std::uint32_t, PendingSearch> pending;
};

struct XarServeServer::Task {
  std::shared_ptr<Connection> conn;
  Frame frame;
  std::chrono::steady_clock::time_point enqueued;
};

/// Mutex+condvar MPSC queue with a hard capacity: TryPush never blocks and
/// fails when full (the caller sheds); Pop blocks until a task arrives or
/// the queue stops. Stop drops queued-but-unstarted tasks — the in-flight
/// task a worker already popped always completes (the shutdown contract).
class XarServeServer::BoundedTaskQueue {
 public:
  BoundedTaskQueue(std::size_t capacity,
                   std::atomic<std::uint64_t>* accepted,
                   std::atomic<std::uint64_t>* highwater)
      : capacity_(capacity), accepted_(accepted), highwater_(highwater) {}

  bool TryPush(Task task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_ || tasks_.size() >= capacity_) return false;
      tasks_.push_back(std::move(task));
      // The accepted counter bumps under the queue mutex so it is ordered
      // before the Pop that hands the task to a worker: anyone who
      // observed a task's response has also observed it counted (the
      // exact-counter contract serve_overload_test pins).
      accepted_->fetch_add(1, std::memory_order_relaxed);
      std::uint64_t depth = tasks_.size();
      std::uint64_t prev = highwater_->load(std::memory_order_relaxed);
      while (depth > prev && !highwater_->compare_exchange_weak(
                                 prev, depth, std::memory_order_relaxed)) {
      }
    }
    cv_.notify_one();
    return true;
  }

  bool Pop(Task* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return stopped_ || !tasks_.empty(); });
    if (stopped_) return false;
    *out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
      tasks_.clear();
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  std::size_t capacity_;
  std::atomic<std::uint64_t>* accepted_;
  std::atomic<std::uint64_t>* highwater_;
  bool stopped_ = false;
};

XarServeServer::XarServeServer(ConcurrentXarSystem& system,
                               ServeOptions options)
    : system_(system),
      options_(std::move(options)),
      num_workers_(options_.num_workers > 0 ? options_.num_workers
                                            : system.num_shards()) {
  stats_registry_.Register("serve", [this] { return ServeSection(); });
  stats_registry_.Register("system", [this] {
    StatsSection section;
    section.name = "system";
    section.AddRow({StatsMetric::Counter("rides", system_.NumRides()),
                    StatsMetric::Counter("active", system_.NumActiveRides()),
                    StatsMetric::Gauge("now", system_.Now(), 0),
                    StatsMetric::Counter("epoch", system_.epoch())});
    return section;
  });
  stats_registry_.Register(
      "match", [this] { return MatchStatsSection(system_.match_stats()); });
  stats_registry_.Register(
      "retry", [this] { return RetryStatsSection(system_.retry_stats()); });
  stats_registry_.Register("refresh", [this] {
    return RefreshStatsSection(system_.refresh_stats());
  });
  stats_registry_.Register("pooling", [this] {
    return PoolingStatsSection(system_.pooling_stats());
  });
}

XarServeServer::~XarServeServer() { Stop(); }

Status XarServeServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  auto fail = [this](Status status) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return status;
  };

  // SO_REUSEADDR: a previous instance's TIME_WAIT must not block a
  // back-to-back restart on the same port (the shutdown contract
  // command_server_test pins).
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(Errno("bind"));
  }
  if (::listen(listen_fd_, 128) < 0) return fail(Errno("listen"));
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail(Errno("epoll_create1"));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail(Errno("eventfd"));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail(Errno("epoll_ctl(listen)"));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return fail(Errno("epoll_ctl(wake)"));
  }

  stopping_.store(false, std::memory_order_release);
  queues_.clear();
  for (std::size_t i = 0; i < num_workers_; ++i) {
    queues_.push_back(std::make_unique<BoundedTaskQueue>(
        options_.queue_capacity, &accepted_, &queue_highwater_));
  }
  workers_.clear();
  for (std::size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void XarServeServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;  // idempotent

  stopping_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  // Failure only means the loop wakes at its next poll timeout instead.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (event_thread_.joinable()) event_thread_.join();

  // Join in-flight handlers: each worker finishes the task it holds (its
  // response goes out if the client is still reading); tasks still queued
  // are dropped with the queue.
  for (std::unique_ptr<BoundedTaskQueue>& queue : queues_) queue->Stop();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void XarServeServer::EventLoop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNewConnections();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      HandleReadable(it->second);
    }
  }
  // Teardown: drop every connection from the map. Destructors (and fd
  // closes) run once in-flight worker tasks release their shared_ptrs.
  for (auto& [fd, conn] : connections_) {
    conn->closed.store(true, std::memory_order_release);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  connections_.clear();
}

void XarServeServer::AcceptNewConnections() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: retry on the next epoll event
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd, options_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) continue;
    connections_.emplace(fd, std::move(conn));
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
  }
}

void XarServeServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second->closed.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

void XarServeServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[4096];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed: a truncated in-flight frame dies silently
      CloseConnection(conn->fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  Frame frame;
  for (;;) {
    FrameDecoder::Next next = conn->decoder.Pop(&frame);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kError) {
      // Framing is unrecoverable: answer one typed error, then close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(*conn, 0, RespStatus::kMalformed,
                    TextPayload(conn->decoder.error()));
      CloseConnection(conn->fd);
      return;
    }
    DispatchFrame(conn, std::move(frame));
    if (conn->closed.load(std::memory_order_acquire)) {
      CloseConnection(conn->fd);
      return;
    }
  }
}

void XarServeServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                                   Frame frame) {
  // Worker-per-shard dispatch: BOOK writes go to the worker aligned with
  // the target ride's shard (ride % workers == shard when workers ==
  // shards), so one hot shard's exclusive-lock contention queues on one
  // worker. Reads and compound ops spread by request tag.
  std::size_t worker = static_cast<std::size_t>(frame.tag) % num_workers_;
  if (frame.code == static_cast<std::uint8_t>(Verb::kBook) &&
      frame.payload.size() >= 8) {
    ByteReader peek(frame.payload.data(), frame.payload.size());
    std::uint32_t rider_id, ride_id;
    peek.GetU32(&rider_id);
    peek.GetU32(&ride_id);
    worker = ride_id % num_workers_;
  }
  const std::uint64_t tag = frame.tag;
  Task task{conn, std::move(frame), std::chrono::steady_clock::now()};
  if (!queues_[worker]->TryPush(std::move(task))) {
    // Load shedding: typed BUSY now beats an unbounded queue later.
    shed_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(*conn, tag, RespStatus::kBusy, {});
  }
}

void XarServeServer::WorkerLoop(std::size_t worker_index) {
  Task task;
  while (queues_[worker_index]->Pop(&task)) {
    HandleTask(task);
    task = Task{};  // release the connection shared_ptr between tasks
  }
}

void XarServeServer::HandleTask(Task& task) {
  const Verb verb = static_cast<Verb>(task.frame.code);
  if (options_.worker_hook_for_test) options_.worker_hook_for_test(verb);

  std::vector<std::uint8_t> payload;
  std::string message;
  RespStatus status;
  bool known_verb = true;
  switch (verb) {
    case Verb::kSearch:
      status = HandleSearch(*task.conn, task.frame, &payload, &message);
      break;
    case Verb::kBook:
      status = HandleBook(*task.conn, task.frame, &payload, &message);
      break;
    case Verb::kSearchAndBook:
      status = HandleSearchAndBook(task.frame, &payload, &message);
      break;
    case Verb::kStats:
      status = HandleStats(task.frame, &payload, &message);
      break;
    case Verb::kRefresh:
      status = HandleRefresh(&payload);
      break;
    default:
      status = RespStatus::kUnknownVerb;
      known_verb = false;
      break;
  }
  if (status == RespStatus::kFailed || status == RespStatus::kMalformed) {
    payload = TextPayload(message);
  }
  if (status == RespStatus::kMalformed) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  // Counted before the response hits the socket so a client that has read
  // the reply always observes the task as completed (the exact-counter
  // contract serve_overload_test pins).
  completed_.fetch_add(1, std::memory_order_relaxed);
  WriteResponse(*task.conn, task.frame.tag, status, payload);
  if (known_verb) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - task.enqueued)
            .count();
    histograms_[VerbIndex(verb)].Record(micros);
  }
}

RespStatus XarServeServer::HandleSearch(Connection& conn,
                                        const Frame& request,
                                        std::vector<std::uint8_t>* payload,
                                        std::string* message) {
  SearchPayload p;
  if (!DecodeSearch(request.payload.data(), request.payload.size(), &p) ||
      !AllFinite(p)) {
    *message = "bad SEARCH payload";
    return RespStatus::kMalformed;
  }
  RideRequest ride_request;
  ride_request.id = RequestId(p.rider_id);
  ride_request.source = {p.source_lat, p.source_lng};
  ride_request.destination = {p.dest_lat, p.dest_lng};
  ride_request.earliest_departure_s = p.earliest_departure_s;
  ride_request.latest_departure_s = p.latest_departure_s;
  ride_request.walk_limit_m = p.walk_limit_m;

  std::vector<RideMatch> matches = system_.SearchTopK(ride_request, p.top_k);
  SearchResult result;
  result.matches.reserve(matches.size());
  for (const RideMatch& m : matches) {
    result.matches.push_back(
        {m.ride.value(), m.TotalWalkM(), m.eta_source_s, m.detour_estimate_m});
  }
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    conn.pending[p.rider_id] =
        Connection::PendingSearch{ride_request, std::move(matches)};
  }
  EncodeSearchResult(result, payload);
  return RespStatus::kOk;
}

RespStatus XarServeServer::HandleBook(Connection& conn, const Frame& request,
                                      std::vector<std::uint8_t>* payload,
                                      std::string* message) {
  BookPayload p;
  if (!DecodeBook(request.payload.data(), request.payload.size(), &p)) {
    *message = "bad BOOK payload";
    return RespStatus::kMalformed;
  }
  Connection::PendingSearch pending;
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    auto it = conn.pending.find(p.rider_id);
    if (it == conn.pending.end()) {
      *message =
          "no prior SEARCH for request " + std::to_string(p.rider_id);
      return RespStatus::kFailed;
    }
    pending = it->second;
  }
  const RideMatch* match = nullptr;
  for (const RideMatch& m : pending.matches) {
    if (m.ride == RideId(p.ride_id)) {
      match = &m;
      break;
    }
  }
  if (match == nullptr) {
    *message = "ride " + std::to_string(p.ride_id) +
               " was not in the search results";
    return RespStatus::kFailed;
  }
  Result<BookingRecord> booked =
      system_.Book(RideId(p.ride_id), pending.request, *match);
  if (!booked.ok()) {
    *message = booked.status().ToString();
    return RespStatus::kFailed;
  }
  {
    // The booking consumed the pending search (same contract as the
    // line-oriented command server).
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    conn.pending.erase(p.rider_id);
  }
  EncodeBookingResult({p.ride_id, booked->pickup_eta_s, booked->dropoff_eta_s,
                       booked->actual_detour_m, booked->walk_m},
                      payload);
  return RespStatus::kOk;
}

RespStatus XarServeServer::HandleSearchAndBook(
    const Frame& request, std::vector<std::uint8_t>* payload,
    std::string* message) {
  SearchPayload p;
  if (!DecodeSearch(request.payload.data(), request.payload.size(), &p) ||
      !AllFinite(p)) {
    *message = "bad SEARCH_AND_BOOK payload";
    return RespStatus::kMalformed;
  }
  RideRequest ride_request;
  ride_request.id = RequestId(p.rider_id);
  ride_request.source = {p.source_lat, p.source_lng};
  ride_request.destination = {p.dest_lat, p.dest_lng};
  ride_request.earliest_departure_s = p.earliest_departure_s;
  ride_request.latest_departure_s = p.latest_departure_s;
  ride_request.walk_limit_m = p.walk_limit_m;

  Result<BookingRecord> booked = system_.SearchAndBook(ride_request);
  if (!booked.ok()) {
    *message = booked.status().ToString();
    return RespStatus::kFailed;
  }
  EncodeBookingResult({booked->ride.value(), booked->pickup_eta_s,
                       booked->dropoff_eta_s, booked->actual_detour_m,
                       booked->walk_m},
                      payload);
  return RespStatus::kOk;
}

RespStatus XarServeServer::HandleStats(const Frame& request,
                                       std::vector<std::uint8_t>* payload,
                                       std::string* message) {
  const std::string section_name(request.payload.begin(),
                                 request.payload.end());
  std::string out;
  auto render = [&out](const StatsSection& section) {
    for (const std::vector<StatsMetric>& row : section.rows) {
      out += section.name;
      for (const StatsMetric& m : row) out += " " + m.name + "=" + m.value;
      out += "\n";
    }
  };
  if (!section_name.empty()) {
    std::optional<StatsSection> section =
        stats_registry_.Snapshot(section_name);
    if (!section) {
      std::string names;
      for (const std::string& name : stats_registry_.SectionNames()) {
        names += (names.empty() ? "" : ", ") + name;
      }
      *message = "unknown stats section \"" + section_name +
                 "\" (sections: " + names + ")";
      return RespStatus::kFailed;
    }
    render(*section);
  } else {
    for (const StatsSection& section : stats_registry_.SnapshotAll()) {
      render(section);
    }
  }
  *payload = TextPayload(out);
  return RespStatus::kOk;
}

RespStatus XarServeServer::HandleRefresh(std::vector<std::uint8_t>* payload) {
  RefreshStats stats = system_.RefreshDiscretization();
  EncodeRefreshResult({stats.epoch, stats.last_rebuild_ms}, payload);
  return RespStatus::kOk;
}

void XarServeServer::WriteResponse(Connection& conn, std::uint64_t tag,
                                   RespStatus status,
                                   const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + kMinBodyBytes + payload.size());
  AppendFrame(tag, static_cast<std::uint8_t>(status), payload, &bytes);

  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (conn.closed.load(std::memory_order_acquire)) return;
  std::size_t sent = 0;
  Stopwatch waited;
  while (sent < bytes.size()) {
    ssize_t n = ::send(conn.fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: a slow client throttles this worker, not the
      // server. Give up on shutdown or after 5 s of no progress.
      if (stopping_.load(std::memory_order_acquire) ||
          waited.ElapsedSeconds() > 5.0) {
        conn.closed.store(true, std::memory_order_release);
        return;
      }
      pollfd pfd{conn.fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    conn.closed.store(true, std::memory_order_release);
    return;
  }
}

ServeCounters XarServeServer::counters() const {
  ServeCounters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.connections_opened = connections_opened_.load(std::memory_order_relaxed);
  c.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  c.queue_highwater = queue_highwater_.load(std::memory_order_relaxed);
  return c;
}

StatsSection XarServeServer::ServeSection() const {
  ServeCounters c = counters();
  StatsSection section;
  section.name = "serve";
  section.AddRow(
      {StatsMetric::Counter("accepted", c.accepted),
       StatsMetric::Counter("shed", c.shed),
       StatsMetric::Counter("completed", c.completed),
       StatsMetric::Counter("protocol_errors", c.protocol_errors),
       StatsMetric::Counter("conns_opened", c.connections_opened),
       StatsMetric::Counter("conns_closed", c.connections_closed),
       StatsMetric::Counter("queue_highwater", c.queue_highwater),
       StatsMetric::Counter("workers", num_workers_),
       StatsMetric::Counter("queue_capacity", options_.queue_capacity)});
  for (Verb verb : {Verb::kSearch, Verb::kBook, Verb::kSearchAndBook,
                    Verb::kStats, Verb::kRefresh}) {
    LatencyHistogram::Snapshot snap = histograms_[VerbIndex(verb)].Take();
    if (snap.count == 0) continue;
    section.AddRow({StatsMetric::Text("verb", VerbName(verb)),
                    StatsMetric::Counter("count", snap.count),
                    StatsMetric::Gauge("p50_us", snap.PercentileUs(0.50), 1),
                    StatsMetric::Gauge("p99_us", snap.PercentileUs(0.99), 1),
                    StatsMetric::Gauge("p999_us", snap.PercentileUs(0.999), 1),
                    StatsMetric::Gauge("max_us",
                                       static_cast<double>(snap.max_us), 1)});
  }
  return section;
}

}  // namespace serve
}  // namespace xar
