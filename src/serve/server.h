#ifndef XAR_SERVE_SERVER_H_
#define XAR_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats_registry.h"
#include "common/status.h"
#include "serve/frame.h"
#include "serve/latency_histogram.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace serve {

/// Knobs of the async serving layer.
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via port()).
  std::uint16_t port = 0;
  /// Worker threads; 0 = one per shard of the served system, so write
  /// traffic to one shard serializes on one worker's queue.
  std::size_t num_workers = 0;
  /// Bounded per-worker queue depth. When a worker's queue is full, further
  /// requests routed to it are shed with a typed BUSY response instead of
  /// queueing unboundedly (explicit backpressure).
  std::size_t queue_capacity = 256;
  /// Largest accepted frame body; oversized length prefixes are answered
  /// with MALFORMED and the connection is closed (the stream has desynced).
  std::size_t max_frame_bytes = kDefaultMaxBodyBytes;
  /// Test seam: invoked by the worker at the start of every task, before
  /// the verb handler runs. Lets tests stall a worker deterministically
  /// (overload/shutdown suites). Set before Start() only.
  std::function<void(Verb)> worker_hook_for_test;
};

/// Point-in-time serving counters (all cumulative since Start).
struct ServeCounters {
  std::uint64_t accepted = 0;   ///< requests enqueued to a worker
  std::uint64_t shed = 0;       ///< requests answered BUSY (queue full)
  std::uint64_t completed = 0;  ///< responses written by workers
  std::uint64_t protocol_errors = 0;  ///< malformed frames or payloads
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t queue_highwater = 0;  ///< max depth any worker queue reached
};

/// Long-lived async network front end over a ConcurrentXarSystem
/// (DESIGN.md "Serving layer").
///
///   - One epoll event-loop thread owns the listen socket and every
///     connection's read side: it accepts, reassembles length-prefixed
///     frames across partial reads, and dispatches complete requests.
///   - N worker threads (default: one per shard) each drain a bounded
///     queue. BOOK requests route by the target ride's shard
///     (ride_id % workers), so exclusive-lock contention on one shard
///     queues on one worker instead of head-of-line-blocking the rest;
///     everything else routes by request tag.
///   - Admission control: a full worker queue sheds the request with a
///     typed BUSY response written immediately from the event loop — the
///     server never queues unboundedly and stays responsive under
///     overload.
///   - Workers write responses directly to the socket (per-connection write
///     mutex); a slow client throttles only the workers serving it.
///
/// All counters and per-verb latency histograms flow into a StatsRegistry
/// ("serve" section, plus the served system's retry/refresh sections) that
/// the STATS verb renders over the wire.
///
/// Shutdown contract (pinned by command_server_test): Stop() is idempotent
/// and joins in-flight handlers — workers finish the task they hold, queued
/// but unstarted tasks are dropped — and the listen socket binds with
/// SO_REUSEADDR so back-to-back server instances can reuse a port
/// immediately.
class XarServeServer {
 public:
  explicit XarServeServer(ConcurrentXarSystem& system,
                          ServeOptions options = {});
  ~XarServeServer();

  XarServeServer(const XarServeServer&) = delete;
  XarServeServer& operator=(const XarServeServer&) = delete;

  /// Binds, listens and spawns the event loop + workers. Fails if already
  /// running or the port is unavailable. A stopped server can be started
  /// again (fresh counters are NOT zeroed; they are cumulative per object).
  Status Start();

  /// Stops accepting, wakes the event loop, joins the in-flight worker
  /// handlers and closes every connection. Idempotent: safe to call twice,
  /// before Start, or concurrently from several threads (one caller does
  /// the teardown, the rest return once it is underway).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after Start; with options.port == 0 this is the
  /// ephemeral port the kernel picked).
  std::uint16_t port() const { return port_; }

  std::size_t num_workers() const { return num_workers_; }

  ServeCounters counters() const;

  /// Latency histogram of one verb (enqueue -> response written).
  const LatencyHistogram& verb_histogram(Verb verb) const {
    return histograms_[VerbIndex(verb)];
  }

  /// The registry the STATS verb renders: "serve" + the served system's
  /// "retry"/"refresh" sections. Callers may register more sections while
  /// the server is quiescent.
  StatsRegistry& stats_registry() { return stats_registry_; }

  /// The "serve" stats section (counters + one histogram row per verb).
  StatsSection ServeSection() const;

 private:
  struct Connection;
  struct Task;
  class BoundedTaskQueue;

  void EventLoop();
  void WorkerLoop(std::size_t worker_index);
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleTask(Task& task);
  void AcceptNewConnections();
  void CloseConnection(int fd);

  // Verb handlers (run on workers). Each returns the response status and
  // fills `payload`.
  RespStatus HandleSearch(Connection& conn, const Frame& request,
                          std::vector<std::uint8_t>* payload,
                          std::string* message);
  RespStatus HandleBook(Connection& conn, const Frame& request,
                        std::vector<std::uint8_t>* payload,
                        std::string* message);
  RespStatus HandleSearchAndBook(const Frame& request,
                                 std::vector<std::uint8_t>* payload,
                                 std::string* message);
  RespStatus HandleStats(const Frame& request,
                         std::vector<std::uint8_t>* payload,
                         std::string* message);
  RespStatus HandleRefresh(std::vector<std::uint8_t>* payload);

  /// Serialized, complete write of one response frame to the connection
  /// (per-connection mutex; EAGAIN waits for writability). Failures mark
  /// the connection closed; the event loop reaps it.
  void WriteResponse(Connection& conn, std::uint64_t tag, RespStatus status,
                     const std::vector<std::uint8_t>& payload);

  static std::size_t VerbIndex(Verb verb) {
    std::size_t i = static_cast<std::size_t>(verb);
    return i >= 1 && i <= 5 ? i - 1 : 0;
  }

  ConcurrentXarSystem& system_;
  ServeOptions options_;
  std::size_t num_workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mutex_;  ///< serializes Start/Stop transitions

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: Stop() wakes the event loop
  std::uint16_t port_ = 0;

  std::thread event_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<BoundedTaskQueue>> queues_;

  /// Connections, keyed by fd. Owned (inserted/erased) by the event-loop
  /// thread only; workers hold shared_ptrs to the connections of their
  /// in-flight tasks, so a Connection outlives its map entry until the last
  /// response write finishes.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_opened_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> queue_highwater_{0};

  LatencyHistogram histograms_[5];  ///< per verb, indexed by VerbIndex

  StatsRegistry stats_registry_;
};

}  // namespace serve
}  // namespace xar

#endif  // XAR_SERVE_SERVER_H_
