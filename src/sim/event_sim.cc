#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "graph/generator.h"
#include "graph/oracle.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

/// Edge traversals may still be draining after the last request; ticks and
/// refreshes keep running this long past it so late rides see live traffic.
constexpr double kDrainWindowS = 3600.0;

class XarSimTarget final : public SimTarget {
 public:
  explicit XarSimTarget(XarSystem& xar) : xar_(&xar) {}

  std::vector<RideMatch> Search(const RideRequest& request) const override {
    return xar_->Search(request);
  }
  Result<BookingRecord> SearchAndBook(const RideRequest& request) override {
    return xar_->SearchAndBook(request);
  }
  Result<RideId> CreateRide(const RideOffer& offer) override {
    return xar_->CreateRide(offer);
  }
  Status CancelBooking(RideId ride, RequestId request) override {
    return xar_->CancelBooking(ride, request);
  }
  Status ReportNoShow(RideId ride, RequestId request) override {
    return xar_->ReportNoShow(ride, request);
  }
  void AdvanceTime(double now_s) override { xar_->AdvanceTime(now_s); }
  RefreshStats RefreshDiscretization(const GraphDelta& delta) override {
    return xar_->RefreshDiscretization(delta);
  }
  Result<Ride> GetRide(RideId id) const override {
    const Ride* ride = xar_->GetRide(id);
    if (ride == nullptr) return Status::NotFound("unknown ride");
    return *ride;
  }
  std::uint64_t epoch() const override { return xar_->epoch(); }

 private:
  XarSystem* xar_;
};

class ConcurrentSimTarget final : public SimTarget {
 public:
  explicit ConcurrentSimTarget(ConcurrentXarSystem& xar) : xar_(&xar) {}

  std::vector<RideMatch> Search(const RideRequest& request) const override {
    return xar_->Search(request);
  }
  Result<BookingRecord> SearchAndBook(const RideRequest& request) override {
    return xar_->SearchAndBook(request);
  }
  Result<RideId> CreateRide(const RideOffer& offer) override {
    return xar_->CreateRide(offer);
  }
  Status CancelBooking(RideId ride, RequestId request) override {
    return xar_->CancelBooking(ride, request);
  }
  Status ReportNoShow(RideId ride, RequestId request) override {
    return xar_->ReportNoShow(ride, request);
  }
  void AdvanceTime(double now_s) override { xar_->AdvanceTime(now_s); }
  RefreshStats RefreshDiscretization(const GraphDelta& delta) override {
    return xar_->RefreshDiscretization(delta);
  }
  Result<Ride> GetRide(RideId id) const override { return xar_->GetRide(id); }
  std::uint64_t epoch() const override { return xar_->epoch(); }

 private:
  ConcurrentXarSystem* xar_;
};

}  // namespace

std::unique_ptr<SimTarget> MakeSimTarget(XarSystem& xar) {
  return std::make_unique<XarSimTarget>(xar);
}

std::unique_ptr<SimTarget> MakeSimTarget(ConcurrentXarSystem& xar) {
  return std::make_unique<ConcurrentSimTarget>(xar);
}

EventSim::EventSim(const RoadGraph& world, XarOptions system_options,
                   ScenarioConfig config)
    : world_(&world),
      system_options_(std::move(system_options)),
      config_(std::move(config)),
      rng_(config_.seed) {}

EventSim::~EventSim() = default;

void EventSim::Push(double time_s, EventKind kind, std::size_t trip_index,
                    RideId ride, RequestId request) {
  Event event;
  event.time_s = time_s;
  event.seq = next_seq_++;
  event.kind = kind;
  event.trip_index = trip_index;
  event.ride = ride;
  event.request = request;
  queue_.push(event);
}

void EventSim::Mix(std::uint64_t value) {
  // boost::hash_combine-style mixing; order-sensitive by construction.
  fingerprint_ ^=
      value + 0x9e3779b97f4a7c15ULL + (fingerprint_ << 6) + (fingerprint_ >> 2);
}

void EventSim::MixTime(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  Mix(bits);
}

double EventSim::RushFactor(double time_s) const {
  double hour = std::fmod(time_s / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  // Two Gaussian peaks: morning (8:30, sigma 1.5h) and evening (17:30,
  // sigma 2h). At the peak the whole city slows by rush_amplitude.
  const double morning = std::exp(-0.5 * ((hour - 8.5) / 1.5) *
                                  ((hour - 8.5) / 1.5));
  const double evening = std::exp(-0.5 * ((hour - 17.5) / 2.0) *
                                  ((hour - 17.5) / 2.0));
  return 1.0 +
         config_.traffic.rush_amplitude * std::max(morning, evening);
}

std::uint64_t EventSim::StreetKey(NodeId from, NodeId to) {
  // One key per unordered endpoint pair: both directions of a street share
  // load, keeping the congestion factor symmetric per street.
  const std::uint64_t lo = std::min(from.value(), to.value());
  const std::uint64_t hi = std::max(from.value(), to.value());
  return (lo << 32) | hi;
}

double EventSim::CongestionFactor(NodeId from, NodeId to,
                                  double time_s) const {
  double load = 0.0;
  auto it = street_loads_.find(StreetKey(from, to));
  if (it != street_loads_.end()) load = it->second;
  const double factor =
      RushFactor(time_s) * (1.0 + config_.traffic.load_alpha * load);
  return std::clamp(factor, 1.0, config_.traffic.max_factor);
}

void EventSim::StartMotion(const Ride& ride) {
  if (ride.route.nodes.empty() || motion_.count(ride.id) != 0) return;
  MotionState state;
  state.at_node = ride.route.nodes.front();
  state.hint_index = 0;
  state.promised_arrival_s = ride.ArrivalTimeS();
  motion_.emplace(ride.id, state);
  Push(ride.departure_time_s, EventKind::kEdgeArrive, 0, ride.id,
       RequestId::Invalid());
}

void EventSim::OnBooked(const BookingRecord& record, double now_s,
                        EventSimResult* result) {
  if (result->refreshes == 0) ++result->bookings_before_first_refresh;
  // Always burn all three uniforms so the RNG stream stays aligned whatever
  // the probabilities — part of the bit-determinism contract.
  const double u_cancel = rng_.NextDouble();
  const double u_no_show = rng_.NextDouble();
  const double u_when = rng_.NextDouble();
  if (u_cancel < config_.events.cancel_probability &&
      record.pickup_eta_s > now_s) {
    // Cancel somewhere strictly before the pickup ETA.
    Push(now_s + u_when * (record.pickup_eta_s - now_s), EventKind::kCancel,
         0, record.ride, record.request);
  } else if (u_no_show < config_.events.no_show_probability) {
    // No-show is discovered when the vehicle reaches the pickup.
    Push(std::max(now_s, record.pickup_eta_s), EventKind::kNoShow, 0,
         record.ride, record.request);
  }
  Mix(record.ride.value());
  Mix(record.request.value());
  MixTime(record.pickup_eta_s);
  MixTime(record.dropoff_eta_s);
  MixTime(record.actual_detour_m);
}

void EventSim::HandleRequest(SimTarget& target, const Event& event,
                             const std::vector<TaxiTrip>& trips,
                             EventSimResult* result) {
  const TaxiTrip& trip = trips[event.trip_index];
  ++result->requests;
  if (config_.protocol.advance_time) target.AdvanceTime(trip.pickup_time_s);

  RideRequest request;
  request.id = trip.id;
  request.source = trip.pickup;
  request.destination = trip.dropoff;
  request.earliest_departure_s = trip.pickup_time_s;
  request.latest_departure_s = trip.pickup_time_s + config_.protocol.window_s;
  request.walk_limit_m = config_.protocol.walk_limit_m;

  const bool book_now = ++since_last_book_ >= config_.protocol.look_to_book;
  if (book_now) {
    Result<BookingRecord> booked = target.SearchAndBook(request);
    if (booked.ok()) {
      since_last_book_ = 0;
      ++result->matched;
      OnBooked(*booked, trip.pickup_time_s, result);
      result->bookings.push_back(*booked);
      return;
    }
    Mix(0);
  } else {
    // A look-only turn still exercises the search path (look-to-book).
    Mix(target.Search(request).size());
  }

  // Fixed-fleet mode: commuters never become drivers; the fleet registered
  // at Run() start is the whole supply.
  if (config_.fleet > 0) return;

  // No booking: the commuter drives and offers the ride for sharing.
  RideOffer offer;
  offer.source = trip.pickup;
  offer.destination = trip.dropoff;
  offer.departure_time_s = trip.pickup_time_s;
  Result<RideId> ride = target.CreateRide(offer);
  if (!ride.ok()) return;
  ++result->rides_created;
  Result<Ride> created = target.GetRide(*ride);
  if (created.ok()) StartMotion(created.value());
}

void EventSim::HandleEdgeArrive(SimTarget& target, const Event& event,
                                EventSimResult* result) {
  auto it = motion_.find(event.ride);
  if (it == motion_.end()) return;
  MotionState& state = it->second;
  Result<Ride> got = target.GetRide(event.ride);
  if (!got.ok() || got.value().route.nodes.empty()) {
    motion_.erase(it);
    return;
  }
  const Ride& ride = got.value();
  const std::vector<NodeId>& nodes = ride.route.nodes;
  // The latest promise; the delta against world arrival is the ETA error.
  state.promised_arrival_s = ride.ArrivalTimeS();

  // Re-anchor the cursor: bookings splice the route and cancellations
  // rebuild it, so the node index may have shifted since the last event.
  std::size_t at = nodes.size();
  if (state.hint_index < nodes.size() &&
      nodes[state.hint_index] == state.at_node) {
    at = state.hint_index;
  } else {
    // Pick the occurrence of the current node nearest the old index (routes
    // may revisit a node); fall back to clamping the old index.
    std::size_t best_distance = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] != state.at_node) continue;
      const std::size_t distance = i > state.hint_index
                                       ? i - state.hint_index
                                       : state.hint_index - i;
      if (distance < best_distance) {
        best_distance = distance;
        at = i;
      }
    }
    if (at == nodes.size()) {
      at = std::min<std::size_t>(state.hint_index, nodes.size() - 1);
      state.at_node = nodes[at];
    }
  }

  if (at + 1 >= nodes.size()) {
    // The vehicle reached its destination in the world. Compare with the
    // system's promise: this is the staleness signal the refresh cadence
    // is supposed to shrink.
    eta_error_sum_s_ += std::abs(event.time_s - state.promised_arrival_s);
    ++result->eta_samples;
    MixTime(event.time_s);
    motion_.erase(it);
    return;
  }

  const NodeId from = nodes[at];
  const NodeId to = nodes[at + 1];
  double base_time_s = 0.0;
  for (const RoadEdge& edge : world_->OutEdges(from)) {
    if (edge.to == to && edge.drivable) {
      base_time_s = edge.time_s;
      break;
    }
  }
  if (base_time_s <= 0.0) base_time_s = 1.0;  // defensive; routes are drivable
  const double dt = base_time_s * CongestionFactor(from, to, event.time_s);
  street_loads_[StreetKey(from, to)] += 1.0;
  ++result->edge_traversals;
  state.at_node = to;
  state.hint_index = static_cast<std::uint32_t>(at + 1);
  Push(event.time_s + dt, EventKind::kEdgeArrive, 0, event.ride,
       RequestId::Invalid());
}

void EventSim::HandleRefresh(SimTarget& target, const Event& event,
                             EventSimResult* result) {
  // Materialize the congested world as a weight-scaled graph (same nodes
  // and arcs — the GraphDelta contract) plus a fresh oracle over it, then
  // feed the pair through the live refresh path: region rebuild, atomic
  // epoch swap, ride re-homing, route re-profiling (reroute-on-refresh).
  const double now_s = event.time_s;
  auto graph = std::make_unique<RoadGraph>(
      ScaleEdgeWeights(*world_, [this, now_s](NodeId from, NodeId to) {
        return CongestionFactor(from, to, now_s);
      }));
  auto oracle = std::make_unique<GraphOracle>(
      *graph, /*cache_capacity=*/1 << 16, system_options_.routing_backend,
      system_options_.BackendOptions(), system_options_.oracle_cache);
  GraphDelta delta;
  delta.graph = graph.get();
  delta.oracle = oracle.get();
  RefreshStats stats = target.RefreshDiscretization(delta);
  refresh_graphs_.push_back(std::move(graph));
  refresh_oracles_.push_back(std::move(oracle));
  ++result->refreshes;
  bookings_at_last_refresh_ = result->matched;
  Mix(stats.epoch);
}

EventSimResult EventSim::Run(SimTarget& target,
                             const std::vector<TaxiTrip>& trips) {
  queue_ = {};
  next_seq_ = 0;
  rng_ = Rng(config_.seed);
  fingerprint_ = 0;
  street_loads_.clear();
  motion_.clear();
  since_last_book_ = 0;
  bookings_at_last_refresh_ = 0;
  eta_error_sum_s_ = 0.0;

  EventSimResult result;
  if (trips.empty()) {
    result.final_epoch = target.epoch();
    return result;
  }

  const double start_s = trips.front().pickup_time_s;
  const double horizon_s =
      trips.back().pickup_time_s + config_.protocol.window_s + kDrainWindowS;
  // Fixed-fleet mode: the first `fleet` trips are the drivers. Register
  // each as a moving offer up front; only the remaining trips become
  // requests. With fleet == 0 this degenerates to the classic stream.
  const std::size_t fleet = std::min<std::size_t>(config_.fleet, trips.size());
  for (std::size_t i = 0; i < fleet; ++i) {
    RideOffer offer;
    offer.source = trips[i].pickup;
    offer.destination = trips[i].dropoff;
    offer.departure_time_s = trips[i].pickup_time_s;
    Result<RideId> ride = target.CreateRide(offer);
    Mix(ride.ok() ? (*ride).value() + 1 : 0);
    if (!ride.ok()) continue;
    ++result.rides_created;
    Result<Ride> created = target.GetRide(*ride);
    if (created.ok()) StartMotion(created.value());
  }
  for (std::size_t i = fleet; i < trips.size(); ++i) {
    Push(trips[i].pickup_time_s, EventKind::kRequest, i, RideId::Invalid(),
         RequestId::Invalid());
  }
  if (config_.traffic.tick_period_s > 0.0) {
    for (double t = start_s + config_.traffic.tick_period_s; t <= horizon_s;
         t += config_.traffic.tick_period_s) {
      Push(t, EventKind::kTrafficTick, 0, RideId::Invalid(),
           RequestId::Invalid());
    }
  }
  // Refreshes fire only while requests are still arriving: epoch swaps are
  // interesting under booking traffic, and a CH rebuild during the quiet
  // drain window would be wasted work.
  if (config_.refresh_period_s > 0.0) {
    for (double t = start_s + config_.refresh_period_s;
         t <= trips.back().pickup_time_s; t += config_.refresh_period_s) {
      Push(t, EventKind::kRefresh, 0, RideId::Invalid(), RequestId::Invalid());
    }
  }

  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    Mix(static_cast<std::uint64_t>(event.kind) + 1);
    MixTime(event.time_s);
    switch (event.kind) {
      case EventKind::kRequest:
        HandleRequest(target, event, trips, &result);
        break;
      case EventKind::kEdgeArrive:
        HandleEdgeArrive(target, event, &result);
        break;
      case EventKind::kCancel: {
        ++result.cancels_attempted;
        const Status status = target.CancelBooking(event.ride, event.request);
        if (status.ok()) ++result.cancels_succeeded;
        Mix(status.ok() ? 1 : 0);
        break;
      }
      case EventKind::kNoShow: {
        ++result.no_shows_attempted;
        const Status status = target.ReportNoShow(event.ride, event.request);
        if (status.ok()) ++result.no_shows_succeeded;
        Mix(status.ok() ? 1 : 0);
        break;
      }
      case EventKind::kTrafficTick: {
        ++result.traffic_ticks;
        if (config_.protocol.advance_time) target.AdvanceTime(event.time_s);
        // Decay street loads; drop the tail so the map stays proportional
        // to *recently* busy streets, not every street ever driven.
        for (auto it = street_loads_.begin(); it != street_loads_.end();) {
          it->second *= config_.traffic.load_decay;
          if (it->second < 1e-3) {
            it = street_loads_.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case EventKind::kRefresh:
        HandleRefresh(target, event, &result);
        break;
    }
  }

  result.final_epoch = target.epoch();
  result.bookings_after_last_refresh =
      result.matched - bookings_at_last_refresh_;
  if (result.eta_samples > 0) {
    result.mean_eta_error_s =
        eta_error_sum_s_ / static_cast<double>(result.eta_samples);
  }
  if (!result.bookings.empty()) {
    double detour_sum = 0.0;
    double walk_sum = 0.0;
    for (const BookingRecord& booking : result.bookings) {
      detour_sum += booking.actual_detour_m;
      walk_sum += booking.walk_m;
    }
    result.mean_actual_detour_m =
        detour_sum / static_cast<double>(result.bookings.size());
    result.mean_walk_m = walk_sum / static_cast<double>(result.bookings.size());
  }
  Mix(result.requests);
  Mix(result.matched);
  Mix(result.rides_created);
  Mix(result.edge_traversals);
  Mix(result.refreshes);
  Mix(result.cancels_succeeded);
  Mix(result.no_shows_succeeded);
  Mix(result.final_epoch);
  result.fingerprint = fingerprint_;
  return result;
}

EventSimResult RunEventSim(XarSystem& xar, EventSim& sim,
                           const std::vector<TaxiTrip>& trips) {
  std::unique_ptr<SimTarget> target = MakeSimTarget(xar);
  return sim.Run(*target, trips);
}

EventSimResult RunEventSim(ConcurrentXarSystem& xar, EventSim& sim,
                           const std::vector<TaxiTrip>& trips) {
  std::unique_ptr<SimTarget> target = MakeSimTarget(xar);
  return sim.Run(*target, trips);
}

}  // namespace xar
