#ifndef XAR_SIM_EVENT_SIM_H_
#define XAR_SIM_EVENT_SIM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "discretize/region_snapshot.h"
#include "graph/road_graph.h"
#include "sim/scenario.h"
#include "workload/taxi_trip.h"
#include "xar/options.h"
#include "xar/ride.h"

namespace xar {

class XarSystem;
class ConcurrentXarSystem;
class GraphOracle;

/// The slice of the XAR surface the event sim drives, implemented over both
/// XarSystem and ConcurrentXarSystem (MakeSimTarget below) so one simulator
/// exercises the serial paths and the sharded/locking ones identically.
class SimTarget {
 public:
  virtual ~SimTarget() = default;

  virtual std::vector<RideMatch> Search(const RideRequest& request) const = 0;
  virtual Result<BookingRecord> SearchAndBook(const RideRequest& request) = 0;
  virtual Result<RideId> CreateRide(const RideOffer& offer) = 0;
  virtual Status CancelBooking(RideId ride, RequestId request) = 0;
  virtual Status ReportNoShow(RideId ride, RequestId request) = 0;
  virtual void AdvanceTime(double now_s) = 0;
  virtual RefreshStats RefreshDiscretization(const GraphDelta& delta) = 0;
  /// Copy of the live ride state (route, via-points, ETAs) — a copy, not a
  /// pointer, so the concurrent implementation can release its shard lock.
  virtual Result<Ride> GetRide(RideId id) const = 0;
  virtual std::uint64_t epoch() const = 0;
};

std::unique_ptr<SimTarget> MakeSimTarget(XarSystem& xar);
std::unique_ptr<SimTarget> MakeSimTarget(ConcurrentXarSystem& xar);

/// Outcome of one event-sim run: protocol counts (matching the replay
/// drivers' semantics), event counts, refresh bracketing, and the
/// staleness/quality signals the refresh_under_traffic bench sweeps.
struct EventSimResult {
  std::size_t requests = 0;
  std::size_t matched = 0;
  std::size_t rides_created = 0;

  std::size_t edge_traversals = 0;
  std::size_t traffic_ticks = 0;
  std::size_t refreshes = 0;  ///< live RefreshDiscretization epoch swaps
  std::size_t cancels_attempted = 0;
  std::size_t cancels_succeeded = 0;
  std::size_t no_shows_attempted = 0;
  std::size_t no_shows_succeeded = 0;

  /// Bookings bracketing the refresh sequence — the "epoch swaps happened
  /// mid-simulation, with traffic before and after" acceptance signal.
  std::size_t bookings_before_first_refresh = 0;
  std::size_t bookings_after_last_refresh = 0;
  std::uint64_t final_epoch = 0;

  /// Mean |world arrival − system-promised arrival| over completed rides:
  /// the staleness signal. Refreshing more often re-profiles routes onto the
  /// congested graph, so this shrinks with the refresh cadence.
  double mean_eta_error_s = 0.0;
  std::size_t eta_samples = 0;
  /// Mean booked-rider quality, from the booking records.
  double mean_actual_detour_m = 0.0;
  double mean_walk_m = 0.0;

  std::vector<BookingRecord> bookings;

  /// Order-sensitive hash of every processed event and booking. Two runs of
  /// the same scenario (same seed) must produce identical fingerprints —
  /// pinned by the determinism test.
  std::uint64_t fingerprint = 0;
};

/// Discrete-event city simulator (ROADMAP: "vehicles that actually move on
/// the graph, traffic that actually changes"). A priority-queue event loop
/// over six event kinds — request arrival, vehicle edge-traversal,
/// cancellation, no-show, periodic traffic tick, periodic refresh — where:
///
///  - booked rides traverse their route's edges in sim time, each traversal
///    taking the *world* time: base edge time × the live congestion factor;
///  - every traversal adds load to its street; a traffic tick decays loads;
///    a rush-hour profile modulates everything (ScenarioConfig::traffic);
///  - every refresh period the congested world is materialized as a new
///    weight-scaled graph + oracle and fed through RefreshDiscretization
///    (GraphDelta), so the epoch-swap/re-homing/prewarm machinery runs as a
///    continuously-exercised hot path and booked routes re-profile onto the
///    congested map (reroute-on-refresh);
///  - booked riders cancel or no-show per ScenarioConfig::events, driving
///    CancelBooking / ReportNoShow against live rides.
///
/// Everything is deterministic in ScenarioConfig::seed: events are ordered
/// by (time, insertion sequence) and all randomness flows from one Rng.
///
/// Lifetime: the EventSim owns every graph/oracle it materialized for a
/// refresh, and the target system keeps pointers into the latest one (the
/// GraphDelta contract). Keep the EventSim alive as long as the system is
/// used after Run().
class EventSim {
 public:
  /// `world` must be the graph the target system was built on;
  /// `system_options` supplies the routing backend / cache policy for the
  /// oracles built at each refresh.
  EventSim(const RoadGraph& world, XarOptions system_options,
           ScenarioConfig config);
  ~EventSim();

  EventSim(const EventSim&) = delete;
  EventSim& operator=(const EventSim&) = delete;

  /// Runs the scenario over `trips` (time-ordered). Repeatable: each call
  /// resets all traffic/RNG state (but the target system keeps its state).
  EventSimResult Run(SimTarget& target, const std::vector<TaxiTrip>& trips);

 private:
  enum class EventKind : std::uint8_t {
    kRequest = 0,
    kEdgeArrive = 1,
    kCancel = 2,
    kNoShow = 3,
    kTrafficTick = 4,
    kRefresh = 5,
  };

  struct Event {
    double time_s = 0.0;
    std::uint64_t seq = 0;  ///< insertion order; breaks time ties
    EventKind kind = EventKind::kRequest;
    std::size_t trip_index = 0;               // kRequest
    RideId ride = RideId::Invalid();          // kEdgeArrive/kCancel/kNoShow
    RequestId request = RequestId::Invalid();  // kCancel/kNoShow
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };

  /// World-side motion cursor of one vehicle.
  struct MotionState {
    NodeId at_node = NodeId::Invalid();
    std::uint32_t hint_index = 0;   ///< last known index of at_node in route
    double promised_arrival_s = 0;  ///< latest system estimate seen
  };

  void Push(double time_s, EventKind kind, std::size_t trip_index, RideId ride,
            RequestId request);
  void Mix(std::uint64_t value);
  void MixTime(double value);

  double RushFactor(double time_s) const;
  double CongestionFactor(NodeId from, NodeId to, double time_s) const;
  static std::uint64_t StreetKey(NodeId from, NodeId to);

  void HandleRequest(SimTarget& target, const Event& event,
                     const std::vector<TaxiTrip>& trips,
                     EventSimResult* result);
  void HandleEdgeArrive(SimTarget& target, const Event& event,
                        EventSimResult* result);
  void HandleRefresh(SimTarget& target, const Event& event,
                     EventSimResult* result);
  void StartMotion(const Ride& ride);
  void OnBooked(const BookingRecord& record, double now_s,
                EventSimResult* result);

  const RoadGraph* world_;
  XarOptions system_options_;
  ScenarioConfig config_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  Rng rng_;
  std::uint64_t fingerprint_ = 0;

  std::unordered_map<std::uint64_t, double> street_loads_;
  std::unordered_map<RideId, MotionState> motion_;
  std::size_t since_last_book_ = 0;
  std::size_t bookings_at_last_refresh_ = 0;
  double eta_error_sum_s_ = 0.0;

  /// Graphs/oracles materialized by refreshes; must outlive the target.
  std::vector<std::unique_ptr<RoadGraph>> refresh_graphs_;
  std::vector<std::unique_ptr<GraphOracle>> refresh_oracles_;
};

/// Convenience: builds the target adapter and runs one scenario.
EventSimResult RunEventSim(XarSystem& xar, EventSim& sim,
                           const std::vector<TaxiTrip>& trips);
EventSimResult RunEventSim(ConcurrentXarSystem& xar, EventSim& sim,
                           const std::vector<TaxiTrip>& trips);

}  // namespace xar

#endif  // XAR_SIM_EVENT_SIM_H_
