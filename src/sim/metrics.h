#ifndef XAR_SIM_METRICS_H_
#define XAR_SIM_METRICS_H_

#include <cstddef>
#include <string>

#include "common/stats.h"

namespace xar {

/// Per-transport-mode quality metrics, matching what Fig. 6 compares:
/// end-to-end travel time, walking time, waiting time, and the number of
/// cars needed to serve the request stream.
struct ModeMetrics {
  std::string mode_name;
  PercentileTracker travel_s;
  PercentileTracker walk_s;
  PercentileTracker wait_s;
  std::size_t cars_used = 0;
  std::size_t requests_served = 0;
  std::size_t requests_unserved = 0;

  void AddTrip(double travel_time_s, double walk_time_s, double wait_time_s) {
    travel_s.Add(travel_time_s);
    walk_s.Add(walk_time_s);
    wait_s.Add(wait_time_s);
    ++requests_served;
  }
};

}  // namespace xar

#endif  // XAR_SIM_METRICS_H_
