#include "sim/modes.h"

#include <algorithm>
#include <limits>

namespace xar {
namespace {

constexpr double kWalkSpeedMps = 1.4;

bool JourneyHasInfeasibleSegment(const Journey& plan,
                                 const IntegrationOptions& opt) {
  for (const JourneyLeg& leg : plan.legs) {
    if (leg.walk_m > opt.infeasible_walk_m) return true;
    if (leg.depart_s - leg.start_s > opt.infeasible_wait_s) return true;
  }
  return false;
}

}  // namespace

ModeMetrics EvaluateTaxiMode(const SpatialNodeIndex& spatial,
                             DistanceOracle& oracle,
                             const std::vector<TaxiTrip>& trips) {
  ModeMetrics metrics;
  metrics.mode_name = "Taxi";
  for (const TaxiTrip& trip : trips) {
    NodeId a = spatial.NearestNode(trip.pickup);
    NodeId b = spatial.NearestNode(trip.dropoff);
    double t = oracle.DriveTime(a, b);
    if (t == std::numeric_limits<double>::infinity()) {
      ++metrics.requests_unserved;
      continue;
    }
    metrics.AddTrip(t, 0.0, 0.0);
    ++metrics.cars_used;
  }
  return metrics;
}

ModeMetrics EvaluatePublicTransportMode(const TripPlanner& planner,
                                        const std::vector<TaxiTrip>& trips) {
  ModeMetrics metrics;
  metrics.mode_name = "PublicTransport";
  for (const TaxiTrip& trip : trips) {
    Journey j = planner.PlanTrip(trip.pickup, trip.dropoff,
                                 trip.pickup_time_s);
    if (!j.feasible) {
      ++metrics.requests_unserved;
      continue;
    }
    metrics.AddTrip(j.TravelTimeS(), j.WalkMeters() / kWalkSpeedMps,
                    j.WaitTimeS());
  }
  return metrics;
}

ModeMetrics EvaluateRideShareMode(XarSystem& xar,
                                  const std::vector<TaxiTrip>& trips,
                                  const SimOptions& options) {
  SimResult result = SimulateRideSharing(xar, trips, options);
  return result.metrics;
}

ModeMetrics EvaluateRideSharePlusTransitMode(
    const TripPlanner& planner, XarSystem& xar,
    const std::vector<TaxiTrip>& trips,
    const IntegrationOptions& integration_options,
    const SimOptions& sim_options) {
  ModeMetrics metrics;
  metrics.mode_name = "RideShare+PT";
  XarMmtpIntegration integration(planner, xar, integration_options);

  for (const TaxiTrip& trip : trips) {
    if (sim_options.advance_time) xar.AdvanceTime(trip.pickup_time_s);
    Journey plan =
        planner.PlanTrip(trip.pickup, trip.dropoff, trip.pickup_time_s);

    if (plan.feasible && !JourneyHasInfeasibleSegment(plan,
                                                      integration_options)) {
      // PT alone serves the trip comfortably.
      metrics.AddTrip(plan.TravelTimeS(), plan.WalkMeters() / kWalkSpeedMps,
                      plan.WaitTimeS());
      continue;
    }

    if (plan.feasible) {
      IntegrationResult aided = integration.Aid(plan, trip.id);
      if (aided.improved &&
          !JourneyHasInfeasibleSegment(aided.journey, integration_options)) {
        metrics.AddTrip(aided.journey.TravelTimeS(),
                        aided.journey.WalkMeters() / kWalkSpeedMps,
                        aided.journey.WaitTimeS());
        continue;
      }
    }

    // Aider could not fix the plan: the commuter drives, and the car becomes
    // ride-share supply for later infeasible segments.
    RideOffer offer;
    offer.source = trip.pickup;
    offer.destination = trip.dropoff;
    offer.departure_time_s = trip.pickup_time_s;
    Result<RideId> ride = xar.CreateRide(offer);
    if (ride.ok()) {
      ++metrics.cars_used;
      metrics.AddTrip(xar.GetRide(*ride)->route.time_s, 0.0, 0.0);
    } else {
      ++metrics.requests_unserved;
    }
  }
  return metrics;
}

}  // namespace xar
