#ifndef XAR_SIM_MODES_H_
#define XAR_SIM_MODES_H_

#include <vector>

#include "graph/oracle.h"
#include "graph/spatial_index.h"
#include "mmtp/integration.h"
#include "mmtp/trip_planner.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/taxi_trip.h"
#include "xar/xar_system.h"

namespace xar {

/// Fig. 6 mode 1 — every trip is a private taxi: best travel times, one car
/// per request, no walking or waiting (pickup at the door at request time).
ModeMetrics EvaluateTaxiMode(const SpatialNodeIndex& spatial,
                             DistanceOracle& oracle,
                             const std::vector<TaxiTrip>& trips);

/// Fig. 6 mode 2 — public transport only, via the multi-modal trip planner.
/// Trips the planner cannot serve are counted unserved; no cars are added.
ModeMetrics EvaluatePublicTransportMode(const TripPlanner& planner,
                                        const std::vector<TaxiTrip>& trips);

/// Fig. 6 mode 3 — stand-alone ride sharing (the Section X-A.2 simulation).
ModeMetrics EvaluateRideShareMode(XarSystem& xar,
                                  const std::vector<TaxiTrip>& trips,
                                  const SimOptions& options = {});

/// Fig. 6 mode 4 — public transport with XAR in Aider mode: PT plans are
/// generated first; infeasible segments (walk > 1 km or wait > 10 min by
/// default) are offered to XAR; commuters whose infeasible segments cannot
/// be aided drive (creating shareable rides), mirroring the RS simulation's
/// supply model.
ModeMetrics EvaluateRideSharePlusTransitMode(
    const TripPlanner& planner, XarSystem& xar,
    const std::vector<TaxiTrip>& trips,
    const IntegrationOptions& integration_options = {},
    const SimOptions& sim_options = {});

}  // namespace xar

#endif  // XAR_SIM_MODES_H_
