#include "sim/parallel_simulator.h"

#include <algorithm>

#include "common/clock.h"
#include "common/thread_pool.h"

namespace xar {
namespace {

constexpr double kWalkSpeedMps = 1.4;

RideRequest ToRequest(const TaxiTrip& trip, const SimOptions& options) {
  RideRequest request;
  request.id = trip.id;
  request.source = trip.pickup;
  request.destination = trip.dropoff;
  request.earliest_departure_s = trip.pickup_time_s;
  request.latest_departure_s = trip.pickup_time_s + options.window_s;
  request.walk_limit_m = options.walk_limit_m;
  return request;
}

}  // namespace

SimResult SimulateRideSharingParallel(ConcurrentXarSystem& xar,
                                      const std::vector<TaxiTrip>& trips,
                                      const ParallelSimOptions& options) {
  SimResult result;
  result.metrics.mode_name = "RideShareParallel";
  result.search_ms.Reserve(trips.size());

  ThreadPool pool(options.num_threads);
  const std::size_t batch = std::max<std::size_t>(1, options.batch_size);

  std::size_t since_last_book = 0;
  std::size_t waves_done = 0;
  std::vector<RideRequest> requests;
  std::vector<double> search_latencies_ms;
  for (std::size_t begin = 0; begin < trips.size(); begin += batch) {
    const std::size_t end = std::min(trips.size(), begin + batch);
    const std::size_t wave = end - begin;

    requests.clear();
    for (std::size_t i = begin; i < end; ++i) {
      requests.push_back(ToRequest(trips[i], options.sim));
    }

    // Phase 1 — concurrent searchers. Pure index probes under per-shard
    // shared locks; no state changes, so wave-level clock granularity is
    // fine. Latencies land in per-slot storage (no shared accumulator).
    if (options.sim.advance_time) xar.AdvanceTime(trips[begin].pickup_time_s);
    search_latencies_ms.assign(wave, 0.0);
    pool.ParallelFor(wave, [&](std::size_t i) {
      Stopwatch timer;
      (void)xar.Search(requests[i]);
      search_latencies_ms[i] = timer.ElapsedMillis();
    });
    for (double ms : search_latencies_ms) result.search_ms.Add(ms);

    // Phase 2 — serialized look-to-book. Byte-for-byte the serial driver's
    // decision loop, so matched/created counts stay identical to
    // SimulateRideSharing.
    for (std::size_t i = begin; i < end; ++i) {
      const TaxiTrip& trip = trips[i];
      const RideRequest& request = requests[i - begin];
      ++result.requests;
      if (options.sim.advance_time) xar.AdvanceTime(trip.pickup_time_s);

      std::vector<RideMatch> matches = xar.Search(request);
      bool book_now = ++since_last_book >= options.sim.look_to_book;
      if (!matches.empty() && book_now) {
        since_last_book = 0;
        Stopwatch book_timer;
        Result<BookingRecord> booking =
            xar.Book(matches.front().ride, request, matches.front());
        result.book_ms.Add(book_timer.ElapsedMillis());
        if (booking.ok()) {
          ++result.matched;
          result.bookings.push_back(*booking);
          double wait =
              std::max(0.0, booking->pickup_eta_s - trip.pickup_time_s);
          double walk_time = booking->walk_m / kWalkSpeedMps;
          double travel =
              (booking->dropoff_eta_s - trip.pickup_time_s) + walk_time;
          result.metrics.AddTrip(travel, walk_time, wait);
          continue;
        }
      }

      RideOffer offer;
      offer.source = trip.pickup;
      offer.destination = trip.dropoff;
      offer.departure_time_s = trip.pickup_time_s;
      Stopwatch create_timer;
      Result<RideId> ride = xar.CreateRide(offer);
      result.create_ms.Add(create_timer.ElapsedMillis());
      if (ride.ok()) {
        ++result.rides_created;
        ++result.metrics.cars_used;
        Result<Ride> created = xar.GetRide(*ride);
        result.metrics.AddTrip(created.ok() ? created->route.time_s : 0.0,
                               0.0, 0.0);
      } else {
        ++result.metrics.requests_unserved;
      }
    }

    // Refresh-under-load: rebuild + swap the discretization between waves.
    ++waves_done;
    if (options.refresh_every_waves > 0 &&
        waves_done % options.refresh_every_waves == 0) {
      (void)xar.RefreshDiscretization(
          options.refresh_delta != nullptr ? *options.refresh_delta
                                           : GraphDelta{});
    }
  }
  return result;
}

SimResult SimulateRideSharingParallel(ConcurrentXarSystem& xar,
                                      const std::vector<TaxiTrip>& trips,
                                      const ScenarioConfig& config) {
  return SimulateRideSharingParallel(xar, trips,
                                     ParallelSimOptions::FromScenario(config));
}

}  // namespace xar
