#ifndef XAR_SIM_PARALLEL_SIMULATOR_H_
#define XAR_SIM_PARALLEL_SIMULATOR_H_

#include <cstddef>
#include <vector>

#include "sim/simulator.h"
#include "workload/taxi_trip.h"
#include "xar/concurrent_xar.h"

namespace xar {

/// Knobs of the parallel replay driver.
struct ParallelSimOptions {
  /// Protocol knobs shared with the serial driver (window, look-to-book,
  /// walk limit, tracking).
  SimOptions sim;
  /// Searcher threads (0 = hardware_concurrency).
  std::size_t num_threads = 0;
  /// Trips whose searches are fanned out concurrently per wave.
  std::size_t batch_size = 64;
  /// If nonzero, run RefreshDiscretization on the system after every this
  /// many completed waves — the refresh-under-load scenario. Re-homing
  /// re-derives exactly the associations incremental tracking maintains, so
  /// a refresh with `refresh_delta == nullptr` (no-op rebuild) leaves
  /// matched/created counts identical to a run without refreshes.
  std::size_t refresh_every_waves = 0;
  /// Optional delta applied by those refreshes (e.g. a perturbed graph);
  /// nullptr = no-op rebuild of the current region.
  const GraphDelta* refresh_delta = nullptr;

  /// Lifts a shared ScenarioConfig into parallel-driver options: the
  /// protocol knobs carry over verbatim, the driver-specific knobs (threads,
  /// batch size, refresh wiring) stay at their defaults for the caller to
  /// fill in. One ScenarioConfig can thus drive the serial replay, the
  /// parallel replay and the event sim.
  static ParallelSimOptions FromScenario(const ScenarioConfig& config) {
    ParallelSimOptions options;
    options.sim = config.protocol;
    return options;
  }
};

/// Parallel replay of the paper's simulation protocol against a sharded
/// ConcurrentXarSystem. Each wave of `batch_size` trips runs in two phases:
///
///  1. Concurrent searchers: every trip's search is fanned across a thread
///     pool under per-shard shared locks. These are the measured searches
///     (SimResult::search_ms holds their latencies under contention).
///  2. Serialized look-to-book: the trips are then replayed in timestamp
///     order with the serial driver's exact protocol — advance the clock,
///     search, book the least-walking match on a booking turn, otherwise
///     create the commuter's own ride.
///
/// Phase 1 mutates nothing (XAR searches are pure index probes), and
/// round-robin ride creation reproduces the dense id sequence of a
/// standalone XarSystem, so matched/created counts are *identical* to
/// SimulateRideSharing over the same trips at any look-to-book ratio —
/// the property the parallel_sim test pins down.
SimResult SimulateRideSharingParallel(ConcurrentXarSystem& xar,
                                      const std::vector<TaxiTrip>& trips,
                                      const ParallelSimOptions& options = {});

/// Shared-scenario entry point: equivalent to passing
/// ParallelSimOptions::FromScenario(config).
SimResult SimulateRideSharingParallel(ConcurrentXarSystem& xar,
                                      const std::vector<TaxiTrip>& trips,
                                      const ScenarioConfig& config);

}  // namespace xar

#endif  // XAR_SIM_PARALLEL_SIMULATOR_H_
