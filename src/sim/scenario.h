#ifndef XAR_SIM_SCENARIO_H_
#define XAR_SIM_SCENARIO_H_

#include <cstddef>
#include <cstdint>

namespace xar {

/// Knobs of the ride-share simulation loop (paper Section X-A.2). Shared by
/// every driver: the serial replay, the parallel replay and the event sim.
struct SimOptions {
  /// Departure window length granted to each request.
  double window_s = 900.0;
  /// Requests per booked ride (look-to-book r): every request performs one
  /// search; only every r-th searcher actually books. 1 = book always.
  std::size_t look_to_book = 1;
  /// Walking threshold passed on each request (-1 = XAR default).
  double walk_limit_m = -1.0;
  /// Advance the virtual clock with request timestamps (tracking on).
  bool advance_time = true;
};

/// How traffic responds to the simulated fleet (event sim only): per-edge
/// load and a rush-hour profile combine into a driving-time factor
///
///   factor = clamp(rush(hour) * (1 + load_alpha * load), 1, max_factor)
///
/// where `load` is the decayed count of vehicle traversals on that street
/// (both directions pooled, so the factor stays symmetric per street).
struct TrafficModel {
  /// Period of the traffic tick that decays per-edge loads (seconds).
  double tick_period_s = 300.0;
  /// Extra driving-time fraction per unit of decayed edge load.
  double load_alpha = 0.05;
  /// Load retained across one traffic tick (0 = memoryless, 1 = permanent).
  double load_decay = 0.5;
  /// Peak rush-hour slow-down fraction (0.35 = +35% at the worst hour).
  double rush_amplitude = 0.35;
  /// Congestion-factor clamp; keeps a pile-up from freezing the city.
  double max_factor = 3.0;
};

/// Rider-behaviour events the event sim injects (both drawn per booking).
struct EventMix {
  /// Probability a booked rider cancels (CancelBooking) before pickup.
  double cancel_probability = 0.0;
  /// Probability a booked rider is absent at the pickup ETA (ReportNoShow).
  double no_show_probability = 0.0;
};

/// One scenario description shared by all three simulation drivers
/// (SimulateRideSharing, SimulateRideSharingParallel, RunEventSim). The
/// replay drivers consume `protocol` and ignore the rest; the event sim
/// consumes everything. Keeping one config type means a bench can run the
/// same scenario through any driver without re-plumbing knobs.
struct ScenarioConfig {
  /// Protocol knobs shared with the replay drivers.
  SimOptions protocol;
  /// Traffic response model (event sim).
  TrafficModel traffic;
  /// Cancellation / no-show behaviour (event sim).
  EventMix events;
  /// If > 0, the event sim re-materializes the world graph and feeds it to
  /// RefreshDiscretization every this many sim-seconds (the live epoch-swap
  /// path). 0 = the system never refreshes and serves ever-staler ETAs.
  double refresh_period_s = 0.0;
  /// Seed for every stochastic draw (cancellation, no-show timing). Fixed
  /// seed => bit-identical simulation, pinned by the determinism test.
  std::uint64_t seed = 1;
  /// Fixed-fleet mode (event sim only). When > 0, the first `fleet` trips
  /// become the drivers — each is registered as a moving ride offer before
  /// any request fires — and every later trip is a pure commuter request:
  /// an unmatched request does NOT fall back to creating a ride, so fleet
  /// size stays the swept variable (the pooling bench's knob). 0 keeps the
  /// classic behaviour where unmatched commuters drive and offer their ride.
  std::size_t fleet = 0;
};

}  // namespace xar

#endif  // XAR_SIM_SCENARIO_H_
