#include "sim/simulator.h"

#include "common/clock.h"

namespace xar {
namespace {

constexpr double kWalkSpeedMps = 1.4;

}  // namespace

SimResult SimulateRideSharing(XarSystem& xar,
                              const std::vector<TaxiTrip>& trips,
                              const ScenarioConfig& config) {
  // The replay protocol only consumes the protocol knobs; traffic and event
  // injection are the event sim's job (sim/event_sim.h).
  return SimulateRideSharing(xar, trips, config.protocol);
}

SimResult SimulateRideSharing(XarSystem& xar,
                              const std::vector<TaxiTrip>& trips,
                              const SimOptions& options) {
  SimResult result;
  result.metrics.mode_name = "RideShare";
  result.search_ms.Reserve(trips.size());

  std::size_t since_last_book = 0;
  for (const TaxiTrip& trip : trips) {
    ++result.requests;
    if (options.advance_time) xar.AdvanceTime(trip.pickup_time_s);

    RideRequest request;
    request.id = trip.id;
    request.source = trip.pickup;
    request.destination = trip.dropoff;
    request.earliest_departure_s = trip.pickup_time_s;
    request.latest_departure_s = trip.pickup_time_s + options.window_s;
    request.walk_limit_m = options.walk_limit_m;

    Stopwatch search_timer;
    std::vector<RideMatch> matches = xar.Search(request);
    result.search_ms.Add(search_timer.ElapsedMillis());

    bool book_now = ++since_last_book >= options.look_to_book;
    if (!matches.empty() && book_now) {
      since_last_book = 0;
      // Matches are sorted by least walking; book the first (paper protocol).
      Stopwatch book_timer;
      Result<BookingRecord> booking =
          xar.Book(matches.front().ride, request, matches.front());
      result.book_ms.Add(book_timer.ElapsedMillis());
      if (booking.ok()) {
        ++result.matched;
        result.bookings.push_back(*booking);
        double wait = std::max(0.0, booking->pickup_eta_s -
                                        trip.pickup_time_s);
        double walk_time = booking->walk_m / kWalkSpeedMps;
        double travel =
            (booking->dropoff_eta_s - trip.pickup_time_s) + walk_time;
        result.metrics.AddTrip(travel, walk_time, wait);
        continue;
      }
    }

    // No match (or this searcher was only looking): the commuter drives and
    // offers the ride for sharing.
    RideOffer offer;
    offer.source = trip.pickup;
    offer.destination = trip.dropoff;
    offer.departure_time_s = trip.pickup_time_s;
    Stopwatch create_timer;
    Result<RideId> ride = xar.CreateRide(offer);
    result.create_ms.Add(create_timer.ElapsedMillis());
    if (ride.ok()) {
      ++result.rides_created;
      ++result.metrics.cars_used;
      // GetRide can miss even after a successful create if tracking retired
      // the ride in the same tick (or under foreign-id routing); don't deref
      // unconditionally.
      const Ride* r = xar.GetRide(*ride);
      result.metrics.AddTrip(r != nullptr ? r->route.time_s : 0.0, 0.0, 0.0);
    } else {
      ++result.metrics.requests_unserved;
    }
  }
  return result;
}

}  // namespace xar
