#ifndef XAR_SIM_SIMULATOR_H_
#define XAR_SIM_SIMULATOR_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "workload/taxi_trip.h"
#include "xar/ride.h"
#include "xar/xar_system.h"

namespace xar {

/// Outcome of a simulation run: match counts, booking records for quality
/// analysis (Fig. 3a), per-operation latency samples (Figs. 4-5), and the
/// Fig. 6 quality metrics.
struct SimResult {
  std::size_t requests = 0;
  std::size_t matched = 0;
  std::size_t rides_created = 0;
  std::vector<BookingRecord> bookings;
  ModeMetrics metrics;
  PercentileTracker search_ms;
  PercentileTracker create_ms;
  PercentileTracker book_ms;
};

/// Runs the paper's simulation protocol over `trips` (time-ordered): each
/// trip becomes a ride request; if a feasible ride exists, the least-walking
/// match is booked; otherwise the commuter drives, creating a new shareable
/// ride (capacity: XAR default seats). Operation latencies are recorded.
SimResult SimulateRideSharing(XarSystem& xar,
                              const std::vector<TaxiTrip>& trips,
                              const ScenarioConfig& config);

/// Protocol-knobs-only entry point: wraps `options` into a ScenarioConfig
/// (traffic/events at their inert defaults) and runs the same loop, so the
/// two spellings replay identically — pinned by the scenario differential
/// test.
SimResult SimulateRideSharing(XarSystem& xar,
                              const std::vector<TaxiTrip>& trips,
                              const SimOptions& options = {});

}  // namespace xar

#endif  // XAR_SIM_SIMULATOR_H_
