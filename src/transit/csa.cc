#include "transit/csa.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Label {
  double tau = kInf;              ///< earliest arrival at the stop
  int via_connection = -1;        ///< last connection used (-1: on foot)
  int via_transfer_from = -1;     ///< stop walked from (-1: origin access)
  double walk_m = 0.0;            ///< walking meters of the foot move
  bool by_vehicle = false;        ///< arrived sitting in a vehicle
};

}  // namespace

ConnectionScanPlanner::ConnectionScanPlanner(const Timetable& timetable,
                                             CsaOptions options)
    : timetable_(timetable), options_(options) {
  assert(timetable.finalized());
}

Journey ConnectionScanPlanner::EarliestArrival(const LatLng& origin,
                                               const LatLng& destination,
                                               double departure_s) const {
  const std::vector<Connection>& conns = timetable_.connections();
  std::vector<Label> label(timetable_.stops().size());
  std::vector<int> trip_board(timetable_.trips().size(), -1);

  // Origin access on foot.
  for (StopId s :
       timetable_.StopsNear(origin, options_.max_access_walk_m)) {
    double walk = EquirectangularMeters(
                      origin, timetable_.GetStop(s).position) *
                  options_.walk_detour_factor;
    double tau = departure_s + walk / options_.walk_speed_mps;
    Label& l = label[s.value()];
    if (tau < l.tau) {
      l.tau = tau;
      l.via_connection = -1;
      l.via_transfer_from = -1;
      l.walk_m = walk;
      l.by_vehicle = false;
    }
  }

  // Scan connections departing at/after the earliest possible boarding.
  auto first = std::lower_bound(
      conns.begin(), conns.end(), departure_s,
      [](const Connection& c, double t) { return c.departure_s < t; });

  auto relax_transfers = [&](StopId at) {
    const Label& from = label[at.value()];
    for (const Timetable::Transfer& tr : timetable_.TransfersFrom(at)) {
      double walk = tr.walk_m * options_.walk_detour_factor;
      double tau = from.tau + walk / options_.walk_speed_mps +
                   options_.min_transfer_s;
      Label& to = label[tr.to.value()];
      if (tau < to.tau) {
        to.tau = tau;
        to.via_connection = -1;
        to.via_transfer_from = static_cast<int>(at.value());
        to.walk_m = walk;
        to.by_vehicle = false;
      }
    }
  };

  for (auto it = first; it != conns.end(); ++it) {
    const Connection& c = *it;
    std::size_t ci = static_cast<std::size_t>(it - conns.begin());
    bool reachable = trip_board[c.trip.value()] >= 0;
    if (!reachable) {
      const Label& from = label[c.from.value()];
      double buffer = from.by_vehicle ? options_.min_transfer_s : 0.0;
      if (from.tau + buffer <= c.departure_s) {
        reachable = true;
        trip_board[c.trip.value()] = static_cast<int>(ci);
      }
    }
    if (!reachable) continue;
    Label& to = label[c.to.value()];
    if (c.arrival_s < to.tau) {
      to.tau = c.arrival_s;
      to.via_connection = static_cast<int>(ci);
      to.via_transfer_from = -1;
      to.walk_m = 0.0;
      to.by_vehicle = true;
      relax_transfers(c.to);
    }
  }

  // Pick the best egress stop.
  double best_arrival = kInf;
  int best_stop = -1;
  double best_egress_walk = 0.0;
  for (StopId s :
       timetable_.StopsNear(destination, options_.max_access_walk_m)) {
    const Label& l = label[s.value()];
    if (l.tau == kInf) continue;
    double walk = EquirectangularMeters(destination,
                                        timetable_.GetStop(s).position) *
                  options_.walk_detour_factor;
    double arrival = l.tau + walk / options_.walk_speed_mps;
    if (arrival < best_arrival) {
      best_arrival = arrival;
      best_stop = static_cast<int>(s.value());
      best_egress_walk = walk;
    }
  }

  Journey journey;
  if (best_stop < 0) return journey;  // infeasible

  // Backward reconstruction into legs (transit legs grouped per trip).
  std::vector<JourneyLeg> rev;
  int stop = best_stop;
  std::size_t guard = conns.size() + timetable_.stops().size() + 4;
  while (guard-- > 0) {
    const Label& l = label[static_cast<std::size_t>(stop)];
    if (l.via_connection >= 0) {
      const Connection& last = conns[static_cast<std::size_t>(
          l.via_connection)];
      int board_ci = trip_board[last.trip.value()];
      assert(board_ci >= 0);
      const Connection& boarded =
          conns[static_cast<std::size_t>(board_ci)];
      const Label& at_board = label[boarded.from.value()];
      JourneyLeg leg;
      leg.mode = LegMode::kTransit;
      leg.from = timetable_.GetStop(boarded.from).position;
      leg.to = timetable_.GetStop(last.to).position;
      leg.start_s = std::min(at_board.tau, boarded.departure_s);
      leg.depart_s = boarded.departure_s;
      leg.arrival_s = last.arrival_s;
      leg.description = timetable_.GetRoute(last.route).name;
      rev.push_back(leg);
      stop = static_cast<int>(boarded.from.value());
    } else if (l.via_transfer_from >= 0) {
      JourneyLeg leg;
      leg.mode = LegMode::kWalk;
      leg.from = timetable_
                     .GetStop(StopId(static_cast<StopId::underlying_type>(
                         l.via_transfer_from)))
                     .position;
      leg.to = timetable_
                   .GetStop(StopId(
                       static_cast<StopId::underlying_type>(stop)))
                   .position;
      leg.arrival_s = l.tau;
      leg.start_s = leg.depart_s =
          l.tau - l.walk_m / options_.walk_speed_mps;
      leg.walk_m = l.walk_m;
      rev.push_back(leg);
      stop = l.via_transfer_from;
    } else {
      // Origin access walk.
      JourneyLeg leg;
      leg.mode = LegMode::kWalk;
      leg.from = origin;
      leg.to = timetable_
                   .GetStop(StopId(
                       static_cast<StopId::underlying_type>(stop)))
                   .position;
      leg.arrival_s = l.tau;
      leg.start_s = leg.depart_s = departure_s;
      leg.walk_m = l.walk_m;
      rev.push_back(leg);
      break;
    }
  }

  journey.legs.assign(rev.rbegin(), rev.rend());
  // Egress walk.
  JourneyLeg egress;
  egress.mode = LegMode::kWalk;
  egress.from = timetable_
                    .GetStop(StopId(static_cast<StopId::underlying_type>(
                        best_stop)))
                    .position;
  egress.to = destination;
  egress.start_s = egress.depart_s =
      label[static_cast<std::size_t>(best_stop)].tau;
  egress.arrival_s = best_arrival;
  egress.walk_m = best_egress_walk;
  journey.legs.push_back(egress);
  journey.feasible = true;
  return journey;
}

}  // namespace xar
