#ifndef XAR_TRANSIT_CSA_H_
#define XAR_TRANSIT_CSA_H_

#include <cstddef>
#include <vector>

#include "geo/latlng.h"
#include "transit/journey.h"
#include "transit/timetable.h"

namespace xar {

/// Parameters of the Connection Scan query engine.
struct CsaOptions {
  double walk_speed_mps = 1.4;
  double max_access_walk_m = 1200.0;  ///< origin/destination walk radius
  double min_transfer_s = 60.0;       ///< buffer when changing vehicles
  double walk_detour_factor = 1.25;   ///< straight-line -> street factor
};

/// Earliest-arrival journey planner over a Timetable using the Connection
/// Scan Algorithm (Dibbelt et al. 2013): one linear sweep over the
/// departure-sorted connection array per query, with foot access/egress and
/// transfers. This is the reproduction's OpenTripPlanner substitute for
/// public-transport legs.
class ConnectionScanPlanner {
 public:
  explicit ConnectionScanPlanner(const Timetable& timetable,
                                 CsaOptions options = {});

  /// Earliest-arrival journey from `origin` to `destination` departing at or
  /// after `departure_s`. Journey.feasible == false if no transit journey
  /// exists (the caller may still fall back to walking).
  Journey EarliestArrival(const LatLng& origin, const LatLng& destination,
                          double departure_s) const;

  const CsaOptions& options() const { return options_; }

 private:
  double WalkSeconds(double meters) const {
    return meters * options_.walk_detour_factor / options_.walk_speed_mps;
  }

  const Timetable& timetable_;
  CsaOptions options_;
};

}  // namespace xar

#endif  // XAR_TRANSIT_CSA_H_
