#ifndef XAR_TRANSIT_GTFS_H_
#define XAR_TRANSIT_GTFS_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// Transit vehicle class, coarse GTFS route_type.
enum class TransitMode { kSubway, kBus };

/// A transit stop (GTFS stops.txt row).
struct Stop {
  StopId id;
  std::string name;
  LatLng position;
};

/// A transit line (GTFS routes.txt row) with its ordered stop sequence and
/// inter-stop driving times. All trips of a route share the stop pattern.
struct TransitRoute {
  RouteId id;
  std::string name;
  TransitMode mode = TransitMode::kBus;
  std::vector<StopId> stops;
  /// travel_s[i] = scheduled seconds from stops[i] to stops[i+1].
  std::vector<double> travel_s;
  double dwell_s = 20.0;  ///< stop dwell time
};

/// One scheduled vehicle run of a route (GTFS trips.txt + stop_times.txt).
struct TransitTrip {
  TripId id;
  RouteId route;
  double start_time_s = 0.0;  ///< departure from the first stop
};

/// An elementary connection: one vehicle moving from one stop to the next
/// (the unit the Connection Scan Algorithm processes).
struct Connection {
  StopId from;
  StopId to;
  double departure_s = 0.0;
  double arrival_s = 0.0;
  TripId trip;
  RouteId route;
};

}  // namespace xar

#endif  // XAR_TRANSIT_GTFS_H_
