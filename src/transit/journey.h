#ifndef XAR_TRANSIT_JOURNEY_H_
#define XAR_TRANSIT_JOURNEY_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// Mode of one leg of a journey / trip plan.
enum class LegMode { kWalk, kTransit, kRideShare, kTaxi };

/// One leg of a multi-modal journey. Walk legs carry the walking distance;
/// transit legs carry the boarding wait; ride-share legs the matched ride.
struct JourneyLeg {
  LegMode mode = LegMode::kWalk;
  LatLng from;
  LatLng to;
  double start_s = 0.0;    ///< leg start (includes waiting for transit)
  double depart_s = 0.0;   ///< vehicle departure (== start_s for walks)
  double arrival_s = 0.0;
  double walk_m = 0.0;     ///< nonzero for walk legs
  std::string description; ///< route name / ride id, for display
};

/// A complete door-to-door journey.
struct Journey {
  std::vector<JourneyLeg> legs;
  bool feasible = false;

  double DepartureS() const {
    return legs.empty() ? 0.0 : legs.front().start_s;
  }
  double ArrivalS() const {
    return legs.empty() ? 0.0 : legs.back().arrival_s;
  }
  double TravelTimeS() const { return ArrivalS() - DepartureS(); }

  double WalkMeters() const {
    double w = 0;
    for (const JourneyLeg& l : legs) w += l.walk_m;
    return w;
  }
  /// Total time spent waiting for vehicles.
  double WaitTimeS() const {
    double w = 0;
    for (const JourneyLeg& l : legs) w += l.depart_s - l.start_s;
    return w;
  }
  /// Number of vehicle boardings minus one (0 for a single-seat journey).
  int Hops() const {
    int boardings = 0;
    for (const JourneyLeg& l : legs) {
      if (l.mode != LegMode::kWalk) ++boardings;
    }
    return boardings > 0 ? boardings - 1 : 0;
  }
};

}  // namespace xar

#endif  // XAR_TRANSIT_JOURNEY_H_
