#include "transit/network_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace xar {
namespace {

/// Adds a line with stops along the straight segment a->b, plus the reverse
/// direction, and schedules trips every `headway_s` across the service day.
void AddLine(Timetable* tt, const std::string& name, TransitMode mode,
             const LatLng& a, const LatLng& b, double stop_spacing_m,
             double speed_mps, double headway_s,
             const TransitNetworkOptions& opt, Rng& rng) {
  double length = HaversineMeters(a, b);
  std::size_t num_stops =
      std::max<std::size_t>(2, static_cast<std::size_t>(
                                   std::round(length / stop_spacing_m)) +
                                   1);
  std::vector<StopId> stops;
  std::vector<double> travel;
  stops.reserve(num_stops);
  for (std::size_t i = 0; i < num_stops; ++i) {
    double f = static_cast<double>(i) / static_cast<double>(num_stops - 1);
    LatLng p{a.lat + f * (b.lat - a.lat), a.lng + f * (b.lng - a.lng)};
    stops.push_back(
        tt->AddStop(name + " #" + std::to_string(i + 1), p));
    if (i > 0) {
      double seg = length / static_cast<double>(num_stops - 1);
      travel.push_back(seg / speed_mps);
    }
  }

  for (int direction = 0; direction < 2; ++direction) {
    TransitRoute route;
    route.name = name + (direction == 0 ? " ->" : " <-");
    route.mode = mode;
    route.stops = stops;
    route.travel_s = travel;
    if (direction == 1) {
      std::reverse(route.stops.begin(), route.stops.end());
      std::reverse(route.travel_s.begin(), route.travel_s.end());
    }
    RouteId id = tt->AddRoute(std::move(route));
    // Random phase so lines are not synchronized.
    double phase = rng.Uniform(0.0, headway_s);
    for (double t = opt.service_start_s + phase; t < opt.service_end_s;
         t += headway_s) {
      tt->AddTrip(id, t);
    }
  }
}

}  // namespace

Timetable GenerateTransitNetwork(const BoundingBox& bounds,
                                 const TransitNetworkOptions& opt) {
  Timetable tt;
  Rng rng(opt.seed);

  // Subway trunks: evenly spaced north-south lines.
  for (std::size_t i = 0; i < opt.subway_lines; ++i) {
    double f = (static_cast<double>(i) + 1.0) /
               (static_cast<double>(opt.subway_lines) + 1.0);
    double lng = bounds.min_lng + f * (bounds.max_lng - bounds.min_lng);
    AddLine(&tt, "Subway " + std::to_string(i + 1), TransitMode::kSubway,
            LatLng{bounds.min_lat, lng}, LatLng{bounds.max_lat, lng},
            opt.subway_stop_spacing_m, opt.subway_speed_mps,
            opt.subway_headway_s, opt, rng);
  }
  if (opt.diagonal_subway) {
    AddLine(&tt, "Subway X", TransitMode::kSubway,
            LatLng{bounds.min_lat, bounds.min_lng},
            LatLng{bounds.max_lat, bounds.max_lng},
            opt.subway_stop_spacing_m, opt.subway_speed_mps,
            opt.subway_headway_s, opt, rng);
  }

  // Bus corridors: evenly spaced east-west lines.
  for (std::size_t i = 0; i < opt.bus_lines; ++i) {
    double f = (static_cast<double>(i) + 1.0) /
               (static_cast<double>(opt.bus_lines) + 1.0);
    double lat = bounds.min_lat + f * (bounds.max_lat - bounds.min_lat);
    AddLine(&tt, "Bus " + std::to_string(i + 1), TransitMode::kBus,
            LatLng{lat, bounds.min_lng}, LatLng{lat, bounds.max_lng},
            opt.bus_stop_spacing_m, opt.bus_speed_mps, opt.bus_headway_s,
            opt, rng);
  }

  tt.Finalize();
  return tt;
}

}  // namespace xar
