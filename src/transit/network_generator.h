#ifndef XAR_TRANSIT_NETWORK_GENERATOR_H_
#define XAR_TRANSIT_NETWORK_GENERATOR_H_

#include <cstdint>

#include "geo/latlng.h"
#include "transit/timetable.h"

namespace xar {

/// Parameters for the synthetic transit network (the reproduction's NY GTFS
/// substitute, DESIGN.md §1): a few fast subway trunk lines plus a grid of
/// slower bus lines, each running both directions all service day.
struct TransitNetworkOptions {
  std::size_t subway_lines = 3;       ///< north-south trunks (+1 diagonal)
  std::size_t bus_lines = 6;          ///< east-west bus corridors
  double subway_stop_spacing_m = 800.0;
  double bus_stop_spacing_m = 400.0;
  double subway_speed_mps = 14.0;     ///< ~50 km/h between stops
  double bus_speed_mps = 5.5;         ///< ~20 km/h between stops
  double subway_headway_s = 420.0;    ///< 7 minutes
  double bus_headway_s = 780.0;       ///< 13 minutes
  double service_start_s = 5 * 3600.0;
  double service_end_s = 24 * 3600.0;
  bool diagonal_subway = true;
  std::uint64_t seed = 23;
};

/// Builds and finalizes a timetable covering `bounds`.
Timetable GenerateTransitNetwork(const BoundingBox& bounds,
                                 const TransitNetworkOptions& options);

}  // namespace xar

#endif  // XAR_TRANSIT_NETWORK_GENERATOR_H_
