#include "transit/timetable.h"

#include <algorithm>
#include <cassert>

namespace xar {

StopId Timetable::AddStop(std::string name, const LatLng& position) {
  assert(!finalized_);
  StopId id(static_cast<StopId::underlying_type>(stops_.size()));
  stops_.push_back(Stop{id, std::move(name), position});
  return id;
}

RouteId Timetable::AddRoute(TransitRoute route) {
  assert(!finalized_);
  assert(route.stops.size() >= 2);
  assert(route.travel_s.size() + 1 == route.stops.size());
  route.id = RouteId(static_cast<RouteId::underlying_type>(routes_.size()));
  routes_.push_back(std::move(route));
  return routes_.back().id;
}

TripId Timetable::AddTrip(RouteId route, double start_time_s) {
  assert(!finalized_);
  TripId id(static_cast<TripId::underlying_type>(trips_.size()));
  trips_.push_back(TransitTrip{id, route, start_time_s});
  return id;
}

void Timetable::Finalize(double transfer_radius_m) {
  assert(!finalized_);
  // Expand every trip into elementary connections.
  for (const TransitTrip& trip : trips_) {
    const TransitRoute& route = routes_[trip.route.value()];
    double t = trip.start_time_s;
    for (std::size_t i = 0; i + 1 < route.stops.size(); ++i) {
      Connection c;
      c.from = route.stops[i];
      c.to = route.stops[i + 1];
      c.departure_s = t;
      c.arrival_s = t + route.travel_s[i];
      c.trip = trip.id;
      c.route = route.id;
      connections_.push_back(c);
      t = c.arrival_s + route.dwell_s;
    }
  }
  std::sort(connections_.begin(), connections_.end(),
            [](const Connection& a, const Connection& b) {
              return a.departure_s < b.departure_s;
            });

  // Foot transfers between nearby stops (O(n^2) is fine at city stop
  // counts).
  transfers_.assign(stops_.size(), {});
  for (std::size_t a = 0; a < stops_.size(); ++a) {
    for (std::size_t b = 0; b < stops_.size(); ++b) {
      if (a == b) continue;
      double d =
          EquirectangularMeters(stops_[a].position, stops_[b].position);
      if (d <= transfer_radius_m) {
        transfers_[a].push_back(Transfer{stops_[a].id, stops_[b].id, d});
      }
    }
  }
  finalized_ = true;
}

std::vector<StopId> Timetable::StopsNear(const LatLng& p,
                                         double radius_m) const {
  std::vector<StopId> out;
  for (const Stop& s : stops_) {
    if (EquirectangularMeters(p, s.position) <= radius_m) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::size_t Timetable::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  bytes += stops_.capacity() * sizeof(Stop);
  bytes += routes_.capacity() * sizeof(TransitRoute);
  for (const TransitRoute& r : routes_) {
    bytes += r.stops.capacity() * sizeof(StopId) +
             r.travel_s.capacity() * sizeof(double);
  }
  bytes += trips_.capacity() * sizeof(TransitTrip);
  bytes += connections_.capacity() * sizeof(Connection);
  for (const auto& t : transfers_) bytes += t.capacity() * sizeof(Transfer);
  return bytes;
}

}  // namespace xar
