#ifndef XAR_TRANSIT_TIMETABLE_H_
#define XAR_TRANSIT_TIMETABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geo/latlng.h"
#include "transit/gtfs.h"

namespace xar {

/// An in-memory transit timetable: stops, routes, trips and the flat
/// departure-sorted connection array the Connection Scan Algorithm consumes,
/// plus foot transfers between nearby stops.
class Timetable {
 public:
  /// Foot transfer between two stops.
  struct Transfer {
    StopId from;
    StopId to;
    double walk_m = 0.0;
  };

  StopId AddStop(std::string name, const LatLng& position);
  RouteId AddRoute(TransitRoute route);

  /// Adds a vehicle run of `route` starting at `start_time_s`.
  TripId AddTrip(RouteId route, double start_time_s);

  /// Finalizes: expands trips into departure-sorted connections and builds
  /// foot transfers between stops within `transfer_radius_m`. Call once
  /// after all stops/routes/trips are added.
  void Finalize(double transfer_radius_m = 250.0);

  bool finalized() const { return finalized_; }
  const std::vector<Stop>& stops() const { return stops_; }
  const Stop& GetStop(StopId id) const { return stops_[id.value()]; }
  const std::vector<TransitRoute>& routes() const { return routes_; }
  const TransitRoute& GetRoute(RouteId id) const {
    return routes_[id.value()];
  }
  const std::vector<TransitTrip>& trips() const { return trips_; }
  const std::vector<Connection>& connections() const { return connections_; }
  const std::vector<Transfer>& TransfersFrom(StopId stop) const {
    return transfers_[stop.value()];
  }

  /// Stops within `radius_m` straight-line meters of `p`.
  std::vector<StopId> StopsNear(const LatLng& p, double radius_m) const;

  std::size_t MemoryFootprint() const;

 private:
  std::vector<Stop> stops_;
  std::vector<TransitRoute> routes_;
  std::vector<TransitTrip> trips_;
  std::vector<Connection> connections_;
  std::vector<std::vector<Transfer>> transfers_;  // indexed by stop
  bool finalized_ = false;
};

}  // namespace xar

#endif  // XAR_TRANSIT_TIMETABLE_H_
