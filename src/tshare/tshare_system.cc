#include "tshare/tshare_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "xar/route_utils.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

TShareSystem::TShareSystem(const RoadGraph& graph,
                           const SpatialNodeIndex& spatial,
                           DistanceOracle& routing_oracle,
                           TShareOptions options,
                           DistanceOracle* search_oracle)
    : graph_(graph),
      spatial_(spatial),
      oracle_(routing_oracle),
      search_oracle_(search_oracle != nullptr ? *search_oracle
                                              : routing_oracle),
      options_(options),
      grid_(graph.bounds(), options.grid_cell_m),
      cell_lists_(grid_.CellCount()) {}

void TShareSystem::IndexRideCells(const Ride& ride) {
  // Insert the taxi into the temporal list of every grid its route crosses,
  // keyed by the ETA of the first route node inside the cell.
  GridId prev = GridId::Invalid();
  for (std::size_t j = 0; j < ride.route.nodes.size(); ++j) {
    GridId g = grid_.GridOf(graph_.PositionOf(ride.route.nodes[j]));
    if (g == prev) continue;
    prev = g;
    if (!cell_lists_[g.value()].Contains(ride.id)) {
      cell_lists_[g.value()].Upsert(
          ride.id, ride.departure_time_s + ride.route_cum_time_s[j], 0.0);
    }
  }
}

void TShareSystem::DeindexRideCells(const Ride& ride) {
  GridId prev = GridId::Invalid();
  for (std::size_t j = 0; j < ride.route.nodes.size(); ++j) {
    GridId g = grid_.GridOf(graph_.PositionOf(ride.route.nodes[j]));
    if (g == prev) continue;
    prev = g;
    cell_lists_[g.value()].Remove(ride.id);
  }
}

Result<RideId> TShareSystem::CreateRide(const RideOffer& offer) {
  NodeId src = spatial_.NearestNode(offer.source);
  NodeId dst = spatial_.NearestNode(offer.destination);
  if (src == dst) {
    return Status::InvalidArgument("ride source and destination coincide");
  }
  Path route = oracle_.DriveRoute(src, dst);
  if (!route.Found()) {
    return Status::NotFound("no drivable route between offer endpoints");
  }

  Ride ride;
  ride.id = RideId(static_cast<RideId::underlying_type>(rides_.size()));
  ride.source = src;
  ride.destination = dst;
  ride.departure_time_s = offer.departure_time_s;
  ride.seats_total = offer.seats >= 0 ? offer.seats : options_.default_seats;
  ride.seats_available = ride.seats_total;
  ride.detour_limit_m = offer.detour_limit_m >= 0
                            ? offer.detour_limit_m
                            : options_.default_detour_limit_m;
  ride.route = std::move(route);
  BuildCumulativeProfiles(graph_, ride.route.nodes, &ride.route_cum_time_s,
                          &ride.route_cum_dist_m);
  ride.via_points = {
      ViaPoint{src, offer.departure_time_s, RequestId::Invalid(), false},
      ViaPoint{dst, offer.departure_time_s + ride.route_cum_time_s.back(),
               RequestId::Invalid(), false}};
  ride.via_route_index = {0, ride.route.nodes.size() - 1};

  rides_.push_back(std::move(ride));
  ++active_rides_;
  const Ride& stored = rides_.back();
  IndexRideCells(stored);
  events_.emplace(stored.ArrivalTimeS(), stored.id);
  return stored.id;
}


double TShareSystem::BestInsertion(const Ride& ride, NodeId node,
                                   std::size_t from_segment,
                                   std::size_t* segment) {
  double best = kInf;
  for (std::size_t s = from_segment; s + 1 <= ride.NumSegments() &&
                                     s + 1 < ride.via_points.size();
       ++s) {
    NodeId a = ride.via_points[s].node;
    NodeId b = ride.via_points[s + 1].node;
    double seg_len = ride.route_cum_dist_m[ride.via_route_index[s + 1]] -
                     ride.route_cum_dist_m[ride.via_route_index[s]];
    search_sp_count_ += 2;  // the lazy shortest-path cost of T-Share search
    double detour = search_oracle_.DriveDistance(a, node) +
                    search_oracle_.DriveDistance(node, b) - seg_len;
    if (detour < best) {
      best = detour;
      *segment = s;
    }
  }
  return std::max(0.0, best);
}

std::vector<TShareMatch> TShareSystem::Search(const RideRequest& request,
                                              std::size_t k) {
  NodeId origin = spatial_.NearestNode(request.source);
  NodeId dest = spatial_.NearestNode(request.destination);
  double t_begin =
      request.earliest_departure_s - options_.eta_window_slack_s;
  double t_end = request.latest_departure_s + options_.eta_window_slack_s;

  // Incremental dual-side expansion (Ma et al. Section 5): grids around the
  // origin are explored in increasing distance order; each temporally
  // compatible taxi discovered is immediately verified with exact (lazy)
  // insertion-detour computations for pickup AND drop-off. The search stops
  // as soon as k feasible matches are found, or the grid budget is spent —
  // so the cost scales with how many matches are requested, unlike XAR.
  std::vector<TShareMatch> matches;
  std::vector<bool> seen(rides_.size(), false);
  GridId center = grid_.GridOf(request.source);
  std::size_t explored = 0;
  bool done = false;
  for (std::size_t ring = 0;
       !done && explored < options_.max_grids_explored; ++ring) {
    std::vector<GridId> cells = grid_.Ring(center, ring);
    if (cells.empty() && ring > 0) break;  // ran off the map
    // Taxis in an outer ring spend extra time driving to the requester:
    // widen the temporal probe accordingly.
    double ring_travel_s =
        static_cast<double>(ring) * options_.grid_cell_m / 8.33;
    for (GridId g : cells) {
      if (done || explored >= options_.max_grids_explored) break;
      ++explored;
      for (const PotentialRide& pr :
           cell_lists_[g.value()].EtaRange(t_begin - ring_travel_s, t_end)) {
        if (seen[pr.ride.value()]) continue;
        seen[pr.ride.value()] = true;
        const Ride& ride = rides_[pr.ride.value()];
        if (!ride.active || ride.seats_available < request.seats) continue;

        TShareMatch m;
        m.ride = pr.ride;
        m.pickup_node = origin;
        m.dropoff_node = dest;
        m.eta_source_s = pr.eta_s;
        double pickup_detour =
            BestInsertion(ride, origin, 0, &m.pickup_segment);
        if (pickup_detour > ride.RemainingDetourBudget()) continue;
        double dropoff_detour =
            BestInsertion(ride, dest, m.pickup_segment, &m.dropoff_segment);
        m.detour_m = pickup_detour + dropoff_detour;
        if (m.detour_m > ride.RemainingDetourBudget()) continue;
        matches.push_back(m);
        if (k > 0 && matches.size() >= k) {
          done = true;  // original T-Share early exit at k matches
          break;
        }
      }
    }
  }

  std::sort(matches.begin(), matches.end(),
            [](const TShareMatch& a, const TShareMatch& b) {
              if (a.detour_m != b.detour_m) return a.detour_m < b.detour_m;
              return a.ride < b.ride;
            });
  return matches;
}

Result<BookingRecord> TShareSystem::Book(RideId ride_id,
                                         const RideRequest& request,
                                         const TShareMatch& match) {
  if (ride_id.value() >= rides_.size()) {
    return Status::NotFound("unknown ride");
  }
  Ride& ride = MutableRide(ride_id);
  if (!ride.active) return Status::FailedPrecondition("ride already finished");
  if (ride.seats_available < request.seats) {
    return Status::ResourceExhausted("no seats left on ride");
  }
  std::size_t s = match.pickup_segment;
  std::size_t d = match.dropoff_segment;
  if (s >= ride.NumSegments() || d >= ride.NumSegments()) {
    return Status::FailedPrecondition("match is stale: segments changed");
  }
  if (d < s) d = s;

  DeindexRideCells(ride);

  double old_length = ride.route_cum_dist_m.back();
  std::size_t sp_count = 0;
  bool ok = true;
  std::vector<NodeId> new_nodes;
  std::vector<ViaPoint> new_vias;
  std::vector<std::size_t> new_via_idx;

  auto copy_route_span = [&](std::size_t from_idx, std::size_t to_idx) {
    for (std::size_t r = from_idx; r <= to_idx; ++r) {
      if (!new_nodes.empty() && new_nodes.back() == ride.route.nodes[r])
        continue;
      new_nodes.push_back(ride.route.nodes[r]);
    }
  };
  auto splice_leg = [&](NodeId from, NodeId to) {
    if (from == to) return;
    ++sp_count;
    Path leg = oracle_.DriveRoute(from, to);
    if (!leg.Found()) {
      ok = false;
      return;
    }
    AppendPathNodes(&new_nodes, leg.nodes);
  };

  ViaPoint pickup_via{match.pickup_node, 0.0, request.id, true};
  ViaPoint dropoff_via{match.dropoff_node, 0.0, request.id, false};

  if (s == d) {
    copy_route_span(0, ride.via_route_index[s]);
    for (std::size_t v = 0; v <= s; ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(ride.via_route_index[v]);
    }
    splice_leg(ride.via_points[s].node, match.pickup_node);
    new_vias.push_back(pickup_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(match.pickup_node, match.dropoff_node);
    new_vias.push_back(dropoff_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(match.dropoff_node, ride.via_points[s + 1].node);
    std::size_t resume = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[s + 1], ride.route.nodes.size() - 1);
    for (std::size_t v = s + 1; v < ride.via_points.size(); ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(resume + (ride.via_route_index[v] -
                                      ride.via_route_index[s + 1]));
    }
  } else {
    copy_route_span(0, ride.via_route_index[s]);
    for (std::size_t v = 0; v <= s; ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(ride.via_route_index[v]);
    }
    splice_leg(ride.via_points[s].node, match.pickup_node);
    new_vias.push_back(pickup_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(match.pickup_node, ride.via_points[s + 1].node);
    std::size_t anchor = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[s + 1], ride.via_route_index[d]);
    for (std::size_t v = s + 1; v <= d; ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(anchor + (ride.via_route_index[v] -
                                      ride.via_route_index[s + 1]));
    }
    splice_leg(ride.via_points[d].node, match.dropoff_node);
    new_vias.push_back(dropoff_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(match.dropoff_node, ride.via_points[d + 1].node);
    std::size_t resume = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[d + 1], ride.route.nodes.size() - 1);
    for (std::size_t v = d + 1; v < ride.via_points.size(); ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(resume + (ride.via_route_index[v] -
                                      ride.via_route_index[d + 1]));
    }
  }

  if (!ok) {
    IndexRideCells(ride);  // restore the old index entries
    return Status::Internal("booking splice found an unreachable leg");
  }

  ride.route.nodes = std::move(new_nodes);
  BuildCumulativeProfiles(graph_, ride.route.nodes, &ride.route_cum_time_s,
                          &ride.route_cum_dist_m);
  ride.route.length_m = ride.route_cum_dist_m.back();
  ride.route.time_s = ride.route_cum_time_s.back();
  ride.via_points = std::move(new_vias);
  ride.via_route_index = std::move(new_via_idx);
  for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
    ride.via_points[v].eta_s =
        ride.departure_time_s + ride.route_cum_time_s[ride.via_route_index[v]];
  }

  double actual_detour = ride.route_cum_dist_m.back() - old_length;
  ride.detour_used_m += std::max(0.0, actual_detour);
  ride.seats_available -= request.seats;
  IndexRideCells(ride);
  events_.emplace(ride.ArrivalTimeS(), ride.id);

  BookingRecord record;
  record.request = request.id;
  record.ride = ride_id;
  record.pickup_node = match.pickup_node;
  record.dropoff_node = match.dropoff_node;
  record.actual_detour_m = std::max(0.0, actual_detour);
  record.estimated_detour_m = match.detour_m;
  record.walk_m = 0.0;  // T-Share detours to the door
  record.shortest_path_computations = sp_count;
  for (const ViaPoint& vp : ride.via_points) {
    if (vp.request == request.id) {
      (vp.is_pickup ? record.pickup_eta_s : record.dropoff_eta_s) = vp.eta_s;
    }
  }
  bookings_.push_back(record);
  return record;
}

void TShareSystem::AdvanceTime(double now_s) {
  clock_.AdvanceTo(now_s);
  while (!events_.empty() && events_.top().first < now_s) {
    auto [when, ride_id] = events_.top();
    events_.pop();
    Ride& ride = MutableRide(ride_id);
    if (!ride.active) continue;
    if (ride.ArrivalTimeS() <= now_s) {
      ride.active = false;
      --active_rides_;
      DeindexRideCells(ride);
    } else {
      events_.emplace(ride.ArrivalTimeS(), ride_id);
    }
  }
}

const Ride* TShareSystem::GetRide(RideId id) const {
  if (id.value() >= rides_.size()) return nullptr;
  return &rides_[id.value()];
}

std::size_t TShareSystem::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const ClusterRideList& list : cell_lists_) {
    bytes += list.MemoryFootprint();
  }
  for (const Ride& r : rides_) {
    bytes += sizeof(r) + r.route.nodes.capacity() * sizeof(NodeId) +
             (r.route_cum_time_s.capacity() + r.route_cum_dist_m.capacity()) *
                 sizeof(double) +
             r.via_points.capacity() * sizeof(ViaPoint) +
             r.via_route_index.capacity() * sizeof(std::size_t);
  }
  bytes += bookings_.capacity() * sizeof(BookingRecord);
  return bytes;
}

}  // namespace xar
