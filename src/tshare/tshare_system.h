#ifndef XAR_TSHARE_TSHARE_SYSTEM_H_
#define XAR_TSHARE_TSHARE_SYSTEM_H_

#include <cstddef>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "geo/grid.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"
#include "match/cluster_ride_list.h"
#include "xar/ride.h"

namespace xar {

/// Configuration of the T-Share re-implementation.
struct TShareOptions {
  /// Grid cell size. The paper's benchmark sets 1000 m ("equivalent to the
  /// cluster size of XAR").
  double grid_cell_m = 1000.0;

  /// Cap on explored neighbor grids per search side (paper: 80 grids ≈ 4 km
  /// max taxi detour in their NY setup).
  std::size_t max_grids_explored = 80;

  double default_detour_limit_m = 4000.0;
  int default_seats = 3;
  double eta_window_slack_s = 240.0;
  double max_onboard_s = 2700.0;
};

/// A candidate match produced by T-Share's dual-side search. Unlike XAR,
/// T-Share taxis detour to the requester's exact origin/destination nodes,
/// so there is no walking leg; the detour below is the *exact* insertion
/// detour computed with (lazy) shortest paths during search.
struct TShareMatch {
  RideId ride;
  NodeId pickup_node;
  NodeId dropoff_node;
  double detour_m = 0.0;       ///< exact combined insertion detour
  double eta_source_s = 0.0;   ///< taxi ETA at the pickup grid
  std::size_t pickup_segment = 0;
  std::size_t dropoff_segment = 0;
};

/// Re-implementation of T-Share (Ma, Zheng, Wolfson, ICDE 2013) following
/// the description in the XAR paper: a flat grid spatio-temporal index with
/// per-grid temporally ordered taxi lists, dual-side expanding grid search,
/// and lazy shortest-path feasibility checks *during search*. The search
/// cost therefore scales with the candidate count and with how many matches
/// are requested — the contrast XAR's Figures 4-5 measure.
///
/// `routing_oracle` computes real routes for ride creation and booking.
/// `search_oracle` is what the lazy feasibility checks in Search use: pass
/// the same GraphOracle for the real system, or a HaversineOracle for the
/// "no shortest path" variant of Fig. 5a (nullptr = use routing_oracle).
class TShareSystem {
 public:
  TShareSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
               DistanceOracle& routing_oracle, TShareOptions options = {},
               DistanceOracle* search_oracle = nullptr);

  TShareSystem(const TShareSystem&) = delete;
  TShareSystem& operator=(const TShareSystem&) = delete;

  /// Registers a taxi ride: computes its route and inserts it into the
  /// temporal list of every grid the route passes through.
  Result<RideId> CreateRide(const RideOffer& offer);

  /// Dual-side search. Expands grids outward from the request's origin and
  /// destination (up to the grid cap), collects temporally compatible taxis
  /// and verifies each candidate with exact insertion-detour computations.
  /// Returns up to `k` feasible matches (0 = all), ordered by detour.
  std::vector<TShareMatch> Search(const RideRequest& request,
                                  std::size_t k = 0);

  /// Books a verified match: splices the route at the chosen segments and
  /// refreshes the grid lists along the changed route.
  Result<BookingRecord> Book(RideId ride, const RideRequest& request,
                             const TShareMatch& match);

  /// Retires rides that have arrived before `now_s`.
  void AdvanceTime(double now_s);

  const Ride* GetRide(RideId id) const;
  std::size_t NumRides() const { return rides_.size(); }
  std::size_t NumActiveRides() const { return active_rides_; }
  double Now() const { return clock_.Now(); }

  /// Shortest-path computations incurred by Search so far (lazy SP count).
  std::size_t search_sp_count() const { return search_sp_count_; }

  std::size_t MemoryFootprint() const;

 private:
  /// Exact minimum insertion detour of `node` over the segments of `ride`
  /// at or after `from_segment`; fills the chosen segment. Uses 2 oracle
  /// distance queries per segment plus cached segment lengths.
  double BestInsertion(const Ride& ride, NodeId node,
                       std::size_t from_segment, std::size_t* segment);

  void IndexRideCells(const Ride& ride);
  void DeindexRideCells(const Ride& ride);
  Ride& MutableRide(RideId id) { return rides_[id.value()]; }

  const RoadGraph& graph_;
  const SpatialNodeIndex& spatial_;
  DistanceOracle& oracle_;         // routing (create/book)
  DistanceOracle& search_oracle_;  // lazy checks in Search
  TShareOptions options_;
  GridSpec grid_;

  std::vector<ClusterRideList> cell_lists_;  // one temporal list per grid
  std::vector<Ride> rides_;
  std::vector<BookingRecord> bookings_;
  VirtualClock clock_;
  std::size_t active_rides_ = 0;
  std::size_t search_sp_count_ = 0;

  using Event = std::pair<double, RideId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

}  // namespace xar

#endif  // XAR_TSHARE_TSHARE_SYSTEM_H_
