#ifndef XAR_WORKLOAD_TAXI_TRIP_H_
#define XAR_WORKLOAD_TAXI_TRIP_H_

#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"

namespace xar {

/// One taxi trip record: the reproduction's stand-in for a row of the NY
/// taxi trip dataset (pickup time, pickup location, drop-off location).
/// The simulation framework treats every trip as a ride-share request.
struct TaxiTrip {
  RequestId id;
  double pickup_time_s = 0.0;  ///< seconds since midnight
  LatLng pickup;
  LatLng dropoff;
};

/// Returns the subset of `trips` with pickup time in [begin_s, end_s).
std::vector<TaxiTrip> FilterByTimeWindow(const std::vector<TaxiTrip>& trips,
                                         double begin_s, double end_s);

}  // namespace xar

#endif  // XAR_WORKLOAD_TAXI_TRIP_H_
