#include "workload/trip_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace xar {

std::vector<TaxiTrip> FilterByTimeWindow(const std::vector<TaxiTrip>& trips,
                                         double begin_s, double end_s) {
  std::vector<TaxiTrip> out;
  for (const TaxiTrip& t : trips) {
    if (t.pickup_time_s >= begin_s && t.pickup_time_s < end_s) {
      out.push_back(t);
    }
  }
  return out;
}

const double* HourlyArrivalProfile() {
  // Hand-shaped to the published NYC yellow-cab diurnal curve: overnight
  // trough, morning peak 7-9, steady midday, evening peak 17-20, late tail.
  static const double kRaw[24] = {
      1.6, 1.0, 0.7, 0.5, 0.5, 0.9,  // 00-05
      2.2, 4.6, 5.8, 5.2, 4.5, 4.6,  // 06-11
      4.9, 4.8, 4.9, 4.6, 4.4, 5.4,  // 12-17
      6.4, 6.6, 6.0, 5.6, 4.9, 3.0,  // 18-23
  };
  static double normalized[24];
  static bool init = [] {
    double sum = 0;
    for (double w : kRaw) sum += w;
    for (int i = 0; i < 24; ++i) normalized[i] = kRaw[i] / sum;
    return true;
  }();
  (void)init;
  return normalized;
}

namespace {

struct Hotspot {
  LatLng center;
  double weight;
};

LatLng ClampToBounds(LatLng p, const BoundingBox& b) {
  p.lat = std::clamp(p.lat, b.min_lat, b.max_lat);
  p.lng = std::clamp(p.lng, b.min_lng, b.max_lng);
  return p;
}

LatLng SamplePoint(const BoundingBox& bounds,
                   const std::vector<Hotspot>& hotspots, double sigma_m,
                   double background_fraction, Rng& rng) {
  if (rng.Bernoulli(background_fraction)) {
    return LatLng{rng.Uniform(bounds.min_lat, bounds.max_lat),
                  rng.Uniform(bounds.min_lng, bounds.max_lng)};
  }
  std::vector<double> weights;
  weights.reserve(hotspots.size());
  for (const Hotspot& h : hotspots) weights.push_back(h.weight);
  const Hotspot& h = hotspots[rng.Weighted(weights)];
  LatLng p = OffsetMeters(h.center, rng.Normal(0.0, sigma_m),
                          rng.Normal(0.0, sigma_m));
  return ClampToBounds(p, bounds);
}

}  // namespace

std::vector<TaxiTrip> GenerateTrips(const BoundingBox& bounds,
                                    const WorkloadOptions& opt) {
  assert(opt.num_hotspots >= 1);
  Rng rng(opt.seed);

  // Hotspot layout: a dominant CBD near the center, secondary centers spread
  // around it with decaying weights.
  std::vector<Hotspot> hotspots;
  LatLng cbd = bounds.Center();
  hotspots.push_back(Hotspot{cbd, 3.0});
  double spread_w = bounds.WidthMeters() * 0.35;
  double spread_h = bounds.HeightMeters() * 0.35;
  for (std::size_t i = 1; i < opt.num_hotspots; ++i) {
    LatLng c = ClampToBounds(
        OffsetMeters(cbd, rng.Uniform(-spread_w, spread_w),
                     rng.Uniform(-spread_h, spread_h)),
        bounds);
    hotspots.push_back(Hotspot{c, 1.0});
  }

  const double* profile = HourlyArrivalProfile();
  std::vector<double> hour_weights(profile, profile + 24);

  std::vector<TaxiTrip> trips;
  trips.reserve(opt.num_trips);
  for (std::size_t i = 0; i < opt.num_trips; ++i) {
    TaxiTrip trip;
    trip.id = RequestId(static_cast<RequestId::underlying_type>(i));
    std::size_t hour = rng.Weighted(hour_weights);
    trip.pickup_time_s =
        static_cast<double>(hour) * 3600.0 + rng.Uniform(0.0, 3600.0);

    // Commute bias: in the morning (<12h) the dropoff gravitates to the CBD;
    // in the evening the pickup does.
    bool morning = hour < 12;
    bool biased = rng.Bernoulli(opt.commute_bias);
    for (int attempt = 0; attempt < 64; ++attempt) {
      LatLng a = SamplePoint(bounds, hotspots, opt.hotspot_sigma_m,
                             opt.background_fraction, rng);
      LatLng b;
      if (biased) {
        b = ClampToBounds(OffsetMeters(cbd, rng.Normal(0, opt.hotspot_sigma_m),
                                       rng.Normal(0, opt.hotspot_sigma_m)),
                          bounds);
      } else {
        b = SamplePoint(bounds, hotspots, opt.hotspot_sigma_m,
                        opt.background_fraction, rng);
      }
      if (morning || !biased) {
        trip.pickup = a;
        trip.dropoff = b;
      } else {
        trip.pickup = b;  // evening: leave the CBD
        trip.dropoff = a;
      }
      if (HaversineMeters(trip.pickup, trip.dropoff) >= opt.min_trip_m) break;
    }
    trips.push_back(trip);
  }

  std::sort(trips.begin(), trips.end(),
            [](const TaxiTrip& a, const TaxiTrip& b) {
              return a.pickup_time_s < b.pickup_time_s;
            });
  // Re-densify ids in time order so downstream logs read naturally.
  for (std::size_t i = 0; i < trips.size(); ++i) {
    trips[i].id = RequestId(static_cast<RequestId::underlying_type>(i));
  }
  return trips;
}

}  // namespace xar
