#ifndef XAR_WORKLOAD_TRIP_GENERATOR_H_
#define XAR_WORKLOAD_TRIP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "geo/latlng.h"
#include "workload/taxi_trip.h"

namespace xar {

/// Parameters for the NYC-like synthetic trip workload (DESIGN.md §1).
///
/// Spatial model: a mixture of Gaussian hotspots (a dominant CBD plus
/// secondary centers) over the city bounding box, plus a uniform background.
/// Temporal model: hourly arrival weights with morning and evening rush
/// peaks. Directionality: morning trips bias toward the CBD, evening trips
/// away from it, mirroring commute asymmetry in the real data.
struct WorkloadOptions {
  std::size_t num_trips = 10000;
  std::size_t num_hotspots = 5;     ///< including the CBD
  double hotspot_sigma_m = 900.0;   ///< spatial spread of each hotspot
  double background_fraction = 0.15;///< trips drawn uniformly over the box
  double min_trip_m = 800.0;        ///< resample pairs closer than this
  double commute_bias = 0.6;        ///< strength of the toward/away-CBD bias
  std::uint64_t seed = 7;
};

/// Generates `options.num_trips` trips inside `bounds`, sorted by pickup
/// time, with dense ids 0..n-1. Deterministic in the seed.
std::vector<TaxiTrip> GenerateTrips(const BoundingBox& bounds,
                                    const WorkloadOptions& options);

/// The 24 hourly arrival weights used by GenerateTrips (exposed for tests
/// and for plotting the workload shape). Sums to 1.
const double* HourlyArrivalProfile();

}  // namespace xar

#endif  // XAR_WORKLOAD_TRIP_GENERATOR_H_
