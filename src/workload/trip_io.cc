#include "workload/trip_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xar {

Result<std::vector<TaxiTrip>> LoadTripsFromCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  std::vector<TaxiTrip> trips;
  char buf[512];
  std::size_t line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    if (buf[0] == '#' || buf[0] == '\n') continue;
    double t, plat, plng, dlat, dlng;
    int parsed = std::sscanf(buf, "%lf,%lf,%lf,%lf,%lf", &t, &plat, &plng,
                             &dlat, &dlng);
    if (parsed != 5) {
      if (line_no == 1) continue;  // header
      std::fclose(f);
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_no));
    }
    if (t < 0 || plat < -90 || plat > 90 || dlat < -90 || dlat > 90 ||
        plng < -180 || plng > 180 || dlng < -180 || dlng > 180) {
      std::fclose(f);
      return Status::InvalidArgument(path + ": out-of-range values, line " +
                                     std::to_string(line_no));
    }
    TaxiTrip trip;
    trip.pickup_time_s = t;
    trip.pickup = LatLng{plat, plng};
    trip.dropoff = LatLng{dlat, dlng};
    trips.push_back(trip);
  }
  std::fclose(f);

  std::sort(trips.begin(), trips.end(),
            [](const TaxiTrip& a, const TaxiTrip& b) {
              return a.pickup_time_s < b.pickup_time_s;
            });
  for (std::size_t i = 0; i < trips.size(); ++i) {
    trips[i].id = RequestId(static_cast<RequestId::underlying_type>(i));
  }
  return trips;
}

Status WriteTripsCsv(const std::vector<TaxiTrip>& trips,
                     const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot write " + path);
  std::fprintf(f, "pickup_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n");
  for (const TaxiTrip& t : trips) {
    std::fprintf(f, "%.1f,%.7f,%.7f,%.7f,%.7f\n", t.pickup_time_s,
                 t.pickup.lat, t.pickup.lng, t.dropoff.lat, t.dropoff.lng);
  }
  if (std::fclose(f) != 0) return Status::Internal("write failed");
  return Status::OK();
}

}  // namespace xar
