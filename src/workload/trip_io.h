#ifndef XAR_WORKLOAD_TRIP_IO_H_
#define XAR_WORKLOAD_TRIP_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "workload/taxi_trip.h"

namespace xar {

/// Loads a trip stream from a CSV with fields
/// `pickup_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng`
/// (the schema of the paper's NYC taxi extract, with the pickup time as
/// seconds since midnight). Lines starting with `#` and a header line are
/// skipped. Trips are returned sorted by pickup time with dense ids.
Result<std::vector<TaxiTrip>> LoadTripsFromCsv(const std::string& path);

/// Writes trips in the same format (for generating shareable workloads).
Status WriteTripsCsv(const std::vector<TaxiTrip>& trips,
                     const std::string& path);

}  // namespace xar

#endif  // XAR_WORKLOAD_TRIP_IO_H_
