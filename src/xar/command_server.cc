#include "xar/command_server.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace xar {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool ParseU32(const std::string& s, std::uint32_t* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

std::string Err(const std::string& message) { return "ERR " + message; }

constexpr char kHelp[] =
    "OK COMMANDS\n"
    "CREATE <slat> <slng> <dlat> <dlng> <depart> [seats] [detour_m]\n"
    "SEARCH <req_id> <slat> <slng> <dlat> <dlng> <t0> <t1> [walk_m] [k]\n"
    "BOOK <req_id> <ride_id>\n"
    "CANCELBOOKING <ride_id> <req_id>\n"
    "CANCELRIDE <ride_id>\n"
    "ADVANCE <now_s>\n"
    "RIDE <ride_id>\n"
    "REFRESH\n"
    "STATS [section]";

}  // namespace

CommandServer::CommandServer(XarSystem& system) : system_(system) {
  // One provider per stats section; STATS snapshots them on demand.
  stats_registry_.Register("system", [this] {
    StatsSection section;
    section.name = "system";
    section.AddRow(
        {StatsMetric::Counter("rides", system_.NumRides()),
         StatsMetric::Counter("active", system_.NumActiveRides()),
         StatsMetric::Counter("bookings", system_.bookings().size()),
         StatsMetric::Gauge("now", system_.Now(), 0),
         StatsMetric::Counter("index_bytes", system_.MemoryFootprint())});
    return section;
  });
  stats_registry_.Register(
      "match", [this] { return MatchStatsSection(system_.match_index().stats()); });
  stats_registry_.Register(
      "refresh", [this] { return RefreshStatsSection(system_.refresh_stats()); });
  stats_registry_.Register("pooling", [this] {
    return PoolingStatsSection(system_.pooling_stats());
  });
  stats_registry_.Register(
      "oracle", [this] { return OracleStatsSection(system_.oracle()); });
  stats_registry_.Register("preprocess", [this] {
    const RoutingBackend* backend = system_.oracle().routing_backend();
    if (backend != nullptr) return PreprocessStatsSection(*backend);
    StatsSection section;
    section.name = "preprocess";
    return section;
  });
}

std::string CommandServer::Execute(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Err("empty command");
  const std::string& cmd = tokens[0];
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "CREATE") return HandleCreate(args);
  if (cmd == "SEARCH") return HandleSearch(args);
  if (cmd == "BOOK") return HandleBook(args);
  if (cmd == "CANCELBOOKING") return HandleCancelBooking(args);
  if (cmd == "CANCELRIDE") return HandleCancelRide(args);
  if (cmd == "ADVANCE") return HandleAdvance(args);
  if (cmd == "RIDE") return HandleRide(args);
  if (cmd == "REFRESH") return HandleRefresh();
  if (cmd == "STATS") return HandleStats(args);
  if (cmd == "HELP") return kHelp;
  return Err("unknown command " + cmd + " (try HELP)");
}

std::string CommandServer::HandleCreate(
    const std::vector<std::string>& args) {
  if (args.size() < 5 || args.size() > 7) {
    return Err("usage: CREATE slat slng dlat dlng depart [seats] [detour_m]");
  }
  double v[5];
  for (int i = 0; i < 5; ++i) {
    if (!ParseDouble(args[static_cast<std::size_t>(i)], &v[i])) {
      return Err("bad number: " + args[static_cast<std::size_t>(i)]);
    }
  }
  RideOffer offer;
  offer.source = {v[0], v[1]};
  offer.destination = {v[2], v[3]};
  offer.departure_time_s = v[4];
  if (args.size() >= 6) {
    double seats;
    if (!ParseDouble(args[5], &seats)) return Err("bad seats");
    offer.seats = static_cast<int>(seats);
  }
  if (args.size() == 7) {
    if (!ParseDouble(args[6], &offer.detour_limit_m)) {
      return Err("bad detour limit");
    }
  }
  Result<RideId> ride = system_.CreateRide(offer);
  if (!ride.ok()) return Err(ride.status().ToString());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "OK RIDE %u", ride->value());
  return buf;
}

std::string CommandServer::HandleSearch(
    const std::vector<std::string>& args) {
  if (args.size() < 7 || args.size() > 9) {
    return Err("usage: SEARCH req_id slat slng dlat dlng t0 t1 [walk] [k]");
  }
  std::uint32_t req_id;
  if (!ParseU32(args[0], &req_id)) return Err("bad request id");
  double v[6];
  for (int i = 0; i < 6; ++i) {
    if (!ParseDouble(args[static_cast<std::size_t>(i + 1)], &v[i])) {
      return Err("bad number: " + args[static_cast<std::size_t>(i + 1)]);
    }
  }
  RideRequest request;
  request.id = RequestId(req_id);
  request.source = {v[0], v[1]};
  request.destination = {v[2], v[3]};
  request.earliest_departure_s = v[4];
  request.latest_departure_s = v[5];
  std::size_t k = 0;
  if (args.size() >= 8 && !ParseDouble(args[7], &request.walk_limit_m)) {
    return Err("bad walk limit");
  }
  if (args.size() == 9) {
    std::uint32_t kk;
    if (!ParseU32(args[8], &kk)) return Err("bad k");
    k = kk;
  }

  std::vector<RideMatch> matches = system_.SearchTopK(request, k);
  pending_[request.id] = PendingSearch{request, matches};

  char head[64];
  std::snprintf(head, sizeof(head), "OK MATCHES %zu", matches.size());
  std::string out = head;
  for (const RideMatch& m : matches) {
    char row[128];
    std::snprintf(row, sizeof(row),
                  "\nMATCH ride=%u walk_m=%.0f eta_s=%.0f detour_m=%.0f",
                  m.ride.value(), m.TotalWalkM(), m.eta_source_s,
                  m.detour_estimate_m);
    out += row;
  }
  return out;
}

std::string CommandServer::HandleBook(const std::vector<std::string>& args) {
  if (args.size() != 2) return Err("usage: BOOK req_id ride_id");
  std::uint32_t req_id, ride_id;
  if (!ParseU32(args[0], &req_id) || !ParseU32(args[1], &ride_id)) {
    return Err("bad id");
  }
  auto it = pending_.find(RequestId(req_id));
  if (it == pending_.end()) {
    return Err("no prior SEARCH for request " + args[0]);
  }
  const RideMatch* match = nullptr;
  for (const RideMatch& m : it->second.matches) {
    if (m.ride == RideId(ride_id)) {
      match = &m;
      break;
    }
  }
  if (match == nullptr) {
    return Err("ride " + args[1] + " was not in the search results");
  }
  Result<BookingRecord> booking =
      system_.Book(RideId(ride_id), it->second.request, *match);
  if (!booking.ok()) return Err(booking.status().ToString());
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "OK BOOKED ride=%u pickup_eta=%.0f dropoff_eta=%.0f "
                "detour_m=%.0f walk_m=%.0f",
                ride_id, booking->pickup_eta_s, booking->dropoff_eta_s,
                booking->actual_detour_m, booking->walk_m);
  pending_.erase(it);
  return buf;
}

std::string CommandServer::HandleCancelBooking(
    const std::vector<std::string>& args) {
  if (args.size() != 2) return Err("usage: CANCELBOOKING ride_id req_id");
  std::uint32_t ride_id, req_id;
  if (!ParseU32(args[0], &ride_id) || !ParseU32(args[1], &req_id)) {
    return Err("bad id");
  }
  Status status =
      system_.CancelBooking(RideId(ride_id), RequestId(req_id));
  return status.ok() ? "OK CANCELLED" : Err(status.ToString());
}

std::string CommandServer::HandleCancelRide(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Err("usage: CANCELRIDE ride_id");
  std::uint32_t ride_id;
  if (!ParseU32(args[0], &ride_id)) return Err("bad id");
  Status status = system_.CancelRide(RideId(ride_id));
  return status.ok() ? "OK CANCELLED" : Err(status.ToString());
}

std::string CommandServer::HandleAdvance(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Err("usage: ADVANCE now_s");
  double now;
  if (!ParseDouble(args[0], &now)) return Err("bad time");
  system_.AdvanceTime(now);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "OK NOW %.0f", system_.Now());
  return buf;
}

std::string CommandServer::HandleRide(const std::vector<std::string>& args) {
  if (args.size() != 1) return Err("usage: RIDE ride_id");
  std::uint32_t ride_id;
  if (!ParseU32(args[0], &ride_id)) return Err("bad id");
  const Ride* ride = system_.GetRide(RideId(ride_id));
  if (ride == nullptr) return Err("unknown ride");
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "OK RIDE %u active=%d seats=%d/%d route_m=%.0f "
                "detour_used_m=%.0f via_points=%zu",
                ride_id, ride->active ? 1 : 0, ride->seats_available,
                ride->seats_total, ride->route.length_m, ride->detour_used_m,
                ride->via_points.size());
  return buf;
}

std::string CommandServer::HandleRefresh() {
  RefreshStats stats = system_.RefreshDiscretization();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "OK REFRESH epoch=%llu rehomed=%zu rebuild_ms=%.1f",
                static_cast<unsigned long long>(stats.epoch),
                stats.last_rides_rehomed, stats.last_rebuild_ms);
  return buf;
}

std::string CommandServer::HandleStats(
    const std::vector<std::string>& args) {
  if (args.size() > 1) return Err("usage: STATS [section]");
  auto render = [](const StatsSection& section) {
    std::string out;
    for (const std::vector<StatsMetric>& row : section.rows) {
      out += "\n" + section.name;
      for (const StatsMetric& m : row) out += " " + m.name + "=" + m.value;
    }
    return out;
  };
  if (args.size() == 1) {
    std::optional<StatsSection> section = stats_registry_.Snapshot(args[0]);
    if (!section) {
      std::string names;
      for (const std::string& name : stats_registry_.SectionNames()) {
        names += (names.empty() ? "" : ", ") + name;
      }
      return Err("unknown stats section \"" + args[0] + "\" (sections: " +
                 names + ")");
    }
    return "OK STATS" + render(*section);
  }
  std::string out = "OK STATS";
  for (const StatsSection& section : stats_registry_.SnapshotAll()) {
    out += render(section);
  }
  return out;
}

}  // namespace xar
