#ifndef XAR_XAR_COMMAND_SERVER_H_
#define XAR_XAR_COMMAND_SERVER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats_registry.h"
#include "xar/xar_system.h"

namespace xar {

/// Line-oriented command front-end over a XarSystem — the protocol surface
/// a mobile app / trip-planner gateway would speak. One request line in,
/// one (possibly multi-line) response out; responses start with `OK` or
/// `ERR`.
///
/// Commands (times in seconds-since-midnight, distances in meters):
///   CREATE <slat> <slng> <dlat> <dlng> <depart> [seats] [detour_m]
///   SEARCH <req_id> <slat> <slng> <dlat> <dlng> <t0> <t1> [walk_m] [k]
///   BOOK <req_id> <ride_id>
///   CANCELBOOKING <ride_id> <req_id>
///   CANCELRIDE <ride_id>
///   ADVANCE <now_s>
///   RIDE <ride_id>
///   REFRESH
///   STATS [section]
///   HELP
///
/// BOOK resolves the match from the most recent SEARCH for that request id
/// (the look-then-book flow), so searches must precede bookings.
///
/// REFRESH rebuilds the region discretization in place (epoch bump); BOOKs
/// against searches issued before the refresh fail as stale — re-SEARCH.
///
/// STATS iterates a StatsRegistry (sections: system, refresh, oracle,
/// preprocess) instead of hand-concatenating per-subsystem tables; the
/// optional argument filters the response to one section. The response is
/// `OK STATS` followed by one `<section> key=value ...` line per section
/// row.
class CommandServer {
 public:
  explicit CommandServer(XarSystem& system);

  CommandServer(const CommandServer&) = delete;
  CommandServer& operator=(const CommandServer&) = delete;

  /// Executes one command line and returns the response text (no trailing
  /// newline). Unknown/malformed commands yield an `ERR ...` response.
  std::string Execute(const std::string& line);

 private:
  struct PendingSearch {
    RideRequest request;
    std::vector<RideMatch> matches;
  };

  std::string HandleCreate(const std::vector<std::string>& args);
  std::string HandleSearch(const std::vector<std::string>& args);
  std::string HandleBook(const std::vector<std::string>& args);
  std::string HandleCancelBooking(const std::vector<std::string>& args);
  std::string HandleCancelRide(const std::vector<std::string>& args);
  std::string HandleAdvance(const std::vector<std::string>& args);
  std::string HandleRide(const std::vector<std::string>& args);
  std::string HandleRefresh();
  std::string HandleStats(const std::vector<std::string>& args);

  XarSystem& system_;
  StatsRegistry stats_registry_;
  std::unordered_map<RequestId, PendingSearch> pending_;
};

}  // namespace xar

#endif  // XAR_XAR_COMMAND_SERVER_H_
