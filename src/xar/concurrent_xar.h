#ifndef XAR_XAR_CONCURRENT_XAR_H_
#define XAR_XAR_CONCURRENT_XAR_H_

#include <mutex>
#include <shared_mutex>
#include <vector>

#include "xar/xar_system.h"

namespace xar {

/// Thread-safe facade over XarSystem with reader-writer semantics tuned to
/// the paper's workload profile: searches (the overwhelming majority of
/// operations at high look-to-book ratios) take a shared lock and run
/// concurrently; create/book/track/cancel serialize on an exclusive lock.
///
/// The paper's prototype is single-threaded; this wrapper is the minimal
/// deployment-grade concurrency story for a read-dominated service.
class ConcurrentXarSystem {
 public:
  ConcurrentXarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
                      const RegionIndex& region, DistanceOracle& oracle,
                      XarOptions options = {})
      : system_(graph, spatial, region, oracle, options) {}

  ConcurrentXarSystem(const ConcurrentXarSystem&) = delete;
  ConcurrentXarSystem& operator=(const ConcurrentXarSystem&) = delete;

  // --- Read path (shared lock, concurrent) --------------------------------

  std::vector<RideMatch> Search(const RideRequest& request) const {
    std::shared_lock lock(mutex_);
    return system_.Search(request);
  }

  std::vector<RideMatch> SearchTopK(const RideRequest& request,
                                    std::size_t k) const {
    std::shared_lock lock(mutex_);
    return system_.SearchTopK(request, k);
  }

  std::size_t NumActiveRides() const {
    std::shared_lock lock(mutex_);
    return system_.NumActiveRides();
  }

  double Now() const {
    std::shared_lock lock(mutex_);
    return system_.Now();
  }

  /// Copies the ride state (a pointer would dangle once the lock drops).
  Result<Ride> GetRide(RideId id) const {
    std::shared_lock lock(mutex_);
    const Ride* ride = system_.GetRide(id);
    if (ride == nullptr) return Status::NotFound("unknown ride");
    return *ride;
  }

  // --- Write path (exclusive lock) ----------------------------------------

  Result<RideId> CreateRide(const RideOffer& offer) {
    std::unique_lock lock(mutex_);
    return system_.CreateRide(offer);
  }

  Result<BookingRecord> Book(RideId ride, const RideRequest& request,
                             const RideMatch& match) {
    std::unique_lock lock(mutex_);
    return system_.Book(ride, request, match);
  }

  Status CancelBooking(RideId ride, RequestId request) {
    std::unique_lock lock(mutex_);
    return system_.CancelBooking(ride, request);
  }

  Status CancelRide(RideId ride) {
    std::unique_lock lock(mutex_);
    return system_.CancelRide(ride);
  }

  void AdvanceTime(double now_s) {
    std::unique_lock lock(mutex_);
    system_.AdvanceTime(now_s);
  }

  /// Convenience compound op: search, then book the least-walking match.
  /// Runs under one exclusive lock so the match cannot go stale in between.
  Result<BookingRecord> SearchAndBook(const RideRequest& request) {
    std::unique_lock lock(mutex_);
    std::vector<RideMatch> matches = system_.Search(request);
    if (matches.empty()) return Status::NotFound("no feasible ride");
    return system_.Book(matches.front().ride, request, matches.front());
  }

 private:
  mutable std::shared_mutex mutex_;
  XarSystem system_;
};

}  // namespace xar

#endif  // XAR_XAR_CONCURRENT_XAR_H_
