#ifndef XAR_XAR_CONCURRENT_XAR_H_
#define XAR_XAR_CONCURRENT_XAR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "xar/xar_system.h"

namespace xar {

/// Thread-safe sharded deployment of XarSystem.
///
/// The paper's search touches only precomputed sorted lists, which makes the
/// read path embarrassingly parallel; the earlier facade nevertheless pushed
/// every operation through one global shared_mutex, so a single CreateRide
/// or Book stalled all searches. This version stripes the mutable state by
/// ride id instead (see DESIGN.md "Concurrency model"):
///
///  - N shards (default: hardware_concurrency), each a full XarSystem owning
///    a disjoint slice of the rides. Shard s assigns ride ids s, s+N, s+2N,
///    ... (XarOptions::ride_id_offset/stride), so the owner of any id is
///    id % N and ids remain globally unique. Round-robin creation makes the
///    global id sequence dense: the k-th created ride gets id k, exactly as
///    a standalone XarSystem would assign.
///  - The immutable inputs (road graph, spatial index, RegionIndex cluster
///    geometry) are shared by all shards and read lock-free.
///  - Searches take each shard's lock in *shared* mode: they run concurrently
///    with each other and are only ever blocked by a write to that one shard.
///  - Writes (CreateRide, Book, Cancel*, AdvanceTime) take only the owning
///    shard's lock in exclusive mode; traffic on other shards is unaffected.
///  - SearchAndBook is optimistic: search under shared locks, then validate
///    and book under the owning shard's exclusive lock. Staleness (seat
///    taken, budget spent, cluster support gone) is detected by Book itself;
///    on failure the next candidate is tried, then one full re-search round.
///
/// Lock order: at most one shard lock is ever held at a time (multi-shard
/// walks like AdvanceTime lock shard by shard in ascending index order), so
/// the design is deadlock-free by construction.
class ConcurrentXarSystem {
 public:
  /// `num_shards` == 0 picks std::thread::hardware_concurrency() (min 1).
  ConcurrentXarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
                      const RegionIndex& region, DistanceOracle& oracle,
                      XarOptions options = {}, std::size_t num_shards = 0)
      : num_shards_(ResolveShardCount(num_shards)),
        max_results_(options.max_results),
        pool_(num_shards_) {
    shards_.reserve(num_shards_);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      XarOptions shard_options = options;
      shard_options.ride_id_offset = static_cast<std::uint32_t>(s);
      shard_options.ride_id_stride = static_cast<std::uint32_t>(num_shards_);
      shards_.push_back(std::make_unique<Shard>(graph, spatial, region,
                                                oracle, shard_options));
    }
  }

  ConcurrentXarSystem(const ConcurrentXarSystem&) = delete;
  ConcurrentXarSystem& operator=(const ConcurrentXarSystem&) = delete;

  std::size_t num_shards() const { return num_shards_; }

  // --- Read path (per-shard shared locks, concurrent) ---------------------

  std::vector<RideMatch> Search(const RideRequest& request) const {
    return SearchTopK(request, max_results_);
  }

  /// As Search, with an explicit top-k override (0 = all). Per-shard results
  /// are merged and re-sorted with XarSystem's comparator (total walking,
  /// ties by ride id), so the output is byte-identical to a single-shard
  /// system over the same rides.
  std::vector<RideMatch> SearchTopK(const RideRequest& request,
                                    std::size_t k) const {
    std::vector<RideMatch> merged;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      std::vector<RideMatch> part = shard->system.SearchTopK(request, k);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const RideMatch& a, const RideMatch& b) {
                if (a.TotalWalkM() != b.TotalWalkM())
                  return a.TotalWalkM() < b.TotalWalkM();
                return a.ride < b.ride;
              });
    if (k > 0 && merged.size() > k) merged.resize(k);
    return merged;
  }

  /// Fans the searches across the internal thread pool and returns results
  /// in input order. Results are deterministic: identical to calling
  /// Search/SearchTopK serially on a quiescent system.
  std::vector<std::vector<RideMatch>> SearchBatch(
      const std::vector<RideRequest>& requests, std::size_t k = 0) const {
    std::vector<std::vector<RideMatch>> results(requests.size());
    pool_.ParallelFor(requests.size(), [&](std::size_t i) {
      results[i] = k > 0 ? SearchTopK(requests[i], k) : Search(requests[i]);
    });
    return results;
  }

  std::size_t NumActiveRides() const {
    std::size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      total += shard->system.NumActiveRides();
    }
    return total;
  }

  std::size_t NumRides() const {
    std::size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      total += shard->system.NumRides();
    }
    return total;
  }

  double Now() const {
    std::shared_lock lock(shards_.front()->mutex);
    return shards_.front()->system.Now();
  }

  /// Copies the ride state (a pointer would dangle once the lock drops).
  Result<Ride> GetRide(RideId id) const {
    if (!id.valid()) return Status::NotFound("unknown ride");
    const Shard& shard = ShardOf(id);
    std::shared_lock lock(shard.mutex);
    const Ride* ride = shard.system.GetRide(id);
    if (ride == nullptr) return Status::NotFound("unknown ride");
    return *ride;
  }

  // --- Write path (owning shard's exclusive lock only) --------------------

  Result<RideId> CreateRide(const RideOffer& offer) {
    std::size_t s =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % num_shards_;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    return shard.system.CreateRide(offer);
  }

  Result<BookingRecord> Book(RideId ride, const RideRequest& request,
                             const RideMatch& match) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.Book(ride, request, match);
  }

  Status CancelBooking(RideId ride, RequestId request) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.CancelBooking(ride, request);
  }

  Status CancelRide(RideId ride) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.CancelRide(ride);
  }

  /// Advances every shard's clock, shard by shard in ascending order. A
  /// search interleaved with AdvanceTime may observe some shards already
  /// advanced and others not yet — the same (benign) staleness any
  /// optimistic reader of a live system sees.
  void AdvanceTime(double now_s) {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::unique_lock lock(shard->mutex);
      shard->system.AdvanceTime(now_s);
    }
  }

  /// Compound op: search, then book the best match. Optimistic: the search
  /// holds only shared locks; the book validates the match under the owning
  /// shard's exclusive lock (Book re-checks seats, budget and cluster
  /// support). Candidates are tried in least-walking order; if every one
  /// went stale, one re-search round picks up the new state.
  Result<BookingRecord> SearchAndBook(const RideRequest& request) {
    for (int round = 0; round < 2; ++round) {
      std::vector<RideMatch> matches = Search(request);
      if (matches.empty()) break;
      for (const RideMatch& match : matches) {
        Shard& shard = ShardOf(match.ride);
        std::unique_lock lock(shard.mutex);
        Result<BookingRecord> booked =
            shard.system.Book(match.ride, request, match);
        if (booked.ok()) return booked;
      }
    }
    return Status::NotFound("no feasible ride");
  }

 private:
  struct Shard {
    Shard(const RoadGraph& graph, const SpatialNodeIndex& spatial,
          const RegionIndex& region, DistanceOracle& oracle,
          XarOptions options)
        : system(graph, spatial, region, oracle, options) {}

    mutable std::shared_mutex mutex;
    XarSystem system;
  };

  static std::size_t ResolveShardCount(std::size_t requested) {
    if (requested > 0) return requested;
    std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  Shard& ShardOf(RideId id) const {
    return *shards_[id.value() % num_shards_];
  }

  std::size_t num_shards_;
  std::size_t max_results_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_shard_{0};
  mutable ThreadPool pool_;
};

}  // namespace xar

#endif  // XAR_XAR_CONCURRENT_XAR_H_
