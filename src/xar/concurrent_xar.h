#ifndef XAR_XAR_CONCURRENT_XAR_H_
#define XAR_XAR_CONCURRENT_XAR_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats_registry.h"
#include "common/thread_pool.h"
#include "discretize/region_snapshot.h"
#include "xar/xar_system.h"

namespace xar {

/// Retry/staleness observability of the optimistic SearchAndBook path
/// (ROADMAP metrics item): how often the first optimistic round wins vs how
/// often a re-search round was needed.
struct RetryStats {
  std::size_t booked_first_try = 0;      ///< booked in round 0
  std::size_t booked_after_research = 0; ///< booked in a re-search round
  std::size_t stale_rejections = 0;      ///< candidates rejected by Book
  std::size_t unmatched = 0;             ///< SearchAndBook returned NotFound
  // Batch pricing on the SearchAndBook path (XarOptions::batch_pricing):
  std::size_t priced_waves = 0;       ///< waves priced (one oracle batch each)
  std::size_t priced_candidates = 0;  ///< matches offered to pricing
  std::size_t priced_dropped = 0;     ///< matches dropped: unreachable leg
};

/// "retry" stats section for the unified StatsRegistry surface.
inline StatsSection RetryStatsSection(const RetryStats& stats) {
  StatsSection section;
  section.name = "retry";
  section.AddRow(
      {StatsMetric::Counter("booked_first_try", stats.booked_first_try),
       StatsMetric::Counter("booked_after_research",
                            stats.booked_after_research),
       StatsMetric::Counter("stale_rejections", stats.stale_rejections),
       StatsMetric::Counter("unmatched", stats.unmatched),
       StatsMetric::Counter("priced_waves", stats.priced_waves),
       StatsMetric::Counter("priced_candidates", stats.priced_candidates),
       StatsMetric::Counter("priced_dropped", stats.priced_dropped)});
  return section;
}

/// Thread-safe sharded deployment of XarSystem.
///
/// The paper's search touches only precomputed sorted lists, which makes the
/// read path embarrassingly parallel; the earlier facade nevertheless pushed
/// every operation through one global shared_mutex, so a single CreateRide
/// or Book stalled all searches. This version stripes the mutable state by
/// ride id instead (see DESIGN.md "Concurrency model"):
///
///  - N shards (default: hardware_concurrency), each a full XarSystem owning
///    a disjoint slice of the rides. Shard s assigns ride ids s, s+N, s+2N,
///    ... (XarOptions::ride_id_offset/stride), so the owner of any id is
///    id % N and ids remain globally unique. Round-robin creation makes the
///    global id sequence dense: the k-th created ride gets id k, exactly as
///    a standalone XarSystem would assign.
///  - The immutable inputs (road graph, spatial index, RegionIndex cluster
///    geometry) are shared by all shards and read lock-free.
///  - Searches take each shard's lock in *shared* mode: they run concurrently
///    with each other and are only ever blocked by a write to that one shard.
///  - Writes (CreateRide, Book, Cancel*, AdvanceTime) take only the owning
///    shard's lock in exclusive mode; traffic on other shards is unaffected.
///  - SearchAndBook is optimistic: search under shared locks, then validate
///    and book under the owning shard's exclusive lock. Staleness (seat
///    taken, budget spent, cluster support gone) is detected by Book itself;
///    on failure the next candidate is tried, then one full re-search round.
///
/// Lock order: at most one shard lock is ever held at a time (multi-shard
/// walks like AdvanceTime lock shard by shard in ascending index order), so
/// the design is deadlock-free by construction.
///
/// Refresh (live map updates): RefreshDiscretization rebuilds the region
/// snapshot with NO shard locks held, then adopts it shard by shard under
/// each shard's exclusive lock (brief: re-homes that shard's live rides).
/// Searches racing a refresh see some shards on the old epoch and some on
/// the new — the same benign skew AdvanceTime exhibits; each shard's search
/// pins its snapshot, and Book rejects cross-epoch matches as stale, which
/// SearchAndBook turns into a re-search round.
class ConcurrentXarSystem {
 public:
  /// `num_shards` == 0 picks std::thread::hardware_concurrency() (min 1).
  ConcurrentXarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
                      const RegionIndex& region, DistanceOracle& oracle,
                      XarOptions options = {}, std::size_t num_shards = 0)
      : graph_(&graph),
        spatial_(&spatial),
        num_shards_(ResolveShardCount(num_shards)),
        max_results_(options.max_results),
        book_rounds_(options.search_and_book_rounds),
        batch_pricing_(options.batch_pricing),
        head_(BorrowRegionSnapshot(region)),
        oracle_(&oracle),
        pool_(num_shards_) {
    shards_.reserve(num_shards_);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      XarOptions shard_options = options;
      shard_options.ride_id_offset = static_cast<std::uint32_t>(s);
      shard_options.ride_id_stride = static_cast<std::uint32_t>(num_shards_);
      shards_.push_back(std::make_unique<Shard>(graph, spatial, head_,
                                                oracle, shard_options));
    }
  }

  ConcurrentXarSystem(const ConcurrentXarSystem&) = delete;
  ConcurrentXarSystem& operator=(const ConcurrentXarSystem&) = delete;

  std::size_t num_shards() const { return num_shards_; }

  // --- Read path (per-shard shared locks, concurrent) ---------------------

  std::vector<RideMatch> Search(const RideRequest& request) const {
    return SearchTopK(request, max_results_);
  }

  /// As Search, with an explicit top-k override (0 = all). Per-shard results
  /// are merged and re-sorted with XarSystem's comparator (total walking,
  /// ties by ride id), so the output is byte-identical to a single-shard
  /// system over the same rides.
  std::vector<RideMatch> SearchTopK(const RideRequest& request,
                                    std::size_t k) const {
    std::vector<RideMatch> merged;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      std::vector<RideMatch> part = shard->system.SearchTopK(request, k);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const RideMatch& a, const RideMatch& b) {
                if (a.TotalWalkM() != b.TotalWalkM())
                  return a.TotalWalkM() < b.TotalWalkM();
                return a.ride < b.ride;
              });
    if (k > 0 && merged.size() > k) merged.resize(k);
    return merged;
  }

  /// Fans the searches across the internal thread pool and returns results
  /// in input order. Results are deterministic: identical to calling
  /// Search/SearchTopK serially on a quiescent system.
  std::vector<std::vector<RideMatch>> SearchBatch(
      const std::vector<RideRequest>& requests, std::size_t k = 0) const {
    std::vector<std::vector<RideMatch>> results(requests.size());
    pool_.ParallelFor(requests.size(), [&](std::size_t i) {
      results[i] = k > 0 ? SearchTopK(requests[i], k) : Search(requests[i]);
    });
    return results;
  }

  std::size_t NumActiveRides() const {
    std::size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      total += shard->system.NumActiveRides();
    }
    return total;
  }

  std::size_t NumRides() const {
    std::size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      total += shard->system.NumRides();
    }
    return total;
  }

  double Now() const {
    std::shared_lock lock(shards_.front()->mutex);
    return shards_.front()->system.Now();
  }

  /// Copies the ride state (a pointer would dangle once the lock drops).
  Result<Ride> GetRide(RideId id) const {
    if (!id.valid()) return Status::NotFound("unknown ride");
    const Shard& shard = ShardOf(id);
    std::shared_lock lock(shard.mutex);
    const Ride* ride = shard.system.GetRide(id);
    if (ride == nullptr) return Status::NotFound("unknown ride");
    return *ride;
  }

  // --- Write path (owning shard's exclusive lock only) --------------------

  Result<RideId> CreateRide(const RideOffer& offer) {
    std::size_t s =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % num_shards_;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    return shard.system.CreateRide(offer);
  }

  Result<BookingRecord> Book(RideId ride, const RideRequest& request,
                             const RideMatch& match) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.Book(ride, request, match);
  }

  Status CancelBooking(RideId ride, RequestId request) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.CancelBooking(ride, request);
  }

  Status ReportNoShow(RideId ride, RequestId request) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.ReportNoShow(ride, request);
  }

  Status CancelRide(RideId ride) {
    if (!ride.valid()) return Status::NotFound("unknown ride");
    Shard& shard = ShardOf(ride);
    std::unique_lock lock(shard.mutex);
    return shard.system.CancelRide(ride);
  }

  /// Advances every shard's clock, shard by shard in ascending order. A
  /// search interleaved with AdvanceTime may observe some shards already
  /// advanced and others not yet — the same (benign) staleness any
  /// optimistic reader of a live system sees.
  void AdvanceTime(double now_s) {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::unique_lock lock(shard->mutex);
      shard->system.AdvanceTime(now_s);
    }
  }

  // --- Refresh (rebuild + atomic epoch swap) ------------------------------

  /// Current discretization generation: the epoch of the last fully adopted
  /// snapshot. Lock-free; SearchAndBook pins it to detect mid-search swaps.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Rebuilds the discretization (no locks held — traffic keeps flowing),
  /// then adopts the new snapshot shard by shard under each shard's
  /// exclusive lock, re-homing that shard's live rides. Concurrent refreshes
  /// serialize on an internal mutex. An empty delta rebuilds the current
  /// region over the current graph (identical tables, new epoch).
  RefreshStats RefreshDiscretization(const GraphDelta& delta = {}) {
    std::lock_guard<std::mutex> refresh_lock(refresh_mutex_);
    Stopwatch timer;
    const RoadGraph& build_graph =
        delta.graph != nullptr ? *delta.graph : *graph_;
    const DiscretizationOptions& build_options =
        delta.options.has_value() ? *delta.options : head_->index->options();
    // Backend preprocessing for the incoming oracle (per-metric contraction
    // hierarchies) runs first, off-thread with no shard locks held: the
    // snapshot rebuild batches its landmark metric on that backend, and the
    // per-shard swap below adopts snapshot AND ready oracle together — no
    // post-refresh query ever sees a stale hierarchy or pays a build.
    Stopwatch prewarm_timer;
    if (delta.oracle != nullptr) delta.oracle->Prewarm();
    const double prewarm_ms = prewarm_timer.ElapsedMillis();
    RoutingBackend* matrix_backend =
        delta.oracle != nullptr ? delta.oracle->mutable_routing_backend()
                                : nullptr;
    std::shared_ptr<const RegionSnapshot> next =
        BuildRegionSnapshot(build_graph, *spatial_, build_options,
                            head_->epoch + 1, matrix_backend);

    std::size_t rehomed = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::unique_lock lock(shard->mutex);
      rehomed += shard->system.AdoptSnapshot(next, delta.graph, delta.oracle);
    }
    if (delta.graph != nullptr) graph_ = delta.graph;
    // Every shard now routes on the new oracle; point wave pricing at it
    // too. The old oracle stays caller-owned and alive (same contract as
    // delta.graph), so a PriceWave racing this store reads valid data
    // either way.
    if (delta.oracle != nullptr)
      oracle_.store(delta.oracle, std::memory_order_release);
    head_ = std::move(next);
    epoch_.store(head_->epoch, std::memory_order_release);

    refresh_stats_.epoch = head_->epoch;
    refresh_stats_.refreshes += 1;
    refresh_stats_.last_rebuild_ms = timer.ElapsedMillis();
    refresh_stats_.last_prewarm_ms = prewarm_ms;
    refresh_stats_.last_matrix_ms =
        head_->index->landmark_metric().build_millis();
    refresh_stats_.last_rides_rehomed = rehomed;
    refresh_stats_.total_rides_rehomed += rehomed;
    return refresh_stats_;
  }

  /// Runs RefreshDiscretization on a background thread. The delta's graph /
  /// oracle / options must outlive the returned future's completion.
  std::future<RefreshStats> RefreshDiscretizationAsync(GraphDelta delta = {}) {
    return std::async(std::launch::async,
                      [this, delta] { return RefreshDiscretization(delta); });
  }

  RefreshStats refresh_stats() const {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    return refresh_stats_;
  }

  RetryStats retry_stats() const {
    RetryStats stats;
    stats.booked_first_try =
        booked_first_try_.load(std::memory_order_relaxed);
    stats.booked_after_research =
        booked_after_research_.load(std::memory_order_relaxed);
    stats.stale_rejections =
        stale_rejections_.load(std::memory_order_relaxed);
    stats.unmatched = unmatched_.load(std::memory_order_relaxed);
    stats.priced_waves = priced_waves_.load(std::memory_order_relaxed);
    stats.priced_candidates =
        priced_candidates_.load(std::memory_order_relaxed);
    stats.priced_dropped = priced_dropped_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Aggregated match-index view across all shards (the "match" stats
  /// section): per-backend counters summed, registered rides and bytes
  /// totaled. Shards always run the same backend, so one name suffices.
  MatchIndexStats match_stats() const {
    MatchIndexStats stats;
    for (const auto& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      const MatchIndex& index = shard->system.match_index();
      stats.backend = MatchIndexName(index.kind());
      stats.registered_rides += index.NumRegisteredRides();
      stats.bytes += index.MemoryFootprint();
      stats.counters += index.counters();
    }
    return stats;
  }

  /// Aggregated pooling view across all shards (the "pooling" stats
  /// section): persistent-schedule counters summed, gauges totaled over the
  /// whole live fleet, the rider peak maxed. Each shard is read under its
  /// shared lock — tree mutations only ever happen under the same shard's
  /// exclusive lock, so the snapshot is consistent per shard.
  PoolingStats pooling_stats() const {
    PoolingStats stats;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      stats += shard->system.pooling_stats();
    }
    return stats;
  }

  /// Test seam: invoked after each SearchAndBook round's search, with no
  /// locks held, receiving the request and the round number. Lets tests
  /// force-stale the candidates deterministically. Set while quiescent only
  /// (the hook itself is not synchronized).
  void SetPostSearchHookForTest(
      std::function<void(const RideRequest&, std::size_t)> hook) {
    post_search_hook_ = std::move(hook);
  }

  /// Compound op: search, then book the best match. Optimistic: the search
  /// holds only shared locks; the book validates the match under the owning
  /// shard's exclusive lock (Book re-checks seats, budget, cluster support
  /// and the discretization epoch). Candidates are tried in least-walking
  /// order; when every one went stale — or the search came back empty while
  /// a refresh moved the epoch mid-flight — the next round re-searches the
  /// new state, up to XarOptions::search_and_book_rounds rounds total.
  Result<BookingRecord> SearchAndBook(const RideRequest& request) {
    const std::size_t rounds = std::max<std::size_t>(1, book_rounds_);
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::uint64_t pinned_epoch = epoch();
      std::vector<RideMatch> matches = Search(request);
      if (post_search_hook_) post_search_hook_(request, round);
      // Price the whole wave with ONE oracle many-to-many batch before any
      // exclusive lock is taken: candidates with an unreachable splice leg
      // (the only ones pricing may drop) never contend for a booking lock,
      // the rest carry their exact insertion detour.
      if (batch_pricing_) PriceWave(&matches);
      for (const RideMatch& match : matches) {
        Shard& shard = ShardOf(match.ride);
        std::unique_lock lock(shard.mutex);
        Result<BookingRecord> booked =
            shard.system.Book(match.ride, request, match);
        if (booked.ok()) {
          (round == 0 ? booked_first_try_ : booked_after_research_)
              .fetch_add(1, std::memory_order_relaxed);
          return booked;
        }
        stale_rejections_.fetch_add(1, std::memory_order_relaxed);
      }
      // A re-search only pays when the world may have moved under us: a
      // candidate went stale, or a refresh advanced the epoch mid-search.
      // An empty result on a stable epoch is final.
      if (matches.empty() && epoch() == pinned_epoch) break;
    }
    unmatched_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no feasible ride");
  }

 private:
  /// Concurrent counterpart of XarSystem::PriceMatches: collects every
  /// match's splice legs under the owning shard's SHARED lock (one shard at
  /// a time — the lock-order invariant holds), then prices all legs of the
  /// wave in a single oracle many-to-many batch with NO locks held, and
  /// finally annotates/filters the matches. Matches whose legs could not be
  /// collected (stale epoch, ride gone) stay unpriced for Book to reject;
  /// only unreachable-leg matches are dropped, which cannot change a
  /// booking outcome — Book would fail them with the same result.
  void PriceWave(std::vector<RideMatch>* matches) {
    if (matches->empty()) return;
    struct MatchLegs {
      std::vector<std::pair<NodeId, NodeId>> legs;
      double replaced_m = 0.0;
      bool ok = false;
    };
    std::vector<MatchLegs> per_match(matches->size());
    std::vector<NodeId> sources;
    std::vector<NodeId> targets;
    std::unordered_map<NodeId::underlying_type, std::size_t> src_at;
    std::unordered_map<NodeId::underlying_type, std::size_t> tgt_at;
    bool any = false;
    for (std::size_t m = 0; m < matches->size(); ++m) {
      const RideMatch& match = (*matches)[m];
      if (!match.ride.valid()) continue;
      MatchLegs& ml = per_match[m];
      Shard& shard = ShardOf(match.ride);
      {
        std::shared_lock lock(shard.mutex);
        ml.ok =
            shard.system.CollectPricingLegs(match, &ml.legs, &ml.replaced_m);
      }
      if (!ml.ok) continue;
      any = true;
      for (const auto& [from, to] : ml.legs) {
        if (src_at.emplace(from.value(), sources.size()).second)
          sources.push_back(from);
        if (tgt_at.emplace(to.value(), targets.size()).second)
          targets.push_back(to);
      }
    }
    if (!any) return;

    std::vector<double> dist =
        oracle_.load(std::memory_order_acquire)
            ->DriveDistanceMatrix(sources, targets);

    std::size_t dropped = 0;
    std::vector<RideMatch> kept;
    kept.reserve(matches->size());
    for (std::size_t m = 0; m < matches->size(); ++m) {
      RideMatch match = (*matches)[m];
      const MatchLegs& ml = per_match[m];
      if (ml.ok) {
        double spliced = 0.0;
        for (const auto& [from, to] : ml.legs) {
          spliced += dist[src_at.at(from.value()) * targets.size() +
                          tgt_at.at(to.value())];
        }
        if (!std::isfinite(spliced)) {
          ++dropped;
          continue;
        }
        match.priced_detour_m = std::max(0.0, spliced - ml.replaced_m);
      }
      kept.push_back(match);
    }
    *matches = std::move(kept);
    priced_waves_.fetch_add(1, std::memory_order_relaxed);
    priced_candidates_.fetch_add(per_match.size(), std::memory_order_relaxed);
    priced_dropped_.fetch_add(dropped, std::memory_order_relaxed);
  }

  struct Shard {
    Shard(const RoadGraph& graph, const SpatialNodeIndex& spatial,
          std::shared_ptr<const RegionSnapshot> snapshot,
          DistanceOracle& oracle, XarOptions options)
        : system(graph, spatial, std::move(snapshot), oracle, options) {}

    mutable std::shared_mutex mutex;
    XarSystem system;
  };

  static std::size_t ResolveShardCount(std::size_t requested) {
    if (requested > 0) return requested;
    std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  Shard& ShardOf(RideId id) const {
    return *shards_[id.value() % num_shards_];
  }

  const RoadGraph* graph_;            ///< swapped by refresh graph deltas
  const SpatialNodeIndex* spatial_;
  std::size_t num_shards_;
  std::size_t max_results_;
  std::size_t book_rounds_;
  bool batch_pricing_;
  /// Last fully adopted snapshot; guarded by refresh_mutex_. Shards on an
  /// older epoch keep their snapshot alive independently via shared_ptr.
  std::shared_ptr<const RegionSnapshot> head_;
  /// Oracle wave pricing batches on; atomically re-pointed by a refresh
  /// with an oracle delta (the shards swap theirs under their locks).
  std::atomic<DistanceOracle*> oracle_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_shard_{0};
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex refresh_mutex_;
  RefreshStats refresh_stats_;  ///< guarded by refresh_mutex_

  std::atomic<std::size_t> booked_first_try_{0};
  std::atomic<std::size_t> booked_after_research_{0};
  std::atomic<std::size_t> stale_rejections_{0};
  std::atomic<std::size_t> unmatched_{0};
  std::atomic<std::size_t> priced_waves_{0};
  std::atomic<std::size_t> priced_candidates_{0};
  std::atomic<std::size_t> priced_dropped_{0};
  std::function<void(const RideRequest&, std::size_t)> post_search_hook_;
  mutable ThreadPool pool_;
};

}  // namespace xar

#endif  // XAR_XAR_CONCURRENT_XAR_H_
