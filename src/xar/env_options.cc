#include "xar/env_options.h"

#include <cstdlib>
#include <string>

#include "common/result.h"

namespace xar {
namespace {

// Annotates a parse failure with the environment variable it came from, so
// `XAR_MATCH_INDEX=clutser` reports the variable to fix, not just the typo.
template <typename T, typename Field>
Status ApplyParsed(const char* variable, Result<T> (*parse)(std::string_view),
                   Field* field) {
  const char* env = std::getenv(variable);
  if (env == nullptr) return Status::OK();
  Result<T> parsed = parse(env);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(variable) + ": " +
                                   parsed.status().message());
  }
  *field = parsed.value();
  return Status::OK();
}

}  // namespace

Status ApplyEnvOverrides(XarOptions* options) {
  Status status = ApplyParsed("XAR_ROUTING_BACKEND", RoutingBackendFromString,
                              &options->routing_backend);
  if (!status.ok()) return status;
  status = ApplyParsed("XAR_MATCH_INDEX", MatchIndexFromString,
                       &options->match_index);
  if (!status.ok()) return status;
  status = ApplyParsed("XAR_ORACLE_CACHE", OracleCachePolicyFromString,
                       &options->oracle_cache);
  if (!status.ok()) return status;
  if (const char* env = std::getenv("XAR_PREPROCESS_THREADS")) {
    options->preprocess_threads =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return Status::OK();
}

}  // namespace xar
