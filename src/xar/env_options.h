#ifndef XAR_XAR_ENV_OPTIONS_H_
#define XAR_XAR_ENV_OPTIONS_H_

#include "common/status.h"
#include "xar/options.h"

namespace xar {

/// Applies the standard XAR_* environment overrides to `options`:
///
///   XAR_ROUTING_BACKEND=dijkstra|astar|alt|ch
///   XAR_MATCH_INDEX=cluster|st_hash
///   XAR_ORACLE_CACHE=clock|striped_lru
///   XAR_PREPROCESS_THREADS=N   (0 = all cores)
///
/// Unset variables leave the corresponding field untouched. A typo in any
/// set variable is a hard error — the returned InvalidArgument names the
/// variable and lists the valid spellings — never a silent fall-through to
/// the default. Shared by every binary that honours these variables
/// (xar_shell, city_simulation, the event-sim demo, ...).
Status ApplyEnvOverrides(XarOptions* options);

}  // namespace xar

#endif  // XAR_XAR_ENV_OPTIONS_H_
