#include "xar/geojson_export.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace xar {
namespace {

std::string Coord(const LatLng& p) {
  char buf[64];
  // GeoJSON is [lng, lat].
  std::snprintf(buf, sizeof(buf), "[%.6f,%.6f]", p.lng, p.lat);
  return buf;
}

std::string PointGeometry(const LatLng& p) {
  return R"({"type":"Point","coordinates":)" + Coord(p) + "}";
}

std::string LineGeometry(const std::vector<LatLng>& points) {
  std::string coords = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) coords += ',';
    coords += Coord(points[i]);
  }
  coords += ']';
  return R"({"type":"LineString","coordinates":)" + coords + "}";
}

}  // namespace

void GeoJsonWriter::AddFeature(const std::string& geometry,
                               const std::string& properties) {
  features_.push_back(R"({"type":"Feature","geometry":)" + geometry +
                      R"(,"properties":)" + properties + "}");
}

void GeoJsonWriter::AddRoadNetwork(const RoadGraph& graph) {
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    NodeId from(static_cast<NodeId::underlying_type>(u));
    for (const RoadEdge& e : graph.OutEdges(from)) {
      if (!e.drivable) continue;
      std::uint64_t lo = std::min<std::uint64_t>(u, e.to.value());
      std::uint64_t hi = std::max<std::uint64_t>(u, e.to.value());
      if (!seen.insert((lo << 32) | hi).second) continue;
      char props[96];
      std::snprintf(props, sizeof(props),
                    R"({"kind":"street","speed_mps":%.1f})",
                    e.time_s > 0 ? e.length_m / e.time_s : 0.0);
      AddFeature(LineGeometry({graph.PositionOf(from),
                               graph.PositionOf(e.to)}),
                 props);
    }
  }
}

void GeoJsonWriter::AddLandmarks(const RegionIndex& region) {
  for (const Landmark& lm : region.landmarks()) {
    char props[96];
    std::snprintf(props, sizeof(props),
                  R"({"kind":"landmark","id":%u,"cluster":%u})",
                  lm.id.value(),
                  region.ClusterOfLandmark(lm.id).value());
    AddFeature(PointGeometry(lm.position), props);
  }
}

void GeoJsonWriter::AddRide(const RoadGraph& graph, const Ride& ride) {
  std::vector<LatLng> points;
  points.reserve(ride.route.nodes.size());
  for (NodeId n : ride.route.nodes) points.push_back(graph.PositionOf(n));
  char props[96];
  std::snprintf(props, sizeof(props),
                R"({"kind":"ride","id":%u,"length_m":%.0f})",
                ride.id.value(), ride.route.length_m);
  AddFeature(LineGeometry(points), props);
  for (const ViaPoint& vp : ride.via_points) {
    char vp_props[128];
    std::snprintf(vp_props, sizeof(vp_props),
                  R"({"kind":"via_point","ride":%u,"pickup":%s,"eta_s":%.0f})",
                  ride.id.value(), vp.is_pickup ? "true" : "false", vp.eta_s);
    AddFeature(PointGeometry(graph.PositionOf(vp.node)), vp_props);
  }
}

void GeoJsonWriter::AddPoint(const LatLng& position, const std::string& name,
                             const std::string& kind) {
  AddFeature(PointGeometry(position),
             R"({"kind":")" + kind + R"(","name":")" + name + R"("})");
}

std::string GeoJsonWriter::ToString() const {
  std::string out = R"({"type":"FeatureCollection","features":[)";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) out += ',';
    out += features_[i];
  }
  out += "]}";
  return out;
}

Status GeoJsonWriter::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot write " + path);
  std::string doc = ToString();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok &= std::fclose(f) == 0;
  return ok ? Status::OK() : Status::Internal("write failed");
}

}  // namespace xar
