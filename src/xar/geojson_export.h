#ifndef XAR_XAR_GEOJSON_EXPORT_H_
#define XAR_XAR_GEOJSON_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "discretize/region_index.h"
#include "graph/road_graph.h"
#include "xar/ride.h"

namespace xar {

/// Accumulates map features and renders a GeoJSON FeatureCollection —
/// the debugging/visualization companion: drop the output into any GeoJSON
/// viewer to inspect the street network, the discretization and live rides.
class GeoJsonWriter {
 public:
  /// Every drivable street segment as a LineString (one feature per arc
  /// direction is redundant, so arcs are deduplicated by node pair).
  void AddRoadNetwork(const RoadGraph& graph);

  /// Every landmark as a Point with its id and cluster.
  void AddLandmarks(const RegionIndex& region);

  /// A ride's current route as a LineString plus via-points as Points.
  void AddRide(const RoadGraph& graph, const Ride& ride);

  /// An arbitrary labeled point.
  void AddPoint(const LatLng& position, const std::string& name,
                const std::string& kind);

  std::size_t NumFeatures() const { return features_.size(); }

  /// The FeatureCollection document.
  std::string ToString() const;

  /// Writes the document to `path`.
  Status WriteTo(const std::string& path) const;

 private:
  void AddFeature(const std::string& geometry,
                  const std::string& properties);

  std::vector<std::string> features_;
};

}  // namespace xar

#endif  // XAR_XAR_GEOJSON_EXPORT_H_
