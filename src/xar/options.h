#ifndef XAR_XAR_OPTIONS_H_
#define XAR_XAR_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "graph/oracle_cache.h"
#include "graph/routing_backend.h"
#include "match/match_index.h"

namespace xar {

/// Runtime knobs of the XAR matching engine.
struct XarOptions {
  /// Default maximum detour (meters) a driver accepts, when the offer does
  /// not specify one. The paper's T-Share comparison uses ~4 km.
  double default_detour_limit_m = 4000.0;

  /// Default walking threshold (meters) for requests that do not set one.
  double default_walk_limit_m = 1000.0;

  /// Seats offered to co-riders when an offer does not specify (paper:
  /// capacity 4 including the driver => 3 shareable seats).
  int default_seats = 3;

  /// Slack added on both sides of a request's departure window when probing
  /// cluster ETA lists, absorbing ETA estimation error.
  double eta_window_slack_s = 240.0;

  /// Upper bound on the time a matched rider can remain on board; bounds the
  /// destination-side ETA probe window (Step 2 of Search).
  double max_onboard_s = 2700.0;

  /// If nonzero, Search returns at most this many matches (top-k by least
  /// walking). Zero = return all feasible matches.
  std::size_t max_results = 0;

  /// Booking-time schedule optimization (extension; see DESIGN.md §6):
  /// when true, bookings on rides that have not yet departed re-order ALL
  /// rider stops with a kinetic tree (Huang et al.) instead of splicing the
  /// new pair into fixed segments. Produces shorter multi-rider routes but
  /// forfeits the paper's <= 4 shortest-path bound per booking (the route
  /// is rebuilt stop-to-stop). In-progress rides always use the paper's
  /// fixed-segment splice.
  bool kinetic_booking = false;

  /// Retry policy of ConcurrentXarSystem::SearchAndBook: total number of
  /// search rounds (first try + re-searches). A round is only re-run when
  /// the previous one's candidates all went stale or the discretization
  /// epoch moved mid-search; 1 disables re-searching entirely.
  std::size_t search_and_book_rounds = 2;

  /// Batch candidate pricing on the SearchAndBook path: price every
  /// candidate of a search wave (its exact insertion detour) with ONE
  /// oracle many-to-many batch — bucket CH on the default backend — instead
  /// of per-pair oracle calls. Candidates whose insertion legs are
  /// unreachable are dropped before any booking lock is taken; the rest
  /// carry RideMatch::priced_detour_m. Booking order and outcomes are
  /// otherwise unchanged.
  bool batch_pricing = true;

  /// Meeting-points scenario (Laupichler & Sanders 2023): when true, Search
  /// keeps up to meeting_point_candidates pickup/drop-off landmarks per
  /// ride and side (instead of only the least-walk one), emitting one match
  /// per feasible combination — a rider willing to walk a little further
  /// can board at a meeting point that costs the driver less detour. Every
  /// emitted match passes the same walk/ETA/detour threshold checks, so the
  /// 4-epsilon detour guarantee is unchanged. Priced naturally as one
  /// many-to-many batch when batch_pricing is on.
  bool meeting_points = false;

  /// Per ride and side, how many candidate meeting points Search keeps (and
  /// at most how many combined matches it emits per ride) when
  /// meeting_points is on.
  std::size_t meeting_point_candidates = 4;

  /// Which candidate-generation index Search runs on (src/match/, mirrors
  /// routing_backend one level up): kCluster is the paper's cluster-centric
  /// index and the default; kSpatioTemporalHash probes grid×time hash
  /// buckets over ride trajectories instead. Booking always re-checks
  /// feasibility and prices exact shortest paths downstream, so the 4ε
  /// detour guarantee does not depend on this choice.
  MatchIndexKind match_index = MatchIndexKind::kCluster;

  /// Tuning knobs of the spatio-temporal hash backend (ignored by kCluster).
  MatchIndexOptions match_index_options;

  /// Which shortest-path backend the GraphOracle serving this system runs
  /// on cache misses. The system takes the oracle by reference, so this is
  /// honored by whoever constructs the oracle (simulators, benches,
  /// examples, the command-server main); contraction hierarchies are the
  /// production default — order-of-magnitude fewer settled nodes per
  /// booking once the lazy per-metric build has run.
  RoutingBackendKind routing_backend = RoutingBackendKind::kCh;

  /// Which distance-cache implementation the GraphOracle serving this
  /// system runs in front of the routing backend. Like routing_backend,
  /// honored by whoever constructs the oracle. kClock (lossy lock-free
  /// CLOCK approximation) is the production default — same-bucket
  /// insertions never serialize on a stripe mutex; kStripedLru keeps the
  /// exact striped LRU for differential comparison.
  OracleCachePolicy oracle_cache = OracleCachePolicy::kClock;

  /// Worker threads for backend preprocessing (contraction-hierarchy
  /// builds); 0 = hardware concurrency. Honored wherever the oracle is
  /// constructed (see BackendOptions()), including the off-thread Prewarm a
  /// RefreshDiscretization runs before swapping snapshots — the build is
  /// deterministic, so thread count never changes a route.
  std::size_t preprocess_threads = 0;

  /// RoutingBackendOptions carrying this struct's backend knobs; pass to
  /// GraphOracle / MakeRoutingBackend so simulators, benches and servers
  /// construct identically-configured backends.
  RoutingBackendOptions BackendOptions() const {
    RoutingBackendOptions backend_options;
    backend_options.ch.preprocess_threads = preprocess_threads;
    return backend_options;
  }

  /// Ride-id assignment: the i-th created ride gets
  /// id = ride_id_offset + i * ride_id_stride. The defaults (0, 1) produce
  /// the dense 0,1,2,... ids of a standalone system. A sharded deployment
  /// (ConcurrentXarSystem) gives shard s offset = s and stride = N so ids
  /// are globally unique and the owning shard is recoverable as id % N.
  std::uint32_t ride_id_offset = 0;
  std::uint32_t ride_id_stride = 1;
};

}  // namespace xar

#endif  // XAR_XAR_OPTIONS_H_
