#ifndef XAR_XAR_RIDE_H_
#define XAR_XAR_RIDE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "geo/latlng.h"
#include "graph/path.h"

namespace xar {

/// A ride offer as submitted by a driver.
struct RideOffer {
  LatLng source;
  LatLng destination;
  double departure_time_s = 0.0;  ///< seconds since midnight
  int seats = -1;                 ///< shareable seats; -1 = system default
  double detour_limit_m = -1.0;   ///< -1 = system default
};

/// A ride request as submitted by a commuter (paper Section VII).
struct RideRequest {
  RequestId id;
  LatLng source;
  LatLng destination;
  double earliest_departure_s = 0.0;  ///< departure window start
  double latest_departure_s = 0.0;    ///< departure window end
  double walk_limit_m = -1.0;         ///< -1 = system default
  int seats = 1;
};

/// A location through which a ride must pass: the driver's own endpoints
/// plus every booked rider's pickup/drop-off (paper entity 6; distinct from
/// route way-points).
struct ViaPoint {
  NodeId node;
  double eta_s = 0.0;            ///< estimated arrival time
  RequestId request;             ///< booking that created it (invalid for
                                 ///< the ride's own source/destination)
  bool is_pickup = false;
};

/// Internal state of a ride in the system (paper Section VI entity list).
struct Ride {
  RideId id;
  NodeId source;
  NodeId destination;
  double departure_time_s = 0.0;
  int seats_total = 0;
  int seats_available = 0;
  double detour_limit_m = 0.0;  ///< original driver budget
  double detour_used_m = 0.0;   ///< spent by accepted bookings

  /// Ordered via-points, always including source (front) and destination
  /// (back). Segment i runs between via_points[i] and via_points[i+1].
  std::vector<ViaPoint> via_points;

  /// Current full route through the road network.
  Path route;
  /// Cumulative driving time (s) and distance (m) at each route node.
  std::vector<double> route_cum_time_s;
  std::vector<double> route_cum_dist_m;
  /// Index into route.nodes for each via-point.
  std::vector<std::size_t> via_route_index;

  bool active = true;

  double RemainingDetourBudget() const {
    return detour_limit_m - detour_used_m;
  }
  double ArrivalTimeS() const {
    return departure_time_s + (route_cum_time_s.empty()
                                   ? 0.0
                                   : route_cum_time_s.back());
  }
  std::size_t NumSegments() const {
    return via_points.size() < 2 ? 0 : via_points.size() - 1;
  }
};

/// One feasible match returned by Search.
struct RideMatch {
  RideId ride;
  double walk_source_m = 0.0;    ///< requester walk to the pickup landmark
  double walk_dest_m = 0.0;      ///< walk from the drop-off landmark
  double eta_source_s = 0.0;     ///< ride's ETA at the pickup cluster
  double eta_dest_s = 0.0;       ///< ride's ETA at the drop-off cluster
  double detour_estimate_m = 0.0;///< cluster-level detour estimate
  ClusterId source_cluster;
  ClusterId dest_cluster;
  LandmarkId pickup_landmark;
  LandmarkId dropoff_landmark;
  /// Discretization epoch the match was computed on. Cluster/landmark ids
  /// are only meaningful within their epoch, so Book rejects the match as
  /// stale if the system has refreshed past it.
  std::uint64_t epoch = 0;

  /// Exact insertion detour (meters) computed by batch pricing on the
  /// SearchAndBook path, or -1 when the match has not been priced (pricing
  /// off, or the match went stale before its legs could be collected).
  /// Purely informational: booking feasibility still uses the cluster-level
  /// detour_estimate_m, so pricing never changes which matches Book accepts.
  double priced_detour_m = -1.0;

  double TotalWalkM() const { return walk_source_m + walk_dest_m; }
};

/// Outcome of a confirmed booking.
struct BookingRecord {
  RequestId request;
  RideId ride;
  int seats = 1;
  NodeId pickup_node;
  NodeId dropoff_node;
  double actual_detour_m = 0.0;     ///< exact route-length increase
  double estimated_detour_m = 0.0;  ///< the search-time cluster estimate
  double budget_before_m = 0.0;     ///< ride's remaining detour budget when
                                    ///< the booking was accepted
  double walk_m = 0.0;              ///< total rider walking
  double pickup_eta_s = 0.0;
  double dropoff_eta_s = 0.0;
  std::size_t shortest_path_computations = 0;  ///< paper bound: <= 4
};

}  // namespace xar

#endif  // XAR_XAR_RIDE_H_
