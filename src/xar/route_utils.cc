#include "xar/route_utils.h"

#include <cassert>
#include <limits>

namespace xar {

void BuildCumulativeProfiles(const RoadGraph& graph,
                             const std::vector<NodeId>& nodes,
                             std::vector<double>* cum_time_s,
                             std::vector<double>* cum_dist_m) {
  cum_time_s->assign(nodes.size(), 0.0);
  cum_dist_m->assign(nodes.size(), 0.0);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const RoadEdge* best = nullptr;
    for (const RoadEdge& e : graph.OutEdges(nodes[i])) {
      if (!e.drivable || e.to != nodes[i + 1]) continue;
      if (best == nullptr || e.length_m < best->length_m) best = &e;
    }
    assert(best != nullptr && "route hop is not a drivable edge");
    (*cum_time_s)[i + 1] = (*cum_time_s)[i] + best->time_s;
    (*cum_dist_m)[i + 1] = (*cum_dist_m)[i] + best->length_m;
  }
}

void AppendPathNodes(std::vector<NodeId>* route,
                     const std::vector<NodeId>& piece) {
  std::size_t start = 0;
  if (!route->empty() && !piece.empty() && route->back() == piece.front()) {
    start = 1;
  }
  route->insert(route->end(), piece.begin() + static_cast<std::ptrdiff_t>(start),
                piece.end());
}

}  // namespace xar
