#ifndef XAR_XAR_ROUTE_UTILS_H_
#define XAR_XAR_ROUTE_UTILS_H_

#include <vector>

#include "common/ids.h"
#include "graph/path.h"
#include "graph/road_graph.h"

namespace xar {

/// Fills cumulative driving time/distance profiles along `nodes`:
/// cum_time_s[i] / cum_dist_m[i] is the total time/distance from nodes[0] to
/// nodes[i] taking, at each hop, the best drivable edge between consecutive
/// nodes. Every consecutive pair must be connected by a drivable edge.
void BuildCumulativeProfiles(const RoadGraph& graph,
                             const std::vector<NodeId>& nodes,
                             std::vector<double>* cum_time_s,
                             std::vector<double>* cum_dist_m);

/// Appends `piece` to `route`, dropping the duplicated junction node when
/// `piece` starts where `route` currently ends.
void AppendPathNodes(std::vector<NodeId>* route,
                     const std::vector<NodeId>& piece);

}  // namespace xar

#endif  // XAR_XAR_ROUTE_UTILS_H_
