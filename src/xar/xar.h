#ifndef XAR_XAR_XAR_H_
#define XAR_XAR_XAR_H_

/// \file
/// Umbrella header for the Xhare-a-Ride library: the road-network substrate
/// (graphs, routing engines, oracles, generators, I/O), the three-tier
/// region discretization, the XAR run-time (create / search / book / track /
/// cancel), and the deployment-facing façades (thread-safe wrapper, command
/// protocol, GeoJSON export). See README.md for a quickstart.

#include "discretize/region_index.h"
#include "graph/alt.h"
#include "graph/contraction_hierarchy.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/serialization.h"
#include "graph/spatial_index.h"
#include "graph/text_io.h"
#include "schedule/kinetic_tree.h"
#include "xar/command_server.h"
#include "xar/concurrent_xar.h"
#include "xar/env_options.h"
#include "xar/geojson_export.h"
#include "xar/options.h"
#include "xar/ride.h"
#include "xar/xar_system.h"

#endif  // XAR_XAR_XAR_H_
