#include "xar/xar_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "match/cluster_match_index.h"
#include "schedule/ride_schedule.h"
#include "xar/route_utils.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

XarSystem::XarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
                     const RegionIndex& region, DistanceOracle& oracle,
                     XarOptions options)
    : XarSystem(graph, spatial, BorrowRegionSnapshot(region), oracle,
                options) {}

XarSystem::XarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
                     std::shared_ptr<const RegionSnapshot> snapshot,
                     DistanceOracle& oracle, XarOptions options)
    : graph_(&graph),
      spatial_(spatial),
      snapshot_(snapshot),
      oracle_(&oracle),
      options_(options),
      index_(MakeMatchIndex(options.match_index, snapshot, graph,
                            options.match_index_options)) {
  if (options_.ride_id_stride == 0) options_.ride_id_stride = 1;
  refresh_stats_.epoch = snapshot->epoch;
}

const RideIndex& XarSystem::ride_index() const {
  assert(index_->kind() == MatchIndexKind::kCluster);
  return static_cast<const ClusterMatchIndex&>(*index_).impl();
}

RefreshStats XarSystem::RefreshDiscretization(const GraphDelta& delta) {
  Stopwatch timer;
  std::shared_ptr<const RegionSnapshot> current =
      snapshot_.load(std::memory_order_acquire);
  const RoadGraph& build_graph =
      delta.graph != nullptr ? *delta.graph : *graph_;
  const DiscretizationOptions& build_options =
      delta.options.has_value() ? *delta.options : current->index->options();
  // Build any backend preprocessing (per-metric hierarchies) for the
  // incoming oracle first: the snapshot rebuild below batches its landmark
  // metric on that backend, and the swap installs a ready oracle so no
  // post-refresh query pays the build.
  Stopwatch prewarm_timer;
  if (delta.oracle != nullptr) delta.oracle->Prewarm();
  refresh_stats_.last_prewarm_ms = prewarm_timer.ElapsedMillis();
  // The incoming oracle routes over the incoming graph, so its backend can
  // batch the landmark rows; a delta without an oracle keeps the internal
  // Dijkstra build (the current oracle may still route the old weights).
  RoutingBackend* matrix_backend =
      delta.oracle != nullptr ? delta.oracle->mutable_routing_backend()
                              : nullptr;
  std::shared_ptr<const RegionSnapshot> next =
      BuildRegionSnapshot(build_graph, spatial_, build_options,
                          current->epoch + 1, matrix_backend);
  refresh_stats_.last_matrix_ms = next->index->landmark_metric().build_millis();
  AdoptSnapshot(std::move(next), delta.graph, delta.oracle);
  refresh_stats_.last_rebuild_ms = timer.ElapsedMillis();
  return refresh_stats_;
}

std::size_t XarSystem::AdoptSnapshot(
    std::shared_ptr<const RegionSnapshot> next, const RoadGraph* new_graph,
    DistanceOracle* new_oracle) {
  const bool graph_changed = new_graph != nullptr && new_graph != graph_;
  const bool metric_changed =
      graph_changed || (new_oracle != nullptr && new_oracle != oracle_);
  if (graph_changed) graph_ = new_graph;
  if (new_oracle != nullptr) oracle_ = new_oracle;

  // Re-home every live ride into the index rebound to the new region
  // (OnEpochSwap drops all registrations). Crossed associations are not
  // resurrected: registration recomputes them from the route, then
  // Advance(now) retires the already-passed ones — the same end state
  // incremental tracking maintains.
  index_->OnEpochSwap(next, *graph_);
  const double now = clock_.Now();
  std::size_t rehomed = 0;
  for (Ride& ride : rides_) {
    if (!ride.active) continue;
    RideSchedule* sched = schedules_[LocalIndex(ride.id)].get();
    bool replanned = false;
    if (sched != nullptr && metric_changed) {
      // Re-home the persistent schedule onto the new metric: every subtree
      // re-priced, then the route rebuilt from the re-priced best plan.
      // Riders whose deadlines the new metric breaks stay aboard with
      // relaxed deadlines — a booked rider is a commitment.
      pooling_counters_.relaxed_riders += sched->Reprice(*oracle_);
      pooling_counters_.reprices += 1;
      replanned =
          ApplyKineticPlan(ride, *sched, /*enforce_budget=*/false, nullptr)
              .ok();
    }
    if (!replanned && graph_changed) {
      // Same nodes, new weights: re-profile the existing route so index ETAs
      // and detour accounting reflect the new travel times.
      BuildCumulativeProfiles(*graph_, ride.route.nodes,
                              &ride.route_cum_time_s, &ride.route_cum_dist_m);
      ride.route.length_m = ride.route_cum_dist_m.back();
      ride.route.time_s = ride.route_cum_time_s.back();
      for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
        ride.via_points[v].eta_s =
            ride.departure_time_s +
            ride.route_cum_time_s[ride.via_route_index[v]];
      }
    }
    index_->Insert(ride);
    index_->Advance(ride, now);
    ++rehomed;
  }

  const std::uint64_t epoch = next->epoch;
  snapshot_.store(std::move(next), std::memory_order_release);
  // Old event-queue entries stay (validated on pop); re-seed so re-homed
  // rides keep waking up under the new index's event times.
  for (const Ride& ride : rides_) {
    if (ride.active) ScheduleNextEvent(ride);
  }

  refresh_stats_.epoch = epoch;
  refresh_stats_.refreshes += 1;
  refresh_stats_.last_rides_rehomed = rehomed;
  refresh_stats_.total_rides_rehomed += rehomed;
  return rehomed;
}

Result<RideId> XarSystem::CreateRide(const RideOffer& offer) {
  NodeId src = spatial_.NearestNode(offer.source);
  NodeId dst = spatial_.NearestNode(offer.destination);
  if (src == dst) {
    return Status::InvalidArgument("ride source and destination coincide");
  }
  Path route = oracle_->DriveRoute(src, dst);
  if (!route.Found()) {
    return Status::NotFound("no drivable route between offer endpoints");
  }

  Ride ride;
  ride.id = RideId(options_.ride_id_offset +
                   static_cast<RideId::underlying_type>(rides_.size()) *
                       options_.ride_id_stride);
  ride.source = src;
  ride.destination = dst;
  ride.departure_time_s = offer.departure_time_s;
  ride.seats_total =
      offer.seats >= 0 ? offer.seats : options_.default_seats;
  ride.seats_available = ride.seats_total;
  ride.detour_limit_m = offer.detour_limit_m >= 0
                            ? offer.detour_limit_m
                            : options_.default_detour_limit_m;
  ride.route = std::move(route);
  BuildCumulativeProfiles(*graph_, ride.route.nodes, &ride.route_cum_time_s,
                          &ride.route_cum_dist_m);

  ViaPoint start{src, offer.departure_time_s, RequestId::Invalid(), false};
  ViaPoint end{dst, offer.departure_time_s + ride.route_cum_time_s.back(),
               RequestId::Invalid(), false};
  ride.via_points = {start, end};
  ride.via_route_index = {0, ride.route.nodes.size() - 1};

  rides_.push_back(std::move(ride));
  schedules_.push_back(nullptr);  // materialized on first kinetic booking
  ++active_rides_;
  const Ride& stored = rides_.back();
  index_->Insert(stored);
  ScheduleNextEvent(stored);
  return stored.id;
}

std::vector<RideMatch> XarSystem::Search(const RideRequest& request) const {
  return SearchTopK(request, options_.max_results);
}

std::vector<RideMatch> XarSystem::SearchTopK(const RideRequest& request,
                                             std::size_t k) const {
  // Resolve every option the backend needs, then delegate: the two-step
  // cluster search (paper Section VII) or the spatio-temporal hash probe
  // both run entirely inside the MatchIndex (src/match/).
  MatchTuning tuning;
  tuning.walk_limit_m = request.walk_limit_m >= 0
                            ? request.walk_limit_m
                            : options_.default_walk_limit_m;
  tuning.eta_window_slack_s = options_.eta_window_slack_s;
  tuning.max_onboard_s = options_.max_onboard_s;
  // Meeting points (XarOptions::meeting_points): keep several candidate
  // landmarks per ride and side instead of only the least-walk one. 1 is
  // the classic scenario and reproduces it exactly.
  tuning.per_ride =
      options_.meeting_points
          ? std::max<std::size_t>(1, options_.meeting_point_candidates)
          : 1;
  tuning.max_results = k;
  return index_->Candidates(request, tuning, RideTable(this));
}

Result<BookingRecord> XarSystem::Book(RideId ride_id,
                                      const RideRequest& request,
                                      const RideMatch& match) {
  if (!OwnsRide(ride_id)) {
    return Status::NotFound("unknown ride");
  }
  // Epoch revalidation: the match's cluster/landmark ids were minted by the
  // epoch it was searched on and are meaningless against a refreshed region.
  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  if (match.epoch != pinned->epoch) {
    return Status::FailedPrecondition(
        "match is stale: discretization epoch changed");
  }
  Ride& ride = MutableRide(ride_id);
  if (!ride.active) return Status::FailedPrecondition("ride already finished");
  if (ride.seats_available < request.seats) {
    return Status::ResourceExhausted("no seats left on ride");
  }

  // Locate the insertion segments from the index's support records — this
  // uses only precomputed cluster information, no shortest paths. The pair
  // is chosen jointly so that same-segment insertions price the full
  // src->dst traversal.
  std::size_t s = 0;
  std::size_t d = 0;
  double joint_estimate = 0.0;
  if (!index_->ChooseInsertionSegments(ride, match.source_cluster,
                                       match.pickup_landmark,
                                       match.dest_cluster,
                                       match.dropoff_landmark, &s, &d,
                                       &joint_estimate)) {
    return Status::FailedPrecondition("match is stale: cluster support gone");
  }
  // Re-check the budget under the current ride state. The search-time check
  // can be stale by the time an optimistic concurrent booking lands here.
  if (joint_estimate > ride.RemainingDetourBudget()) {
    return Status::FailedPrecondition("match is stale: detour budget spent");
  }

  NodeId pickup = pinned->index->GetLandmark(match.pickup_landmark).node;
  NodeId dropoff = pinned->index->GetLandmark(match.dropoff_landmark).node;

  if (options_.kinetic_booking) {
    // Persistent schedules accept riders onto in-progress rides too: the
    // tree is rooted at the last stop the vehicle passed.
    return BookKinetic(ride, request, match, pickup, dropoff);
  }

  double old_length = ride.route_cum_dist_m.back();
  double budget_before = ride.RemainingDetourBudget();

  // Splice the route (paper Section VIII-B): the only shortest-path
  // computations of the booking path, at most four.
  std::size_t sp_count = 0;
  auto sp = [&](NodeId a, NodeId b) -> Path {
    ++sp_count;
    return oracle_->DriveRoute(a, b);
  };

  std::vector<NodeId> new_nodes;
  std::vector<ViaPoint> new_vias;
  std::vector<std::size_t> new_via_idx;

  auto copy_route_span = [&](std::size_t from_idx, std::size_t to_idx) {
    for (std::size_t r = from_idx; r <= to_idx; ++r) {
      if (!new_nodes.empty() && new_nodes.back() == ride.route.nodes[r])
        continue;
      new_nodes.push_back(ride.route.nodes[r]);
    }
  };

  ViaPoint pickup_via{pickup, 0.0, request.id, true};
  ViaPoint dropoff_via{dropoff, 0.0, request.id, false};

  bool ok = true;
  auto splice_leg = [&](NodeId from, NodeId to) {
    if (from == to) return;  // nothing to add
    Path leg = sp(from, to);
    if (!leg.Found()) {
      ok = false;
      return;
    }
    AppendPathNodes(&new_nodes, leg.nodes);
  };

  if (s == d) {
    // v_s -> pickup -> dropoff -> v_{s+1}; 3 shortest paths.
    copy_route_span(0, ride.via_route_index[s]);
    // Via list: all vias up to s (prefix indices unchanged), then pickup and
    // dropoff, then the rest.
    for (std::size_t v = 0; v <= s; ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(ride.via_route_index[v]);
    }
    splice_leg(ride.via_points[s].node, pickup);
    new_vias.push_back(pickup_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(pickup, dropoff);
    new_vias.push_back(dropoff_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(dropoff, ride.via_points[s + 1].node);
    std::size_t resume = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[s + 1], ride.route.nodes.size() - 1);
    for (std::size_t v = s + 1; v < ride.via_points.size(); ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(resume + (ride.via_route_index[v] -
                                      ride.via_route_index[s + 1]));
    }
  } else {
    // v_s -> pickup -> v_{s+1} ... v_d -> dropoff -> v_{d+1}; 4 paths.
    for (std::size_t v = 0; v <= s; ++v) {
      new_vias.push_back(ride.via_points[v]);
    }
    copy_route_span(0, ride.via_route_index[s]);
    for (std::size_t v = 0; v <= s; ++v) {
      new_via_idx.push_back(ride.via_route_index[v]);
    }
    splice_leg(ride.via_points[s].node, pickup);
    new_vias.push_back(pickup_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(pickup, ride.via_points[s + 1].node);

    // Middle untouched portion: vias s+1 .. d, route up to via d.
    std::size_t anchor = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[s + 1], ride.via_route_index[d]);
    for (std::size_t v = s + 1; v <= d; ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(anchor + (ride.via_route_index[v] -
                                      ride.via_route_index[s + 1]));
    }
    splice_leg(ride.via_points[d].node, dropoff);
    new_vias.push_back(dropoff_via);
    new_via_idx.push_back(new_nodes.size() - 1);
    splice_leg(dropoff, ride.via_points[d + 1].node);

    std::size_t resume = new_nodes.size() - 1;
    copy_route_span(ride.via_route_index[d + 1], ride.route.nodes.size() - 1);
    for (std::size_t v = d + 1; v < ride.via_points.size(); ++v) {
      new_vias.push_back(ride.via_points[v]);
      new_via_idx.push_back(resume + (ride.via_route_index[v] -
                                      ride.via_route_index[d + 1]));
    }
  }

  if (!ok) {
    return Status::Internal("booking splice found an unreachable leg");
  }
  assert(sp_count <= 4);

  // Commit the new shape.
  ride.route.nodes = std::move(new_nodes);
  BuildCumulativeProfiles(*graph_, ride.route.nodes, &ride.route_cum_time_s,
                          &ride.route_cum_dist_m);
  ride.route.length_m = ride.route_cum_dist_m.back();
  ride.route.time_s = ride.route_cum_time_s.back();
  ride.via_points = std::move(new_vias);
  ride.via_route_index = std::move(new_via_idx);
  for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
    ride.via_points[v].eta_s =
        ride.departure_time_s + ride.route_cum_time_s[ride.via_route_index[v]];
  }

  double actual_detour = ride.route_cum_dist_m.back() - old_length;
  ride.detour_used_m += std::max(0.0, actual_detour);
  ride.seats_available -= request.seats;

  index_->Update(ride);
  index_->Advance(ride, clock_.Now());  // do not resurrect passed clusters
  ScheduleNextEvent(ride);

  BookingRecord record;
  record.request = request.id;
  record.ride = ride_id;
  record.seats = request.seats;
  record.pickup_node = pickup;
  record.dropoff_node = dropoff;
  record.actual_detour_m = std::max(0.0, actual_detour);
  record.estimated_detour_m = match.detour_estimate_m;
  record.budget_before_m = budget_before;
  record.walk_m = match.TotalWalkM();
  record.shortest_path_computations = sp_count;
  for (const ViaPoint& vp : ride.via_points) {
    if (vp.request == request.id) {
      (vp.is_pickup ? record.pickup_eta_s : record.dropoff_eta_s) = vp.eta_s;
    }
  }
  bookings_.push_back(record);
  return record;
}

bool XarSystem::CollectPricingLegs(const RideMatch& match,
                                   std::vector<std::pair<NodeId, NodeId>>* legs,
                                   double* replaced_m) const {
  legs->clear();
  *replaced_m = 0.0;
  if (!OwnsRide(match.ride)) return false;
  std::shared_ptr<const RegionSnapshot> pinned =
      snapshot_.load(std::memory_order_acquire);
  if (match.epoch != pinned->epoch) return false;
  const Ride& ride = rides_[LocalIndex(match.ride)];
  if (!ride.active) return false;

  std::size_t s = 0;
  std::size_t d = 0;
  double joint_estimate = 0.0;
  if (!index_->ChooseInsertionSegments(ride, match.source_cluster,
                                       match.pickup_landmark,
                                       match.dest_cluster,
                                       match.dropoff_landmark, &s, &d,
                                       &joint_estimate)) {
    return false;
  }
  NodeId pickup = pinned->index->GetLandmark(match.pickup_landmark).node;
  NodeId dropoff = pinned->index->GetLandmark(match.dropoff_landmark).node;

  // Route length currently covered by the spliced-out segment(s).
  auto span_m = [&](std::size_t seg) {
    return ride.route_cum_dist_m[ride.via_route_index[seg + 1]] -
           ride.route_cum_dist_m[ride.via_route_index[seg]];
  };
  // Book's splice_leg skips zero-length legs, so pricing must too.
  auto add_leg = [&](NodeId from, NodeId to) {
    if (from != to) legs->emplace_back(from, to);
  };
  if (s == d) {
    add_leg(ride.via_points[s].node, pickup);
    add_leg(pickup, dropoff);
    add_leg(dropoff, ride.via_points[s + 1].node);
    *replaced_m = span_m(s);
  } else {
    add_leg(ride.via_points[s].node, pickup);
    add_leg(pickup, ride.via_points[s + 1].node);
    add_leg(ride.via_points[d].node, dropoff);
    add_leg(dropoff, ride.via_points[d + 1].node);
    *replaced_m = span_m(s) + span_m(d);
  }
  return true;
}

std::size_t XarSystem::PriceMatches(std::vector<RideMatch>* matches) {
  if (matches->empty()) return 0;

  struct MatchLegs {
    std::vector<std::pair<NodeId, NodeId>> legs;
    double replaced_m = 0.0;
    bool ok = false;
  };
  std::vector<MatchLegs> per_match(matches->size());
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  std::unordered_map<NodeId::underlying_type, std::size_t> src_at;
  std::unordered_map<NodeId::underlying_type, std::size_t> tgt_at;
  bool any = false;
  for (std::size_t m = 0; m < matches->size(); ++m) {
    MatchLegs& ml = per_match[m];
    ml.ok = CollectPricingLegs((*matches)[m], &ml.legs, &ml.replaced_m);
    if (!ml.ok) continue;
    any = true;
    for (const auto& [from, to] : ml.legs) {
      if (src_at.emplace(from.value(), sources.size()).second)
        sources.push_back(from);
      if (tgt_at.emplace(to.value(), targets.size()).second)
        targets.push_back(to);
    }
  }
  if (!any) return 0;

  // ONE oracle batch prices every leg of the wave: cache hits are filled
  // from the distance cache inside the oracle, the misses go down in a
  // single many-to-many backend call (bucket CH on the default backend).
  std::vector<double> dist = oracle_->DriveDistanceMatrix(sources, targets);

  std::size_t dropped = 0;
  std::vector<RideMatch> kept;
  kept.reserve(matches->size());
  for (std::size_t m = 0; m < matches->size(); ++m) {
    RideMatch match = (*matches)[m];
    const MatchLegs& ml = per_match[m];
    if (ml.ok) {
      double spliced = 0.0;
      for (const auto& [from, to] : ml.legs) {
        spliced += dist[src_at.at(from.value()) * targets.size() +
                        tgt_at.at(to.value())];
      }
      if (!std::isfinite(spliced)) {
        // An unreachable splice leg: Book could only fail on it. The only
        // matches pricing is allowed to drop — budget checks stay against
        // the cluster estimate, so booking outcomes are unchanged.
        ++dropped;
        continue;
      }
      match.priced_detour_m = std::max(0.0, spliced - ml.replaced_m);
    }
    kept.push_back(match);
  }
  *matches = std::move(kept);
  pricing_stats_.waves += 1;
  pricing_stats_.candidates += per_match.size();
  pricing_stats_.dropped += dropped;
  return dropped;
}

Result<BookingRecord> XarSystem::SearchAndBook(const RideRequest& request) {
  std::vector<RideMatch> matches = Search(request);
  if (options_.batch_pricing) PriceMatches(&matches);
  for (const RideMatch& match : matches) {
    Result<BookingRecord> booked = Book(match.ride, request, match);
    if (booked.ok()) return booked;
  }
  return Status::NotFound("no bookable ride for request");
}

RideSchedule* XarSystem::EnsureKineticSchedule(Ride& ride) {
  std::unique_ptr<RideSchedule>& slot = schedules_[LocalIndex(ride.id)];
  if (slot != nullptr) return slot.get();

  // Materialize from the via list. Root: the last via-point the vehicle
  // already passed (in-progress ride), or the source at departure. Via ETAs
  // are non-decreasing along the route, so the scan can stop at the first
  // future one.
  const double now = clock_.Now();
  NodeId root = ride.source;
  double root_time = ride.departure_time_s;
  for (const ViaPoint& vp : ride.via_points) {
    if (vp.eta_s > now) break;
    root = vp.node;
    root_time = vp.eta_s;
  }

  auto sched = std::make_unique<RideSchedule>(root, root_time,
                                              ride.seats_total, *oracle_);
  std::unordered_map<RequestId::underlying_type, const ViaPoint*> drops;
  drops.reserve(ride.via_points.size() / 2 + 1);
  for (const ViaPoint& vp : ride.via_points) {
    if (vp.request.valid() && !vp.is_pickup) drops[vp.request.value()] = &vp;
  }
  for (const ViaPoint& vp : ride.via_points) {
    if (!vp.request.valid() || !vp.is_pickup) continue;
    auto drop = drops.find(vp.request.value());
    if (drop == drops.end()) return nullptr;  // pickup without drop-off
    if (drop->second->eta_s <= now) continue;  // rider fully served
    // Pre-existing riders carry no recorded deadline (their booking predates
    // the schedule); seed them unconstrained — the current via order is the
    // feasibility witness for the build.
    ScheduleStop p{vp.node, vp.request, true, kInf};
    ScheduleStop d{drop->second->node, vp.request, false, kInf};
    if (vp.eta_s <= now) {
      sched->SeedOnboardRider(p, d);
    } else {
      sched->SeedPendingRider(p, d);
    }
  }
  if (!sched->FinishSeeding()) return nullptr;
  slot = std::move(sched);
  return slot.get();
}

Status XarSystem::ApplyKineticPlan(Ride& ride, const RideSchedule& schedule,
                                   bool enforce_budget,
                                   std::size_t* sp_count) {
  // Node order: source, committed stops (already passed — re-threaded so the
  // profile spans the whole ride), remaining stops best-first, destination.
  Schedule best = schedule.Best();
  std::vector<ScheduleStop> stops(schedule.committed());
  stops.insert(stops.end(), best.stops.begin(), best.stops.end());

  std::vector<NodeId> order = {ride.source};
  for (const ScheduleStop& stop : stops) order.push_back(stop.node);
  order.push_back(ride.destination);

  std::size_t legs = 0;
  std::vector<NodeId> new_nodes = {order.front()};
  std::vector<std::size_t> stop_route_idx = {0};
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] != new_nodes.back()) {
      ++legs;
      Path leg = oracle_->DriveRoute(new_nodes.back(), order[i]);
      if (!leg.Found()) {
        return Status::Internal("kinetic re-route found an unreachable leg");
      }
      AppendPathNodes(&new_nodes, leg.nodes);
    }
    stop_route_idx.push_back(new_nodes.size() - 1);
  }

  // Exact budget check before anything is committed. Detour accounting is
  // global on the kinetic path: everything beyond the driver's own shortest
  // path is shared detour (which forfeits the splice path's 4ε bound — see
  // DESIGN.md §14).
  std::vector<double> cum_time, cum_dist;
  BuildCumulativeProfiles(*graph_, new_nodes, &cum_time, &cum_dist);
  double base_length = oracle_->DriveDistance(ride.source, ride.destination);
  double detour_used = std::max(0.0, cum_dist.back() - base_length);
  if (enforce_budget && detour_used > ride.detour_limit_m) {
    return Status::FailedPrecondition("kinetic detour exceeds driver budget");
  }

  ride.route.nodes = std::move(new_nodes);
  ride.route_cum_time_s = std::move(cum_time);
  ride.route_cum_dist_m = std::move(cum_dist);
  ride.route.length_m = ride.route_cum_dist_m.back();
  ride.route.time_s = ride.route_cum_time_s.back();

  std::vector<ViaPoint> vias;
  std::vector<std::size_t> via_idx;
  vias.push_back(ViaPoint{ride.source, ride.departure_time_s,
                          RequestId::Invalid(), false});
  via_idx.push_back(0);
  for (std::size_t i = 0; i < stops.size(); ++i) {
    vias.push_back(
        ViaPoint{stops[i].node, 0.0, stops[i].request, stops[i].is_pickup});
    via_idx.push_back(stop_route_idx[i + 1]);
  }
  vias.push_back(ViaPoint{ride.destination, 0.0, RequestId::Invalid(), false});
  via_idx.push_back(ride.route.nodes.size() - 1);
  ride.via_points = std::move(vias);
  ride.via_route_index = std::move(via_idx);
  for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
    ride.via_points[v].eta_s =
        ride.departure_time_s + ride.route_cum_time_s[ride.via_route_index[v]];
  }
  ride.detour_used_m = detour_used;
  if (sp_count != nullptr) *sp_count = legs;
  return Status::OK();
}

Result<BookingRecord> XarSystem::BookKinetic(Ride& ride,
                                             const RideRequest& request,
                                             const RideMatch& match,
                                             NodeId pickup, NodeId dropoff) {
  RideSchedule* sched = EnsureKineticSchedule(ride);
  if (sched == nullptr) {
    return Status::Internal(
        "malformed via-point list: pickup without drop-off");
  }
  // Commit any stop the vehicle already passed before grafting the new
  // rider: an insertion must never reorder history.
  pooling_counters_.advanced_stops += sched->AdvanceTo(clock_.Now());

  // The rider's detour budget, as deadlines: picked up within the ETA slack
  // of their departure window (mirroring the search-side feasibility check)
  // and dropped off within the onboard cap after that.
  double pickup_deadline =
      std::max(request.latest_departure_s, match.eta_source_s) +
      options_.eta_window_slack_s;
  double dropoff_deadline = pickup_deadline + options_.max_onboard_s;
  ScheduleStop p{pickup, request.id, true, pickup_deadline};
  ScheduleStop d{dropoff, request.id, false, dropoff_deadline};
  if (!sched->Insert(p, d)) {
    pooling_counters_.rejections += 1;
    return Status::NotFound("no feasible stop ordering for this rider");
  }

  double budget_before = ride.RemainingDetourBudget();
  double old_total = ride.route_cum_dist_m.back();
  std::size_t sp_count = 0;
  Status applied =
      ApplyKineticPlan(ride, *sched, /*enforce_budget=*/true, &sp_count);
  if (!applied.ok()) {
    // Roll the tree back. Remove regrafts by replaying the other riders,
    // which reproduces the pre-insert tree exactly (insertion keeps all
    // feasible orderings), so a failed booking leaves no trace.
    sched->Remove(request.id);
    pooling_counters_.rejections += 1;
    return applied;
  }
  pooling_counters_.insertions += 1;
  pooling_counters_.max_pooled_riders =
      std::max(pooling_counters_.max_pooled_riders, sched->ActiveRiders());
  ride.seats_available -= request.seats;

  index_->Update(ride);
  index_->Advance(ride, clock_.Now());
  ScheduleNextEvent(ride);

  BookingRecord record;
  record.request = request.id;
  record.ride = ride.id;
  record.seats = request.seats;
  record.pickup_node = pickup;
  record.dropoff_node = dropoff;
  record.actual_detour_m = std::max(0.0, ride.route.length_m - old_total);
  record.estimated_detour_m = match.detour_estimate_m;
  record.budget_before_m = budget_before;
  record.walk_m = match.TotalWalkM();
  record.shortest_path_computations = sp_count;
  for (const ViaPoint& vp : ride.via_points) {
    if (vp.request == request.id) {
      (vp.is_pickup ? record.pickup_eta_s : record.dropoff_eta_s) = vp.eta_s;
    }
  }
  bookings_.push_back(record);
  return record;
}

Status XarSystem::CancelBooking(RideId ride_id, RequestId request) {
  return RemoveRider(ride_id, request, /*allow_passed_pickup=*/false);
}

Status XarSystem::ReportNoShow(RideId ride_id, RequestId request) {
  return RemoveRider(ride_id, request, /*allow_passed_pickup=*/true);
}

Status XarSystem::RemoveRider(RideId ride_id, RequestId request,
                              bool allow_passed_pickup) {
  if (!OwnsRide(ride_id)) {
    return Status::NotFound("unknown ride");
  }
  Ride& ride = MutableRide(ride_id);
  if (!ride.active) {
    return Status::FailedPrecondition("ride already finished");
  }
  // Locate the rider's via-points.
  std::size_t pickup_idx = ride.via_points.size();
  std::size_t dropoff_idx = ride.via_points.size();
  for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
    if (ride.via_points[v].request != request) continue;
    if (ride.via_points[v].is_pickup) {
      pickup_idx = v;
    } else {
      dropoff_idx = v;
    }
  }
  if (pickup_idx == ride.via_points.size()) {
    return Status::NotFound("no such booking on this ride");
  }
  if (!allow_passed_pickup &&
      ride.via_points[pickup_idx].eta_s <= clock_.Now()) {
    return Status::FailedPrecondition("rider already picked up");
  }
  // A no-show is reportable any time up to the drop-off; past that the
  // booking has already run its course and there is nothing to unwind.
  if (dropoff_idx != ride.via_points.size() &&
      ride.via_points[dropoff_idx].eta_s <= clock_.Now()) {
    return Status::FailedPrecondition("booking already completed");
  }

  // The booking record is the seat ledger; resolve it before touching
  // anything. A scheduled rider without a record is corrupted state — the
  // old code silently refunded one seat here, which broke the seat
  // accounting whenever the true booking held more.
  auto record = std::find_if(bookings_.begin(), bookings_.end(),
                             [&](const BookingRecord& b) {
                               return b.ride == ride_id &&
                                      b.request == request;
                             });
  if (record == bookings_.end()) {
    return Status::Internal("booking record missing for scheduled rider");
  }
  const int seats = record->seats;

  RideSchedule* sched = schedules_[LocalIndex(ride_id)].get();
  if (sched != nullptr) {
    // Persistent-kinetic unwinding: prune history first, drop the rider
    // from the live tree (the regraft replays the surviving riders, keeping
    // all their feasible orderings), then rebuild the route from the
    // surviving plan. Budget is not enforced — shedding a rider never
    // strands the others.
    pooling_counters_.advanced_stops += sched->AdvanceTo(clock_.Now());
    if (!sched->Remove(request)) {
      return Status::Internal("rider missing from kinetic schedule");
    }
    Status applied =
        ApplyKineticPlan(ride, *sched, /*enforce_budget=*/false, nullptr);
    if (!applied.ok()) return applied;
    pooling_counters_.removals += 1;
  } else {
    // Splice-path unwinding: remaining via-points, in order, without this
    // rider's pair.
    std::vector<ViaPoint> kept;
    for (const ViaPoint& vp : ride.via_points) {
      if (vp.request != request) kept.push_back(vp);
    }

    // Re-route through the kept via-points (back-end shortest paths).
    std::vector<NodeId> new_nodes;
    std::vector<std::size_t> new_via_idx;
    for (std::size_t v = 0; v < kept.size(); ++v) {
      if (v == 0) {
        new_nodes.push_back(kept[0].node);
      } else if (kept[v].node != new_nodes.back()) {
        Path leg = oracle_->DriveRoute(new_nodes.back(), kept[v].node);
        if (!leg.Found()) {
          return Status::Internal("cancellation re-route failed");
        }
        AppendPathNodes(&new_nodes, leg.nodes);
      }
      new_via_idx.push_back(new_nodes.size() - 1);
    }

    double old_length = ride.route_cum_dist_m.back();
    ride.route.nodes = std::move(new_nodes);
    BuildCumulativeProfiles(*graph_, ride.route.nodes, &ride.route_cum_time_s,
                            &ride.route_cum_dist_m);
    ride.route.length_m = ride.route_cum_dist_m.back();
    ride.route.time_s = ride.route_cum_time_s.back();
    ride.via_points = std::move(kept);
    ride.via_route_index = std::move(new_via_idx);
    for (std::size_t v = 0; v < ride.via_points.size(); ++v) {
      ride.via_points[v].eta_s =
          ride.departure_time_s +
          ride.route_cum_time_s[ride.via_route_index[v]];
    }

    // Refund the freed detour budget.
    double freed = std::max(0.0, old_length - ride.route.length_m);
    ride.detour_used_m = std::max(0.0, ride.detour_used_m - freed);
  }

  bookings_.erase(record);
  ride.seats_available =
      std::min(ride.seats_total, ride.seats_available + seats);

  index_->Update(ride);
  index_->Advance(ride, clock_.Now());  // do not resurrect passed clusters
  ScheduleNextEvent(ride);
  return Status::OK();
}

Status XarSystem::CancelRide(RideId ride_id) {
  if (!OwnsRide(ride_id)) {
    return Status::NotFound("unknown ride");
  }
  Ride& ride = MutableRide(ride_id);
  if (ride.active) FinishRide(ride);
  return Status::OK();
}

void XarSystem::AdvanceTime(double now_s) {
  clock_.AdvanceTo(now_s);
  while (!events_.empty() && events_.top().first < now_s) {
    auto [when, ride_id] = events_.top();
    events_.pop();
    Ride& ride = MutableRide(ride_id);
    if (!ride.active) continue;
    // Prune the persistent schedule first: stops the vehicle passed are
    // committed (riders board/alight, alternative orderings that begin
    // differently are discarded), so the tree always roots at the present.
    RideSchedule* sched = schedules_[LocalIndex(ride_id)].get();
    if (sched != nullptr) {
      pooling_counters_.advanced_stops += sched->AdvanceTo(now_s);
    }
    if (ride.ArrivalTimeS() <= now_s) {
      FinishRide(ride);
      continue;
    }
    index_->Advance(ride, now_s);
    ScheduleNextEvent(ride);
  }
}

void XarSystem::FinishRide(Ride& ride) {
  if (!ride.active) return;
  ride.active = false;
  --active_rides_;
  index_->Remove(ride.id);
  schedules_[LocalIndex(ride.id)].reset();
}

void XarSystem::ScheduleNextEvent(const Ride& ride) {
  double next = std::min(index_->NextEventTime(ride.id), ride.ArrivalTimeS());
  // A live schedule wakes up at its next stop too, so the tree is pruned as
  // each stop is passed, not only at cluster-exit events.
  const std::unique_ptr<RideSchedule>& sched = schedules_[LocalIndex(ride.id)];
  if (sched != nullptr && !sched->empty()) {
    next = std::min(next, sched->NextStopEtaS());
  }
  if (next < kInf) events_.emplace(next, ride.id);
}

const Ride* XarSystem::GetRide(RideId id) const {
  if (!OwnsRide(id)) return nullptr;
  return &rides_[LocalIndex(id)];
}

const RideSchedule* XarSystem::GetSchedule(RideId id) const {
  if (!OwnsRide(id)) return nullptr;
  return schedules_[LocalIndex(id)].get();
}

PoolingStats XarSystem::pooling_stats() const {
  PoolingStats stats = pooling_counters_;
  // Gauges scan the live fleet; FinishRide resets retired slots, so every
  // non-null slot is a live kinetic ride.
  for (const std::unique_ptr<RideSchedule>& sched : schedules_) {
    if (sched == nullptr) continue;
    stats.kinetic_rides += 1;
    stats.onboard_riders += static_cast<std::size_t>(sched->Onboard());
    stats.pending_stops += sched->PendingStops();
    stats.retained_orderings += sched->NumSchedules();
  }
  return stats;
}

std::size_t XarSystem::MemoryFootprint() const {
  std::size_t bytes = sizeof(*this) + index_->MemoryFootprint();
  for (const Ride& r : rides_) {
    bytes += sizeof(r);
    bytes += r.route.nodes.capacity() * sizeof(NodeId);
    bytes += (r.route_cum_time_s.capacity() + r.route_cum_dist_m.capacity()) *
             sizeof(double);
    bytes += r.via_points.capacity() * sizeof(ViaPoint);
    bytes += r.via_route_index.capacity() * sizeof(std::size_t);
  }
  bytes += bookings_.capacity() * sizeof(BookingRecord);
  for (const std::unique_ptr<RideSchedule>& sched : schedules_) {
    if (sched != nullptr) bytes += sched->MemoryFootprint();
  }
  return bytes;
}

}  // namespace xar
