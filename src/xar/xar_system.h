#ifndef XAR_XAR_XAR_SYSTEM_H_
#define XAR_XAR_XAR_SYSTEM_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "discretize/region_index.h"
#include "discretize/region_snapshot.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"
#include "schedule/ride_schedule.h"
#include "xar/options.h"
#include "xar/ride.h"
#include "match/match_index.h"
#include "match/ride_index.h"

namespace xar {

/// Batch-pricing observability (XarOptions::batch_pricing): one "wave" is
/// one Search result list priced by a single oracle many-to-many batch.
struct PricingStats {
  std::size_t waves = 0;       ///< priced waves (one oracle batch call each)
  std::size_t candidates = 0;  ///< matches offered to pricing, total
  std::size_t dropped = 0;     ///< matches dropped for an unreachable leg
};

/// Pooling observability (XarOptions::kinetic_booking with persistent
/// per-ride schedules): lifecycle counters plus live-fleet gauges, snapshot
/// by pooling_stats().
struct PoolingStats {
  // Counters (monotone over the system's life).
  std::size_t insertions = 0;      ///< riders inserted into live trees
  std::size_t rejections = 0;      ///< infeasible insertion attempts
  std::size_t removals = 0;        ///< riders unwound (cancel / no-show)
  std::size_t advanced_stops = 0;  ///< stops committed as vehicles passed them
  std::size_t reprices = 0;        ///< schedule re-pricings on metric swaps
  std::size_t relaxed_riders = 0;  ///< riders kept with relaxed deadlines
  std::size_t max_pooled_riders = 0;  ///< peak concurrent riders on one ride
  // Gauges (scanned over the live fleet at snapshot time).
  std::size_t kinetic_rides = 0;       ///< rides owning a live schedule
  std::size_t onboard_riders = 0;      ///< riders currently aboard, fleet-wide
  std::size_t pending_stops = 0;       ///< outstanding stops, fleet-wide
  std::size_t retained_orderings = 0;  ///< feasible orderings retained, total

  PoolingStats& operator+=(const PoolingStats& o) {
    insertions += o.insertions;
    rejections += o.rejections;
    removals += o.removals;
    advanced_stops += o.advanced_stops;
    reprices += o.reprices;
    relaxed_riders += o.relaxed_riders;
    max_pooled_riders = std::max(max_pooled_riders, o.max_pooled_riders);
    kinetic_rides += o.kinetic_rides;
    onboard_riders += o.onboard_riders;
    pending_stops += o.pending_stops;
    retained_orderings += o.retained_orderings;
    return *this;
  }
};

/// "pooling" stats section for the unified StatsRegistry surface.
inline StatsSection PoolingStatsSection(const PoolingStats& s) {
  StatsSection section;
  section.name = "pooling";
  section.AddRow(
      {StatsMetric::Counter("insertions", s.insertions),
       StatsMetric::Counter("rejections", s.rejections),
       StatsMetric::Counter("removals", s.removals),
       StatsMetric::Counter("advanced_stops", s.advanced_stops),
       StatsMetric::Counter("reprices", s.reprices),
       StatsMetric::Counter("relaxed_riders", s.relaxed_riders),
       StatsMetric::Counter("max_pooled_riders", s.max_pooled_riders),
       StatsMetric::Gauge("kinetic_rides",
                          static_cast<double>(s.kinetic_rides), 0),
       StatsMetric::Gauge("onboard_riders",
                          static_cast<double>(s.onboard_riders), 0),
       StatsMetric::Gauge("pending_stops",
                          static_cast<double>(s.pending_stops), 0),
       StatsMetric::Gauge("retained_orderings",
                          static_cast<double>(s.retained_orderings), 0)});
  return section;
}

/// The XAR run-time unit (paper Fig. 1): ride creation, shortest-path-free
/// search, booking with at most four shortest-path computations, and
/// tracking against a virtual clock.
///
/// Typical lifecycle:
///   XarSystem xar(graph, spatial, region, oracle);
///   RideId r = *xar.CreateRide(offer);
///   auto matches = xar.Search(request);          // no shortest paths
///   auto booking = xar.Book(matches[0].ride, request, matches[0]);
///   xar.AdvanceTime(now);                        // tracking
///
/// The discretization is held as a versioned RegionSnapshot and can be
/// rebuilt and swapped at runtime (RefreshDiscretization); searches pin the
/// snapshot they start on, and Book rejects matches from older epochs as
/// stale (drive the retry from SearchAndBook or the caller).
class XarSystem {
 public:
  /// Legacy path: borrows a caller-owned region (epoch 0). The caller must
  /// keep `region` alive until the first RefreshDiscretization (or the
  /// system's destruction, if never refreshed).
  XarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
            const RegionIndex& region, DistanceOracle& oracle,
            XarOptions options = {});

  /// Shares an existing snapshot (e.g. one ConcurrentXarSystem distributes
  /// across its shards).
  XarSystem(const RoadGraph& graph, const SpatialNodeIndex& spatial,
            std::shared_ptr<const RegionSnapshot> snapshot,
            DistanceOracle& oracle, XarOptions options = {});

  XarSystem(const XarSystem&) = delete;
  XarSystem& operator=(const XarSystem&) = delete;

  // --- Operations (paper O1/O2/O3) ---------------------------------------

  /// O2: registers a new ride offer. Computes the driver's shortest route
  /// (the only permitted shortest-path use outside booking) and indexes the
  /// ride's pass-through/reachable clusters.
  Result<RideId> CreateRide(const RideOffer& offer);

  /// O1: retrieves feasible matches for `request` by pure index probes —
  /// walkable-cluster lists, per-cluster ETA ranges, candidate-set
  /// intersection, then walking/detour threshold checks. Never computes a
  /// shortest path. Results sorted by least total walking.
  std::vector<RideMatch> Search(const RideRequest& request) const;

  /// As Search, but with an explicit top-k override (0 = all).
  std::vector<RideMatch> SearchTopK(const RideRequest& request,
                                    std::size_t k) const;

  /// Books `match` on `ride`: inserts pickup/drop-off via-points, splices
  /// the route using <= 4 shortest-path computations (paper Section VIII-B),
  /// charges the actual detour against the driver's budget, and refreshes
  /// the ride's index entries. Matches computed on an older discretization
  /// epoch are rejected as stale (FailedPrecondition).
  Result<BookingRecord> Book(RideId ride, const RideRequest& request,
                             const RideMatch& match);

  /// Search + batch pricing + booking in walk order: prices the whole wave
  /// of candidates with ONE oracle many-to-many batch (when
  /// XarOptions::batch_pricing, dropping candidates whose splice legs are
  /// unreachable before any Book attempt), then books the first candidate
  /// Book accepts. The serial counterpart of
  /// ConcurrentXarSystem::SearchAndBook (no retry rounds — nothing races
  /// with us here).
  Result<BookingRecord> SearchAndBook(const RideRequest& request);

  /// Prices every match of a wave against the current ride state with one
  /// oracle many-to-many batch: annotates RideMatch::priced_detour_m with
  /// the exact insertion detour (sum of splice legs minus the replaced route
  /// spans) and removes matches with an unreachable leg — the only ones
  /// whose booking outcome pricing may change, since Book would fail them
  /// anyway. Matches that went stale (epoch moved, cluster support gone) are
  /// kept unpriced for Book to reject with its usual status. Returns the
  /// number of matches dropped.
  std::size_t PriceMatches(std::vector<RideMatch>* matches);

  /// Resolves the shortest-path legs Book's splice would compute for
  /// `match` (s == d: 3 legs, one replaced span; s < d: 4 legs, two spans;
  /// zero-length legs omitted) without running any of them. False when the
  /// match is stale against the current epoch or ride state. The building
  /// block of PriceMatches; exposed so ConcurrentXarSystem can collect a
  /// whole wave's legs across shards and batch them in one oracle call.
  bool CollectPricingLegs(const RideMatch& match,
                          std::vector<std::pair<NodeId, NodeId>>* legs,
                          double* replaced_m) const;

  /// Cancels a previously confirmed booking: removes the rider's via-points,
  /// re-routes the ride through its remaining via-points (shortest paths,
  /// back-end), restores the seat and detour budget, and refreshes the index.
  /// Fails if the ride has already passed the pickup point.
  Status CancelBooking(RideId ride, RequestId request);

  /// Reports a rider absent at their pickup point (a no-show): the driver
  /// keeps going, the rider's via-points are removed, the seat and detour
  /// budget are returned and the ride is re-indexed — the same unwinding as
  /// CancelBooking, except it is legal *after* the pickup ETA has passed
  /// (that is exactly when a no-show is discovered). Fails only once the
  /// rider's drop-off ETA has passed, i.e. the booking already completed.
  Status ReportNoShow(RideId ride, RequestId request);

  /// Cancels a whole ride offer: evicts it from every cluster list. Existing
  /// co-rider bookings on it are dropped (the caller is responsible for
  /// re-matching them). Idempotent on already-finished rides.
  Status CancelRide(RideId ride);

  /// O3 (tracking): advances the virtual clock, retiring finished rides and
  /// evicting obsolete cluster associations of in-progress ones.
  void AdvanceTime(double now_s);

  // --- Refresh (live map updates) ----------------------------------------

  /// Rebuilds the discretization over the (possibly updated) graph, re-homes
  /// every live ride into a fresh RideIndex, and swaps the snapshot with an
  /// epoch bump. Serial: callers that share this system across threads must
  /// hold the writer lock (ConcurrentXarSystem does this per shard, building
  /// the snapshot once outside all locks). An empty delta is a "no-op"
  /// refresh: same tables, new epoch.
  RefreshStats RefreshDiscretization(const GraphDelta& delta = {});

  /// Installs an already-built snapshot (skipping the rebuild) and re-homes
  /// live rides; returns how many were re-homed. `new_graph`, if non-null,
  /// replaces the current graph (same node ids/topology required — routes
  /// are re-profiled, not re-planned); `new_oracle` likewise.
  std::size_t AdoptSnapshot(std::shared_ptr<const RegionSnapshot> next,
                            const RoadGraph* new_graph,
                            DistanceOracle* new_oracle);

  // --- Introspection -------------------------------------------------------

  double Now() const { return clock_.Now(); }
  const Ride* GetRide(RideId id) const;

  /// True iff `id` is one this instance has assigned (it matches the
  /// offset/stride pattern of XarOptions and has been created). Writes on
  /// foreign ids are rejected with NotFound.
  bool OwnsRide(RideId id) const {
    return id.valid() && id.value() >= options_.ride_id_offset &&
           (id.value() - options_.ride_id_offset) % options_.ride_id_stride ==
               0 &&
           LocalIndex(id) < rides_.size();
  }
  std::size_t NumRides() const { return rides_.size(); }
  std::size_t NumActiveRides() const { return active_rides_; }
  /// The candidate-generation index behind Search (XarOptions::match_index).
  const MatchIndex& match_index() const { return *index_; }
  /// The wrapped cluster structure, for introspection of pass-throughs and
  /// registrations. Only meaningful on the default kCluster backend;
  /// asserts on others.
  const RideIndex& ride_index() const;
  /// The current region. The reference stays valid until the next
  /// RefreshDiscretization/AdoptSnapshot; pin the snapshot() instead when
  /// holding it across a possible refresh.
  const RegionIndex& region() const {
    return *snapshot_.load(std::memory_order_acquire)->index;
  }
  /// Pins the current snapshot (keeps its RegionIndex alive past refreshes).
  std::shared_ptr<const RegionSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }
  /// Current discretization generation (0 until the first refresh).
  std::uint64_t epoch() const {
    return snapshot_.load(std::memory_order_acquire)->epoch;
  }
  const RefreshStats& refresh_stats() const { return refresh_stats_; }
  const PricingStats& pricing_stats() const { return pricing_stats_; }
  /// Lifecycle counters plus live gauges scanned over the current fleet's
  /// persistent schedules (all zero while kinetic_booking is off).
  PoolingStats pooling_stats() const;
  /// The ride's persistent kinetic schedule, or nullptr when it has none
  /// (kinetic_booking off, no kinetic booking yet, or the ride finished).
  /// Test/introspection seam — never mutate through it.
  const RideSchedule* GetSchedule(RideId id) const;
  const XarOptions& options() const { return options_; }
  /// The oracle answering this system's routing queries (swapped by
  /// AdoptSnapshot on graph deltas). Exposed for the stats surface.
  const DistanceOracle& oracle() const { return *oracle_; }
  const std::vector<BookingRecord>& bookings() const { return bookings_; }

  /// Bytes held by the ride index plus ride state (Fig. 3c numerator; add
  /// region().MemoryFootprint() for the full in-memory structure).
  std::size_t MemoryFootprint() const;

 private:
  /// RideLookup the match index resolves candidate ids against: backends
  /// never store ride state, this system's table is the truth.
  class RideTable final : public RideLookup {
   public:
    explicit RideTable(const XarSystem* system) : system_(system) {}
    const Ride* Find(RideId id) const override {
      return system_->GetRide(id);
    }

   private:
    const XarSystem* system_;
  };

  /// Position of `id` in rides_ under the offset/stride id scheme.
  std::size_t LocalIndex(RideId id) const {
    return (id.value() - options_.ride_id_offset) / options_.ride_id_stride;
  }
  Ride& MutableRide(RideId id) { return rides_[LocalIndex(id)]; }
  void FinishRide(Ride& ride);
  void ScheduleNextEvent(const Ride& ride);

  /// Kinetic-booking path (XarOptions::kinetic_booking): inserts the rider
  /// into the ride's persistent kinetic schedule — materializing it from the
  /// via list on first use — and rebuilds the route stop-to-stop from the
  /// committed prefix plus the best remaining ordering. Works on departed
  /// (in-progress) rides: the tree is rooted at the last passed stop.
  /// Returns NotFound if no feasible ordering exists.
  Result<BookingRecord> BookKinetic(Ride& ride, const RideRequest& request,
                                    const RideMatch& match, NodeId pickup,
                                    NodeId dropoff);

  /// The ride's persistent schedule, materialized from its via list on first
  /// use (root at the last passed via-point; passed pickups become onboard
  /// riders). nullptr only on corrupted ride state.
  RideSchedule* EnsureKineticSchedule(Ride& ride);

  /// Rebuilds the ride's route/via/profile state from its schedule: source,
  /// committed stops, best remaining ordering, destination. With
  /// `enforce_budget`, fails (ride untouched) when the exact route exceeds
  /// the driver's detour limit — callers roll the tree back.
  Status ApplyKineticPlan(Ride& ride, const RideSchedule& schedule,
                          bool enforce_budget, std::size_t* sp_count);

  /// Shared unwinding behind CancelBooking and ReportNoShow: removes the
  /// rider's via-point pair, re-routes through the kept via-points, refunds
  /// seat + detour budget, re-indexes. `allow_passed_pickup` is the only
  /// difference between the two callers.
  Status RemoveRider(RideId ride, RequestId request, bool allow_passed_pickup);

  const RoadGraph* graph_;  ///< swapped by AdoptSnapshot on graph deltas
  const SpatialNodeIndex& spatial_;
  /// Current discretization. Atomic so in-flight searches can pin it while a
  /// refresh swaps in the next epoch; the old RegionIndex stays alive until
  /// the last pinned reader releases it.
  std::atomic<std::shared_ptr<const RegionSnapshot>> snapshot_;
  DistanceOracle* oracle_;  ///< swapped by AdoptSnapshot on graph deltas
  XarOptions options_;

  std::vector<Ride> rides_;  // indexed by RideId
  /// Persistent kinetic schedules, parallel to rides_ (nullptr = none).
  /// Kept out of Ride so GetRide copies (ConcurrentXarSystem hands rides
  /// across its lock boundary by value) stay cheap and tree-free.
  std::vector<std::unique_ptr<RideSchedule>> schedules_;
  /// The pluggable candidate-generation index (XarOptions::match_index).
  /// Rebound to the new snapshot on refresh (OnEpochSwap) — a backend
  /// resolves against exactly one region epoch.
  std::unique_ptr<MatchIndex> index_;
  std::vector<BookingRecord> bookings_;
  VirtualClock clock_;
  std::size_t active_rides_ = 0;
  RefreshStats refresh_stats_;
  PricingStats pricing_stats_;
  PoolingStats pooling_counters_;  ///< counters only; gauges scanned live

  // Tracking wake-up queue: (event time, ride). Entries may be stale; they
  // are validated on pop.
  using Event = std::pair<double, RideId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

}  // namespace xar

#endif  // XAR_XAR_XAR_SYSTEM_H_
