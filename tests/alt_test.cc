#include "graph/alt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "graph/generator.h"

namespace xar {
namespace {

/// ALT must be exact: it only changes the exploration order.
class AltCorrectnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AltCorrectnessTest, MatchesDijkstra) {
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = GetParam();
  RoadGraph g = GenerateCity(opt);
  AltEngine alt(g, 6);
  DijkstraEngine dijkstra(g);
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 50; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    EXPECT_NEAR(alt.Distance(a, b),
                dijkstra.Distance(a, b, Metric::kDriveDistance), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltCorrectnessTest,
                         ::testing::Values(31, 32, 33));

TEST(AltTest, LowerBoundIsAdmissible) {
  CityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.seed = 34;
  RoadGraph g = GenerateCity(opt);
  AltEngine alt(g, 8);
  DijkstraEngine dijkstra(g);
  Rng rng(35);
  for (int i = 0; i < 80; ++i) {
    NodeId v(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId t(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    double exact = dijkstra.Distance(v, t, Metric::kDriveDistance);
    EXPECT_LE(alt.LowerBound(v, t), exact + 1e-6);
    EXPECT_GE(alt.LowerBound(v, t), 0.0);
  }
}

TEST(AltTest, TighterThanGeometricAStarOnAverage) {
  CityOptions opt;
  opt.rows = 18;
  opt.cols = 18;
  opt.seed = 36;
  opt.one_way_fraction = 0.7;  // one-ways weaken the geometric heuristic
  RoadGraph g = GenerateCity(opt);
  AltEngine alt(g, 10);
  AStarEngine astar(g);
  Rng rng(37);
  std::size_t alt_settled = 0, astar_settled = 0;
  for (int i = 0; i < 60; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    alt.Distance(a, b);
    astar.Distance(a, b, Metric::kDriveDistance);
    alt_settled += alt.last_settled_count();
    astar_settled += astar.last_settled_count();
  }
  EXPECT_LT(alt_settled, astar_settled);
}

TEST(AltTest, AnchorsAreDistinctAndSpread) {
  CityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  opt.seed = 38;
  RoadGraph g = GenerateCity(opt);
  AltEngine alt(g, 6);
  ASSERT_EQ(alt.num_anchors(), 6u);
  for (std::size_t i = 0; i < alt.anchors().size(); ++i) {
    for (std::size_t j = i + 1; j < alt.anchors().size(); ++j) {
      EXPECT_NE(alt.anchors()[i], alt.anchors()[j]);
    }
  }
  EXPECT_GT(alt.MemoryFootprint(),
            2 * 6 * g.NumNodes() * sizeof(double));
}

TEST(AltTest, SourceEqualsDestination) {
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = 39;
  RoadGraph g = GenerateCity(opt);
  AltEngine alt(g, 4);
  EXPECT_DOUBLE_EQ(alt.Distance(NodeId(3), NodeId(3)), 0.0);
}

TEST(AltTest, MoreAnchorsNeverLoosensBounds) {
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = 40;
  RoadGraph g = GenerateCity(opt);
  AltEngine few(g, 2);
  AltEngine many(g, 10);
  Rng rng(41);
  for (int i = 0; i < 60; ++i) {
    NodeId v(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId t(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    // The first 2 anchors of `many` coincide with `few`'s (same greedy
    // order), so the max over more anchors can only be tighter.
    EXPECT_GE(many.LowerBound(v, t) + 1e-9, few.LowerBound(v, t));
  }
}

}  // namespace
}  // namespace xar
