// Concurrent batch-pricing stress: booker threads whose SearchAndBook waves
// are priced by the shared oracle's many-to-many batch (meeting points on,
// so waves are wide) race a refresher that swaps in perturbed graphs WITH
// their own oracles — exercising the lock-free oracle re-point that wave
// pricing reads. Afterwards seat accounting must be exact and the pricing
// counters consistent. Run under -DXAR_SANITIZE=thread this is the data
// race detector for the PriceWave / oracle-swap path (ctest -L stress).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/generator.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

RideRequest ToRequest(const TaxiTrip& t, std::uint32_t id_offset) {
  RideRequest req;
  req.id = RequestId(id_offset + t.id.value());
  req.source = t.pickup;
  req.destination = t.dropoff;
  req.earliest_departure_s = t.pickup_time_s;
  req.latest_departure_s = t.pickup_time_s + 900;
  return req;
}

TEST(BatchPricingStressTest, PricedWavesRaceOracleSwappingRefreshes) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions options;
  options.batch_pricing = true;
  options.meeting_points = true;
  options.meeting_point_candidates = 3;
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle,
                          options, /*num_shards=*/4);

  for (const TaxiTrip& t : Trips(city, 300, 500)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }
  ASSERT_GT(xar.NumRides(), 0u);

  // Refresh payloads built up front: each delta's graph and oracle must
  // outlive every thread that might still price on them.
  constexpr std::size_t kRefreshes = 3;
  std::vector<std::unique_ptr<RoadGraph>> graphs;
  std::vector<std::unique_ptr<GraphOracle>> oracles;
  for (std::size_t r = 0; r < kRefreshes; ++r) {
    graphs.push_back(std::make_unique<RoadGraph>(
        PerturbEdgeWeights(city.graph, 0.2, 501 + r)));
    oracles.push_back(std::make_unique<GraphOracle>(*graphs.back()));
  }

  std::mutex ledger_mutex;
  std::unordered_map<RideId, int> booked_seats;
  std::atomic<std::size_t> bookings{0};

  std::vector<std::thread> threads;
  // Refresher: every round swaps graph AND oracle, re-pointing the wave
  // pricing oracle while bookers batch on it.
  threads.emplace_back([&] {
    for (std::size_t r = 0; r < kRefreshes; ++r) {
      GraphDelta delta;
      delta.graph = graphs[r].get();
      delta.oracle = oracles[r].get();
      RefreshStats stats = xar.RefreshDiscretization(delta);
      EXPECT_EQ(stats.epoch, r + 1);
    }
  });
  // Bookers: wide (meeting-point) waves, each priced in one oracle batch.
  for (int b = 0; b < 3; ++b) {
    threads.emplace_back([&, b] {
      for (const TaxiTrip& t :
           Trips(city, 150, 510 + static_cast<std::uint64_t>(b))) {
        Result<BookingRecord> booking = xar.SearchAndBook(
            ToRequest(t, static_cast<std::uint32_t>(10000 * (b + 1))));
        if (booking.ok()) {
          bookings.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(ledger_mutex);
          booked_seats[booking->ride] += booking->seats;
        } else {
          EXPECT_EQ(booking.status().code(), StatusCode::kNotFound);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_GT(bookings.load(), 0u);
  EXPECT_EQ(xar.epoch(), kRefreshes);

  // Seat accounting stayed exact under priced, racing waves.
  for (const auto& [ride_id, seats] : booked_seats) {
    Result<Ride> ride = xar.GetRide(ride_id);
    ASSERT_TRUE(ride.ok());
    EXPECT_GE(ride->seats_available, 0);
    EXPECT_EQ(ride->seats_available, ride->seats_total - seats)
        << "ride " << ride_id.value();
  }

  // Pricing counters are self-consistent: every booked wave was priced,
  // and drops never exceed candidates.
  RetryStats stats = xar.retry_stats();
  EXPECT_GT(stats.priced_waves, 0u);
  EXPECT_GE(stats.priced_candidates, stats.priced_waves);
  EXPECT_LE(stats.priced_dropped, stats.priced_candidates);
  EXPECT_EQ(stats.booked_first_try + stats.booked_after_research,
            bookings.load());
}

}  // namespace
}  // namespace xar
