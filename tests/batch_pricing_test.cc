// Batch candidate pricing on the booking hot path (XarOptions::batch_pricing)
// and the meeting-points scenario (XarOptions::meeting_points): one search
// wave is priced by ONE oracle many-to-many call, pricing never changes a
// booking outcome, the priced detour equals the detour Book actually
// charges, and meeting-point matches keep the paper's 4-epsilon guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/oracle.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

RideRequest ToRequest(const TaxiTrip& t) {
  RideRequest req;
  req.id = t.id;
  req.source = t.pickup;
  req.destination = t.dropoff;
  req.earliest_departure_s = t.pickup_time_s;
  req.latest_departure_s = t.pickup_time_s + 900;
  return req;
}

void Seed(XarSystem* xar, const TestCity& city, std::size_t n,
          std::uint64_t seed) {
  for (const TaxiTrip& t : Trips(city, n, seed)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar->CreateRide(offer);
  }
}

// The tentpole acceptance check: a booking search with a cold distance
// cache issues exactly ONE many-to-many batch against the backend, no
// matter how many candidates the wave has. (CreateRide routes via
// DriveRoute, which never populates the distance cache, so every pricing
// pair is a miss.)
TEST(BatchPricingTest, OneBatchOracleCallPerWave) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  Seed(&xar, city, 250, 410);

  ASSERT_NE(oracle.routing_backend(), nullptr);
  for (const TaxiTrip& t : Trips(city, 120, 411)) {
    RideRequest req = ToRequest(t);
    if (xar.Search(req).empty()) continue;
    // First priced wave on a cold cache: every pricing pair is a miss, so
    // the wave must cost exactly one backend batch (later waves may be
    // partially or fully answered by the distance cache).
    ASSERT_EQ(oracle.routing_backend()->m2m_batch_count(), 0u);
    (void)xar.SearchAndBook(req);
    EXPECT_EQ(oracle.routing_backend()->m2m_batch_count(), 1u)
        << "one search wave must price in one backend batch";
    EXPECT_EQ(xar.pricing_stats().waves, 1u);
    EXPECT_GT(xar.pricing_stats().candidates, 0u);
    return;
  }
  FAIL() << "workload produced no searchable request";
}

// The priced detour annotated on the winning match is the detour Book then
// actually charges (same splice legs, same replaced spans).
TEST(BatchPricingTest, PricedDetourMatchesBookedActualDetour) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  Seed(&xar, city, 250, 420);

  std::size_t checked = 0;
  for (const TaxiTrip& t : Trips(city, 200, 421)) {
    RideRequest req = ToRequest(t);
    std::vector<RideMatch> matches = xar.Search(req);
    if (matches.empty()) continue;
    xar.PriceMatches(&matches);
    for (const RideMatch& match : matches) {
      ASSERT_GE(match.priced_detour_m, 0.0)
          << "a freshly searched match must price";
      Result<BookingRecord> booked = xar.Book(match.ride, req, match);
      if (!booked.ok()) continue;
      EXPECT_NEAR(match.priced_detour_m, booked->actual_detour_m,
                  1e-6 * std::max(1.0, booked->actual_detour_m));
      ++checked;
      break;
    }
    if (checked >= 12) break;
  }
  EXPECT_GE(checked, 3u) << "workload too sparse to exercise pricing";
}

// Pricing is observability, not policy: with identical inputs, a system
// with batch_pricing on books exactly the same rides at the same detours
// as one with it off.
TEST(BatchPricingTest, BookingOutcomesUnchangedByPricing) {
  TestCity& city = SharedCity();
  GraphOracle oracle_on(city.graph);
  GraphOracle oracle_off(city.graph);
  XarOptions on;
  on.batch_pricing = true;
  XarOptions off;
  off.batch_pricing = false;
  XarSystem xar_on(city.graph, *city.spatial, *city.region, oracle_on, on);
  XarSystem xar_off(city.graph, *city.spatial, *city.region, oracle_off, off);
  Seed(&xar_on, city, 220, 430);
  Seed(&xar_off, city, 220, 430);

  std::size_t booked = 0;
  for (const TaxiTrip& t : Trips(city, 150, 431)) {
    RideRequest req = ToRequest(t);
    Result<BookingRecord> a = xar_on.SearchAndBook(req);
    Result<BookingRecord> b = xar_off.SearchAndBook(req);
    ASSERT_EQ(a.ok(), b.ok()) << "pricing changed matchability";
    if (!a.ok()) continue;
    EXPECT_EQ(a->ride, b->ride);
    EXPECT_DOUBLE_EQ(a->actual_detour_m, b->actual_detour_m);
    EXPECT_DOUBLE_EQ(a->walk_m, b->walk_m);
    ++booked;
  }
  EXPECT_GT(booked, 0u);
  EXPECT_EQ(xar_off.pricing_stats().waves, 0u);
  EXPECT_GT(xar_on.pricing_stats().waves, 0u);
}

// meeting_points with one candidate per side is the classic scenario,
// match for match; more candidates can only widen the result set.
TEST(MeetingPointsTest, OneCandidateReproducesClassicSearch) {
  TestCity& city = SharedCity();
  XarOptions classic;
  XarOptions mp1;
  mp1.meeting_points = true;
  mp1.meeting_point_candidates = 1;
  XarOptions mp4;
  mp4.meeting_points = true;
  mp4.meeting_point_candidates = 4;
  XarSystem xar_classic(city.graph, *city.spatial, *city.region, *city.oracle,
                        classic);
  XarSystem xar_mp1(city.graph, *city.spatial, *city.region, *city.oracle,
                    mp1);
  XarSystem xar_mp4(city.graph, *city.spatial, *city.region, *city.oracle,
                    mp4);
  Seed(&xar_classic, city, 220, 440);
  Seed(&xar_mp1, city, 220, 440);
  Seed(&xar_mp4, city, 220, 440);

  std::size_t nonempty = 0;
  std::size_t widened = 0;
  for (const TaxiTrip& t : Trips(city, 120, 441)) {
    RideRequest req = ToRequest(t);
    std::vector<RideMatch> base = xar_classic.Search(req);
    std::vector<RideMatch> k1 = xar_mp1.Search(req);
    ASSERT_EQ(base.size(), k1.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].ride, k1[i].ride);
      EXPECT_DOUBLE_EQ(base[i].TotalWalkM(), k1[i].TotalWalkM());
      EXPECT_EQ(base[i].pickup_landmark, k1[i].pickup_landmark);
      EXPECT_EQ(base[i].dropoff_landmark, k1[i].dropoff_landmark);
    }
    std::vector<RideMatch> k4 = xar_mp4.Search(req);
    EXPECT_GE(k4.size(), base.size())
        << "meeting points may only widen the candidate set";
    if (!base.empty()) ++nonempty;
    if (k4.size() > base.size()) ++widened;
  }
  EXPECT_GT(nonempty, 0u);
  EXPECT_GT(widened, 0u) << "expected at least one request to gain a "
                            "meeting-point alternative";
}

// The paper's detour guarantee survives the meeting-points widening: every
// emitted combination passes the same cluster-level threshold checks, so
// each booking stays within estimated + 4*epsilon (+ the 2*Delta
// grid->landmark association slack).
TEST(MeetingPointsTest, DetourGuaranteeHoldsWithMeetingPoints) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions opt;
  opt.meeting_points = true;
  opt.meeting_point_candidates = 4;
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle, opt);
  Seed(&xar, city, 250, 450);

  const double slack = 4 * xar.region().epsilon() +
                       2 * xar.region().options().max_drive_to_landmark_m;
  std::size_t booked = 0;
  for (const TaxiTrip& t : Trips(city, 200, 451)) {
    Result<BookingRecord> booking = xar.SearchAndBook(ToRequest(t));
    if (!booking.ok()) continue;
    ++booked;
    EXPECT_LE(booking->actual_detour_m,
              booking->estimated_detour_m + slack + 1e-6)
        << "4-epsilon bound violated on a meeting-point booking";
    EXPECT_LE(booking->shortest_path_computations, 4u);
  }
  EXPECT_GT(booked, 5u);
}

// Concurrent wave pricing: the sharded SearchAndBook prices each wave in
// one oracle batch with no shard locks held; the retry stats expose it.
TEST(BatchPricingTest, ConcurrentWavePricingCountsWaves) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/4);
  for (const TaxiTrip& t : Trips(city, 250, 460)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }
  std::size_t booked = 0;
  for (const TaxiTrip& t : Trips(city, 150, 461)) {
    if (xar.SearchAndBook(ToRequest(t)).ok()) ++booked;
  }
  EXPECT_GT(booked, 0u);
  RetryStats stats = xar.retry_stats();
  EXPECT_GT(stats.priced_waves, 0u);
  EXPECT_GE(stats.priced_candidates, stats.priced_waves);
  // Stats surface: the retry section carries the pricing counters.
  StatsSection section = RetryStatsSection(stats);
  std::vector<std::string> names;
  for (const auto& row : section.rows) {
    for (const StatsMetric& m : row) names.push_back(m.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "priced_waves"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "priced_dropped"),
            names.end());
}

// The oracle stats section surfaces the backend batch/fallback counters
// (satellite: STATS observability).
TEST(BatchPricingTest, OracleStatsSectionHasBatchCounters) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  StatsSection section = OracleStatsSection(oracle);
  std::vector<std::string> names;
  for (const auto& row : section.rows) {
    for (const StatsMetric& m : row) names.push_back(m.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "m2m_batch_queries"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "m2m_fallback_queries"),
            names.end());
}

}  // namespace
}  // namespace xar
