#include <gtest/gtest.h>

#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class CancellationTest : public ::testing::Test {
 protected:
  CancellationTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  RideId CreateDiagonalRide(double t = 8 * 3600.0) {
    const BoundingBox& b = city_.graph.bounds();
    RideOffer offer;
    offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
    offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
    offer.departure_time_s = t;
    Result<RideId> ride = xar_.CreateRide(offer);
    EXPECT_TRUE(ride.ok());
    return *ride;
  }

  /// Books a mid-route rider; returns the booking.
  Result<BookingRecord> BookMidRider(RequestId id, double t = 8 * 3600.0) {
    const BoundingBox& b = city_.graph.bounds();
    RideRequest req;
    req.id = id;
    req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
    req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 1800;
    std::vector<RideMatch> matches = xar_.Search(req);
    if (matches.empty()) return Status::NotFound("no match");
    return xar_.Book(matches.front().ride, req, matches.front());
  }

  TestCity& city_;
  XarSystem xar_;
};

TEST_F(CancellationTest, CancelBookingRestoresRideShape) {
  RideId ride = CreateDiagonalRide();
  double base_length = xar_.GetRide(ride)->route.length_m;
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());
  ASSERT_EQ(booking->ride, ride);
  EXPECT_EQ(xar_.GetRide(ride)->via_points.size(), 4u);

  ASSERT_TRUE(xar_.CancelBooking(ride, RequestId(1)).ok());
  const Ride* r = xar_.GetRide(ride);
  EXPECT_EQ(r->via_points.size(), 2u);
  EXPECT_EQ(r->seats_available, r->seats_total);
  // The route is back to the driver's own shortest path.
  EXPECT_NEAR(r->route.length_m, base_length, 1.0);
  EXPECT_NEAR(r->detour_used_m, 0.0, 1.0);
  EXPECT_TRUE(xar_.bookings().empty());
}

TEST_F(CancellationTest, CancelUnknownBookingFails) {
  RideId ride = CreateDiagonalRide();
  EXPECT_EQ(xar_.CancelBooking(ride, RequestId(77)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(xar_.CancelBooking(RideId(999), RequestId(1)).code(),
            StatusCode::kNotFound);
}

TEST_F(CancellationTest, CancelAfterPickupFails) {
  RideId ride = CreateDiagonalRide();
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());
  xar_.AdvanceTime(booking->pickup_eta_s + 30);
  EXPECT_EQ(xar_.CancelBooking(ride, RequestId(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CancellationTest, CancelledSeatIsRebookable) {
  RideOffer offer;
  const BoundingBox& b = city_.graph.bounds();
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  offer.seats = 1;
  ASSERT_TRUE(xar_.CreateRide(offer).ok());

  Result<BookingRecord> first = BookMidRider(RequestId(1));
  ASSERT_TRUE(first.ok());
  // Full: second rider fails to find it.
  EXPECT_FALSE(BookMidRider(RequestId(2)).ok());
  ASSERT_TRUE(xar_.CancelBooking(first->ride, RequestId(1)).ok());
  // Freed: second rider succeeds now.
  EXPECT_TRUE(BookMidRider(RequestId(3)).ok());
}

TEST_F(CancellationTest, CancelOneOfTwoRidersKeepsTheOther) {
  RideId ride = CreateDiagonalRide();
  Result<BookingRecord> first = BookMidRider(RequestId(1));
  ASSERT_TRUE(first.ok());
  Result<BookingRecord> second = BookMidRider(RequestId(2));
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->ride, ride);

  ASSERT_TRUE(xar_.CancelBooking(ride, RequestId(1)).ok());
  const Ride* r = xar_.GetRide(ride);
  EXPECT_EQ(r->via_points.size(), 4u);  // src, rider2 pickup/drop, dst
  int rider2_points = 0;
  for (const ViaPoint& vp : r->via_points) {
    EXPECT_NE(vp.request, RequestId(1));
    if (vp.request == RequestId(2)) ++rider2_points;
  }
  EXPECT_EQ(rider2_points, 2);
  ASSERT_EQ(xar_.bookings().size(), 1u);
  EXPECT_EQ(xar_.bookings().front().request, RequestId(2));
}

TEST_F(CancellationTest, CancelRideRemovesFromSearch) {
  RideId ride = CreateDiagonalRide();
  const BoundingBox& b = city_.graph.bounds();
  RideRequest req;
  req.id = RequestId(5);
  req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  req.earliest_departure_s = 8 * 3600;
  req.latest_departure_s = 8 * 3600 + 1800;
  ASSERT_FALSE(xar_.Search(req).empty());

  ASSERT_TRUE(xar_.CancelRide(ride).ok());
  EXPECT_FALSE(xar_.GetRide(ride)->active);
  EXPECT_TRUE(xar_.Search(req).empty());
  // Idempotent.
  EXPECT_TRUE(xar_.CancelRide(ride).ok());
}

TEST_F(CancellationTest, ReregistrationDoesNotResurrectPassedClusters) {
  RideId ride = CreateDiagonalRide();
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());
  // Drive partway, then trigger a re-registration via cancellation of a
  // second rider... simpler: book a second rider after advancing.
  const Ride* r = xar_.GetRide(ride);
  double partway = r->departure_time_s + r->route.time_s * 0.4;
  xar_.AdvanceTime(partway);
  const RideRegistration* reg = xar_.ride_index().RegistrationOf(ride);
  for (const PassThroughCluster& pt : reg->pass_throughs) {
    EXPECT_GE(pt.eta_s, partway);
  }
}

}  // namespace
}  // namespace xar
