// Differential suite for the bucket-CH many-to-many batch path: the
// DistancesToMany/ManyToMany bucket scans must agree with the per-pair
// ChQuery::Distance EXACTLY (same up-down relaxations, same FP operations)
// and with a plain Dijkstra baseline to the repo's 1e-6 relative contract —
// across all three metrics, perturbed edge weights, and a live
// RefreshDiscretization epoch swap.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "discretize/region_index.h"
#include "graph/contraction_hierarchy.h"
#include "graph/dijkstra.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/routing_backend.h"
#include "graph/spatial_index.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

// The repo-wide FP contract: CH and Dijkstra relax the same arc weights in
// different orders, so sums may differ in the last bits.
void ExpectSameDistance(double got, double want, const char* what) {
  if (std::isinf(want)) {
    EXPECT_TRUE(std::isinf(got)) << what;
    return;
  }
  EXPECT_NEAR(got, want, 1e-6 * std::max(1.0, std::abs(want))) << what;
}

std::vector<NodeId> RandomNodes(const RoadGraph& g, std::size_t n, Rng* rng) {
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(
        static_cast<NodeId::underlying_type>(rng->NextIndex(g.NumNodes())));
  }
  return nodes;
}

class BucketChTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Metric>> {};

TEST_P(BucketChTest, BatchMatchesDijkstraAndPointToPoint) {
  auto [seed, metric] = GetParam();
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = seed;
  RoadGraph g = PerturbEdgeWeights(GenerateCity(opt), 0.25, seed + 7);

  ContractionHierarchy ch(g, metric);
  ChQuery query(ch);
  DijkstraEngine dijkstra(g);
  Rng rng(seed + 13);

  std::vector<NodeId> sources = RandomNodes(g, 9, &rng);
  std::vector<NodeId> targets = RandomNodes(g, 17, &rng);

  std::vector<double> batch = query.ManyToMany(sources, targets);
  ASSERT_EQ(batch.size(), sources.size() * targets.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::vector<double> base =
        dijkstra.DistancesToMany(sources[s], targets, metric);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const double got = batch[s * targets.size() + t];
      ExpectSameDistance(got, base[t], "bucket batch vs dijkstra");
      // Bucket scans walk the same up/down arcs as the p2p query, so the
      // agreement here is exact, not within tolerance.
      EXPECT_EQ(got, query.Distance(sources[s], targets[t]))
          << sources[s].value() << "->" << targets[t].value();
    }
  }
}

TEST_P(BucketChTest, OneToManyRowEqualsManyToManyRow) {
  auto [seed, metric] = GetParam();
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = seed + 1;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g, metric);
  ChQuery query(ch);
  Rng rng(seed + 2);
  std::vector<NodeId> targets = RandomNodes(g, 12, &rng);
  NodeId src = RandomNodes(g, 1, &rng).front();
  std::vector<double> row = query.DistancesToMany(src, targets);
  std::vector<double> matrix = query.ManyToMany({src}, targets);
  ASSERT_EQ(row.size(), targets.size());
  ASSERT_EQ(matrix.size(), targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    EXPECT_EQ(row[t], matrix[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMetrics, BucketChTest,
    ::testing::Combine(::testing::Values(301, 302, 303),
                       ::testing::Values(Metric::kDriveDistance,
                                         Metric::kDriveTime,
                                         Metric::kWalkDistance)));

TEST(BucketChEdgeCaseTest, EmptyAndSelfQueries) {
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = 305;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g, Metric::kDriveDistance);
  ChQuery query(ch);
  EXPECT_TRUE(query.ManyToMany({}, {NodeId(0)}).empty());
  EXPECT_TRUE(query.ManyToMany({NodeId(0)}, {}).empty());
  EXPECT_TRUE(query.DistancesToMany(NodeId(0), {}).empty());
  // Self distance and duplicate targets.
  std::vector<double> row =
      query.DistancesToMany(NodeId(3), {NodeId(3), NodeId(3), NodeId(5)});
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 0.0);
  EXPECT_EQ(row[1], 0.0);
  EXPECT_EQ(row[2], query.Distance(NodeId(3), NodeId(5)));
}

// Re-running a batch after a different batch must not leak bucket entries
// between target sets.
TEST(BucketChEdgeCaseTest, ConsecutiveBatchesDoNotLeakBuckets) {
  CityOptions opt;
  opt.rows = 7;
  opt.cols = 7;
  opt.seed = 306;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g, Metric::kDriveDistance);
  ChQuery query(ch);
  Rng rng(307);
  std::vector<NodeId> first = RandomNodes(g, 10, &rng);
  std::vector<NodeId> second = RandomNodes(g, 4, &rng);
  NodeId src = RandomNodes(g, 1, &rng).front();
  (void)query.DistancesToMany(src, first);
  std::vector<double> row = query.DistancesToMany(src, second);
  ASSERT_EQ(row.size(), second.size());
  for (std::size_t t = 0; t < second.size(); ++t) {
    EXPECT_EQ(row[t], query.Distance(src, second[t]));
  }
}

// The backend batch stays pinned to Dijkstra through a live refresh: a
// perturbed graph arrives with its own oracle via GraphDelta, the system
// swaps epochs, and the NEW backend's many-to-many must price the NEW
// weights (and the landmark matrix rebuild must have gone down the batch
// path — the backend batch counter moves).
TEST(BucketChRefreshTest, BatchMatchesDijkstraAcrossEpochSwap) {
  CityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.seed = 310;
  RoadGraph g = GenerateCity(opt);
  SpatialNodeIndex spatial(g);
  DiscretizationOptions dopt;
  RegionIndex region = RegionIndex::Build(g, spatial, dopt);
  GraphOracle oracle(g);
  XarSystem xar(g, spatial, region, oracle);

  RoadGraph perturbed = PerturbEdgeWeights(g, 0.3, 311);
  GraphOracle next_oracle(perturbed);
  GraphDelta delta;
  delta.graph = &perturbed;
  delta.oracle = &next_oracle;
  RefreshStats stats = xar.RefreshDiscretization(delta);
  EXPECT_EQ(stats.epoch, 1u);
  // The landmark-matrix rebuild batched on the incoming backend.
  ASSERT_NE(next_oracle.routing_backend(), nullptr);
  EXPECT_GE(next_oracle.routing_backend()->m2m_batch_count(), 1u);

  RoutingBackend* backend = next_oracle.mutable_routing_backend();
  ASSERT_NE(backend, nullptr);
  DijkstraEngine dijkstra(perturbed);
  Rng rng(312);
  std::vector<NodeId> sources = RandomNodes(perturbed, 6, &rng);
  std::vector<NodeId> targets = RandomNodes(perturbed, 11, &rng);
  std::vector<double> batch =
      backend->ManyToMany(sources, targets, Metric::kDriveDistance);
  ASSERT_EQ(batch.size(), sources.size() * targets.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::vector<double> base = dijkstra.DistancesToMany(
        sources[s], targets, Metric::kDriveDistance);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      ExpectSameDistance(batch[s * targets.size() + t], base[t],
                         "post-refresh batch vs dijkstra");
    }
  }
}

}  // namespace
}  // namespace xar
