// Stress suite for parallel contraction-hierarchy preprocessing (run under
// ThreadSanitizer: -DXAR_SANITIZE=thread, ctest -L stress). Hammers the
// batched contraction loop with many concurrent builds and verifies the
// determinism contract held under load: every parallel build must equal the
// serial one bit-for-bit, on the hierarchy and on query answers.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <vector>

#include "graph/contraction_hierarchy.h"
#include "graph/generator.h"
#include "graph/road_graph.h"

namespace xar {
namespace {

RoadGraph MakePerturbedLattice(std::size_t rows, std::size_t cols,
                               std::uint64_t seed) {
  CityOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.seed = seed;
  return PerturbEdgeWeights(GenerateCity(opt), /*spread=*/0.4, seed + 1);
}

std::vector<std::pair<NodeId, NodeId>> SamplePairs(const RoadGraph& g,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(g.NumNodes() - 1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < n) {
    NodeId a(pick(rng)), b(pick(rng));
    if (a != b) pairs.emplace_back(a, b);
  }
  return pairs;
}

// Many worker threads inside one build: TSan watches the independent-set
// simulation, the per-thread witness workspaces and the phase joins.
TEST(ChParallelStressTest, ManyThreadsOneBuildMatchesSerial) {
  RoadGraph g = MakePerturbedLattice(22, 22, 901);
  ChOptions serial;
  serial.preprocess_threads = 1;
  ContractionHierarchy reference(g, Metric::kDriveDistance, serial);

  for (std::size_t threads : {2, 4, 8, 16}) {
    ChOptions opt;
    opt.preprocess_threads = threads;
    ContractionHierarchy ch(g, Metric::kDriveDistance, opt);
    ASSERT_EQ(ch.NumShortcuts(), reference.NumShortcuts());
    ASSERT_EQ(ch.num_batches(), reference.num_batches());
    for (std::size_t v = 0; v < g.NumNodes(); ++v) {
      NodeId node(static_cast<NodeId::underlying_type>(v));
      ASSERT_EQ(ch.RankOf(node), reference.RankOf(node)) << v;
    }
    ChQuery query(ch);
    ChQuery ref_query(reference);
    for (auto [a, b] : SamplePairs(g, 50, 903)) {
      ASSERT_EQ(query.Distance(a, b), ref_query.Distance(a, b));
    }
  }
}

// Concurrent parallel builds over distinct graphs: no shared mutable state
// between hierarchies, so builds must not interfere (each also races its
// own internal phases for TSan to inspect).
TEST(ChParallelStressTest, ConcurrentParallelBuildsAreIndependent) {
  constexpr std::size_t kBuilds = 4;
  std::vector<RoadGraph> graphs;
  graphs.reserve(kBuilds);
  for (std::size_t i = 0; i < kBuilds; ++i) {
    graphs.push_back(MakePerturbedLattice(14, 14, 911 + i));
  }

  std::vector<std::future<std::unique_ptr<ContractionHierarchy>>> builds;
  for (std::size_t i = 0; i < kBuilds; ++i) {
    builds.push_back(std::async(std::launch::async, [&graphs, i] {
      ChOptions opt;
      opt.preprocess_threads = 4;
      return std::make_unique<ContractionHierarchy>(
          graphs[i], Metric::kDriveDistance, opt);
    }));
  }
  for (std::size_t i = 0; i < kBuilds; ++i) {
    std::unique_ptr<ContractionHierarchy> ch = builds[i].get();
    ChOptions serial;
    serial.preprocess_threads = 1;
    ContractionHierarchy reference(graphs[i], Metric::kDriveDistance, serial);
    ASSERT_EQ(ch->NumShortcuts(), reference.NumShortcuts());
    ChQuery query(*ch);
    ChQuery ref_query(reference);
    for (auto [a, b] : SamplePairs(graphs[i], 30, 921 + i)) {
      ASSERT_EQ(query.Distance(a, b), ref_query.Distance(a, b));
    }
  }
}

}  // namespace
}  // namespace xar
