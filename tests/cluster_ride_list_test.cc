#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "match/cluster_ride_list.h"

namespace xar {
namespace {

TEST(ClusterRideListTest, UpsertInsertsAndFinds) {
  ClusterRideList list;
  list.Upsert(RideId(5), 100.0, 50.0);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.Contains(RideId(5)));
  EXPECT_FALSE(list.Contains(RideId(6)));
  const PotentialRide* pr = list.Find(RideId(5));
  ASSERT_NE(pr, nullptr);
  EXPECT_DOUBLE_EQ(pr->eta_s, 100.0);
  EXPECT_DOUBLE_EQ(pr->detour_m, 50.0);
}

TEST(ClusterRideListTest, UpsertUpdatesInPlace) {
  ClusterRideList list;
  list.Upsert(RideId(5), 100.0, 0.0);
  list.Upsert(RideId(5), 300.0, 70.0);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list.Find(RideId(5))->eta_s, 300.0);
  // The old ETA-sorted copy is gone.
  EXPECT_TRUE(list.EtaRange(50, 150).empty());
  EXPECT_EQ(list.EtaRange(250, 350).size(), 1u);
}

TEST(ClusterRideListTest, RemoveReportsPresence) {
  ClusterRideList list;
  list.Upsert(RideId(1), 10.0, 0.0);
  EXPECT_TRUE(list.Remove(RideId(1)));
  EXPECT_FALSE(list.Remove(RideId(1)));
  EXPECT_TRUE(list.empty());
}

TEST(ClusterRideListTest, EtaRangeBoundsInclusive) {
  ClusterRideList list;
  list.Upsert(RideId(1), 10.0, 0.0);
  list.Upsert(RideId(2), 20.0, 0.0);
  list.Upsert(RideId(3), 30.0, 0.0);
  EXPECT_EQ(list.EtaRange(10.0, 30.0).size(), 3u);
  EXPECT_EQ(list.EtaRange(10.1, 29.9).size(), 1u);
  EXPECT_EQ(list.EtaRange(31.0, 99.0).size(), 0u);
  EXPECT_EQ(list.EtaRange(0.0, 9.0).size(), 0u);
}

TEST(ClusterRideListTest, EtaRangeOnEmptyList) {
  ClusterRideList list;
  EXPECT_TRUE(list.EtaRange(0, 100).empty());
}

TEST(ClusterRideListTest, DuplicateEtasAllReturned) {
  ClusterRideList list;
  for (std::uint32_t i = 0; i < 5; ++i) list.Upsert(RideId(i), 42.0, 0.0);
  EXPECT_EQ(list.EtaRange(42.0, 42.0).size(), 5u);
}

/// Property: after a random interleaving of upserts and removes, both sorted
/// views agree with a reference map, and every ETA probe matches a brute
/// force scan.
class ClusterRideListPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterRideListPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  ClusterRideList list;
  std::map<RideId, std::pair<double, double>> model;

  for (int op = 0; op < 2000; ++op) {
    RideId ride(static_cast<RideId::underlying_type>(rng.NextIndex(200)));
    if (rng.Bernoulli(0.7)) {
      double eta = rng.Uniform(0, 86400);
      double detour = rng.Uniform(0, 4000);
      list.Upsert(ride, eta, detour);
      model[ride] = {eta, detour};
    } else {
      bool present = model.count(ride) > 0;
      EXPECT_EQ(list.Remove(ride), present);
      model.erase(ride);
    }
  }

  EXPECT_EQ(list.size(), model.size());
  // by_ride view is sorted and complete.
  const std::vector<PotentialRide>& by_ride = list.by_ride();
  ASSERT_EQ(by_ride.size(), model.size());
  auto it = model.begin();
  for (const PotentialRide& pr : by_ride) {
    EXPECT_EQ(pr.ride, it->first);
    EXPECT_DOUBLE_EQ(pr.eta_s, it->second.first);
    EXPECT_DOUBLE_EQ(pr.detour_m, it->second.second);
    ++it;
  }
  // Random ETA probes match brute force counts.
  for (int probe = 0; probe < 50; ++probe) {
    double lo = rng.Uniform(0, 86400);
    double hi = lo + rng.Uniform(0, 7200);
    std::size_t brute = 0;
    for (const auto& [ride, entry] : model) {
      if (entry.first >= lo && entry.first <= hi) ++brute;
    }
    std::span<const PotentialRide> got = list.EtaRange(lo, hi);
    EXPECT_EQ(got.size(), brute);
    double prev = lo;
    for (const PotentialRide& pr : got) {
      EXPECT_GE(pr.eta_s, prev - 1e-12);
      EXPECT_LE(pr.eta_s, hi);
      prev = pr.eta_s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterRideListPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ClusterRideListTest, MemoryFootprintGrows) {
  ClusterRideList list;
  std::size_t empty = list.MemoryFootprint();
  for (std::uint32_t i = 0; i < 100; ++i) list.Upsert(RideId(i), i, 0.0);
  EXPECT_GT(list.MemoryFootprint(), empty);
}

}  // namespace
}  // namespace xar
