#include "xar/command_server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "serve/client.h"
#include "serve/server.h"
#include "tests/test_helpers.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class CommandServerTest : public ::testing::Test {
 protected:
  CommandServerTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle),
        server_(xar_) {}

  /// Formats a lat/lng pair at box fractions (fy, fx) as two tokens.
  std::string At(double fy, double fx) const {
    const BoundingBox& b = city_.graph.bounds();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f %.6f",
                  b.min_lat + fy * (b.max_lat - b.min_lat),
                  b.min_lng + fx * (b.max_lng - b.min_lng));
    return buf;
  }

  TestCity& city_;
  XarSystem xar_;
  CommandServer server_;
};

TEST_F(CommandServerTest, CreateSearchBookFlow) {
  std::string created =
      server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  ASSERT_EQ(created.rfind("OK RIDE ", 0), 0u) << created;

  std::string found = server_.Execute("SEARCH 7 " + At(0.35, 0.35) + " " +
                                      At(0.7, 0.7) + " 28800 30600");
  ASSERT_EQ(found.rfind("OK MATCHES ", 0), 0u) << found;
  ASSERT_NE(found.find("MATCH ride=0"), std::string::npos) << found;

  std::string booked = server_.Execute("BOOK 7 0");
  ASSERT_EQ(booked.rfind("OK BOOKED ride=0", 0), 0u) << booked;
  EXPECT_EQ(xar_.bookings().size(), 1u);

  std::string ride = server_.Execute("RIDE 0");
  EXPECT_NE(ride.find("seats=2/3"), std::string::npos) << ride;
  EXPECT_NE(ride.find("via_points=4"), std::string::npos) << ride;
}

TEST_F(CommandServerTest, BookWithoutSearchFails) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  std::string r = server_.Execute("BOOK 42 0");
  EXPECT_EQ(r.rfind("ERR", 0), 0u);
}

TEST_F(CommandServerTest, BookConsumesThePendingSearch) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  server_.Execute("SEARCH 7 " + At(0.35, 0.35) + " " + At(0.7, 0.7) +
                  " 28800 30600");
  ASSERT_EQ(server_.Execute("BOOK 7 0").rfind("OK", 0), 0u);
  // Second booking against the same stale search must be rejected.
  EXPECT_EQ(server_.Execute("BOOK 7 0").rfind("ERR", 0), 0u);
}

TEST_F(CommandServerTest, CancelCommands) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  server_.Execute("SEARCH 9 " + At(0.35, 0.35) + " " + At(0.7, 0.7) +
                  " 28800 30600");
  ASSERT_EQ(server_.Execute("BOOK 9 0").rfind("OK", 0), 0u);
  EXPECT_EQ(server_.Execute("CANCELBOOKING 0 9"), "OK CANCELLED");
  EXPECT_EQ(server_.Execute("CANCELBOOKING 0 9").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("CANCELRIDE 0"), "OK CANCELLED");
  std::string ride = server_.Execute("RIDE 0");
  EXPECT_NE(ride.find("active=0"), std::string::npos);
}

TEST_F(CommandServerTest, AdvanceAndStats) {
  EXPECT_EQ(server_.Execute("ADVANCE 30000"), "OK NOW 30000");
  std::string stats = server_.Execute("STATS");
  EXPECT_EQ(stats.rfind("OK STATS", 0), 0u);
  EXPECT_NE(stats.find("now=30000"), std::string::npos);
}

TEST_F(CommandServerTest, SearchRespectsOptionalWalkAndK) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  // A one-meter walk limit kills all matches.
  std::string strict = server_.Execute("SEARCH 1 " + At(0.35, 0.35) + " " +
                                       At(0.7, 0.7) + " 28800 30600 1");
  EXPECT_EQ(strict, "OK MATCHES 0");
  // k = 1 truncates.
  for (int i = 0; i < 3; ++i) {
    server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28860");
  }
  std::string topk = server_.Execute("SEARCH 2 " + At(0.35, 0.35) + " " +
                                     At(0.7, 0.7) + " 28800 30600 1000 1");
  EXPECT_EQ(topk.rfind("OK MATCHES 1", 0), 0u) << topk;
}

TEST_F(CommandServerTest, RefreshBumpsEpochAndShowsInStats) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  std::string before = server_.Execute("STATS");
  EXPECT_NE(before.find("refresh epoch=0 refreshes=0"), std::string::npos)
      << before;
  EXPECT_NE(before.find("total_rehomed=0"), std::string::npos) << before;

  std::string refreshed = server_.Execute("REFRESH");
  EXPECT_EQ(refreshed.rfind("OK REFRESH epoch=1 rehomed=1", 0), 0u)
      << refreshed;

  std::string after = server_.Execute("STATS");
  EXPECT_NE(after.find("refresh epoch=1 refreshes=1"), std::string::npos)
      << after;
  EXPECT_NE(after.find("total_rehomed=1"), std::string::npos) << after;
  EXPECT_EQ(xar_.epoch(), 1u);
}

TEST_F(CommandServerTest, StatsIteratesRegistrySections) {
  std::string stats = server_.Execute("STATS");
  EXPECT_EQ(stats.rfind("OK STATS", 0), 0u);
  // One line per section row, tagged with the section name.
  EXPECT_NE(stats.find("\nsystem rides="), std::string::npos) << stats;
  EXPECT_NE(stats.find("\nrefresh epoch="), std::string::npos) << stats;
  EXPECT_NE(stats.find("\noracle backend="), std::string::npos) << stats;
}

TEST_F(CommandServerTest, StatsSectionFilter) {
  std::string oracle_only = server_.Execute("STATS oracle");
  EXPECT_EQ(oracle_only.rfind("OK STATS", 0), 0u);
  EXPECT_NE(oracle_only.find("\noracle backend="), std::string::npos)
      << oracle_only;
  EXPECT_EQ(oracle_only.find("\nsystem "), std::string::npos) << oracle_only;
  EXPECT_EQ(oracle_only.find("\nrefresh "), std::string::npos) << oracle_only;

  std::string unknown = server_.Execute("STATS bogus");
  EXPECT_EQ(unknown.rfind("ERR", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("system"), std::string::npos) << unknown;
}

TEST_F(CommandServerTest, StatsPreprocessSectionAppearsAfterQueries) {
  // The default CH backend builds lazily; a search forces distance queries,
  // after which the preprocess section reports the per-metric builds.
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  server_.Execute("SEARCH 3 " + At(0.35, 0.35) + " " + At(0.7, 0.7) +
                  " 28800 30600");
  std::string stats = server_.Execute("STATS preprocess");
  EXPECT_EQ(stats.rfind("OK STATS", 0), 0u);
  EXPECT_NE(stats.find("preprocess metric=drive_m build_ms="),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("threads="), std::string::npos) << stats;
}

TEST_F(CommandServerTest, BookAgainstPreRefreshSearchIsStale) {
  server_.Execute("CREATE " + At(0.1, 0.1) + " " + At(0.9, 0.9) + " 28800");
  std::string found = server_.Execute("SEARCH 7 " + At(0.35, 0.35) + " " +
                                      At(0.7, 0.7) + " 28800 30600");
  ASSERT_EQ(found.rfind("OK MATCHES ", 0), 0u) << found;

  ASSERT_EQ(server_.Execute("REFRESH").rfind("OK REFRESH", 0), 0u);

  // The pending search predates the refresh: its match ids belong to the
  // old epoch, so the book must fail as stale...
  std::string stale = server_.Execute("BOOK 7 0");
  EXPECT_EQ(stale.rfind("ERR", 0), 0u) << stale;
  EXPECT_NE(stale.find("stale"), std::string::npos) << stale;

  // ...and a re-search against the new epoch books fine.
  ASSERT_EQ(server_
                .Execute("SEARCH 7 " + At(0.35, 0.35) + " " + At(0.7, 0.7) +
                         " 28800 30600")
                .rfind("OK MATCHES ", 0),
            0u);
  EXPECT_EQ(server_.Execute("BOOK 7 0").rfind("OK BOOKED ride=0", 0), 0u);
}

TEST_F(CommandServerTest, MalformedInputsAreErrors) {
  EXPECT_EQ(server_.Execute("").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("NONSENSE 1 2").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("CREATE 1 2 3").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("CREATE a b c d e").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("SEARCH x 1 2 3 4 5 6").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("RIDE 12345").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("ADVANCE soon").rfind("ERR", 0), 0u);
  EXPECT_EQ(server_.Execute("HELP").rfind("OK COMMANDS", 0), 0u);
}

// --- Network server lifecycle (ISSUE 7 satellite 4) ------------------------
// The shutdown contract of the socket front end, pinned here next to the
// line-oriented server it wraps: SO_REUSEADDR + joined handlers + idempotent
// Stop mean back-to-back server instances can run on a reused port.

class ServerLifecycleTest : public ::testing::Test {
 protected:
  ServerLifecycleTest()
      : city_(SharedCity()),
        system_(city_.graph, *city_.spatial, *city_.region, *city_.oracle,
                XarOptions{}, /*num_shards=*/2) {}

  /// One full round trip against a running server: proves it is actually
  /// serving, not just bound.
  void ExpectServes(serve::XarServeServer& server) {
    serve::ServeClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    xar::Result<std::string> stats = client.Stats("serve");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_NE(stats->find("accepted="), std::string::npos);
  }

  TestCity& city_;
  ConcurrentXarSystem system_;
};

TEST_F(ServerLifecycleTest, BackToBackInstancesReuseThePort) {
  std::uint16_t port = 0;
  {
    serve::XarServeServer first(system_);
    ASSERT_TRUE(first.Start().ok());
    port = first.port();
    ExpectServes(first);
    first.Stop();
    EXPECT_FALSE(first.running());
  }
  // A fresh instance binds the same port immediately: the previous
  // instance's sockets are in TIME_WAIT, which SO_REUSEADDR must bypass.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(::testing::Message() << "round " << round);
    serve::ServeOptions options;
    options.port = port;
    serve::XarServeServer next(system_, options);
    ASSERT_TRUE(next.Start().ok());
    EXPECT_EQ(next.port(), port);
    ExpectServes(next);
    next.Stop();
  }
}

TEST_F(ServerLifecycleTest, StopIsIdempotentAndRestartable) {
  serve::XarServeServer server(system_);

  server.Stop();  // before Start: a no-op
  EXPECT_FALSE(server.running());

  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  EXPECT_FALSE(server.Start().ok()) << "double Start must be refused";
  ExpectServes(server);

  server.Stop();
  server.Stop();  // twice: still a no-op
  EXPECT_FALSE(server.running());

  // The same object restarts on the same port.
  serve::ServeOptions again;
  again.port = port;
  serve::XarServeServer reuse(system_, again);
  ASSERT_TRUE(reuse.Start().ok());
  ExpectServes(reuse);
  reuse.Stop();
}

TEST_F(ServerLifecycleTest, StopWithConnectedClientsJoinsCleanly) {
  serve::XarServeServer server(system_);
  ASSERT_TRUE(server.Start().ok());

  // Clients left connected (one mid-frame) must not wedge or crash Stop.
  serve::ServeClient idle;
  ASSERT_TRUE(idle.Connect(server.port()).ok());
  serve::ServeClient mid_frame;
  ASSERT_TRUE(mid_frame.Connect(server.port()).ok());
  const std::uint8_t partial[6] = {40, 0, 0, 0, 1, 2};  // header + 2 of 40
  ASSERT_TRUE(mid_frame.SendBytes(partial, sizeof(partial)).ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  // Both clients observe the close promptly — EOF or a TCP reset (the
  // kernel sends RST when a socket with unread data is closed), never a
  // timeout, which would mean the server left the connection dangling.
  for (serve::ServeClient* client : {&idle, &mid_frame}) {
    StatusCode code = client->ReadFrame(1000).status().code();
    EXPECT_TRUE(code == StatusCode::kNotFound || code == StatusCode::kInternal)
        << "code " << static_cast<int>(code);
    EXPECT_NE(code, StatusCode::kResourceExhausted) << "read timed out";
  }
}

}  // namespace
}  // namespace xar
