#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/clock.h"
#include "common/enum_option.h"
#include "common/heap.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace xar {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such ride");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such ride");
  EXPECT_EQ(s.ToString(), "NotFound: no such ride");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  XAR_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --- Strong ids ---------------------------------------------------------------

TEST(StrongIdTest, InvalidByDefault) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n, NodeId::Invalid());
}

TEST(StrongIdTest, ComparisonAndHash) {
  RideId a(1), b(2), c(1);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(std::hash<RideId>()(a), std::hash<RideId>()(c));
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-5.0, 5.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(3);
  StatAccumulator acc;
  for (int i = 0; i < 20000; ++i) acc.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(4);
  StatAccumulator acc;
  for (int i = 0; i < 20000; ++i) acc.Add(rng.Poisson(3.5));
  EXPECT_NEAR(acc.mean(), 3.5, 0.1);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

// --- Stats ----------------------------------------------------------------------

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(PercentileTrackerTest, ExactPercentiles) {
  PercentileTracker t;
  for (int i = 100; i >= 1; --i) t.Add(i);  // 1..100
  EXPECT_DOUBLE_EQ(t.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(t.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(t.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
  EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(PercentileTrackerTest, FractionAtMost) {
  PercentileTracker t;
  for (int i = 1; i <= 10; ++i) t.Add(i);
  EXPECT_DOUBLE_EQ(t.FractionAtMost(0.5), 0.0);
  EXPECT_DOUBLE_EQ(t.FractionAtMost(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.FractionAtMost(10.0), 1.0);
  EXPECT_DOUBLE_EQ(t.FractionAtMost(100.0), 1.0);
}

TEST(PercentileTrackerTest, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.Add(5);
  EXPECT_DOUBLE_EQ(t.Percentile(50), 5.0);
  t.Add(1);
  t.Add(9);
  EXPECT_DOUBLE_EQ(t.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);  // clamps to bucket 0
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.99);
  h.Add(10.0);  // overflow
  h.Add(50.0);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.BucketCount(h.bins()), 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(1), 4.0);
  EXPECT_FALSE(h.ToString().empty());
}

// --- Heap -------------------------------------------------------------------------

TEST(IndexedMinHeapTest, PopsInOrder) {
  IndexedMinHeap heap(10);
  heap.Push(3, 5.0);
  heap.Push(1, 2.0);
  heap.Push(7, 8.0);
  heap.Push(2, 1.0);
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.PopMin(), 2u);
  EXPECT_EQ(heap.PopMin(), 1u);
  EXPECT_EQ(heap.PopMin(), 3u);
  EXPECT_EQ(heap.PopMin(), 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyReorders) {
  IndexedMinHeap heap(10);
  heap.Push(0, 10.0);
  heap.Push(1, 20.0);
  heap.Push(2, 30.0);
  heap.DecreaseKey(2, 5.0);
  EXPECT_EQ(heap.PopMin(), 2u);
  heap.DecreaseKey(1, 50.0);  // not lower: no-op
  EXPECT_EQ(heap.PopMin(), 0u);
  EXPECT_EQ(heap.PopMin(), 1u);
}

TEST(IndexedMinHeapTest, RandomizedAgainstSort) {
  Rng rng(7);
  IndexedMinHeap heap(500);
  std::vector<std::pair<double, std::size_t>> expect;
  for (std::size_t i = 0; i < 500; ++i) {
    double key = rng.Uniform(0, 1000);
    heap.PushOrDecrease(i, key);
    expect.emplace_back(key, i);
  }
  // Randomly decrease some keys.
  for (int i = 0; i < 200; ++i) {
    std::size_t id = rng.NextIndex(500);
    double nk = rng.Uniform(0, expect[id].first);
    heap.DecreaseKey(id, nk);
    expect[id].first = std::min(expect[id].first, nk);
  }
  std::sort(expect.begin(), expect.end());
  for (const auto& [key, id] : expect) {
    EXPECT_DOUBLE_EQ(heap.MinKey(), key);
    EXPECT_EQ(heap.PopMin(), id);
  }
}

TEST(IndexedMinHeapTest, ClearIsReusable) {
  IndexedMinHeap heap(4);
  heap.Push(0, 1.0);
  heap.Push(1, 2.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.Push(0, 9.0);
  EXPECT_EQ(heap.PopMin(), 0u);
}

// --- Table / clock ------------------------------------------------------------------

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.AddRow({"xxxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxxx"), std::string::npos);
  // Header, separator, one row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

enum class Flavor { kVanilla, kMint };

TEST(EnumOptionTest, ParsesKnownSpellings) {
  Result<Flavor> v = ParseEnumOption<Flavor>(
      "flavor", "vanilla", {{"vanilla", Flavor::kVanilla}, {"mint", Flavor::kMint}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Flavor::kVanilla);
  Result<Flavor> m = ParseEnumOption<Flavor>(
      "flavor", "mint", {{"vanilla", Flavor::kVanilla}, {"mint", Flavor::kMint}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), Flavor::kMint);
}

TEST(EnumOptionTest, UnknownValueGetsUniformMessage) {
  Result<Flavor> r = ParseEnumOption<Flavor>(
      "flavor", "pistachio",
      {{"vanilla", Flavor::kVanilla}, {"mint", Flavor::kMint}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(),
            "unknown flavor \"pistachio\" (valid: vanilla, mint)");
}

TEST(EnumOptionTest, MatchIsCaseSensitiveAndExact) {
  // No silent fall-through: near-misses are hard errors.
  for (const char* bad : {"Vanilla", "VANILLA", "vanilla ", ""}) {
    Result<Flavor> r = ParseEnumOption<Flavor>(
        "flavor", bad, {{"vanilla", Flavor::kVanilla}});
    EXPECT_FALSE(r.ok()) << "\"" << bad << "\" should not parse";
  }
}

TEST(ClockTest, VirtualClockMonotone) {
  VirtualClock clock;
  clock.AdvanceTo(100);
  clock.AdvanceTo(50);  // cannot go backwards
  EXPECT_DOUBLE_EQ(clock.Now(), 100.0);
  clock.AdvanceTo(200);
  EXPECT_DOUBLE_EQ(clock.Now(), 200.0);
}

TEST(ClockTest, FormatTimeOfDay) {
  char buf[16];
  FormatTimeOfDay(8 * 3600 + 5 * 60 + 9, buf);
  EXPECT_STREQ(buf, "08:05:09");
  FormatTimeOfDay(25 * 3600, buf);  // wraps
  EXPECT_STREQ(buf, "01:00:00");
}

TEST(ClockTest, StopwatchAdvances) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double s = w.ElapsedSeconds();
  EXPECT_GT(s, 0.0);
  // Millis/micros read the clock again, so only a lower bound holds.
  EXPECT_GE(w.ElapsedMillis(), s * 1e3);
  EXPECT_GE(w.ElapsedMicros(), s * 1e6);
}

}  // namespace
}  // namespace xar
