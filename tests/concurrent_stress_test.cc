#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

RideRequest ToRequest(const TaxiTrip& t) {
  RideRequest req;
  req.id = t.id;
  req.source = t.pickup;
  req.destination = t.dropoff;
  req.earliest_departure_s = t.pickup_time_s;
  req.latest_departure_s = t.pickup_time_s + 900;
  return req;
}

/// The designed-for race: many optimistic SearchAndBook threads plus a
/// CreateRide writer hammer the sharded system; afterwards every ride's seat
/// count must equal seats_total minus the seats of the bookings that
/// actually won. Run under -DXAR_SANITIZE=thread this doubles as the data
/// race detector for the whole shard/oracle/pool stack (see bench/README.md).
TEST(ConcurrentStressTest, SeatInvariantsUnderConcurrentSearchAndBook) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/4);

  // Initial supply.
  std::mutex created_mutex;
  std::vector<RideId> created;
  for (const TaxiTrip& t : Trips(city, 300, 60)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    Result<RideId> ride = xar.CreateRide(offer);
    if (ride.ok()) created.push_back(*ride);
  }
  ASSERT_GT(created.size(), 0u);

  // Winner ledger: seats successfully booked per ride, kept by the bookers
  // themselves (under a test-side mutex, independent of system internals).
  std::mutex ledger_mutex;
  std::unordered_map<RideId, int> booked_seats;
  std::atomic<std::size_t> bookings{0};
  std::atomic<std::size_t> searches{0};

  std::vector<std::thread> threads;
  // Booker threads: optimistic search-and-book streams.
  for (int b = 0; b < 3; ++b) {
    threads.emplace_back([&, b] {
      for (const TaxiTrip& t :
           Trips(city, 150, 61 + static_cast<std::uint64_t>(b))) {
        Result<BookingRecord> booking = xar.SearchAndBook(ToRequest(t));
        if (booking.ok()) {
          bookings.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(ledger_mutex);
          booked_seats[booking->ride] += booking->seats;
        }
      }
    });
  }
  // Reader thread: pure searches overlapping the bookings.
  threads.emplace_back([&] {
    for (const TaxiTrip& t : Trips(city, 300, 65)) {
      (void)xar.Search(ToRequest(t));
      searches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Writer thread: grows the supply while everyone else runs.
  threads.emplace_back([&] {
    for (const TaxiTrip& t : Trips(city, 100, 66)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      Result<RideId> ride = xar.CreateRide(offer);
      if (ride.ok()) {
        std::lock_guard<std::mutex> lock(created_mutex);
        created.push_back(*ride);
      }
    }
  });
  for (std::thread& th : threads) th.join();

  EXPECT_GT(searches.load(), 0u);
  EXPECT_GT(bookings.load(), 0u);

  // Seat accounting must be exact: no double-booked seat, no leaked seat.
  for (RideId id : created) {
    Result<Ride> ride = xar.GetRide(id);
    ASSERT_TRUE(ride.ok());
    int booked = 0;
    if (auto it = booked_seats.find(id); it != booked_seats.end()) {
      booked = it->second;
    }
    EXPECT_GE(ride->seats_available, 0);
    EXPECT_LE(ride->seats_available, ride->seats_total);
    EXPECT_EQ(ride->seats_available, ride->seats_total - booked)
        << "ride " << id.value();
  }
}

TEST(ConcurrentStressTest, SingleSeatRideHasExactlyOneWinner) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/4);

  const BoundingBox& b = city.graph.bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  offer.seats = 1;
  ASSERT_TRUE(xar.CreateRide(offer).ok());

  RideRequest base;
  base.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                 b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  base.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                      b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  base.earliest_departure_s = 8 * 3600;
  base.latest_departure_s = 8 * 3600 + 1800;

  std::atomic<int> wins{0};
  std::vector<std::thread> riders;
  for (int r = 0; r < 8; ++r) {
    riders.emplace_back([&, r] {
      RideRequest req = base;
      req.id = RequestId(static_cast<RequestId::underlying_type>(500 + r));
      if (xar.SearchAndBook(req).ok()) wins.fetch_add(1);
    });
  }
  for (std::thread& th : riders) th.join();
  EXPECT_EQ(wins.load(), 1);
}

}  // namespace
}  // namespace xar
